//! Simultaneous Finite Automata (SFA) — the paper's reference \[25\],
//! originally built here as an ablation comparator and now a first-class
//! engine an [`EnginePlan`](crate::csdpa::EnginePlan) can select.
//!
//! An SFA state is the *transition function* `δ_w : Q → Q ∪ {dead}` of the
//! underlying automaton for some word `w`: a chunk automaton run from the
//! identity function tracks *all* speculative runs simultaneously, so
//! speculation disappears — one deterministic transition per byte,
//! regardless of `|Q|`. The price (the reason the paper rejects SFA in
//! general) is state explosion: the reachable function space can be
//! astronomically larger than `|Q|`. Every construction here is therefore
//! budget-bounded — both the dense table ([`ConstructionBudget::grow_table`])
//! and the *retained* function/inverse structures (`charge_bytes`, the
//! `"SFA ids bytes"` axis) fail typed before the blow-up allocates.
//!
//! Construction follows Jung & Burgstaller's multicore recipe: the
//! function space is discovered in breadth-first **waves**; within a wave
//! every frontier state's successors are computed in parallel on the
//! shared [`ThreadPool`], deduplicated against a sharded 64-bit
//! Rabin-fingerprint seen-table (exact comparison on fingerprint hits, so
//! collisions cost a memcmp, never a wrong merge), and merged serially in
//! `(frontier position, byte class)` order — state numbering is therefore
//! **deterministic**: independent of worker count, scheduling, and of
//! whether the build ran on a pool at all.

use std::collections::HashMap;

use ridfa_automata::alphabet::ByteClasses;
use ridfa_automata::counter::Counter;
use ridfa_automata::dfa::Dfa;
use ridfa_automata::{BitSet, ConstructionBudget, Result, StateId, DEAD};

use crate::csdpa::ChunkAutomaton;
use crate::parallel::ThreadPool;
use crate::ridfa::RiDfa;

/// Budget axis labels for SFA construction.
const WHAT_STATES: &str = "SFA states";
const WHAT_BYTES: &str = "SFA table bytes";
/// The *retained* side structures: one function vector plus one inverse-map
/// key clone per state. Charged against the budget's byte axis before each
/// state is allocated, so a pathological pattern fails typed first.
const WHAT_IDS_BYTES: &str = "SFA ids bytes";

/// Shards of the fingerprint seen-table (reduces probe clustering; the
/// table is read concurrently during a wave and mutated only serially).
const SEEN_SHARDS: usize = 64;

/// Cap on transient per-wave candidate memory: a frontier is expanded in
/// slices small enough that undiscovered-function buffers stay bounded
/// even when the budget is about to trip.
const WAVE_CANDIDATE_BYTES: usize = 4 << 20;

/// 64-bit Rabin-style rolling fingerprint over a function vector
/// (iterative multiply-accumulate; the seen-table confirms hits with an
/// exact comparison, so collisions are benign).
fn fingerprint(f: &[StateId]) -> u64 {
    const B: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &q in f {
        h = h.wrapping_mul(B) ^ (q as u64).wrapping_add(0x100);
    }
    h
}

/// Resolves a function vector to its already-assigned state id, if any.
fn resolve(
    seen: &[HashMap<u64, Vec<StateId>>],
    functions: &[Vec<StateId>],
    fp: u64,
    g: &[StateId],
) -> Option<StateId> {
    seen[fp as usize % SEEN_SHARDS]
        .get(&fp)?
        .iter()
        .copied()
        .find(|&id| functions[id as usize] == g)
}

/// A successor function computed during a wave: either already known
/// (id resolved against the pre-wave seen-table) or a candidate new state.
enum Cand {
    Known(StateId),
    New(u64, Vec<StateId>),
}

/// A Simultaneous Finite Automaton derived from a DFA or an RI-DFA.
#[derive(Debug, Clone)]
pub struct Sfa {
    /// Dense SFA transition table, `table[s * stride + class]`.
    table: Vec<StateId>,
    stride: usize,
    byte_classes: ByteClasses,
    /// `functions[s]` = the base-state mapping this SFA state denotes
    /// (`functions[s][q]` = where a run started in `q` currently is).
    functions: Vec<Vec<StateId>>,
    /// Inverse of `functions`: resolves a composed function back to its
    /// SFA state id (the function space is closed under composition —
    /// `δ_v ∘ δ_w = δ_wv` and every word's function is discovered by the
    /// construction).
    ids: HashMap<Vec<StateId>, StateId>,
    /// The underlying automaton's start/finals (needed at join time).
    dfa_start: StateId,
    dfa_finals: BitSet,
}

impl Sfa {
    /// Builds the SFA of `dfa`, failing with
    /// [`Error::LimitExceeded`](ridfa_automata::Error::LimitExceeded) once
    /// more than `max_states` function states have been discovered.
    pub fn build_limited(dfa: &Dfa, max_states: usize) -> Result<Sfa> {
        // Historical convention: `max_states` is a cap on the total state
        // count (error once `functions.len() >= max_states`), which maps
        // onto the shared `charge_state` by charging the post-insert count.
        Sfa::build_budgeted(
            dfa,
            &ConstructionBudget::with_max_states(max_states.saturating_sub(1)),
        )
    }

    /// Builds the SFA of `dfa` under a full [`ConstructionBudget`] on the
    /// calling thread.
    pub fn build_budgeted(dfa: &Dfa, budget: &ConstructionBudget) -> Result<Sfa> {
        Sfa::build_of_dfa(dfa, budget, None)
    }

    /// Builds the SFA of `dfa` with wave-parallel state discovery on
    /// `pool`. Produces the exact same automaton (same state numbering)
    /// as [`build_budgeted`](Sfa::build_budgeted).
    pub fn build_parallel(
        dfa: &Dfa,
        budget: &ConstructionBudget,
        pool: &ThreadPool,
    ) -> Result<Sfa> {
        Sfa::build_of_dfa(dfa, budget, Some(pool))
    }

    fn build_of_dfa(
        dfa: &Dfa,
        budget: &ConstructionBudget,
        pool: Option<&ThreadPool>,
    ) -> Result<Sfa> {
        build_inner(
            dfa.num_states(),
            dfa.stride(),
            dfa.classes(),
            dfa.start(),
            dfa.finals(),
            |q, class| dfa.next_class(q, class),
            budget,
            pool,
        )
    }

    /// Builds the SFA of an RI-DFA on the calling thread — the serving
    /// registry's trial build for `EnginePlan::Auto` resolution (the
    /// registry holds RI-DFA tables, never a DFA).
    pub fn build_rid_budgeted(rid: &RiDfa, budget: &ConstructionBudget) -> Result<Sfa> {
        Sfa::build_of_rid(rid, budget, None)
    }

    /// Builds the SFA of an RI-DFA with wave-parallel state discovery on
    /// `pool`; same numbering as the serial build.
    pub fn build_rid_parallel(
        rid: &RiDfa,
        budget: &ConstructionBudget,
        pool: &ThreadPool,
    ) -> Result<Sfa> {
        Sfa::build_of_rid(rid, budget, Some(pool))
    }

    fn build_of_rid(
        rid: &RiDfa,
        budget: &ConstructionBudget,
        pool: Option<&ThreadPool>,
    ) -> Result<Sfa> {
        build_inner(
            rid.num_states(),
            rid.stride(),
            rid.classes(),
            rid.start(),
            rid.finals(),
            |q, class| rid.next_class(q, class),
            budget,
            pool,
        )
    }

    /// Reassembles an SFA from its serialized parts against the RI-DFA it
    /// was built from, re-validating everything a fresh construction
    /// establishes: `functions[0]` must be the identity, every function
    /// value must be a base state, and every table entry must agree with
    /// a direct application of the base automaton
    /// (`functions[table[s·stride+c]] == δ_c ∘ functions[s]`). Together
    /// these guarantee (by induction from the identity) that every state
    /// denotes the function of some word and the space is closed under
    /// composition — so [`compose`](Sfa::compose) on decoded tables can
    /// never miss its inverse lookup, even on forged input.
    pub fn from_rid_parts(
        rid: &RiDfa,
        table: Vec<StateId>,
        functions_flat: Vec<StateId>,
    ) -> std::result::Result<Sfa, String> {
        let n = rid.num_states();
        let stride = rid.stride();
        if n == 0 || stride == 0 {
            return Err("SFA over an empty base automaton".into());
        }
        if !table.len().is_multiple_of(stride) {
            return Err(format!(
                "SFA table of {} entries is not a multiple of stride {stride}",
                table.len()
            ));
        }
        let num_states = table.len() / stride;
        if num_states == 0 {
            return Err("SFA with zero states".into());
        }
        if functions_flat.len() != num_states * n {
            return Err(format!(
                "SFA function section holds {} entries, expected {num_states} states × {n}",
                functions_flat.len()
            ));
        }
        let functions: Vec<Vec<StateId>> = functions_flat.chunks(n).map(|f| f.to_vec()).collect();
        if functions[0]
            .iter()
            .enumerate()
            .any(|(q, &v)| v != q as StateId)
        {
            return Err("SFA state 0 is not the identity function".into());
        }
        for (s, f) in functions.iter().enumerate() {
            for &q in f {
                if q as usize >= n {
                    return Err(format!("SFA state {s} maps to base state {q} ≥ {n}"));
                }
            }
        }
        for (s, f) in functions.iter().enumerate() {
            for class in 0..stride {
                let target = table[s * stride + class];
                if target as usize >= num_states {
                    return Err(format!(
                        "SFA transition ({s}, class {class}) targets state {target} ≥ {num_states}"
                    ));
                }
                let expected = &functions[target as usize];
                let consistent = f
                    .iter()
                    .zip(expected.iter())
                    .all(|(&q, &e)| rid.next_class(q, class as u8) == e);
                if !consistent {
                    return Err(format!(
                        "SFA transition ({s}, class {class}) disagrees with the base automaton"
                    ));
                }
            }
        }
        let mut ids = HashMap::with_capacity(num_states);
        for (s, f) in functions.iter().enumerate() {
            // Duplicate function vectors keep the first id — behaviorally
            // identical by the consistency check above.
            ids.entry(f.clone()).or_insert(s as StateId);
        }
        Ok(Sfa {
            table,
            stride,
            byte_classes: rid.classes().clone(),
            functions,
            ids,
            dfa_start: rid.start(),
            dfa_finals: rid.finals().clone(),
        })
    }

    /// The SFA state denoting `g ∘ f` (apply `f` first). `key` is a
    /// reusable buffer for the composed function.
    pub fn compose(&self, f: StateId, g: StateId, key: &mut Vec<StateId>) -> StateId {
        let ff = self.function(f);
        let gf = self.function(g);
        key.clear();
        // functions[·][DEAD] is DEAD for every SFA state, so death
        // propagates without a branch.
        key.extend(ff.iter().map(|&q| gf[q as usize]));
        *self
            .ids
            .get(key)
            .expect("SFA function space is closed under composition")
    }

    /// Number of SFA states (reachable transition functions).
    pub fn num_states(&self) -> usize {
        self.functions.len()
    }

    /// The identity state every chunk run starts from.
    pub fn identity(&self) -> StateId {
        0
    }

    /// The base-state function denoted by SFA state `s`.
    pub fn function(&self, s: StateId) -> &[StateId] {
        &self.functions[s as usize]
    }

    /// The dense transition table (serialization).
    pub fn table(&self) -> &[StateId] {
        &self.table
    }

    /// Byte classes per transition row (serialization).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// All function vectors flattened row-major (serialization).
    pub fn flattened_functions(&self) -> Vec<StateId> {
        self.functions.iter().flatten().copied().collect()
    }

    /// Heap bytes the SFA keeps resident: the dense table plus the
    /// function vectors and their inverse-map key clones — the number a
    /// serving registry books against its residency cap.
    pub fn resident_bytes(&self) -> usize {
        let entry = std::mem::size_of::<StateId>();
        let function_bytes: usize = self.functions.iter().map(|f| f.len() * entry).sum();
        self.table.len() * entry + 2 * function_bytes
    }

    /// Runs from SFA state `s` over `chunk` (total function — SFA runs
    /// never die; death is absorbed into the function values).
    pub fn run_from(&self, s: StateId, chunk: &[u8], counter: &mut impl Counter) -> StateId {
        // SFA shares the base automaton's byte classes.
        let mut cur = s;
        for &byte in chunk {
            cur = self.table[cur as usize * self.stride + self.class_of(byte) as usize];
            counter.incr();
        }
        cur
    }

    fn class_of(&self, byte: u8) -> u8 {
        self.byte_classes.get(byte)
    }
}

/// The shared construction engine: breadth-first waves over the function
/// space, expanded serially or on `pool`, merged deterministically in
/// `(frontier position, byte class)` order.
#[allow(clippy::too_many_arguments)]
fn build_inner<F>(
    n: usize,
    stride: usize,
    classes: &ByteClasses,
    start: StateId,
    finals: &BitSet,
    next: F,
    budget: &ConstructionBudget,
    pool: Option<&ThreadPool>,
) -> Result<Sfa>
where
    F: Fn(StateId, u8) -> StateId + Sync,
{
    let entry = std::mem::size_of::<StateId>();
    // Retained bytes per state: the function vector plus its inverse-map
    // key clone. Charged BEFORE the state allocates, so a pathological
    // pattern fails typed without the blow-up.
    let per_state_bytes = 2 * n * entry;
    let mut ids_bytes = per_state_bytes;
    budget.charge_bytes(ids_bytes, WHAT_IDS_BYTES)?;

    let identity: Vec<StateId> = (0..n as StateId).collect();
    let mut seen: Vec<HashMap<u64, Vec<StateId>>> =
        (0..SEEN_SHARDS).map(|_| HashMap::new()).collect();
    let fp0 = fingerprint(&identity);
    seen[fp0 as usize % SEEN_SHARDS]
        .entry(fp0)
        .or_default()
        .push(0);
    let mut ids: HashMap<Vec<StateId>, StateId> = HashMap::new();
    ids.insert(identity.clone(), 0);
    let mut functions: Vec<Vec<StateId>> = vec![identity];
    let mut table: Vec<StateId> = Vec::new();
    budget.grow_table(&mut table, stride, u32::MAX, WHAT_BYTES)?;

    // Transient candidate buffers are bounded per slice; the slice size
    // does NOT depend on the pool, so numbering never does either.
    let slice_states = (WAVE_CANDIDATE_BYTES / (stride * n * entry).max(1)).max(1);
    let mut frontier: Vec<StateId> = vec![0];
    let mut locals: Vec<Vec<(u32, u8, Cand)>> = (0..pool.map_or(1, |p| p.num_workers() + 1))
        .map(|_| Vec::new())
        .collect();

    while !frontier.is_empty() {
        let mut next_frontier: Vec<StateId> = Vec::new();
        for wave in frontier.chunks(slice_states) {
            // Expand: compute every (frontier state, class) successor and
            // resolve it against the frozen pre-wave seen-table. Workers
            // only read shared state and write their private local.
            {
                let seen = &seen;
                let functions = &functions;
                let next = &next;
                let expand = |local: &mut Vec<(u32, u8, Cand)>, t: usize| {
                    let f = &functions[wave[t] as usize];
                    for class in 0..stride {
                        let g: Vec<StateId> = f.iter().map(|&q| next(q, class as u8)).collect();
                        let fp = fingerprint(&g);
                        let cand = match resolve(seen, functions, fp, &g) {
                            Some(id) => Cand::Known(id),
                            None => Cand::New(fp, g),
                        };
                        local.push((t as u32, class as u8, cand));
                    }
                };
                match pool {
                    Some(pool) => pool.invoke_all_scoped(wave.len(), &mut locals, expand),
                    None => {
                        for t in 0..wave.len() {
                            expand(&mut locals[0], t);
                        }
                    }
                }
            }
            // Merge serially in (frontier position, class) order — the
            // single point of id assignment, so numbering is independent
            // of worker count and interleaving.
            let mut cands: Vec<(u32, u8, Cand)> =
                locals.iter_mut().flat_map(|l| l.drain(..)).collect();
            cands.sort_unstable_by_key(|&(t, c, _)| (t, c));
            for (t, class, cand) in cands {
                let s = wave[t as usize];
                let id = match cand {
                    Cand::Known(id) => id,
                    Cand::New(fp, g) => {
                        // A sibling candidate in this same wave may have
                        // claimed the function already.
                        match resolve(&seen, &functions, fp, &g) {
                            Some(id) => id,
                            None => {
                                budget.charge_state(functions.len(), WHAT_STATES)?;
                                ids_bytes += per_state_bytes;
                                budget.charge_bytes(ids_bytes, WHAT_IDS_BYTES)?;
                                budget.grow_table(&mut table, stride, u32::MAX, WHAT_BYTES)?;
                                let id = functions.len() as StateId;
                                seen[fp as usize % SEEN_SHARDS]
                                    .entry(fp)
                                    .or_default()
                                    .push(id);
                                ids.insert(g.clone(), id);
                                functions.push(g);
                                next_frontier.push(id);
                                id
                            }
                        }
                    }
                };
                table[s as usize * stride + class as usize] = id;
            }
        }
        frontier = next_frontier;
    }
    Ok(Sfa {
        table,
        stride,
        byte_classes: classes.clone(),
        functions,
        ids,
        dfa_start: start,
        dfa_finals: finals.clone(),
    })
}

/// CSDPA chunk automaton wrapping an [`Sfa`]: zero speculation, one run per
/// chunk, at the cost of the (potentially huge) SFA table.
#[derive(Debug, Clone)]
pub struct SfaCa<'a> {
    sfa: &'a Sfa,
}

impl<'a> SfaCa<'a> {
    /// Wraps `sfa`.
    pub fn new(sfa: &'a Sfa) -> Self {
        SfaCa { sfa }
    }
}

impl ChunkAutomaton for SfaCa<'_> {
    /// The SFA state (transition function) the chunk's single run reached.
    type Mapping = StateId;
    type Scratch = ();
    /// Buffer for the composed function during the inverse lookup.
    type ComposeScratch = Vec<StateId>;

    fn scan_into(
        &self,
        chunk: &[u8],
        _scratch: &mut (),
        counter: &mut impl Counter,
        out: &mut StateId,
    ) {
        *out = self.sfa.run_from(self.sfa.identity(), chunk, counter);
    }

    fn scan_first_into(&self, chunk: &[u8], counter: &mut impl Counter, out: &mut StateId) {
        // The first chunk also runs from the identity: the start state is
        // applied at join time.
        *out = self.sfa.run_from(self.sfa.identity(), chunk, counter);
    }

    /// SFA states *are* transition functions, so composition is the
    /// inverse table lookup of the composed function — speculation-free
    /// like the scans themselves.
    fn compose_into(
        &self,
        left: &StateId,
        right: &StateId,
        scratch: &mut Vec<StateId>,
        out: &mut StateId,
    ) {
        *out = self.sfa.compose(*left, *right, scratch);
    }

    fn accepts_mapping(&self, mapping: &StateId) -> bool {
        let q = self.sfa.function(*mapping)[self.sfa.dfa_start as usize];
        q != DEAD && self.sfa.dfa_finals.contains(q)
    }

    fn mapping_is_dead(&self, mapping: &StateId) -> bool {
        self.sfa.function(*mapping).iter().all(|&q| q == DEAD)
    }

    fn accepts_serial(&self, text: &[u8], counter: &mut impl Counter) -> bool {
        let last = self.sfa.run_from(self.sfa.identity(), text, counter);
        let q = self.sfa.function(last)[self.sfa.dfa_start as usize];
        q != DEAD && self.sfa.dfa_finals.contains(q)
    }

    fn num_speculative_starts(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "sfa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csdpa::{recognize, recognize_counted, Executor};
    use ridfa_automata::dfa::powerset::determinize;
    use ridfa_automata::nfa::glushkov;
    use ridfa_automata::regex::parse;
    use ridfa_automata::{Error, NoCount};

    fn sfa_for(pattern: &str) -> (Sfa, Dfa) {
        let dfa = determinize(&glushkov::build(&parse(pattern).unwrap()).unwrap());
        let sfa = Sfa::build_limited(&dfa, 1 << 16).unwrap();
        (sfa, dfa)
    }

    #[test]
    fn sfa_agrees_with_dfa() {
        let (sfa, dfa) = sfa_for("(a|b)*abb");
        let ca = SfaCa::new(&sfa);
        for text in [&b"aababb"[..], b"abb", b"ab", b"", b"bbbb"] {
            let out = recognize(&ca, text, 3, Executor::Serial);
            assert_eq!(out.accepted, dfa.accepts(text), "{text:?}");
            let mut nc = NoCount;
            assert_eq!(ca.accepts_serial(text, &mut nc), dfa.accepts(text));
        }
    }

    #[test]
    fn sfa_runs_have_zero_speculation() {
        let (sfa, _) = sfa_for("[ab]*a[ab]{3}");
        let ca = SfaCa::new(&sfa);
        let text = b"abababababab";
        let out = recognize_counted(&ca, text, 4, Executor::Serial);
        // One run per chunk: exactly |text| transitions in total.
        assert_eq!(out.transitions, text.len() as u64);
    }

    #[test]
    fn sfa_explodes_beyond_dfa_size() {
        // SFA states are functions: typically far more than DFA states.
        let (sfa, dfa) = sfa_for("[ab]*a[ab]{3}");
        assert!(sfa.num_states() > dfa.num_states());
    }

    #[test]
    fn sfa_limit_enforced() {
        let dfa = determinize(&glushkov::build(&parse("[ab]*a[ab]{8}").unwrap()).unwrap());
        let err = Sfa::build_limited(&dfa, 64).unwrap_err();
        assert!(matches!(err, Error::LimitExceeded { .. }));
    }

    #[test]
    fn sfa_byte_budget_enforced() {
        // The byte axis now covers the retained function/inverse
        // structures too: a large base automaton under a tiny byte budget
        // trips the "SFA ids bytes" ledger before the identity function
        // is even retained; roomier budgets trip on the dense table.
        let dfa = determinize(&glushkov::build(&parse("[ab]*a[ab]{8}").unwrap()).unwrap());
        let err = Sfa::build_budgeted(&dfa, &ConstructionBudget::with_max_table_bytes(1 << 10))
            .unwrap_err();
        assert!(matches!(
            err,
            Error::LimitExceeded {
                what: "SFA ids bytes" | "SFA table bytes",
                ..
            }
        ));
    }

    #[test]
    fn sfa_ids_budget_fails_typed_before_allocating() {
        // Regression (ISSUE 9 satellite): the retained `ids` inverse map
        // was not budget-accounted — a pathological pattern could blow
        // memory through the side structures while the table stayed under
        // its cap. The charge must land before any function allocates:
        // the very first (identity) retention already exceeds this budget.
        let dfa = determinize(&glushkov::build(&parse("[ab]*a[ab]{8}").unwrap()).unwrap());
        let budget = ConstructionBudget::with_max_table_bytes(
            2 * dfa.num_states() * std::mem::size_of::<StateId>() - 1,
        );
        let err = Sfa::build_budgeted(&dfa, &budget).unwrap_err();
        assert!(matches!(
            err,
            Error::LimitExceeded {
                what: "SFA ids bytes",
                ..
            }
        ));
    }

    #[test]
    fn parallel_build_equals_serial_build() {
        let pool = ThreadPool::new(3);
        for pattern in ["(a|b)*abb", "[ab]*a[ab]{3}", "abc", "(ab|ba)*c?"] {
            let dfa = determinize(&glushkov::build(&parse(pattern).unwrap()).unwrap());
            let serial = Sfa::build_budgeted(&dfa, &ConstructionBudget::UNLIMITED).unwrap();
            let parallel =
                Sfa::build_parallel(&dfa, &ConstructionBudget::UNLIMITED, &pool).unwrap();
            // Deterministic numbering: byte-identical tables and functions.
            assert_eq!(serial.table, parallel.table, "{pattern}");
            assert_eq!(serial.functions, parallel.functions, "{pattern}");
            assert_eq!(serial.num_states(), parallel.num_states(), "{pattern}");
        }
    }

    #[test]
    fn rid_build_agrees_with_language() {
        let nfa = glushkov::build(&parse("(a|b)*abb").unwrap()).unwrap();
        let rid = RiDfa::from_nfa(&nfa).minimized();
        let sfa = Sfa::build_rid_budgeted(&rid, &ConstructionBudget::UNLIMITED).unwrap();
        let ca = SfaCa::new(&sfa);
        for text in [&b"aababb"[..], b"abb", b"ab", b"", b"bbbb", b"babb"] {
            let mut nc = NoCount;
            assert_eq!(
                ca.accepts_serial(text, &mut nc),
                nfa.accepts(text),
                "{text:?}"
            );
            let out = recognize(&ca, text, 3, Executor::Serial);
            assert_eq!(out.accepted, nfa.accepts(text), "{text:?}");
        }
    }

    #[test]
    fn rid_parts_roundtrip_and_validate() {
        let nfa = glushkov::build(&parse("[ab]*a[ab]{2}").unwrap()).unwrap();
        let rid = RiDfa::from_nfa(&nfa).minimized();
        let sfa = Sfa::build_rid_budgeted(&rid, &ConstructionBudget::UNLIMITED).unwrap();
        let back =
            Sfa::from_rid_parts(&rid, sfa.table().to_vec(), sfa.flattened_functions()).unwrap();
        assert_eq!(back.table, sfa.table);
        assert_eq!(back.functions, sfa.functions);
        // A forged table entry that disagrees with the base automaton is
        // rejected (this is what makes decoded compose() panic-free).
        let mut bad_table = sfa.table().to_vec();
        bad_table[0] = (sfa.num_states() as StateId).saturating_sub(1);
        if Sfa::from_rid_parts(&rid, bad_table.clone(), sfa.flattened_functions()).is_ok() {
            // Only acceptable if the forgery happened to be a no-op.
            assert_eq!(bad_table, sfa.table);
        }
        // A non-identity state 0 is rejected outright.
        let mut bad_fns = sfa.flattened_functions();
        bad_fns[0] = bad_fns[0].wrapping_add(1) % rid.num_states() as StateId;
        assert!(Sfa::from_rid_parts(&rid, sfa.table().to_vec(), bad_fns).is_err());
    }

    #[test]
    fn identity_function_is_identity() {
        let (sfa, dfa) = sfa_for("abc");
        let id = sfa.function(sfa.identity());
        for q in 0..dfa.num_states() as StateId {
            assert_eq!(id[q as usize], q);
        }
    }
}
