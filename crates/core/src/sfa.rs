//! Simultaneous Finite Automata (SFA) — the paper's reference \[25\],
//! built here as an ablation comparator.
//!
//! An SFA state is the *transition function* `δ_w : Q → Q ∪ {dead}` of the
//! underlying DFA for some word `w`: a chunk automaton run from the
//! identity function tracks *all* speculative DFA runs simultaneously, so
//! speculation disappears — one deterministic transition per byte,
//! regardless of `|Q|`. The price (the reason the paper rejects SFA) is
//! state explosion: the reachable function space can be astronomically
//! larger than `|Q|`, making construction "a thousand times slower than
//! for a DFA" and recognition cache-hostile. [`Sfa::build_limited`]
//! therefore takes an explicit state budget.

use std::collections::HashMap;

use ridfa_automata::counter::Counter;
use ridfa_automata::dfa::Dfa;
use ridfa_automata::{ConstructionBudget, Result, StateId, DEAD};

use crate::csdpa::ChunkAutomaton;

/// Budget axis labels for SFA construction.
const WHAT_STATES: &str = "SFA states";
const WHAT_BYTES: &str = "SFA table bytes";

/// A Simultaneous Finite Automaton derived from a DFA.
#[derive(Debug, Clone)]
pub struct Sfa {
    /// Dense SFA transition table, `table[s * stride + class]`.
    table: Vec<StateId>,
    stride: usize,
    byte_classes: ridfa_automata::alphabet::ByteClasses,
    /// `functions[s]` = the DFA-state mapping this SFA state denotes
    /// (`functions[s][q]` = where a run started in `q` currently is).
    functions: Vec<Vec<StateId>>,
    /// Inverse of `functions`: resolves a composed function back to its
    /// SFA state id (the function space is closed under composition —
    /// `δ_v ∘ δ_w = δ_wv` and every word's function is discovered by the
    /// construction).
    ids: HashMap<Vec<StateId>, StateId>,
    /// The underlying DFA's start/finals (needed at join time).
    dfa_start: StateId,
    dfa_finals: ridfa_automata::BitSet,
}

impl Sfa {
    /// Builds the SFA of `dfa`, failing with
    /// [`Error::LimitExceeded`](ridfa_automata::Error::LimitExceeded) once
    /// more than `max_states` function states have been discovered.
    pub fn build_limited(dfa: &Dfa, max_states: usize) -> Result<Sfa> {
        // Historical convention: `max_states` is a cap on the total state
        // count (error once `functions.len() >= max_states`), which maps
        // onto the shared `charge_state` by charging the post-insert count.
        Sfa::build_budgeted(
            dfa,
            &ConstructionBudget::with_max_states(max_states.saturating_sub(1)),
        )
    }

    /// Builds the SFA of `dfa` under a full [`ConstructionBudget`] (state
    /// count *and* table bytes) — the explosion-prone construction this
    /// module exists to study, now aborting with a typed error before any
    /// allocation beyond the budget happens.
    pub fn build_budgeted(dfa: &Dfa, budget: &ConstructionBudget) -> Result<Sfa> {
        let stride = dfa.stride();
        let n = dfa.num_states();
        let identity: Vec<StateId> = (0..n as StateId).collect();

        let mut ids: HashMap<Vec<StateId>, StateId> = HashMap::new();
        let mut functions: Vec<Vec<StateId>> = Vec::new();
        let mut table: Vec<StateId> = Vec::new();
        ids.insert(identity.clone(), 0);
        functions.push(identity);
        budget.grow_table(&mut table, stride, u32::MAX, WHAT_BYTES)?;

        let mut worklist: Vec<StateId> = vec![0];
        while let Some(s) = worklist.pop() {
            for class in 0..stride {
                let f = &functions[s as usize];
                let g: Vec<StateId> = f.iter().map(|&q| dfa.next_class(q, class as u8)).collect();
                let id = match ids.get(&g) {
                    Some(&id) => id,
                    None => {
                        budget.charge_state(functions.len(), WHAT_STATES)?;
                        budget.grow_table(&mut table, stride, u32::MAX, WHAT_BYTES)?;
                        let id = functions.len() as StateId;
                        ids.insert(g.clone(), id);
                        functions.push(g);
                        worklist.push(id);
                        id
                    }
                };
                table[s as usize * stride + class] = id;
            }
        }
        Ok(Sfa {
            table,
            stride,
            byte_classes: dfa.classes().clone(),
            functions,
            ids,
            dfa_start: dfa.start(),
            dfa_finals: dfa.finals().clone(),
        })
    }

    /// The SFA state denoting `g ∘ f` (apply `f` first). `key` is a
    /// reusable buffer for the composed function.
    pub fn compose(&self, f: StateId, g: StateId, key: &mut Vec<StateId>) -> StateId {
        let ff = self.function(f);
        let gf = self.function(g);
        key.clear();
        // functions[·][DEAD] is DEAD for every SFA state, so death
        // propagates without a branch.
        key.extend(ff.iter().map(|&q| gf[q as usize]));
        *self
            .ids
            .get(key)
            .expect("SFA function space is closed under composition")
    }

    /// Number of SFA states (reachable transition functions).
    pub fn num_states(&self) -> usize {
        self.functions.len()
    }

    /// The identity state every chunk run starts from.
    pub fn identity(&self) -> StateId {
        0
    }

    /// The DFA-state function denoted by SFA state `s`.
    pub fn function(&self, s: StateId) -> &[StateId] {
        &self.functions[s as usize]
    }

    /// Runs from SFA state `s` over `chunk` (total function — SFA runs
    /// never die; death is absorbed into the function values).
    pub fn run_from(&self, s: StateId, chunk: &[u8], counter: &mut impl Counter) -> StateId {
        // SFA shares the DFA's byte classes through the class method below.
        let mut cur = s;
        for &byte in chunk {
            cur = self.table[cur as usize * self.stride + self.class_of(byte) as usize];
            counter.incr();
        }
        cur
    }

    fn class_of(&self, byte: u8) -> u8 {
        self.byte_classes.get(byte)
    }
}

/// CSDPA chunk automaton wrapping an [`Sfa`]: zero speculation, one run per
/// chunk, at the cost of the (potentially huge) SFA table.
#[derive(Debug, Clone)]
pub struct SfaCa<'a> {
    sfa: &'a Sfa,
}

impl<'a> SfaCa<'a> {
    /// Wraps `sfa`.
    pub fn new(sfa: &'a Sfa) -> Self {
        SfaCa { sfa }
    }
}

impl ChunkAutomaton for SfaCa<'_> {
    /// The SFA state (transition function) the chunk's single run reached.
    type Mapping = StateId;
    type Scratch = ();
    /// Buffer for the composed function during the inverse lookup.
    type ComposeScratch = Vec<StateId>;

    fn scan_into(
        &self,
        chunk: &[u8],
        _scratch: &mut (),
        counter: &mut impl Counter,
        out: &mut StateId,
    ) {
        *out = self.sfa.run_from(self.sfa.identity(), chunk, counter);
    }

    fn scan_first_into(&self, chunk: &[u8], counter: &mut impl Counter, out: &mut StateId) {
        // The first chunk also runs from the identity: the start state is
        // applied at join time.
        *out = self.sfa.run_from(self.sfa.identity(), chunk, counter);
    }

    /// SFA states *are* transition functions, so composition is the
    /// inverse table lookup of the composed function — speculation-free
    /// like the scans themselves.
    fn compose_into(
        &self,
        left: &StateId,
        right: &StateId,
        scratch: &mut Vec<StateId>,
        out: &mut StateId,
    ) {
        *out = self.sfa.compose(*left, *right, scratch);
    }

    fn accepts_mapping(&self, mapping: &StateId) -> bool {
        let q = self.sfa.function(*mapping)[self.sfa.dfa_start as usize];
        q != DEAD && self.sfa.dfa_finals.contains(q)
    }

    fn mapping_is_dead(&self, mapping: &StateId) -> bool {
        self.sfa.function(*mapping).iter().all(|&q| q == DEAD)
    }

    fn accepts_serial(&self, text: &[u8], counter: &mut impl Counter) -> bool {
        let last = self.sfa.run_from(self.sfa.identity(), text, counter);
        let q = self.sfa.function(last)[self.sfa.dfa_start as usize];
        q != DEAD && self.sfa.dfa_finals.contains(q)
    }

    fn num_speculative_starts(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "sfa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csdpa::{recognize, recognize_counted, Executor};
    use ridfa_automata::dfa::powerset::determinize;
    use ridfa_automata::nfa::glushkov;
    use ridfa_automata::regex::parse;
    use ridfa_automata::{Error, NoCount};

    fn sfa_for(pattern: &str) -> (Sfa, Dfa) {
        let dfa = determinize(&glushkov::build(&parse(pattern).unwrap()).unwrap());
        let sfa = Sfa::build_limited(&dfa, 1 << 16).unwrap();
        (sfa, dfa)
    }

    #[test]
    fn sfa_agrees_with_dfa() {
        let (sfa, dfa) = sfa_for("(a|b)*abb");
        let ca = SfaCa::new(&sfa);
        for text in [&b"aababb"[..], b"abb", b"ab", b"", b"bbbb"] {
            let out = recognize(&ca, text, 3, Executor::Serial);
            assert_eq!(out.accepted, dfa.accepts(text), "{text:?}");
            let mut nc = NoCount;
            assert_eq!(ca.accepts_serial(text, &mut nc), dfa.accepts(text));
        }
    }

    #[test]
    fn sfa_runs_have_zero_speculation() {
        let (sfa, _) = sfa_for("[ab]*a[ab]{3}");
        let ca = SfaCa::new(&sfa);
        let text = b"abababababab";
        let out = recognize_counted(&ca, text, 4, Executor::Serial);
        // One run per chunk: exactly |text| transitions in total.
        assert_eq!(out.transitions, text.len() as u64);
    }

    #[test]
    fn sfa_explodes_beyond_dfa_size() {
        // SFA states are functions: typically far more than DFA states.
        let (sfa, dfa) = sfa_for("[ab]*a[ab]{3}");
        assert!(sfa.num_states() > dfa.num_states());
    }

    #[test]
    fn sfa_limit_enforced() {
        let dfa = determinize(&glushkov::build(&parse("[ab]*a[ab]{8}").unwrap()).unwrap());
        let err = Sfa::build_limited(&dfa, 64).unwrap_err();
        assert!(matches!(err, Error::LimitExceeded { .. }));
    }

    #[test]
    fn sfa_byte_budget_enforced() {
        let dfa = determinize(&glushkov::build(&parse("[ab]*a[ab]{8}").unwrap()).unwrap());
        let err = Sfa::build_budgeted(&dfa, &ConstructionBudget::with_max_table_bytes(1 << 10))
            .unwrap_err();
        assert!(matches!(
            err,
            Error::LimitExceeded {
                what: "SFA table bytes",
                ..
            }
        ));
    }

    #[test]
    fn identity_function_is_identity() {
        let (sfa, dfa) = sfa_for("abc");
        let id = sfa.function(sfa.identity());
        for q in 0..dfa.num_states() as StateId {
            assert_eq!(id[q as usize], q);
        }
    }
}
