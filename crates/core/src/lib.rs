//! # ridfa-core — the RI-DFA and the RID speculative data-parallel recognizer
//!
//! This crate implements the contributions of *"Minimizing speculation
//! overhead in a parallel recognizer for regular texts"* (PPoPP 2025):
//!
//! * the **reduced-interface DFA** ([`ridfa::RiDfa`], Sect. 3.1 of the
//!   paper): a multi-entry deterministic automaton built from an NFA by an
//!   incremental powerset construction, whose *initial* ("interface")
//!   states mirror the NFA's states — typically far fewer than the states
//!   of the equivalent DFA;
//! * **interface minimization** ([`ridfa::minimize_interface`], Sect. 3.4):
//!   downgrading language-equivalent interface states with *delegation*
//!   instead of state merging, further shrinking speculation without
//!   touching the deterministic transition graph;
//! * the **CSDPA framework** ([`csdpa`], Sect. 2): chunking, the parallel
//!   *reach* phase and the serial *join* phase, with three interchangeable
//!   chunk-automaton variants — classic [`DfaCa`](csdpa::DfaCa), classic
//!   [`NfaCa`](csdpa::NfaCa), and the paper's [`RidCa`](csdpa::RidCa);
//! * a small **parallel runtime** ([`parallel`]): a scoped fork-join
//!   executor (one task per chunk, as in the paper's Java implementation)
//!   and a persistent worker pool;
//! * the **SFA** ([`sfa`]) comparator \[25\], which trades state explosion
//!   for zero speculation — built as an ablation.
//!
//! ## Quick example
//!
//! ```
//! use ridfa_automata::{regex, nfa};
//! use ridfa_core::ridfa::RiDfa;
//! use ridfa_core::csdpa::{recognize, Executor, RidCa};
//!
//! let ast = regex::parse("[ab]*a[ab]{4}").unwrap();
//! let nfa = nfa::glushkov::build(&ast).unwrap();
//! let rid = RiDfa::from_nfa(&nfa).minimized();
//!
//! // The interface is at most as large as the NFA, never the
//! // (exponentially larger) DFA.
//! assert!(rid.interface().len() <= nfa.num_states());
//!
//! let ca = RidCa::new(&rid);
//! let text = b"abbaabbbaabbbbabbbaabaabb";
//! let outcome = recognize(&ca, text, 4, Executor::PerChunk);
//! assert_eq!(outcome.accepted, nfa.accepts(text));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod csdpa;
pub mod parallel;
pub mod ridfa;
pub mod serve;
pub mod sfa;

pub use ridfa_automata as automata;
