//! The per-connection request state machine: header accumulation, lane
//! routing, inline body scanning, and response/counter bookkeeping.
//!
//! [`ingest`] feeds freshly read bytes through one connection's state
//! machine. Small bodies (at or below [`ServeConfig::offload_bytes`])
//! are scanned *inline* as they arrive — the PR-5 behavior. Larger
//! bodies are routed to the **offload lane**: the bytes are staged in
//! [`Conn::offload_buf`] and scanned in bounded slices by the shard's
//! [`lanes`](super::lanes) pass between ticks, so one huge body never
//! stalls the other connections sharing the tick.
//!
//! A mid-scan registry error (contained fault, or the pattern being
//! evicted/reloaded under the scan) no longer kills the connection: the
//! verdict is decided immediately, the rest of the body is drained
//! unscanned, and frame sync survives — exactly how unknown-pattern and
//! over-budget requests were already handled.

use std::net::TcpStream;
use std::time::Instant;

use crate::csdpa::registry::{PatternRegistry, RegistryError, StreamScan};

use super::protocol::{self, Status, MAGIC};
use super::{ConnectionReport, ServeConfig, ServeTally};

/// What a request is currently doing on a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Accumulating the variable-length header into [`Conn::hdr`].
    Header,
    /// Consuming `remaining` body bytes. `pending` carries the error
    /// status of a request whose body is drained unscanned (unknown
    /// pattern, oversized body, mid-scan fault) so frame sync survives
    /// the error; `offload` marks bodies staged for the shard's offload
    /// lane instead of being scanned inline.
    Body {
        /// Body bytes not yet received.
        remaining: u64,
        /// Already-decided error verdict, if any (body drains unscanned).
        pending: Option<Status>,
        /// Whether the body is staged for the offload lane.
        offload: bool,
    },
    /// An offloaded body arrived completely, but the lane still has
    /// staged bytes to scan before the verdict can go out.
    Finishing,
}

/// One accepted connection and everything it owns.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    pub(crate) peer: String,
    pub(crate) hdr: Vec<u8>,
    pub(crate) phase: Phase,
    pub(crate) pattern: String,
    pub(crate) scan: StreamScan,
    /// Body bytes consumed for the current request (scanned or drained).
    pub(crate) consumed: u64,
    /// Offload lane: received-but-unscanned body bytes (drained from the
    /// front as the lane scans slices).
    pub(crate) offload_buf: Vec<u8>,
    /// Offload lane: pipelined bytes past the offloaded request's body,
    /// re-ingested once its verdict is out. Bounded by one read, because
    /// a `Finishing` connection is not read from.
    pub(crate) carry: Vec<u8>,
    /// Offload lane: error verdict decided mid-scan (remaining staged
    /// bytes are dropped unscanned).
    pub(crate) offload_status: Option<Status>,
    pub(crate) outbuf: Vec<u8>,
    pub(crate) out_written: usize,
    pub(crate) close_after_flush: bool,
    pub(crate) req_started: Option<Instant>,
    pub(crate) last_activity: Instant,
    pub(crate) requests: u64,
    pub(crate) accepted: u64,
    pub(crate) rejected: u64,
    pub(crate) errors: u64,
    pub(crate) bytes: u64,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, peer: String, now: Instant) -> Conn {
        Conn {
            stream,
            peer,
            hdr: Vec::with_capacity(16),
            phase: Phase::Header,
            pattern: String::new(),
            scan: StreamScan::new(),
            consumed: 0,
            offload_buf: Vec::new(),
            carry: Vec::new(),
            offload_status: None,
            outbuf: Vec::new(),
            out_written: 0,
            close_after_flush: false,
            req_started: None,
            last_activity: now,
            requests: 0,
            accepted: 0,
            rejected: 0,
            errors: 0,
            bytes: 0,
        }
    }

    pub(crate) fn pending_out(&self) -> usize {
        self.outbuf.len() - self.out_written
    }

    pub(crate) fn mid_request(&self) -> bool {
        !self.hdr.is_empty() || self.phase != Phase::Header
    }

    pub(crate) fn report(&self) -> ConnectionReport {
        ConnectionReport {
            peer: self.peer.clone(),
            requests: self.requests,
            accepted: self.accepted,
            rejected: self.rejected,
            errors: self.errors,
            bytes: self.bytes,
        }
    }

    /// Queues a response and books it into both counter sets.
    pub(crate) fn respond(&mut self, status: Status, scanned: u64, tally: &mut ServeTally) {
        self.outbuf
            .extend_from_slice(&protocol::encode_response(status, scanned));
        self.requests += 1;
        tally.requests += 1;
        match status {
            Status::Accepted => {
                self.accepted += 1;
                tally.accepted += 1;
            }
            Status::Rejected => {
                self.rejected += 1;
                tally.rejected += 1;
            }
            Status::Protocol | Status::Io => {
                self.errors += 1;
                tally.protocol_errors += 1;
            }
            Status::Deadline => {
                self.errors += 1;
                tally.deadline_errors += 1;
            }
            Status::Budget => {
                self.errors += 1;
                tally.budget_errors += 1;
            }
            Status::Fault => {
                self.errors += 1;
                tally.faults += 1;
            }
        }
        self.req_started = None;
    }
}

/// The wire status a mid-scan registry error maps to. A reloaded or
/// evicted pattern is a *naming*-level failure (the id no longer denotes
/// the automaton the scan started on) → `Protocol`, like an unknown id;
/// everything else is a contained fault.
pub(crate) fn scan_error_status(error: &RegistryError) -> Status {
    match error {
        RegistryError::UnknownPattern(_) | RegistryError::PatternReloaded { .. } => {
            Status::Protocol
        }
        _ => Status::Fault,
    }
}

/// Feeds freshly read bytes through a connection's request state
/// machine. Returns `false` when the connection must close after its
/// responses flush (frame sync lost).
pub(crate) fn ingest(
    conn: &mut Conn,
    registry: &mut PatternRegistry,
    config: &ServeConfig,
    tally: &mut ServeTally,
    mut data: &[u8],
) -> bool {
    while !data.is_empty() {
        match conn.phase {
            Phase::Header => {
                if conn.hdr.is_empty() && conn.req_started.is_none() {
                    conn.req_started = Some(Instant::now());
                }
                // Accumulate the smallest prefix that lets us decide.
                let need = match conn.hdr.len() {
                    0 | 1 => 2,
                    n => {
                        let id_len = conn.hdr[1] as usize;
                        if id_len == 0 {
                            conn.respond(Status::Protocol, 0, tally);
                            return false;
                        }
                        let total = 2 + id_len + 8;
                        if n >= total {
                            total
                        } else {
                            total.min(n + data.len())
                        }
                    }
                };
                let take = (need - conn.hdr.len()).min(data.len());
                conn.hdr.extend_from_slice(&data[..take]);
                data = &data[take..];
                if conn.hdr.len() < 2 {
                    continue;
                }
                if conn.hdr[0] != MAGIC {
                    conn.respond(Status::Protocol, 0, tally);
                    return false;
                }
                let id_len = conn.hdr[1] as usize;
                if id_len == 0 {
                    conn.respond(Status::Protocol, 0, tally);
                    return false;
                }
                if conn.hdr.len() < 2 + id_len + 8 {
                    continue;
                }
                // Full header: parse id and body length, pick the lane.
                let id_ok = std::str::from_utf8(&conn.hdr[2..2 + id_len]).ok();
                let mut body_len = [0u8; 8];
                body_len.copy_from_slice(&conn.hdr[2 + id_len..2 + id_len + 8]);
                let remaining = u64::from_le_bytes(body_len);
                let pending = match id_ok {
                    Some(id) if registry.contains(id) => {
                        conn.pattern.clear();
                        conn.pattern.push_str(id);
                        if remaining > config.max_body_bytes {
                            registry.record_error(&conn.pattern);
                            Some(Status::Budget)
                        } else {
                            conn.scan.reset();
                            None
                        }
                    }
                    _ => {
                        conn.pattern.clear();
                        Some(Status::Protocol)
                    }
                };
                let offload = pending.is_none() && remaining > config.offload_bytes;
                conn.hdr.clear();
                conn.consumed = 0;
                conn.phase = Phase::Body {
                    remaining,
                    pending,
                    offload,
                };
                if remaining == 0 {
                    finish_inline_body(conn, registry, tally);
                }
            }
            Phase::Body {
                remaining,
                pending,
                offload,
            } => {
                let take = remaining.min(data.len() as u64) as usize;
                let (chunk, rest) = data.split_at(take);
                data = rest;
                let remaining = remaining - take as u64;
                conn.consumed += take as u64;
                conn.bytes += take as u64;
                tally.bytes += take as u64;
                let mut pending = pending;
                if offload {
                    conn.offload_buf.extend_from_slice(chunk);
                } else if pending.is_none() && !chunk.is_empty() {
                    if let Err(e) = registry.scan_block(&conn.pattern, &mut conn.scan, chunk) {
                        // Typed mid-scan failure: the verdict is decided
                        // now, the rest of the body drains unscanned, and
                        // the connection survives (frame sync is intact —
                        // `remaining` is known).
                        registry.record_error(&conn.pattern);
                        pending = Some(scan_error_status(&e));
                    }
                }
                conn.phase = Phase::Body {
                    remaining,
                    pending,
                    offload,
                };
                if remaining == 0 {
                    finish_inline_body(conn, registry, tally);
                }
            }
            Phase::Finishing => {
                // The offload lane owns the current request; bytes the
                // client pipelines behind it wait in `carry` (bounded:
                // a Finishing connection is not read from again).
                conn.carry.extend_from_slice(data);
                data = &[];
            }
        }
    }
    true
}

/// Completes a fully received body: inline bodies answer now; offloaded
/// bodies hand over to the lane ([`Phase::Finishing`]).
fn finish_inline_body(conn: &mut Conn, registry: &mut PatternRegistry, tally: &mut ServeTally) {
    let Phase::Body {
        pending, offload, ..
    } = conn.phase
    else {
        return;
    };
    if offload {
        conn.phase = Phase::Finishing;
        return;
    }
    let consumed = conn.consumed;
    match pending {
        Some(status) => conn.respond(status, consumed, tally),
        None => match registry.finish_scan(&conn.pattern, &mut conn.scan) {
            Ok(true) => conn.respond(Status::Accepted, consumed, tally),
            Ok(false) => conn.respond(Status::Rejected, consumed, tally),
            Err(e) => {
                registry.record_error(&conn.pattern);
                conn.respond(scan_error_status(&e), consumed, tally);
            }
        },
    }
    conn.phase = Phase::Header;
}
