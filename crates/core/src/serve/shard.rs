//! The shard loop: one thread, one registry replica, one set of
//! connections — the PR-5 readiness tick, re-homed so N of them can run
//! side by side.
//!
//! Each shard owns a private [`PatternRegistry`] (built by loading the
//! same compiled [`PatternSpec`](crate::csdpa::PatternSpec) artifacts,
//! so replicas cost a validated load each, not a powerset construction)
//! and a private connection table fed by the acceptor over an SPSC
//! [`ring`](super::ring). Ticks interleave four passes:
//!
//! 1. **reload** — if the spec snapshot's generation moved, apply the
//!    insert/evict delta between requests (connections stay open;
//!    in-flight scans on replaced patterns fail typed);
//! 2. **adopt** — drain newly accepted connections from the ring;
//! 3. **serve** — flush, police deadlines/idle, read under the tick
//!    budget, ingest (small bodies scan inline; large ones stage for
//!    the offload lane);
//! 4. **pump** — scan one bounded slice per offloading connection
//!    ([`lanes`](super::lanes)), answer completed ones, and re-ingest
//!    any pipelined carry-over.
//!
//! Request quotas are global: every completed request is pushed to a
//! shared counter, and every shard (and the acceptor) watches it, so
//! `max_requests` means the same thing at any shard count.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::csdpa::registry::{PatternRegistry, PatternStats};
use crate::csdpa::spec::RegistrySnapshot;

use super::conn::{ingest, Conn, Phase};
use super::lanes;
use super::protocol::Status;
use super::ring::SpscRing;
use super::{ConnectionReport, PatternReport, ReloadTally, ServeConfig, ServeTally, ShardReport};

/// Everything one shard loop needs to run; consumed by [`run`].
pub(crate) struct ShardRuntime {
    /// This shard's index (reporting only).
    pub(crate) index: usize,
    /// The shard-private registry replica.
    pub(crate) registry: PatternRegistry,
    pub(crate) config: ServeConfig,
    /// Connection handoff from the acceptor (this shard is the only
    /// consumer).
    pub(crate) ring: Arc<SpscRing<(TcpStream, String)>>,
    /// Set by the acceptor (cancel, listener failure) or by a shard
    /// that met the request quota.
    pub(crate) shutdown: Arc<AtomicBool>,
    /// Requests completed across *all* shards (the quota counter).
    pub(crate) requests_done: Arc<AtomicU64>,
    /// Hot-reload publication cell, when serving from a watched spec.
    pub(crate) snapshot: Option<Arc<RegistrySnapshot>>,
    /// id → fingerprint of what this shard's registry currently holds.
    pub(crate) applied: HashMap<String, u64>,
    /// This shard's connection cap (the server cap split across shards).
    pub(crate) max_conns: usize,
}

pub(crate) fn run(runtime: ShardRuntime) -> ShardReport {
    let ShardRuntime {
        index,
        mut registry,
        config,
        ring,
        shutdown,
        requests_done,
        snapshot,
        mut applied,
        max_conns,
    } = runtime;

    let mut tally = ServeTally::default();
    let mut reload = ReloadTally::default();
    // A prebuilt registry may arrive with history (warm-up traffic, a
    // previous run): report only what *this* run adds, so the server's
    // per-pattern sums reconcile against its connection tally.
    let baseline: HashMap<String, PatternStats> = registry.all_stats().into_iter().collect();
    let mut conns: Vec<Conn> = Vec::new();
    let mut closed: Vec<ConnectionReport> = Vec::new();
    let mut buf = vec![0u8; config.read_buf_bytes.max(1)];
    let mut rotate: usize = 0;
    let mut applied_generation = snapshot.as_ref().map_or(0, |s| s.generation());
    let mut pushed_requests: u64 = 0;

    let quota_hit = |requests_done: &AtomicU64| {
        config
            .max_requests
            .is_some_and(|quota| requests_done.load(Ordering::Relaxed) >= quota)
    };

    'serve: loop {
        if shutdown.load(Ordering::Acquire) {
            // Another loop (acceptor or a sibling shard) ended the run;
            // flush what is already queued before leaving.
            grace_flush(&mut conns);
            break;
        }
        let mut progressed = false;

        // Reload pass: apply the spec delta between ticks. Open
        // connections are untouched; a scan in flight on a replaced
        // pattern fails typed at its next block.
        if let Some(cell) = &snapshot {
            if cell.generation() != applied_generation {
                let (generation, spec) = cell.load();
                let delta = spec.apply_to(&mut registry, &mut applied);
                applied_generation = generation;
                reload.generations += 1;
                reload.inserted += delta.inserted;
                reload.evicted += delta.evicted;
                reload.failed += delta.failed;
                progressed = true;
            }
        }

        // Adopt newly accepted connections, up to this shard's cap.
        while let Some((stream, peer)) = ring.pop() {
            progressed = true;
            if conns.len() >= max_conns {
                // Over the cap: drop so the client sees EOF, not a hang.
                tally.refused += 1;
                drop(stream);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                tally.io_errors += 1;
                continue;
            }
            let _ = stream.set_nodelay(true);
            conns.push(Conn::new(stream, peer, Instant::now()));
        }

        // One read/write pass over every connection, rotating the start
        // so a tick-budget shortfall is not always paid by the same
        // sockets.
        let now = Instant::now();
        let mut read_budget = config.tick_read_budget;
        let n = conns.len();
        let mut drop_list: Vec<usize> = Vec::new();
        for k in 0..n {
            let i = (rotate + k) % n;
            let conn = &mut conns[i];

            // Flush pending responses first.
            while conn.pending_out() > 0 {
                match conn.stream.write(&conn.outbuf[conn.out_written..]) {
                    Ok(0) => {
                        tally.io_errors += 1;
                        drop_list.push(i);
                        break;
                    }
                    Ok(written) => {
                        conn.out_written += written;
                        conn.last_activity = now;
                        progressed = true;
                        if conn.pending_out() == 0 {
                            conn.outbuf.clear();
                            conn.out_written = 0;
                            if conn.close_after_flush {
                                drop_list.push(i);
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => break,
                    Err(_) => {
                        tally.io_errors += 1;
                        drop_list.push(i);
                        break;
                    }
                }
            }
            if drop_list.last() == Some(&i) {
                continue;
            }

            // Deadline and idle policing.
            if let (Some(deadline), Some(started)) = (config.request_deadline, conn.req_started) {
                if now.duration_since(started) > deadline {
                    let consumed = conn.consumed;
                    conn.respond(Status::Deadline, consumed, &mut tally);
                    if !conn.pattern.is_empty() {
                        registry.record_error(&conn.pattern);
                    }
                    // Abandon any staged offload work with the request.
                    conn.offload_buf.clear();
                    conn.carry.clear();
                    conn.offload_status = None;
                    conn.close_after_flush = true;
                    progressed = true;
                    continue;
                }
            }
            if let Some(idle) = config.idle_timeout {
                if now.duration_since(conn.last_activity) > idle {
                    if conn.mid_request() {
                        tally.io_errors += 1;
                    }
                    tally.idle_closed += 1;
                    drop_list.push(i);
                    continue;
                }
            }

            // Read under the tick budget and the write high-water mark
            // (backpressure). A connection whose offload lane is backed
            // up, or whose verdict is pending in the lane, is not read
            // from either — TCP flow control holds the sender.
            if conn.close_after_flush
                || conn.pending_out() > config.max_pending_response_bytes
                || read_budget == 0
                || conn.phase == Phase::Finishing
                || lanes::offload_backlogged(conn, &config)
            {
                continue;
            }
            let want = buf.len().min(read_budget);
            match conn.stream.read(&mut buf[..want]) {
                Ok(0) => {
                    if conn.mid_request() {
                        tally.io_errors += 1;
                    }
                    drop_list.push(i);
                }
                Ok(got) => {
                    read_budget -= got;
                    conn.last_activity = now;
                    progressed = true;
                    if !ingest(conn, &mut registry, &config, &mut tally, &buf[..got]) {
                        conn.close_after_flush = true;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    tally.io_errors += 1;
                    drop_list.push(i);
                }
            }

            push_requests(&mut pushed_requests, &tally, &requests_done);
            if quota_hit(&requests_done) {
                // Stop reading; the flush loop below answers what is
                // already queued.
                break;
            }
        }
        if n > 0 {
            rotate = (rotate + 1) % n;
        }

        // Offload pump: at most one bounded pooled scan per staging
        // connection per tick, so a huge body never owns the tick.
        for (i, conn) in conns.iter_mut().enumerate() {
            if conn.close_after_flush || drop_list.contains(&i) {
                continue;
            }
            if lanes::pump_offload(conn, &mut registry, &config, &mut tally) {
                conn.last_activity = now;
                progressed = true;
            }
            // Re-ingest bytes the client pipelined behind an offloaded
            // request once its verdict is out.
            if conn.phase != Phase::Finishing && !conn.carry.is_empty() {
                let carry = std::mem::take(&mut conn.carry);
                if !ingest(conn, &mut registry, &config, &mut tally, &carry) {
                    conn.close_after_flush = true;
                }
            }
        }
        push_requests(&mut pushed_requests, &tally, &requests_done);

        // Reap (highest index first so the indices stay valid).
        drop_list.sort_unstable();
        drop_list.dedup();
        for &i in drop_list.iter().rev() {
            let conn = conns.swap_remove(i);
            closed.push(conn.report());
            progressed = true;
        }

        if !progressed {
            std::thread::sleep(Duration::from_micros(500));
        }

        // Graceful quota shutdown: flush every queued response (bounded
        // by a short grace period), then stop every other loop too.
        if quota_hit(&requests_done) {
            grace_flush(&mut conns);
            shutdown.store(true, Ordering::Release);
            break 'serve;
        }
    }

    for conn in conns {
        closed.push(conn.report());
    }
    // `all_stats` covers retired patterns too, so requests served by a
    // pattern that was later evicted or hot-reloaded still show up (the
    // registry carries counters across reload generations).
    let patterns = registry
        .all_stats()
        .into_iter()
        .map(|(id, stats)| {
            let stats = match baseline.get(&id) {
                Some(b) => stats.since(b),
                None => stats,
            };
            let plan = registry.plan(&id);
            PatternReport { id, stats, plan }
        })
        .filter(|p| p.stats != PatternStats::default() || registry.contains(&p.id))
        .collect();
    ShardReport {
        shard: index,
        tally,
        patterns,
        connections: closed,
        reload,
    }
}

/// Best-effort flush of every connection's queued responses, bounded by
/// a short grace period (instant when nothing is pending).
fn grace_flush(conns: &mut [Conn]) {
    let grace = Instant::now() + Duration::from_secs(2);
    while conns.iter().any(|c| c.pending_out() > 0) && Instant::now() < grace {
        for conn in conns.iter_mut() {
            while conn.pending_out() > 0 {
                match conn.stream.write(&conn.outbuf[conn.out_written..]) {
                    Ok(0) => break,
                    Ok(written) => conn.out_written += written,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// Publishes this shard's newly completed requests to the global quota
/// counter.
fn push_requests(pushed: &mut u64, tally: &ServeTally, requests_done: &AtomicU64) {
    if tally.requests > *pushed {
        requests_done.fetch_add(tally.requests - *pushed, Ordering::Relaxed);
        *pushed = tally.requests;
    }
}
