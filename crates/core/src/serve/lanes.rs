//! The body-size lanes: inline scanning for small requests, pooled
//! offload scanning for large ones.
//!
//! Routing happens at header time ([`conn::ingest`](super::conn::ingest)):
//! a body at or below [`ServeConfig::offload_bytes`] is scanned inline as
//! it arrives; a larger one is *staged* — received into
//! [`Conn::offload_buf`] — and scanned here, one bounded slice
//! ([`ServeConfig::offload_tick_bytes`]) per connection per tick,
//! through [`PatternRegistry::scan_block_pooled`] (a parallel reach
//! phase over the shard's worker pool). The tick's latency therefore
//! stays bounded no matter how large a body is: the cheap path never
//! waits behind the expensive one (PaREM's feasible-start discipline
//! applied to serving).
//!
//! Backpressure: the shard stops reading a connection whose staged
//! backlog exceeds a few slices (see
//! [`offload_backlogged`]), which propagates to the sender as TCP flow
//! control — staging is O(slices), not O(body).

use crate::csdpa::registry::PatternRegistry;

use super::conn::{scan_error_status, Conn, Phase};
use super::protocol::Status;
use super::{ServeConfig, ServeTally};

/// Staged-byte level above which the shard stops reading a connection
/// (the client keeps its bytes in the socket buffers instead).
pub(crate) fn offload_backlogged(conn: &Conn, config: &ServeConfig) -> bool {
    conn.offload_buf.len() >= config.offload_tick_bytes.max(1).saturating_mul(4)
}

/// Scans at most one slice of a connection's staged offload bytes, and
/// answers the request once the body is complete and fully drained.
/// Returns `true` when it made progress (the shard's idle detection).
pub(crate) fn pump_offload(
    conn: &mut Conn,
    registry: &mut PatternRegistry,
    config: &ServeConfig,
    tally: &mut ServeTally,
) -> bool {
    let finishing = conn.phase == Phase::Finishing;
    let staged = conn.offload_buf.len();
    if staged == 0 && !finishing {
        return false;
    }
    let slice = config.offload_tick_bytes.max(1);
    // Mid-receive, wait until a full slice is staged so pooled scans
    // stay big; once the body is complete, take whatever is left.
    if !finishing && staged < slice {
        return false;
    }
    if staged > 0 {
        let take = staged.min(slice);
        if conn.offload_status.is_none() {
            if let Err(e) =
                registry.scan_block_pooled(&conn.pattern, &mut conn.scan, &conn.offload_buf[..take])
            {
                // Typed mid-scan failure: verdict decided, the rest of
                // the staged bytes drop unscanned, frame sync survives.
                registry.record_error(&conn.pattern);
                conn.offload_status = Some(scan_error_status(&e));
            }
        }
        conn.offload_buf.drain(..take);
    }
    if finishing && conn.offload_buf.is_empty() {
        let consumed = conn.consumed;
        match conn.offload_status.take() {
            Some(status) => conn.respond(status, consumed, tally),
            None => match registry.finish_scan(&conn.pattern, &mut conn.scan) {
                Ok(true) => conn.respond(Status::Accepted, consumed, tally),
                Ok(false) => conn.respond(Status::Rejected, consumed, tally),
                Err(e) => {
                    registry.record_error(&conn.pattern);
                    conn.respond(scan_error_status(&e), consumed, tally);
                }
            },
        }
        conn.phase = Phase::Header;
    }
    true
}
