//! The socket front-end: many connections, one registry, no blocking.
//!
//! [`Server`] multiplexes any number of TCP connections onto a
//! [`PatternRegistry`] with a *single-threaded, non-blocking* readiness
//! loop over `std::net` (`set_nonblocking` + a small poll tick — no
//! external event-loop dependency). Parallelism lives where the paper
//! puts it: inside the recognizer (the registry's shared worker pool),
//! not in the connection plumbing.
//!
//! Each connection feeds whatever bytes have arrived into an
//! incremental λ-composition scan ([`StreamScan`]) and parks — a
//! stalling, trickling or resetting client costs one parked scan state,
//! never a blocked thread. Verdicts leave as one-byte statuses mirroring
//! the CLI exit-code taxonomy ([`protocol::Status`]), so the PR-4 fault
//! taxonomy (deadline, budget, contained fault) maps 1:1 onto
//! connection outcomes.
//!
//! # Backpressure
//!
//! Two bounds keep a flood of fast writers or slow readers from
//! starving the loop or the heap:
//!
//! * **read budget** — each tick reads at most
//!   [`ServeConfig::tick_read_budget`] bytes *across all connections*;
//!   sockets left unread stay queued in their kernel buffers (TCP flow
//!   control propagates the pressure to the sender);
//! * **write high-water mark** — a connection with more than
//!   [`ServeConfig::max_pending_response_bytes`] of unflushed responses
//!   is not read from until the client drains its responses, so
//!   pipelined requests from a never-reading client cannot grow the
//!   response buffer without bound.
//!
//! # Lifecycle
//!
//! [`Server::run`] loops until an optional request quota
//! ([`ServeConfig::max_requests`]) is met or an optional
//! [`CancelToken`] trips, then flushes and reports: global, per-pattern
//! and per-connection counters in a [`ServerReport`].

pub mod protocol;

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::csdpa::budget::CancelToken;
use crate::csdpa::registry::{PatternRegistry, PatternStats, StreamScan};

use protocol::{Status, MAGIC};

/// Sizing, bounding and termination knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Stop after this many completed requests (any status). `None`
    /// runs until cancelled.
    pub max_requests: Option<u64>,
    /// Per-request wall-clock deadline, measured from the first header
    /// byte; expiry answers [`Status::Deadline`] and closes the
    /// connection.
    pub request_deadline: Option<Duration>,
    /// Close connections silent for this long (stalled mid-request or
    /// idle between requests alike).
    pub idle_timeout: Option<Duration>,
    /// Accepted-connection cap; connections beyond it are accepted and
    /// immediately dropped so the client sees EOF, not a hang.
    pub max_connections: usize,
    /// Per-connection read size per tick.
    pub read_buf_bytes: usize,
    /// Total bytes read per tick across all connections (backpressure;
    /// see the [module docs](self)).
    pub tick_read_budget: usize,
    /// Largest declared request body; larger ones are drained and
    /// answered [`Status::Budget`].
    pub max_body_bytes: u64,
    /// Unflushed-response high-water mark above which a connection is
    /// not read from.
    pub max_pending_response_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_requests: None,
            request_deadline: None,
            idle_timeout: Some(Duration::from_secs(30)),
            max_connections: 256,
            read_buf_bytes: 16 * 1024,
            tick_read_budget: 1 << 20,
            max_body_bytes: u64::MAX,
            max_pending_response_bytes: 4096,
        }
    }
}

/// Global serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeTally {
    /// Completed requests, any status.
    pub requests: u64,
    /// Requests answered [`Status::Accepted`].
    pub accepted: u64,
    /// Requests answered [`Status::Rejected`].
    pub rejected: u64,
    /// Requests answered [`Status::Protocol`] (bad frame, unknown id).
    pub protocol_errors: u64,
    /// Requests answered [`Status::Deadline`].
    pub deadline_errors: u64,
    /// Requests answered [`Status::Budget`] (body over the byte cap).
    pub budget_errors: u64,
    /// Requests answered [`Status::Fault`] (contained recognizer fault).
    pub faults: u64,
    /// Connections dropped on a read/write error or mid-request EOF.
    pub io_errors: u64,
    /// Connections closed by the idle timeout.
    pub idle_closed: u64,
    /// Connections accepted over the cap and immediately dropped.
    pub refused: u64,
    /// Connections accepted (including later-refused ones).
    pub connections: u64,
    /// Request-body bytes consumed (scanned or drained).
    pub bytes: u64,
}

/// Counters of one (closed or still-open) connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionReport {
    /// Peer address, or `"?"` when the socket could not tell.
    pub peer: String,
    /// Completed requests on this connection.
    pub requests: u64,
    /// Requests answered accepted.
    pub accepted: u64,
    /// Requests answered rejected.
    pub rejected: u64,
    /// Requests answered with any error status.
    pub errors: u64,
    /// Body bytes consumed on this connection.
    pub bytes: u64,
}

/// Per-pattern counters, lifted out of the registry at shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternReport {
    /// The pattern id.
    pub id: String,
    /// The registry's counters for it.
    pub stats: PatternStats,
}

/// Everything a finished [`Server::run`] observed.
#[derive(Debug, Clone, Default)]
pub struct ServerReport {
    /// Global counters.
    pub tally: ServeTally,
    /// Per-pattern counters, in registry insertion order.
    pub patterns: Vec<PatternReport>,
    /// Per-connection counters, in close order (still-open connections
    /// are appended at shutdown).
    pub connections: Vec<ConnectionReport>,
}

/// What a request is currently doing on a connection.
enum Phase {
    /// Accumulating the variable-length header into `Conn::hdr`.
    Header,
    /// Consuming `remaining` body bytes. `pending` carries the error
    /// status of a request whose body is drained unscanned (unknown
    /// pattern, oversized body) so frame sync survives the error.
    Body {
        remaining: u64,
        pending: Option<Status>,
    },
}

struct Conn {
    stream: TcpStream,
    peer: String,
    hdr: Vec<u8>,
    phase: Phase,
    pattern: String,
    scan: StreamScan,
    /// Body bytes consumed for the current request (scanned or drained).
    consumed: u64,
    outbuf: Vec<u8>,
    out_written: usize,
    close_after_flush: bool,
    req_started: Option<Instant>,
    last_activity: Instant,
    requests: u64,
    accepted: u64,
    rejected: u64,
    errors: u64,
    bytes: u64,
}

impl Conn {
    fn new(stream: TcpStream, peer: String, now: Instant) -> Conn {
        Conn {
            stream,
            peer,
            hdr: Vec::with_capacity(16),
            phase: Phase::Header,
            pattern: String::new(),
            scan: StreamScan::new(),
            consumed: 0,
            outbuf: Vec::new(),
            out_written: 0,
            close_after_flush: false,
            req_started: None,
            last_activity: now,
            requests: 0,
            accepted: 0,
            rejected: 0,
            errors: 0,
            bytes: 0,
        }
    }

    fn pending_out(&self) -> usize {
        self.outbuf.len() - self.out_written
    }

    fn mid_request(&self) -> bool {
        !self.hdr.is_empty() || matches!(self.phase, Phase::Body { .. })
    }

    fn report(&self) -> ConnectionReport {
        ConnectionReport {
            peer: self.peer.clone(),
            requests: self.requests,
            accepted: self.accepted,
            rejected: self.rejected,
            errors: self.errors,
            bytes: self.bytes,
        }
    }

    /// Queues a response and books it into both counter sets.
    fn respond(&mut self, status: Status, scanned: u64, tally: &mut ServeTally) {
        self.outbuf
            .extend_from_slice(&protocol::encode_response(status, scanned));
        self.requests += 1;
        tally.requests += 1;
        match status {
            Status::Accepted => {
                self.accepted += 1;
                tally.accepted += 1;
            }
            Status::Rejected => {
                self.rejected += 1;
                tally.rejected += 1;
            }
            Status::Protocol | Status::Io => {
                self.errors += 1;
                tally.protocol_errors += 1;
            }
            Status::Deadline => {
                self.errors += 1;
                tally.deadline_errors += 1;
            }
            Status::Budget => {
                self.errors += 1;
                tally.budget_errors += 1;
            }
            Status::Fault => {
                self.errors += 1;
                tally.faults += 1;
            }
        }
        self.req_started = None;
    }
}

/// Feeds freshly read bytes through a connection's request state
/// machine. Returns `false` when the connection must close after its
/// responses flush (frame sync lost).
fn ingest(
    conn: &mut Conn,
    registry: &mut PatternRegistry,
    config: &ServeConfig,
    tally: &mut ServeTally,
    mut data: &[u8],
) -> bool {
    while !data.is_empty() {
        match conn.phase {
            Phase::Header => {
                if conn.hdr.is_empty() && conn.req_started.is_none() {
                    conn.req_started = Some(Instant::now());
                }
                // Accumulate the smallest prefix that lets us decide.
                let need = match conn.hdr.len() {
                    0 | 1 => 2,
                    n => {
                        let id_len = conn.hdr[1] as usize;
                        if id_len == 0 {
                            conn.respond(Status::Protocol, 0, tally);
                            return false;
                        }
                        let total = 2 + id_len + 8;
                        if n >= total {
                            total
                        } else {
                            total.min(n + data.len())
                        }
                    }
                };
                let take = (need - conn.hdr.len()).min(data.len());
                conn.hdr.extend_from_slice(&data[..take]);
                data = &data[take..];
                if conn.hdr.len() < 2 {
                    continue;
                }
                if conn.hdr[0] != MAGIC {
                    conn.respond(Status::Protocol, 0, tally);
                    return false;
                }
                let id_len = conn.hdr[1] as usize;
                if id_len == 0 {
                    conn.respond(Status::Protocol, 0, tally);
                    return false;
                }
                if conn.hdr.len() < 2 + id_len + 8 {
                    continue;
                }
                // Full header: parse id and body length, pick the lane.
                let id_ok = std::str::from_utf8(&conn.hdr[2..2 + id_len]).ok();
                let mut body_len = [0u8; 8];
                body_len.copy_from_slice(&conn.hdr[2 + id_len..2 + id_len + 8]);
                let remaining = u64::from_le_bytes(body_len);
                let pending = match id_ok {
                    Some(id) if registry.contains(id) => {
                        conn.pattern.clear();
                        conn.pattern.push_str(id);
                        if remaining > config.max_body_bytes {
                            registry.record_error(&conn.pattern);
                            Some(Status::Budget)
                        } else {
                            conn.scan.reset();
                            None
                        }
                    }
                    _ => {
                        conn.pattern.clear();
                        Some(Status::Protocol)
                    }
                };
                conn.hdr.clear();
                conn.consumed = 0;
                conn.phase = Phase::Body { remaining, pending };
            }
            Phase::Body {
                ref mut remaining,
                pending,
            } => {
                let take = (*remaining).min(data.len() as u64) as usize;
                let (chunk, rest) = data.split_at(take);
                data = rest;
                *remaining -= take as u64;
                conn.consumed += take as u64;
                conn.bytes += take as u64;
                tally.bytes += take as u64;
                let mut fault = None;
                if pending.is_none() && !chunk.is_empty() {
                    if let Err(e) = registry.scan_block(&conn.pattern, &mut conn.scan, chunk) {
                        // The registry stays usable; the request does not.
                        fault = Some(e);
                    }
                }
                if let Some(_e) = fault {
                    conn.respond(Status::Fault, conn.consumed, tally);
                    registry.record_error(&conn.pattern);
                    return false;
                }
                if *remaining == 0 {
                    let consumed = conn.consumed;
                    match pending {
                        Some(status) => conn.respond(status, consumed, tally),
                        None => match registry.finish_scan(&conn.pattern, &mut conn.scan) {
                            Ok(true) => conn.respond(Status::Accepted, consumed, tally),
                            Ok(false) => conn.respond(Status::Rejected, consumed, tally),
                            Err(_) => {
                                conn.respond(Status::Fault, consumed, tally);
                                registry.record_error(&conn.pattern);
                                return false;
                            }
                        },
                    }
                    conn.phase = Phase::Header;
                }
            }
        }
    }
    // A request whose body is complete but arrived with `data` ending
    // exactly at the frame boundary has already responded above.
    if let Phase::Body {
        remaining: 0,
        pending,
    } = conn.phase
    {
        let consumed = conn.consumed;
        match pending {
            Some(status) => conn.respond(status, consumed, tally),
            None => match registry.finish_scan(&conn.pattern, &mut conn.scan) {
                Ok(true) => conn.respond(Status::Accepted, consumed, tally),
                Ok(false) => conn.respond(Status::Rejected, consumed, tally),
                Err(_) => {
                    conn.respond(Status::Fault, consumed, tally);
                    registry.record_error(&conn.pattern);
                    return false;
                }
            },
        }
        conn.phase = Phase::Header;
    }
    true
}

/// The non-blocking multi-pattern recognition server. See the
/// [module docs](self).
pub struct Server {
    listener: TcpListener,
    registry: PatternRegistry,
    config: ServeConfig,
    cancel: Option<CancelToken>,
}

impl Server {
    /// Binds `addr` (port 0 picks a free port — read it back with
    /// [`local_addr`](Server::local_addr)) and prepares to serve
    /// `registry`'s patterns.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        registry: PatternRegistry,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            registry,
            config,
            cancel: None,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Installs a cancellation token: tripping it ends
    /// [`run`](Server::run) at the next tick.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// The registry being served (e.g. to inspect pattern stats).
    pub fn registry(&self) -> &PatternRegistry {
        &self.registry
    }

    /// Runs the readiness loop until the request quota is met or the
    /// cancel token trips, then flushes pending responses and returns
    /// the counters. The loop itself never blocks on any one
    /// connection; only `Err` values of the *listener* abort the run.
    pub fn run(mut self) -> io::Result<ServerReport> {
        let mut tally = ServeTally::default();
        let mut conns: Vec<Conn> = Vec::new();
        let mut closed: Vec<ConnectionReport> = Vec::new();
        let mut buf = vec![0u8; self.config.read_buf_bytes.max(1)];
        let mut rotate: usize = 0;

        'serve: loop {
            if let Some(cancel) = &self.cancel {
                if cancel.is_cancelled() {
                    break;
                }
            }
            if let Some(quota) = self.config.max_requests {
                if tally.requests >= quota {
                    break;
                }
            }
            let mut progressed = false;

            // Accept whatever is queued, up to the connection cap.
            loop {
                match self.listener.accept() {
                    Ok((stream, peer)) => {
                        tally.connections += 1;
                        progressed = true;
                        if conns.len() >= self.config.max_connections {
                            tally.refused += 1;
                            drop(stream);
                            continue;
                        }
                        if stream.set_nonblocking(true).is_err() {
                            tally.io_errors += 1;
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        conns.push(Conn::new(stream, peer.to_string(), Instant::now()));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => break,
                    Err(e) => return Err(e),
                }
            }

            // One read/write pass over every connection, rotating the
            // start so a tick-budget shortfall is not always paid by the
            // same sockets.
            let now = Instant::now();
            let mut read_budget = self.config.tick_read_budget;
            let n = conns.len();
            let mut drop_list: Vec<usize> = Vec::new();
            for k in 0..n {
                let i = (rotate + k) % n;
                let conn = &mut conns[i];

                // Flush pending responses first.
                while conn.pending_out() > 0 {
                    match conn.stream.write(&conn.outbuf[conn.out_written..]) {
                        Ok(0) => {
                            tally.io_errors += 1;
                            drop_list.push(i);
                            break;
                        }
                        Ok(written) => {
                            conn.out_written += written;
                            conn.last_activity = now;
                            progressed = true;
                            if conn.pending_out() == 0 {
                                conn.outbuf.clear();
                                conn.out_written = 0;
                                if conn.close_after_flush {
                                    drop_list.push(i);
                                }
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => break,
                        Err(_) => {
                            tally.io_errors += 1;
                            drop_list.push(i);
                            break;
                        }
                    }
                }
                if drop_list.last() == Some(&i) {
                    continue;
                }

                // Deadline and idle policing.
                if let (Some(deadline), Some(started)) =
                    (self.config.request_deadline, conn.req_started)
                {
                    if now.duration_since(started) > deadline {
                        let consumed = conn.consumed;
                        conn.respond(Status::Deadline, consumed, &mut tally);
                        if !conn.pattern.is_empty() {
                            self.registry.record_error(&conn.pattern);
                        }
                        conn.close_after_flush = true;
                        progressed = true;
                        continue;
                    }
                }
                if let Some(idle) = self.config.idle_timeout {
                    if now.duration_since(conn.last_activity) > idle {
                        if conn.mid_request() {
                            tally.io_errors += 1;
                        }
                        tally.idle_closed += 1;
                        drop_list.push(i);
                        continue;
                    }
                }

                // Read under the tick budget and the write high-water
                // mark (backpressure).
                if conn.close_after_flush
                    || conn.pending_out() > self.config.max_pending_response_bytes
                    || read_budget == 0
                {
                    continue;
                }
                let want = buf.len().min(read_budget);
                match conn.stream.read(&mut buf[..want]) {
                    Ok(0) => {
                        if conn.mid_request() {
                            tally.io_errors += 1;
                        }
                        drop_list.push(i);
                    }
                    Ok(got) => {
                        read_budget -= got;
                        conn.last_activity = now;
                        progressed = true;
                        if !ingest(
                            conn,
                            &mut self.registry,
                            &self.config,
                            &mut tally,
                            &buf[..got],
                        ) {
                            conn.close_after_flush = true;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        tally.io_errors += 1;
                        drop_list.push(i);
                    }
                }

                if let Some(quota) = self.config.max_requests {
                    if tally.requests >= quota {
                        // Stop reading; the flush loop below answers
                        // what is already queued.
                        break;
                    }
                }
            }
            if n > 0 {
                rotate = (rotate + 1) % n;
            }

            // Reap (highest index first so the indices stay valid).
            drop_list.sort_unstable();
            drop_list.dedup();
            for &i in drop_list.iter().rev() {
                let conn = conns.swap_remove(i);
                closed.push(conn.report());
                progressed = true;
            }

            if !progressed {
                std::thread::sleep(Duration::from_micros(500));
            }

            // Graceful quota shutdown: flush every queued response
            // (bounded by a short grace period), then stop.
            if let Some(quota) = self.config.max_requests {
                if tally.requests >= quota {
                    let grace = Instant::now() + Duration::from_secs(2);
                    while conns.iter().any(|c| c.pending_out() > 0) && Instant::now() < grace {
                        for conn in conns.iter_mut() {
                            while conn.pending_out() > 0 {
                                match conn.stream.write(&conn.outbuf[conn.out_written..]) {
                                    Ok(0) => break,
                                    Ok(written) => conn.out_written += written,
                                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                    Err(_) => break,
                                }
                            }
                        }
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    break 'serve;
                }
            }
        }

        for conn in conns {
            closed.push(conn.report());
        }
        let patterns = self
            .registry
            .ids()
            .map(str::to_string)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|id| {
                let stats = self.registry.stats(&id).unwrap_or_default();
                PatternReport { id, stats }
            })
            .collect();
        Ok(ServerReport {
            tally,
            patterns,
            connections: closed,
        })
    }
}
