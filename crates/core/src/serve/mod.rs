//! The socket front-end, layered: an **acceptor** deals connections to
//! N **shard** loops, each owning a private registry replica and an
//! inline/offload **lane** split per connection.
//!
//! [`Server`] serves a pattern set over TCP with *non-blocking*
//! readiness loops over `std::net` (`set_nonblocking` + a small poll
//! tick — no external event-loop dependency). The PR-5 single loop
//! still exists — it is what one shard runs — but the plumbing around
//! it is now three layers:
//!
//! * [`acceptor`] — the only thread touching the listener; accepts and
//!   deals sockets round-robin to the shards over wait-free SPSC
//!   [`ring`]s;
//! * [`shard`] — N loop threads ([`ServeConfig::shards`]), each with a
//!   private [`PatternRegistry`] replica built by *loading* the same
//!   compiled [`PatternSpec`] artifacts (never by re-running powerset
//!   construction), so shards share no scan state and scale without a
//!   registry lock;
//! * [`lanes`]/[`conn`] — per connection, bodies at or below
//!   [`ServeConfig::offload_bytes`] scan inline as they arrive, while
//!   larger bodies are staged and scanned one bounded slice per tick
//!   through the pooled reach phase, so one huge body never stalls the
//!   tick for the small requests sharing the shard.
//!
//! # Hot reload
//!
//! A server bound from a pattern *file*
//! ([`bind_spec_file`](Server::bind_spec_file)) with
//! [`ServeConfig::reload_interval`] set runs a watcher thread that
//! re-parses the file and publishes changed specs into a
//! generation-stamped [`RegistrySnapshot`]. Each shard notices the
//! generation change between ticks and applies the insert/evict delta
//! without dropping a connection; an in-flight scan on a replaced
//! pattern fails typed (wire status `Protocol`), never with a wrong
//! verdict.
//!
//! # Backpressure
//!
//! Per shard, two bounds keep a flood of fast writers or slow readers
//! from starving the loop or the heap:
//!
//! * **read budget** — each tick reads at most
//!   [`ServeConfig::tick_read_budget`] bytes *across all connections*;
//!   sockets left unread stay queued in their kernel buffers (TCP flow
//!   control propagates the pressure to the sender);
//! * **write high-water mark** — a connection with more than
//!   [`ServeConfig::max_pending_response_bytes`] of unflushed responses
//!   is not read from until the client drains its responses.
//!
//! The offload lane adds a third: a connection whose staged backlog
//! exceeds a few scan slices is not read from either, so staging is
//! O(slices), not O(body).
//!
//! # Lifecycle
//!
//! [`Server::run`] spawns the shards (and the watcher, if any), runs
//! the acceptor on the calling thread until an optional request quota
//! ([`ServeConfig::max_requests`]) is met or an optional [`CancelToken`]
//! trips, then joins everything and *reconciles*: per-shard reports are
//! summed into the server-level tally and cross-checked
//! ([`ServerReport::verify`]) so a lost or double-counted request is an
//! invariant failure, not a silent skew.

pub mod protocol;

mod acceptor;
mod conn;
mod lanes;
mod ring;
mod shard;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::csdpa::budget::CancelToken;
use crate::csdpa::plan::EnginePlan;
use crate::csdpa::registry::{PatternRegistry, PatternStats, RegistryConfig};
use crate::csdpa::spec::{PatternSpec, RegistrySnapshot};

use ring::SpscRing;

/// Sizing, bounding and termination knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Stop after this many completed requests (any status, summed
    /// across shards). `None` runs until cancelled.
    pub max_requests: Option<u64>,
    /// Per-request wall-clock deadline, measured from the first header
    /// byte; expiry answers [`Status`](protocol::Status)`::Deadline` and
    /// closes the connection.
    pub request_deadline: Option<Duration>,
    /// Close connections silent for this long (stalled mid-request or
    /// idle between requests alike).
    pub idle_timeout: Option<Duration>,
    /// Accepted-connection cap, split evenly across shards; connections
    /// beyond it are accepted and immediately dropped so the client sees
    /// EOF, not a hang.
    pub max_connections: usize,
    /// Per-connection read size per tick.
    pub read_buf_bytes: usize,
    /// Total bytes read per tick across one shard's connections
    /// (backpressure; see the [module docs](self)).
    pub tick_read_budget: usize,
    /// Largest declared request body; larger ones are drained and
    /// answered [`Status`](protocol::Status)`::Budget`.
    pub max_body_bytes: u64,
    /// Unflushed-response high-water mark above which a connection is
    /// not read from.
    pub max_pending_response_bytes: usize,
    /// Shard (loop thread) count; clamped to at least 1. Counts above 1
    /// need a spec-bound server ([`Server::bind_spec`] /
    /// [`Server::bind_spec_file`]) so each shard can build its own
    /// registry replica.
    pub shards: usize,
    /// Declared body size above which a request leaves the inline lane
    /// and is scanned in bounded slices by the offload lane. The default
    /// (`u64::MAX`) keeps every body inline.
    pub offload_bytes: u64,
    /// Slice size of one offload-lane pooled scan (per connection per
    /// tick).
    pub offload_tick_bytes: usize,
    /// Poll interval of the spec watcher (hot reload). `None` — or a
    /// server not bound from a spec *file* — disables reloading.
    pub reload_interval: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_requests: None,
            request_deadline: None,
            idle_timeout: Some(Duration::from_secs(30)),
            max_connections: 256,
            read_buf_bytes: 16 * 1024,
            tick_read_budget: 1 << 20,
            max_body_bytes: u64::MAX,
            max_pending_response_bytes: 4096,
            shards: 1,
            offload_bytes: u64::MAX,
            offload_tick_bytes: 256 * 1024,
            reload_interval: None,
        }
    }
}

/// Global serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeTally {
    /// Completed requests, any status.
    pub requests: u64,
    /// Requests answered accepted.
    pub accepted: u64,
    /// Requests answered rejected.
    pub rejected: u64,
    /// Requests answered with a protocol error (bad frame, unknown or
    /// reloaded pattern id).
    pub protocol_errors: u64,
    /// Requests answered with a deadline expiry.
    pub deadline_errors: u64,
    /// Requests answered over-budget (body over the byte cap).
    pub budget_errors: u64,
    /// Requests answered with a contained recognizer fault.
    pub faults: u64,
    /// Connections dropped on a read/write error or mid-request EOF.
    pub io_errors: u64,
    /// Connections closed by the idle timeout.
    pub idle_closed: u64,
    /// Connections accepted over the cap and immediately dropped.
    pub refused: u64,
    /// Connections accepted (including later-refused ones). Counted by
    /// the acceptor: per-shard tallies leave it 0.
    pub connections: u64,
    /// Request-body bytes consumed (scanned or drained).
    pub bytes: u64,
}

impl ServeTally {
    /// Adds `other` into `self`, field by field.
    fn absorb(&mut self, other: &ServeTally) {
        self.requests += other.requests;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.protocol_errors += other.protocol_errors;
        self.deadline_errors += other.deadline_errors;
        self.budget_errors += other.budget_errors;
        self.faults += other.faults;
        self.io_errors += other.io_errors;
        self.idle_closed += other.idle_closed;
        self.refused += other.refused;
        self.connections += other.connections;
        self.bytes += other.bytes;
    }
}

/// Counters of one (closed or still-open) connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionReport {
    /// Peer address, or `"?"` when the socket could not tell.
    pub peer: String,
    /// Completed requests on this connection.
    pub requests: u64,
    /// Requests answered accepted.
    pub accepted: u64,
    /// Requests answered rejected.
    pub rejected: u64,
    /// Requests answered with any error status.
    pub errors: u64,
    /// Body bytes consumed on this connection.
    pub bytes: u64,
}

/// Per-pattern counters, lifted out of a registry at shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternReport {
    /// The pattern id.
    pub id: String,
    /// The registry's counters for it.
    pub stats: PatternStats,
    /// The resolved engine plan (`None` for a pattern that was retired —
    /// evicted or reloaded away — before shutdown).
    pub plan: Option<EnginePlan>,
}

/// What hot reload did to one shard's registry over the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReloadTally {
    /// Spec generations this shard applied.
    pub generations: u64,
    /// Patterns inserted across all applied deltas.
    pub inserted: u64,
    /// Patterns evicted across all applied deltas.
    pub evicted: u64,
    /// Pattern inserts that failed (counted, not fatal).
    pub failed: u64,
}

/// Everything one shard loop observed.
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// The shard's index.
    pub shard: usize,
    /// The shard's counters (`connections` stays 0 — accepts are counted
    /// by the acceptor).
    pub tally: ServeTally,
    /// Per-pattern counters of the shard's registry replica.
    pub patterns: Vec<PatternReport>,
    /// Per-connection counters, in close order.
    pub connections: Vec<ConnectionReport>,
    /// Hot-reload activity.
    pub reload: ReloadTally,
}

/// Everything a finished [`Server::run`] observed, reconciled across
/// shards.
#[derive(Debug, Clone, Default)]
pub struct ServerReport {
    /// Global counters: the sum of every shard's tally plus the
    /// acceptor's connection counts.
    pub tally: ServeTally,
    /// Per-pattern counters, summed across shard replicas by id (in
    /// first-appearance order).
    pub patterns: Vec<PatternReport>,
    /// Per-connection counters from every shard, in close order within
    /// each shard.
    pub connections: Vec<ConnectionReport>,
    /// The per-shard reports the totals were reconciled from (one entry,
    /// index 0, for a single-shard server).
    pub shards: Vec<ShardReport>,
    /// Spec re-parse failures of the hot-reload watcher (the previous
    /// spec stays published).
    pub reload_errors: u64,
}

impl ServerReport {
    /// Cross-checks the reconciliation invariants: the status breakdown
    /// sums to the request total, and shard-level and connection-level
    /// counters both re-sum to the same totals. Returns the first
    /// violated invariant as text.
    pub fn verify(&self) -> Result<(), String> {
        let t = &self.tally;
        let by_status = t.accepted
            + t.rejected
            + t.protocol_errors
            + t.deadline_errors
            + t.budget_errors
            + t.faults;
        if by_status != t.requests {
            return Err(format!(
                "status breakdown sums to {by_status}, tally says {} requests",
                t.requests
            ));
        }
        let by_shard: u64 = self.shards.iter().map(|s| s.tally.requests).sum();
        if by_shard != t.requests {
            return Err(format!(
                "shard tallies sum to {by_shard} requests, tally says {}",
                t.requests
            ));
        }
        let by_conn: u64 = self.connections.iter().map(|c| c.requests).sum();
        if by_conn != t.requests {
            return Err(format!(
                "connection reports sum to {by_conn} requests, tally says {}",
                t.requests
            ));
        }
        let bytes_by_conn: u64 = self.connections.iter().map(|c| c.bytes).sum();
        if bytes_by_conn != t.bytes {
            return Err(format!(
                "connection reports sum to {bytes_by_conn} bytes, tally says {}",
                t.bytes
            ));
        }
        // Per-pattern reconciliation — possible since registries carry
        // counters across hot reloads (a reload used to reset them to
        // zero, which made these sums meaningless). Every accepted or
        // rejected verdict pairs with exactly one registry bump, so those
        // sums are exact; pattern errors only bound the error-ish
        // statuses from above, because a request that dies before
        // reaching a pattern (bad frame, unknown id, connection EOF
        // mid-header) is counted by the tally but attributed to no
        // pattern.
        let accepted_by_pattern: u64 = self.patterns.iter().map(|p| p.stats.accepted).sum();
        if accepted_by_pattern != t.accepted {
            return Err(format!(
                "pattern reports sum to {accepted_by_pattern} accepted, tally says {}",
                t.accepted
            ));
        }
        let rejected_by_pattern: u64 = self.patterns.iter().map(|p| p.stats.rejected).sum();
        if rejected_by_pattern != t.rejected {
            return Err(format!(
                "pattern reports sum to {rejected_by_pattern} rejected, tally says {}",
                t.rejected
            ));
        }
        let errors_by_pattern: u64 = self.patterns.iter().map(|p| p.stats.errors).sum();
        let errorish =
            t.protocol_errors + t.deadline_errors + t.budget_errors + t.faults + t.io_errors;
        if errors_by_pattern > errorish {
            return Err(format!(
                "pattern reports sum to {errors_by_pattern} errors, above the {errorish} error-ish responses"
            ));
        }
        Ok(())
    }

    /// Builds the reconciled report from the per-shard reports plus the
    /// acceptor's counts.
    fn reconcile(shards: Vec<ShardReport>, stats: acceptor::AcceptorStats) -> ServerReport {
        let mut tally = ServeTally::default();
        let mut patterns: Vec<PatternReport> = Vec::new();
        let mut connections: Vec<ConnectionReport> = Vec::new();
        for report in &shards {
            tally.absorb(&report.tally);
            connections.extend(report.connections.iter().cloned());
            for p in &report.patterns {
                match patterns.iter_mut().find(|q| q.id == p.id) {
                    Some(q) => {
                        q.stats.requests += p.stats.requests;
                        q.stats.accepted += p.stats.accepted;
                        q.stats.rejected += p.stats.rejected;
                        q.stats.errors += p.stats.errors;
                        q.stats.bytes += p.stats.bytes;
                        // Shard replicas resolve the same spec the same
                        // way; keep the first reported plan (a retired
                        // pattern on one shard may report `None`).
                        if q.plan.is_none() {
                            q.plan = p.plan;
                        }
                    }
                    None => patterns.push(p.clone()),
                }
            }
        }
        tally.connections += stats.connections;
        tally.refused += stats.refused;
        ServerReport {
            tally,
            patterns,
            connections,
            shards,
            reload_errors: 0,
        }
    }
}

/// Where a server's patterns come from.
enum Source {
    /// A caller-built registry, served as-is by a single shard.
    Prebuilt(Box<PatternRegistry>),
    /// A compiled spec each shard builds its own replica from.
    Spec {
        spec: Arc<PatternSpec>,
        registry: RegistryConfig,
        /// The pattern file to watch for hot reload, when bound from one.
        path: Option<PathBuf>,
    },
}

/// The sharded, non-blocking multi-pattern recognition server. See the
/// [module docs](self).
pub struct Server {
    listener: TcpListener,
    source: Source,
    config: ServeConfig,
    cancel: Option<CancelToken>,
}

impl Server {
    /// Binds `addr` (port 0 picks a free port — read it back with
    /// [`local_addr`](Server::local_addr)) and prepares to serve
    /// `registry`'s patterns on a single shard. For multiple shards,
    /// bind from a spec ([`bind_spec`](Server::bind_spec) /
    /// [`bind_spec_file`](Server::bind_spec_file)) so each shard can
    /// build its own replica.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        registry: PatternRegistry,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = Self::listen(addr)?;
        Ok(Server {
            listener,
            source: Source::Prebuilt(Box::new(registry)),
            config,
            cancel: None,
        })
    }

    /// Binds `addr` and prepares to serve `spec`, building one registry
    /// replica per shard from its compiled artifacts (with
    /// `registry_config`'s workers, block size and residency cap each).
    pub fn bind_spec<A: ToSocketAddrs>(
        addr: A,
        spec: PatternSpec,
        registry_config: RegistryConfig,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = Self::listen(addr)?;
        Ok(Server {
            listener,
            source: Source::Spec {
                spec: Arc::new(spec),
                registry: registry_config,
                path: None,
            },
            config,
            cancel: None,
        })
    }

    /// Binds `addr` and serves the pattern file at `path` (parsed with
    /// `registry_config.budget`). With [`ServeConfig::reload_interval`]
    /// set, the file is watched and edits hot-reload into the running
    /// shards.
    pub fn bind_spec_file<A: ToSocketAddrs>(
        addr: A,
        path: PathBuf,
        registry_config: RegistryConfig,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let text = std::fs::read_to_string(&path)?;
        let spec = PatternSpec::parse(&text, &registry_config.budget, None)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let listener = Self::listen(addr)?;
        Ok(Server {
            listener,
            source: Source::Spec {
                spec: Arc::new(spec),
                registry: registry_config,
                path: Some(path),
            },
            config,
            cancel: None,
        })
    }

    fn listen<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(listener)
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Patterns the server starts out serving (hot reload can change
    /// the set later).
    pub fn pattern_count(&self) -> usize {
        match &self.source {
            Source::Prebuilt(registry) => registry.ids().count(),
            Source::Spec { spec, .. } => spec.len(),
        }
    }

    /// Installs a cancellation token: tripping it ends
    /// [`run`](Server::run) at the next tick.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Runs acceptor, shards and (optionally) the spec watcher until the
    /// request quota is met or the cancel token trips, then joins
    /// everything, flushes pending responses and returns the reconciled
    /// counters. No loop ever blocks on any one connection; only `Err`
    /// values of the *listener* abort the run.
    pub fn run(self) -> io::Result<ServerReport> {
        let shards = self.config.shards.max(1);

        // Build the per-shard registry replicas and the (optional)
        // hot-reload snapshot cell up front, before any thread starts.
        let mut snapshot: Option<Arc<RegistrySnapshot>> = None;
        let mut watch: Option<(PathBuf, Duration, RegistryConfig)> = None;
        let mut registries: Vec<(PatternRegistry, std::collections::HashMap<String, u64>)> =
            Vec::with_capacity(shards);
        match self.source {
            Source::Prebuilt(registry) => {
                if shards > 1 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "a multi-shard server needs a pattern spec (bind_spec / \
                         bind_spec_file), not a prebuilt registry",
                    ));
                }
                registries.push((*registry, std::collections::HashMap::new()));
            }
            Source::Spec {
                spec,
                registry,
                path,
            } => {
                for _ in 0..shards {
                    let replica = spec
                        .build_registry(registry.clone())
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
                    registries.push((replica, spec.fingerprints()));
                }
                if let (Some(path), Some(interval)) = (path, self.config.reload_interval) {
                    snapshot = Some(Arc::new(RegistrySnapshot::new(Arc::clone(&spec))));
                    watch = Some((path, interval, registry));
                }
            }
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        let requests_done = Arc::new(AtomicU64::new(0));
        let per_shard_conns = self.config.max_connections.div_ceil(shards).max(1);
        let ring_capacity = per_shard_conns.clamp(4, 1024);

        let mut rings: Vec<Arc<SpscRing<(TcpStream, String)>>> = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for (index, (registry, applied)) in registries.into_iter().enumerate() {
            let ring = Arc::new(SpscRing::with_capacity(ring_capacity));
            rings.push(Arc::clone(&ring));
            let runtime = shard::ShardRuntime {
                index,
                registry,
                config: self.config.clone(),
                ring,
                shutdown: Arc::clone(&shutdown),
                requests_done: Arc::clone(&requests_done),
                snapshot: snapshot.clone(),
                applied,
                max_conns: per_shard_conns,
            };
            let handle = std::thread::Builder::new()
                .name(format!("ridfa-shard-{index}"))
                .spawn(move || shard::run(runtime))?;
            handles.push(handle);
        }

        let watcher = watch.map(|(path, interval, registry_config)| {
            let snapshot = Arc::clone(snapshot.as_ref().expect("watch implies snapshot"));
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                watch_spec_file(&path, interval, &registry_config, &snapshot, &shutdown)
            })
        });

        let accepted = acceptor::run(
            &self.listener,
            &rings,
            &shutdown,
            &requests_done,
            self.config.max_requests,
            self.cancel.as_ref(),
        );
        // Whatever ended the acceptor (cancel, quota, listener error),
        // every other thread must now wind down.
        shutdown.store(true, Ordering::Release);
        drop(rings);

        let mut shard_reports: Vec<ShardReport> = Vec::with_capacity(shards);
        for handle in handles {
            match handle.join() {
                Ok(report) => shard_reports.push(report),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        let reload_errors = match watcher {
            Some(handle) => handle.join().unwrap_or(0),
            None => 0,
        };
        shard_reports.sort_by_key(|r| r.shard);

        let stats = accepted?;
        let mut report = ServerReport::reconcile(shard_reports, stats);
        report.reload_errors = reload_errors;
        debug_assert!(
            report.verify().is_ok(),
            "reconciliation invariant violated: {:?}",
            report.verify()
        );
        Ok(report)
    }
}

/// The spec watcher loop: re-parses `path` every `interval`, publishing
/// specs whose fingerprint actually changed. Parse failures are counted
/// and the previous spec stays live. Returns the failure count.
fn watch_spec_file(
    path: &PathBuf,
    interval: Duration,
    registry_config: &RegistryConfig,
    snapshot: &RegistrySnapshot,
    shutdown: &AtomicBool,
) -> u64 {
    let mut errors = 0u64;
    let (_, mut current) = snapshot.load();
    'watch: loop {
        // Sleep in small slices so shutdown stays prompt even with a
        // long reload interval.
        let mut slept = Duration::ZERO;
        while slept < interval {
            if shutdown.load(Ordering::Acquire) {
                break 'watch;
            }
            let slice = Duration::from_millis(50).min(interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
        let Ok(text) = std::fs::read_to_string(path) else {
            // Mid-edit or replaced file; try again next interval.
            errors += 1;
            continue;
        };
        match PatternSpec::parse(&text, &registry_config.budget, Some(&current)) {
            Ok(spec) if spec.fingerprint() != current.fingerprint() => {
                let spec = Arc::new(spec);
                current = Arc::clone(&spec);
                snapshot.publish(spec);
            }
            Ok(_) => {}
            Err(_) => errors += 1,
        }
    }
    errors
}
