//! A fixed-capacity single-producer/single-consumer handoff ring — the
//! wait-free channel the acceptor uses to pass accepted connections to a
//! shard loop without locks and without blocking either side.
//!
//! This is the classic Lamport queue: monotonically increasing `head`
//! (consumer) and `tail` (producer) cursors index a power-of-nothing
//! slot array modulo its capacity. The producer publishes a slot with a
//! release store of `tail`; the consumer acquires it before reading. A
//! full ring rejects the push (the acceptor then tries the next shard's
//! ring); an empty ring returns `None` (the shard goes on with its
//! tick).
//!
//! # Discipline
//!
//! The memory-ordering argument assumes **one** pushing thread and
//! **one** popping thread for the ring's lifetime. The type is
//! `pub(crate)` and used only acceptor → shard, which satisfies that by
//! construction.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The single-producer/single-consumer ring. See the [module docs](self).
pub(crate) struct SpscRing<T> {
    slots: Box<[UnsafeCell<Option<T>>]>,
    /// Consumer cursor: slots `[head, tail)` are occupied.
    head: AtomicUsize,
    /// Producer cursor, always `>= head`, at most `head + capacity`.
    tail: AtomicUsize,
}

// SAFETY: the slot array is only touched under the head/tail protocol —
// the producer writes slot `tail % cap` strictly before releasing it via
// the `tail` store, the consumer reads it strictly after acquiring
// `tail`, and symmetrically for `head` — so a `T: Send` value moves
// cleanly between the two threads and no slot is ever aliased.
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// A ring holding at most `capacity` items (`capacity >= 1`).
    pub(crate) fn with_capacity(capacity: usize) -> SpscRing<T> {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpscRing {
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Producer side: hands `item` to the consumer, or returns it when
    /// the ring is full. Must only ever be called from one thread.
    pub(crate) fn push(&self, item: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.head.load(Ordering::Acquire)) == self.slots.len() {
            return Err(item);
        }
        // SAFETY: `[head, tail)` occupancy means this slot is free, and
        // only this (single-producer) thread writes slots at `tail`.
        unsafe { *self.slots[tail % self.slots.len()].get() = Some(item) };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side: takes the oldest item, if any. Must only ever be
    /// called from one thread.
    pub(crate) fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        if head == self.tail.load(Ordering::Acquire) {
            return None;
        }
        // SAFETY: `head < tail` means this slot was published by the
        // producer's release store; only this (single-consumer) thread
        // reads slots at `head`.
        let item = unsafe { (*self.slots[head % self.slots.len()].get()).take() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        debug_assert!(item.is_some(), "occupied slot always holds an item");
        item
    }

    /// Items currently queued (racy across threads, exact within one).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let ring = SpscRing::with_capacity(2);
        assert!(ring.pop().is_none());
        ring.push(1).unwrap();
        ring.push(2).unwrap();
        assert_eq!(ring.push(3), Err(3), "full ring rejects");
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.pop(), Some(1));
        ring.push(3).unwrap();
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), Some(3));
        assert!(ring.pop().is_none());
    }

    #[test]
    fn queued_items_drop_with_the_ring() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let ring = SpscRing::with_capacity(4);
        ring.push(Probe).unwrap();
        ring.push(Probe).unwrap();
        drop(ring.pop());
        drop(ring);
        assert_eq!(DROPS.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn cross_thread_handoff_preserves_every_item() {
        const N: usize = 10_000;
        let ring = SpscRing::with_capacity(8);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..N {
                    let mut item = i;
                    loop {
                        match ring.push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            });
            let mut next = 0;
            while next < N {
                if let Some(got) = ring.pop() {
                    assert_eq!(got, next, "FIFO order");
                    next += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
    }
}
