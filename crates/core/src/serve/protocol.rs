//! The wire protocol of the socket front-end.
//!
//! Requests and responses are little-endian, length-prefixed binary
//! frames, chosen so a server can parse them *incrementally* from a
//! non-blocking socket without ever buffering a whole request:
//!
//! ```text
//! request  := MAGIC (1) | id_len u8 (≥1) | id bytes | body_len u64 | body bytes
//! response := status u8 | scanned_bytes u64
//! ```
//!
//! A connection carries any number of requests back to back; the server
//! answers them in order. The `status` byte mirrors the CLI exit-code
//! taxonomy (see [`Status`]), so a network verdict and a local `ridfa
//! recognize` verdict mean the same thing.
//!
//! This module also hosts the small *blocking* client used by the CLI
//! `query` command, CI smoke jobs and tests.

use std::io::{self, Read, Write};

/// First byte of every request frame.
pub const MAGIC: u8 = 0x51;

/// Length of a response frame: status byte + scanned-bytes u64.
pub const RESPONSE_LEN: usize = 9;

/// Response status codes — the CLI exit-code taxonomy on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The body belongs to the pattern's language.
    Accepted = 0,
    /// The body does not belong to the pattern's language.
    Rejected = 1,
    /// Malformed frame or unknown pattern id; connection stays usable
    /// when frame sync is preserved (unknown id), closes otherwise.
    Protocol = 2,
    /// Reserved: I/O failures surface as dropped connections, never as a
    /// response.
    Io = 3,
    /// The per-request deadline expired before the body finished.
    Deadline = 4,
    /// The declared body length exceeds the server's byte budget.
    Budget = 5,
    /// A contained fault (trapped worker panic) ended the request.
    Fault = 6,
}

impl Status {
    /// Decodes a status byte from a response frame.
    pub fn from_byte(b: u8) -> Option<Status> {
        Some(match b {
            0 => Status::Accepted,
            1 => Status::Rejected,
            2 => Status::Protocol,
            3 => Status::Io,
            4 => Status::Deadline,
            5 => Status::Budget,
            6 => Status::Fault,
            _ => return None,
        })
    }

    /// The CLI exit code this status maps to (identical by design).
    pub fn exit_code(self) -> i32 {
        self as i32
    }
}

/// A parsed response frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// The verdict (or error class) of the request.
    pub status: Status,
    /// Bytes of the body the server scanned (counts drained bytes of
    /// errored requests too).
    pub scanned: u64,
}

/// Encodes a request frame for pattern `id` with the full `body`.
///
/// Returns `None` when `id` is empty or longer than 255 bytes (the
/// frame's id-length field is one byte).
pub fn encode_request(id: &str, body: &[u8]) -> Option<Vec<u8>> {
    if id.is_empty() || id.len() > 255 {
        return None;
    }
    let mut frame = Vec::with_capacity(2 + id.len() + 8 + body.len());
    frame.push(MAGIC);
    frame.push(id.len() as u8);
    frame.extend_from_slice(id.as_bytes());
    frame.extend_from_slice(&(body.len() as u64).to_le_bytes());
    frame.extend_from_slice(body);
    Some(frame)
}

/// Reads and parses one response frame from a blocking stream.
pub fn read_response<R: Read>(r: &mut R) -> io::Result<Response> {
    let mut buf = [0u8; RESPONSE_LEN];
    r.read_exact(&mut buf)?;
    let status = Status::from_byte(buf[0]).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown response status {}", buf[0]),
        )
    })?;
    let mut scanned = [0u8; 8];
    scanned.copy_from_slice(&buf[1..9]);
    Ok(Response {
        status,
        scanned: u64::from_le_bytes(scanned),
    })
}

/// Encodes a response frame (used by the server; exposed for tests).
pub fn encode_response(status: Status, scanned: u64) -> [u8; RESPONSE_LEN] {
    let mut frame = [0u8; RESPONSE_LEN];
    frame[0] = status as u8;
    frame[1..9].copy_from_slice(&scanned.to_le_bytes());
    frame
}

/// Blocking round trip on an established connection: write one request,
/// read one response. The CLI `query` command and the CI smoke clients
/// are built on this.
pub fn query<S: Read + Write>(stream: &mut S, id: &str, body: &[u8]) -> io::Result<Response> {
    let frame = encode_request(id, body).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "pattern id must be 1..=255 bytes",
        )
    })?;
    stream.write_all(&frame)?;
    stream.flush()?;
    read_response(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frame_layout_is_stable() {
        let frame = encode_request("ab", b"xyz").unwrap();
        assert_eq!(frame[0], MAGIC);
        assert_eq!(frame[1], 2);
        assert_eq!(&frame[2..4], b"ab");
        assert_eq!(&frame[4..12], &3u64.to_le_bytes());
        assert_eq!(&frame[12..], b"xyz");
    }

    #[test]
    fn bad_ids_are_rejected_client_side() {
        assert!(encode_request("", b"x").is_none());
        assert!(encode_request(&"p".repeat(256), b"x").is_none());
        assert!(encode_request(&"p".repeat(255), b"x").is_some());
    }

    #[test]
    fn response_roundtrip() {
        let frame = encode_response(Status::Deadline, 1234);
        let resp = read_response(&mut &frame[..]).unwrap();
        assert_eq!(resp.status, Status::Deadline);
        assert_eq!(resp.scanned, 1234);
        assert_eq!(resp.status.exit_code(), 4);
        assert!(Status::from_byte(9).is_none());
    }
}
