//! The acceptor: the only thread that touches the listener. It accepts
//! sockets and deals them round-robin to the shard loops over their SPSC
//! [`ring`](super::ring)s, so shards never contend on `accept(2)` and
//! the acceptor never scans a byte.
//!
//! Placement is *static* (arrival order modulo shard count): with the
//! wire protocol's identical-cost request framing there is nothing to
//! learn from the socket at accept time, and static dealing keeps the
//! handoff wait-free. A full ring fails over to the next shard; only
//! when every ring is full is the connection refused (dropped, so the
//! client sees EOF rather than a dead hang).

use std::net::TcpListener;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use super::ring::SpscRing;
use super::CancelToken;

/// What the acceptor saw, folded into the server-level tally afterwards.
#[derive(Debug, Default)]
pub(crate) struct AcceptorStats {
    /// Connections accepted and handed to a shard.
    pub(crate) connections: u64,
    /// Connections dropped because every shard ring was full.
    pub(crate) refused: u64,
}

/// Accepts until shutdown (cancel token, request quota, or listener
/// failure) and deals connections to the shard rings.
pub(crate) fn run(
    listener: &TcpListener,
    rings: &[Arc<SpscRing<(TcpStream, String)>>],
    shutdown: &AtomicBool,
    requests_done: &AtomicU64,
    max_requests: Option<u64>,
    cancel: Option<&CancelToken>,
) -> std::io::Result<AcceptorStats> {
    let mut stats = AcceptorStats::default();
    let mut next = 0usize;
    loop {
        if let Some(token) = cancel {
            if token.is_cancelled() {
                shutdown.store(true, Ordering::Release);
                break;
            }
        }
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        if max_requests.is_some_and(|quota| requests_done.load(Ordering::Relaxed) >= quota) {
            // A shard flips `shutdown` after its grace flush; stop
            // accepting newcomers right away regardless.
            break;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                let mut parcel = (stream, peer.to_string());
                let mut placed = false;
                // Deal round-robin, failing over past full rings.
                for attempt in 0..rings.len() {
                    let ring = &rings[(next + attempt) % rings.len()];
                    match ring.push(parcel) {
                        Ok(()) => {
                            next = (next + attempt + 1) % rings.len();
                            placed = true;
                            break;
                        }
                        Err(back) => parcel = back,
                    }
                }
                if placed {
                    stats.connections += 1;
                } else {
                    stats.refused += 1;
                    // Dropping the stream closes it: EOF, not a hang.
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                shutdown.store(true, Ordering::Release);
                return Err(e);
            }
        }
    }
    Ok(stats)
}
