//! The multi-pattern registry: prebuilt automata plus pinned warm
//! sessions, all sharing one worker pool.
//!
//! A [`PatternRegistry`] maps pattern ids to [`RiDfa`]s — built fresh
//! (under a [`ConstructionBudget`]) or loaded from binary artifacts —
//! together with the precomputed tables a chunk automaton needs
//! (premultiplied rows, interface positions) and a pinned warm
//! [`Session`]/[`StreamSession`] pair per pattern. Every session runs on
//! the *same* [`ThreadPool`], so `n` resident patterns cost one set of
//! worker threads, not `n`; concurrent recognitions serialize on the
//! pool's single scope slot while each pattern's scratch/mapping caches
//! stay warm and private.
//!
//! Residency is bounded: [`RegistryConfig::max_table_bytes`] caps the
//! total bytes of resident automaton tables, and inserting past the cap
//! evicts the least-recently-used patterns (their sessions drop with
//! them; the shared pool survives).
//!
//! For the socket front-end, [`StreamScan`] + [`PatternRegistry::scan_block`]
//! expose the λ-composition pipeline *incrementally*: a non-blocking
//! event loop can feed whatever bytes have arrived on a connection and
//! park the scan state until more show up, holding O(1) live mappings
//! per connection.

use std::fmt;
use std::io::Read;
use std::ops::Range;
use std::sync::Arc;

use ridfa_automata::dfa::premultiply;
use ridfa_automata::nfa::{glushkov, Nfa};
use ridfa_automata::regex;
use ridfa_automata::serialize::binary::DecodeError;
use ridfa_automata::{ConstructionBudget, Error, StateId, TransitionCount};

use crate::parallel::{PoolHealth, ThreadPool};
use crate::ridfa::{artifact, RiDfa};

use super::budget::{Budget, RecognizeError, StreamError};
use super::chunking::chunk_spans_into;
use super::kernel::{Kernel, Scratch};
use super::session::DisjointSlots;
use super::{
    ChunkAutomaton, ConvergentRidCa, Outcome, RidCa, RidMapping, Session, StreamOutcome,
    StreamSession,
};

/// Sizing and bounding knobs of a [`PatternRegistry`].
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Workers of the one shared pool (≥ 1; the calling thread joins
    /// every reach phase, so scan parallelism is `num_workers + 1`).
    pub num_workers: usize,
    /// Block size of each pattern's warm [`StreamSession`].
    pub block_size: usize,
    /// Construction budget applied to every fresh build
    /// ([`PatternRegistry::insert_regex`] / [`insert_nfa`](PatternRegistry::insert_nfa)).
    pub budget: ConstructionBudget,
    /// Cap on total resident automaton-table bytes across patterns;
    /// inserting past it evicts least-recently-used patterns.
    pub max_table_bytes: usize,
}

impl Default for RegistryConfig {
    /// One worker per available core minus the caller, 64 KiB blocks, no
    /// construction budget, no residency cap.
    fn default() -> RegistryConfig {
        let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
        RegistryConfig {
            num_workers: cores.saturating_sub(1).max(1),
            block_size: 64 * 1024,
            budget: ConstructionBudget::UNLIMITED,
            max_table_bytes: usize::MAX,
        }
    }
}

/// Why a registry operation failed. Every variant is typed and
/// recoverable — the registry and its pool stay usable after any error.
#[derive(Debug)]
pub enum RegistryError {
    /// No pattern under this id (never inserted, or evicted).
    UnknownPattern(String),
    /// The id is already resident (remove or evict first).
    DuplicatePattern(String),
    /// Fresh construction failed (regex syntax, construction budget).
    Construction(Error),
    /// An artifact failed to decode.
    Decode(DecodeError),
    /// The pattern alone exceeds the residency cap, so no amount of
    /// eviction can make room.
    Oversized {
        /// Id of the rejected pattern.
        id: String,
        /// Resident bytes the pattern would occupy.
        bytes: usize,
        /// The configured cap.
        cap: usize,
    },
    /// A budgeted recognition tripped its deadline/cancellation (or a
    /// contained panic).
    Recognize(RecognizeError),
    /// A budgeted stream tripped its budget or failed on I/O.
    Stream(StreamError),
    /// The pattern was evicted and re-inserted (hot reload) while an
    /// incremental scan was in flight: the scan's composed prefix came
    /// from an automaton that is no longer the one resident under this
    /// id, so no sound verdict exists. The scan must be reset and the
    /// request retried against the new automaton.
    PatternReloaded {
        /// Id whose resident automaton changed mid-scan.
        id: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownPattern(id) => write!(f, "unknown pattern {id:?}"),
            RegistryError::DuplicatePattern(id) => write!(f, "pattern {id:?} already resident"),
            RegistryError::Construction(e) => write!(f, "construction failed: {e}"),
            RegistryError::Decode(e) => write!(f, "artifact rejected: {e}"),
            RegistryError::Oversized { id, bytes, cap } => write!(
                f,
                "pattern {id:?} needs {bytes} resident bytes, above the cap of {cap}"
            ),
            RegistryError::Recognize(e) => write!(f, "{e}"),
            RegistryError::Stream(e) => write!(f, "{e}"),
            RegistryError::PatternReloaded { id } => {
                write!(f, "pattern {id:?} was reloaded mid-scan")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<Error> for RegistryError {
    fn from(e: Error) -> RegistryError {
        RegistryError::Construction(e)
    }
}

impl From<DecodeError> for RegistryError {
    fn from(e: DecodeError) -> RegistryError {
        RegistryError::Decode(e)
    }
}

impl From<RecognizeError> for RegistryError {
    fn from(e: RecognizeError) -> RegistryError {
        RegistryError::Recognize(e)
    }
}

impl From<StreamError> for RegistryError {
    fn from(e: StreamError) -> RegistryError {
        RegistryError::Stream(e)
    }
}

/// Per-pattern serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatternStats {
    /// Recognitions attempted (batch, stream, and incremental scans).
    pub requests: u64,
    /// Requests that ended accepted.
    pub accepted: u64,
    /// Requests that ended rejected.
    pub rejected: u64,
    /// Requests that ended in a typed error (budget, I/O, fault).
    pub errors: u64,
    /// Input bytes scanned for this pattern.
    pub bytes: u64,
}

struct PatternEntry {
    id: String,
    rid: RiDfa,
    /// `RidCa::interface_positions(&rid)`, precomputed at insert.
    pos: Vec<u32>,
    /// `premultiply(rid.table, rid.stride)`, precomputed at insert (or
    /// taken verified from the artifact).
    ptable: Vec<StateId>,
    /// Pinned warm batch session (scratches/mappings stay allocated).
    session: Session,
    /// Pinned warm streaming session (block ring stays allocated).
    stream: StreamSession,
    /// Resident table bytes this entry accounts for.
    resident_bytes: usize,
    /// LRU clock stamp of the most recent use.
    last_used: u64,
    /// Insertion stamp: a re-inserted id gets a fresh epoch, so in-flight
    /// [`StreamScan`]s bound to the old automaton fail typed
    /// ([`RegistryError::PatternReloaded`]) instead of composing
    /// mappings across two different automata.
    epoch: u64,
    stats: PatternStats,
}

impl PatternEntry {
    /// The chunk automaton over this entry's cached tables — constructed
    /// per call (allocation-free borrows), while the associated-type
    /// session caches keep the warm scratch state across calls.
    fn ca(&self) -> ConvergentRidCa<'_> {
        ConvergentRidCa::from_inner(
            RidCa::with_tables(&self.rid, &self.pos, &self.ptable),
            Kernel::Auto,
        )
    }
}

/// Resident-byte footprint of an RI-DFA plus its premultiplied table —
/// the ledger entry [`PatternRegistry`] charges against
/// [`RegistryConfig::max_table_bytes`] when the pattern is inserted.
/// Exposed so tooling (`ridfa inspect-artifact`) can report exactly what
/// a pattern will cost before it is loaded.
pub fn resident_footprint(rid: &RiDfa, premultiplied_len: usize) -> usize {
    let pos = RidCa::interface_positions(rid);
    std::mem::size_of::<StateId>()
        * (rid.table.len()
            + premultiplied_len
            + pos.len()
            + rid.content.len()
            + rid.content_off.len()
            + rid.entry.len()
            + rid.delegate.len()
            + rid.interface.len())
}

/// Reusable buffers of [`PatternRegistry::scan_block_pooled`]: one span
/// table, one scan scratch per reach-phase claimant, and one
/// mapping/transition-count slot per chunk. Allocated lazily on the
/// first pooled scan of a [`StreamScan`] and reused afterwards.
#[derive(Default)]
struct PooledScanBufs {
    spans: Vec<Range<usize>>,
    scratches: Vec<Scratch>,
    slots: Vec<(RidMapping, u64)>,
}

/// Incremental λ-composition state for one in-flight stream (one socket
/// connection, typically). Feed blocks through
/// [`PatternRegistry::scan_block`]; read the verdict with
/// [`PatternRegistry::finish_scan`]. Buffers are reused across requests
/// when the scan is reset, so a long-lived connection slot scans with
/// zero steady-state allocations.
#[derive(Default)]
pub struct StreamScan {
    mapping: RidMapping,
    incoming: RidMapping,
    composed: RidMapping,
    scratch: Scratch,
    compose: (Vec<StateId>, Vec<StateId>),
    pooled: Option<Box<PooledScanBufs>>,
    started: bool,
    dead: bool,
    /// Epoch of the pattern entry this scan is bound to (set on the
    /// first block; see [`RegistryError::PatternReloaded`]).
    epoch: u64,
    bytes: u64,
    transitions: u64,
}

impl StreamScan {
    /// A fresh scan state.
    pub fn new() -> StreamScan {
        StreamScan::default()
    }

    /// Clears verdict-carrying state for the next request, keeping every
    /// buffer's allocation.
    pub fn reset(&mut self) {
        self.started = false;
        self.dead = false;
        self.bytes = 0;
        self.transitions = 0;
    }

    /// Bytes scanned since the last [`reset`](StreamScan::reset).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Transitions executed since the last [`reset`](StreamScan::reset).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// True once the composed prefix mapping has no live run left — the
    /// verdict is already `rejected` and remaining input need not be
    /// scanned (the caller may drain or close early).
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

/// The multi-pattern registry: see the [module docs](self).
pub struct PatternRegistry {
    pool: Arc<ThreadPool>,
    config: RegistryConfig,
    entries: Vec<PatternEntry>,
    clock: u64,
    evictions: u64,
}

impl PatternRegistry {
    /// An empty registry with its own shared pool.
    pub fn new(config: RegistryConfig) -> PatternRegistry {
        let pool = Arc::new(ThreadPool::new(config.num_workers));
        PatternRegistry {
            pool,
            config,
            entries: Vec::new(),
            clock: 0,
            evictions: 0,
        }
    }

    /// Compiles `pattern` (regex) fresh — through the configured
    /// [`ConstructionBudget`] — and pins it under `id`.
    pub fn insert_regex(&mut self, id: &str, pattern: &str) -> Result<(), RegistryError> {
        let ast = regex::parse(pattern)?;
        let nfa = glushkov::build(&ast)?;
        self.insert_nfa(id, &nfa)
    }

    /// Builds the minimized RI-DFA of `nfa` — through the configured
    /// [`ConstructionBudget`] — and pins it under `id`.
    pub fn insert_nfa(&mut self, id: &str, nfa: &Nfa) -> Result<(), RegistryError> {
        let rid = RiDfa::from_nfa_budgeted(nfa, &self.config.budget)?.minimized();
        let ptable = premultiply(&rid.table, rid.stride);
        self.insert_prepared(id, rid, ptable)
    }

    /// Decodes a sealed RI-DFA artifact and pins it under `id` — the
    /// cold-start path: a validated load instead of a powerset
    /// construction (the premultiplied table comes verified from the
    /// artifact).
    pub fn insert_artifact(&mut self, id: &str, bytes: &[u8]) -> Result<(), RegistryError> {
        let artifact::RiDfaArtifact { rid, premultiplied } = artifact::ridfa_from_bytes(bytes)?;
        self.insert_prepared(id, rid, premultiplied)
    }

    fn insert_prepared(
        &mut self,
        id: &str,
        rid: RiDfa,
        ptable: Vec<StateId>,
    ) -> Result<(), RegistryError> {
        if self.index_of(id).is_some() {
            return Err(RegistryError::DuplicatePattern(id.to_string()));
        }
        let pos = RidCa::interface_positions(&rid);
        let resident_bytes = resident_footprint(&rid, ptable.len());
        if resident_bytes > self.config.max_table_bytes {
            return Err(RegistryError::Oversized {
                id: id.to_string(),
                bytes: resident_bytes,
                cap: self.config.max_table_bytes,
            });
        }
        // Evict least-recently-used patterns until the newcomer fits.
        while self.resident_bytes() + resident_bytes > self.config.max_table_bytes {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("over cap implies at least one resident entry");
            self.entries.remove(lru);
            self.evictions += 1;
        }
        let mut session = Session::with_shared_pool(Arc::clone(&self.pool));
        let mut stream =
            StreamSession::with_shared_pool(Arc::clone(&self.pool), self.config.block_size);
        // Pre-warm both sessions so the first request hits allocated
        // scratch caches.
        {
            let ca =
                ConvergentRidCa::from_inner(RidCa::with_tables(&rid, &pos, &ptable), Kernel::Auto);
            session.warm(&ca, b"warm");
            stream.warm(&ca, b"warm");
        }
        let last_used = self.next_stamp();
        self.entries.push(PatternEntry {
            id: id.to_string(),
            rid,
            pos,
            ptable,
            session,
            stream,
            resident_bytes,
            last_used,
            epoch: last_used,
            stats: PatternStats::default(),
        });
        Ok(())
    }

    /// Drops the pattern under `id`, freeing its resident bytes and warm
    /// sessions (the shared pool is untouched). Returns whether it was
    /// resident.
    pub fn remove(&mut self, id: &str) -> bool {
        match self.index_of(id) {
            Some(i) => {
                self.entries.remove(i);
                true
            }
            None => false,
        }
    }

    /// Batch recognition of `text` against pattern `id` on the pattern's
    /// warm session. `num_chunks == 0` picks one chunk per reach-phase
    /// claimant (workers + 1).
    pub fn recognize(
        &mut self,
        id: &str,
        text: &[u8],
        num_chunks: usize,
    ) -> Result<Outcome, RegistryError> {
        let chunks = self.effective_chunks(num_chunks);
        let stamp = self.next_stamp();
        let entry = self.entry_mut(id)?;
        entry.last_used = stamp;
        let PatternEntry {
            rid,
            pos,
            ptable,
            session,
            stats,
            ..
        } = entry;
        let ca = ConvergentRidCa::from_inner(RidCa::with_tables(rid, pos, ptable), Kernel::Auto);
        let outcome = session.recognize(&ca, text, chunks);
        stats.requests += 1;
        stats.bytes += text.len() as u64;
        if outcome.accepted {
            stats.accepted += 1;
        } else {
            stats.rejected += 1;
        }
        Ok(outcome)
    }

    /// Like [`recognize`](PatternRegistry::recognize) under a [`Budget`]:
    /// deadline/cancellation trips surface as
    /// [`RegistryError::Recognize`] and count into
    /// [`PatternStats::errors`].
    pub fn recognize_budgeted(
        &mut self,
        id: &str,
        text: &[u8],
        num_chunks: usize,
        budget: &Budget,
    ) -> Result<Outcome, RegistryError> {
        let chunks = self.effective_chunks(num_chunks);
        let stamp = self.next_stamp();
        let entry = self.entry_mut(id)?;
        entry.last_used = stamp;
        let PatternEntry {
            rid,
            pos,
            ptable,
            session,
            stats,
            ..
        } = entry;
        let ca = ConvergentRidCa::from_inner(RidCa::with_tables(rid, pos, ptable), Kernel::Auto);
        let result = session.recognize_budgeted(&ca, text, chunks, budget);
        stats.requests += 1;
        stats.bytes += text.len() as u64;
        match &result {
            Ok(outcome) if outcome.accepted => stats.accepted += 1,
            Ok(_) => stats.rejected += 1,
            Err(_) => stats.errors += 1,
        }
        Ok(result?)
    }

    /// Streaming recognition of `reader` against pattern `id` on the
    /// pattern's warm [`StreamSession`] (bounded memory, early rejection).
    pub fn recognize_stream<R: Read + Send>(
        &mut self,
        id: &str,
        reader: R,
    ) -> Result<StreamOutcome, RegistryError> {
        let stamp = self.next_stamp();
        let entry = self.entry_mut(id)?;
        entry.last_used = stamp;
        let PatternEntry {
            rid,
            pos,
            ptable,
            stream,
            stats,
            ..
        } = entry;
        let ca = ConvergentRidCa::from_inner(RidCa::with_tables(rid, pos, ptable), Kernel::Auto);
        let result = stream
            .recognize_stream(&ca, reader)
            .map_err(|e| RegistryError::Stream(StreamError::Io(e)));
        stats.requests += 1;
        match &result {
            Ok(out) => {
                stats.bytes += out.bytes;
                if out.accepted {
                    stats.accepted += 1;
                } else {
                    stats.rejected += 1;
                }
            }
            Err(_) => stats.errors += 1,
        }
        result
    }

    /// Like [`recognize_stream`](PatternRegistry::recognize_stream) under
    /// a [`Budget`].
    pub fn recognize_stream_budgeted<R: Read + Send>(
        &mut self,
        id: &str,
        reader: R,
        budget: &Budget,
    ) -> Result<StreamOutcome, RegistryError> {
        let stamp = self.next_stamp();
        let entry = self.entry_mut(id)?;
        entry.last_used = stamp;
        let PatternEntry {
            rid,
            pos,
            ptable,
            stream,
            stats,
            ..
        } = entry;
        let ca = ConvergentRidCa::from_inner(RidCa::with_tables(rid, pos, ptable), Kernel::Auto);
        let result = stream.recognize_stream_budgeted(&ca, reader, budget);
        stats.requests += 1;
        match &result {
            Ok(out) => {
                stats.bytes += out.bytes;
                if out.accepted {
                    stats.accepted += 1;
                } else {
                    stats.rejected += 1;
                }
            }
            Err(_) => stats.errors += 1,
        }
        result.map_err(RegistryError::Stream)
    }

    /// Scans one more block of an in-flight stream (incremental
    /// λ-composition; see [`StreamScan`]). Returns
    /// [`StreamScan::is_dead`] after the block — once dead, further
    /// blocks only count bytes, and the caller may answer `rejected`
    /// early. Dead-cheap per call: the chunk automaton borrows cached
    /// tables and the scan reuses the state's buffers.
    pub fn scan_block(
        &mut self,
        id: &str,
        scan: &mut StreamScan,
        block: &[u8],
    ) -> Result<bool, RegistryError> {
        let stamp = self.next_stamp();
        let entry = self.entry_mut(id)?;
        entry.last_used = stamp;
        if scan.started && scan.epoch != entry.epoch {
            return Err(RegistryError::PatternReloaded { id: id.to_string() });
        }
        scan.bytes += block.len() as u64;
        if scan.dead {
            return Ok(true);
        }
        let ca = entry.ca();
        let mut counter = TransitionCount::default();
        if !scan.started {
            scan.started = true;
            scan.epoch = entry.epoch;
            ca.scan_first_into(block, &mut counter, &mut scan.mapping);
        } else {
            ca.scan_into(block, &mut scan.scratch, &mut counter, &mut scan.incoming);
            ca.compose_into(
                &scan.mapping,
                &scan.incoming,
                &mut scan.compose,
                &mut scan.composed,
            );
            std::mem::swap(&mut scan.mapping, &mut scan.composed);
        }
        scan.transitions += counter.get();
        scan.dead = ca.mapping_is_dead(&scan.mapping);
        Ok(scan.dead)
    }

    /// Like [`scan_block`](PatternRegistry::scan_block), but the block is
    /// split into one span per reach-phase claimant (workers + 1) and
    /// scanned *in parallel* on the shared pool, then the per-span
    /// mappings are composed in order onto the scan's prefix. This is
    /// the big-body lane of the serve layer: a block large enough to be
    /// worth a parallel reach phase goes through here; small blocks
    /// should keep using the serial `scan_block` (the fork-join barrier
    /// costs more than it saves below roughly a worker's L2).
    ///
    /// Verdict-equivalent to feeding the same bytes through
    /// `scan_block` (λ-composition is associative).
    #[allow(unsafe_code)]
    pub fn scan_block_pooled(
        &mut self,
        id: &str,
        scan: &mut StreamScan,
        block: &[u8],
    ) -> Result<bool, RegistryError> {
        let stamp = self.next_stamp();
        let claimants = self.pool.num_workers() + 1;
        let pool = Arc::clone(&self.pool);
        let entry = self.entry_mut(id)?;
        entry.last_used = stamp;
        if scan.started && scan.epoch != entry.epoch {
            return Err(RegistryError::PatternReloaded { id: id.to_string() });
        }
        scan.bytes += block.len() as u64;
        if scan.dead {
            return Ok(true);
        }
        if block.is_empty() {
            return Ok(false);
        }
        let first = !scan.started;
        if first {
            scan.started = true;
            scan.epoch = entry.epoch;
        }
        let ca = entry.ca();
        let bufs = scan.pooled.get_or_insert_with(Default::default);
        if bufs.scratches.len() < claimants {
            bufs.scratches.resize_with(claimants, Scratch::default);
        }
        chunk_spans_into(block.len(), claimants, &mut bufs.spans);
        let num_tasks = bufs.spans.len();
        if bufs.slots.len() < num_tasks {
            bufs.slots.resize_with(num_tasks, Default::default);
        }
        {
            let PooledScanBufs {
                spans,
                scratches,
                slots,
            } = &mut **bufs;
            let spans = &*spans;
            let slots = DisjointSlots::new(&mut slots[..num_tasks]);
            pool.invoke_all_scoped(num_tasks, scratches, |scratch, t| {
                let mut counter = TransitionCount::default();
                // SAFETY: the pool claims each task index exactly once,
                // so slot `t` has a single writer, and `t < num_tasks`.
                let (mapping, transitions) = unsafe { slots.get(t) };
                if t == 0 && first {
                    ca.scan_first_into(&block[spans[t].clone()], &mut counter, mapping);
                } else {
                    ca.scan_into(&block[spans[t].clone()], scratch, &mut counter, mapping);
                }
                *transitions = counter.get();
            });
        }
        // Serial join: fold the span mappings onto the composed prefix,
        // left to right (the first-chunk mapping, if any, is leftmost).
        for t in 0..num_tasks {
            let (mapping, transitions) = &mut bufs.slots[t];
            scan.transitions += *transitions;
            if t == 0 && first {
                std::mem::swap(&mut scan.mapping, mapping);
            } else {
                ca.compose_into(
                    &scan.mapping,
                    mapping,
                    &mut scan.compose,
                    &mut scan.composed,
                );
                std::mem::swap(&mut scan.mapping, &mut scan.composed);
            }
        }
        scan.dead = ca.mapping_is_dead(&scan.mapping);
        Ok(scan.dead)
    }

    /// Ends an in-flight stream: the verdict of everything fed through
    /// [`scan_block`](PatternRegistry::scan_block) since the last reset.
    /// Updates the pattern's counters and resets `scan` for reuse.
    pub fn finish_scan(&mut self, id: &str, scan: &mut StreamScan) -> Result<bool, RegistryError> {
        let entry = self.entry_mut(id)?;
        if scan.started && scan.epoch != entry.epoch {
            scan.reset();
            return Err(RegistryError::PatternReloaded { id: id.to_string() });
        }
        let ca = entry.ca();
        if !scan.started {
            // Zero-length stream: the verdict of the empty text.
            let mut counter = TransitionCount::default();
            ca.scan_first_into(b"", &mut counter, &mut scan.mapping);
        }
        let accepted = !scan.dead && ca.accepts_mapping(&scan.mapping);
        entry.stats.requests += 1;
        entry.stats.bytes += scan.bytes;
        if accepted {
            entry.stats.accepted += 1;
        } else {
            entry.stats.rejected += 1;
        }
        scan.reset();
        Ok(accepted)
    }

    /// Records one failed request (deadline, protocol fault, I/O) against
    /// a pattern's counters — used by serving layers whose errors happen
    /// outside the registry's own calls.
    pub fn record_error(&mut self, id: &str) {
        if let Ok(entry) = self.entry_mut(id) {
            entry.stats.errors += 1;
            entry.stats.requests += 1;
        }
    }

    /// The ids of the resident patterns, in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.id.as_str())
    }

    /// Whether `id` is resident.
    pub fn contains(&self, id: &str) -> bool {
        self.index_of(id).is_some()
    }

    /// Number of resident patterns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no pattern is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total resident automaton-table bytes across patterns.
    pub fn resident_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.resident_bytes).sum()
    }

    /// Patterns evicted under byte pressure so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Serving counters of pattern `id`.
    pub fn stats(&self, id: &str) -> Option<PatternStats> {
        self.index_of(id).map(|i| self.entries[i].stats)
    }

    /// The one shared worker pool (for health inspection and fault
    /// injection in tests).
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// A handle to the shared pool, e.g. to attach further sessions.
    pub fn shared_pool(&self) -> Arc<ThreadPool> {
        Arc::clone(&self.pool)
    }

    /// Health of the shared pool.
    pub fn health(&self) -> PoolHealth {
        self.pool.health()
    }

    /// Number of states of pattern `id`'s RI-DFA, for inspection.
    pub fn num_states(&self, id: &str) -> Option<usize> {
        self.index_of(id).map(|i| self.entries[i].rid.num_states())
    }

    fn effective_chunks(&self, num_chunks: usize) -> usize {
        if num_chunks == 0 {
            self.pool.num_workers() + 1
        } else {
            num_chunks
        }
    }

    fn next_stamp(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn index_of(&self, id: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.id == id)
    }

    fn entry_mut(&mut self, id: &str) -> Result<&mut PatternEntry, RegistryError> {
        match self.index_of(id) {
            Some(i) => Ok(&mut self.entries[i]),
            None => Err(RegistryError::UnknownPattern(id.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_registry() -> PatternRegistry {
        let mut reg = PatternRegistry::new(RegistryConfig {
            num_workers: 2,
            block_size: 256,
            ..RegistryConfig::default()
        });
        reg.insert_regex("abb", "(a|b)*abb").unwrap();
        reg.insert_regex("digits", "[0-9]+").unwrap();
        reg.insert_regex("word", "[a-z]+(-[a-z]+)*").unwrap();
        reg
    }

    #[test]
    fn recognizes_across_patterns_on_one_pool() {
        let mut reg = small_registry();
        assert!(reg.recognize("abb", b"bababb", 0).unwrap().accepted);
        assert!(!reg.recognize("abb", b"ba", 0).unwrap().accepted);
        assert!(reg.recognize("digits", b"123456", 4).unwrap().accepted);
        assert!(!reg.recognize("digits", b"12a", 4).unwrap().accepted);
        assert!(reg.recognize("word", b"foo-bar-baz", 3).unwrap().accepted);
        assert_eq!(reg.health().configured, 2);
        let stats = reg.stats("abb").unwrap();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn unknown_and_duplicate_ids_error_typed() {
        let mut reg = small_registry();
        assert!(matches!(
            reg.recognize("nope", b"x", 0),
            Err(RegistryError::UnknownPattern(_))
        ));
        assert!(matches!(
            reg.insert_regex("abb", "a"),
            Err(RegistryError::DuplicatePattern(_))
        ));
        assert!(matches!(
            reg.insert_regex("bad", "(("),
            Err(RegistryError::Construction(_))
        ));
    }

    #[test]
    fn incremental_scan_matches_batch() {
        let mut reg = small_registry();
        let mut scan = StreamScan::new();
        for block in [&b"bab"[..], b"ab", b"b"] {
            reg.scan_block("abb", &mut scan, block).unwrap();
        }
        assert!(reg.finish_scan("abb", &mut scan).unwrap());
        // State resets for reuse.
        reg.scan_block("abb", &mut scan, b"ba").unwrap();
        assert!(!reg.finish_scan("abb", &mut scan).unwrap());
        // Zero-length stream = verdict of the empty text.
        assert!(!reg.finish_scan("abb", &mut scan).unwrap());
    }

    #[test]
    fn dead_prefix_is_detected_early() {
        let mut reg = small_registry();
        let mut scan = StreamScan::new();
        let dead = reg.scan_block("digits", &mut scan, b"abc").unwrap();
        assert!(dead, "non-digit prefix kills every run");
        assert!(scan.is_dead());
        // Further blocks only count bytes.
        reg.scan_block("digits", &mut scan, b"123").unwrap();
        assert_eq!(scan.bytes(), 6);
        assert!(!reg.finish_scan("digits", &mut scan).unwrap());
    }

    #[test]
    fn eviction_under_byte_pressure_is_lru() {
        let mut reg = PatternRegistry::new(RegistryConfig {
            num_workers: 1,
            max_table_bytes: 64 * 1024,
            ..RegistryConfig::default()
        });
        reg.insert_regex("a", "(a|b)*abb").unwrap();
        reg.insert_regex("b", "[0-9]+").unwrap();
        // Touch "a" so "b" is the LRU entry.
        reg.recognize("a", b"abb", 0).unwrap();
        let before = reg.resident_bytes();
        assert!(before <= 64 * 1024);
        // Insert patterns until something must go.
        let mut k = 0;
        while reg.evictions() == 0 {
            reg.insert_regex(&format!("fill{k}"), "[ab]*a[ab]{6}")
                .unwrap();
            k += 1;
            assert!(k < 64, "eviction never triggered");
        }
        assert!(reg.resident_bytes() <= 64 * 1024);
        // The cold pattern went first.
        assert!(!reg.contains("b"));
        assert!(
            reg.contains("a") || k > 1,
            "the touched pattern outlives the cold one"
        );
    }

    #[test]
    fn oversized_pattern_is_rejected_not_thrashed() {
        let mut reg = PatternRegistry::new(RegistryConfig {
            num_workers: 1,
            max_table_bytes: 64,
            ..RegistryConfig::default()
        });
        assert!(matches!(
            reg.insert_regex("big", "(a|b)*abb"),
            Err(RegistryError::Oversized { .. })
        ));
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn artifact_load_equals_fresh_construction() {
        use ridfa_automata::nfa::glushkov;
        use ridfa_automata::regex::parse;
        let nfa = glushkov::build(&parse("(a|b)*abb").unwrap()).unwrap();
        let rid = RiDfa::from_nfa(&nfa).minimized();
        let bytes = artifact::ridfa_to_bytes(&rid);

        let mut fresh = PatternRegistry::new(RegistryConfig {
            num_workers: 1,
            ..RegistryConfig::default()
        });
        fresh.insert_nfa("p", &nfa).unwrap();
        let mut loaded = PatternRegistry::new(RegistryConfig {
            num_workers: 1,
            ..RegistryConfig::default()
        });
        loaded.insert_artifact("p", &bytes).unwrap();

        for text in [&b"abb"[..], b"bababb", b"", b"ba", b"abab"] {
            assert_eq!(
                fresh.recognize("p", text, 0).unwrap().accepted,
                loaded.recognize("p", text, 0).unwrap().accepted,
                "{text:?}"
            );
        }
    }

    #[test]
    fn streaming_through_registry_works() {
        use std::io::Cursor;
        let mut reg = small_registry();
        let out = reg
            .recognize_stream("abb", Cursor::new(b"bababb".to_vec()))
            .unwrap();
        assert!(out.accepted);
        assert_eq!(out.bytes, 6);
    }
}
