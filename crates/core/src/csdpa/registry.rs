//! The multi-pattern registry: prebuilt automata plus pinned warm
//! sessions, all sharing one worker pool.
//!
//! A [`PatternRegistry`] maps pattern ids to [`RiDfa`]s — built fresh
//! (under a [`ConstructionBudget`]) or loaded from binary artifacts —
//! together with the precomputed tables a chunk automaton needs
//! (premultiplied rows, interface positions) and a pinned warm
//! [`Session`]/[`StreamSession`] pair per pattern. Every session runs on
//! the *same* [`ThreadPool`], so `n` resident patterns cost one set of
//! worker threads, not `n`; concurrent recognitions serialize on the
//! pool's single scope slot while each pattern's scratch/mapping caches
//! stay warm and private.
//!
//! Residency is bounded: [`RegistryConfig::max_table_bytes`] caps the
//! total bytes of resident automaton tables, and inserting past the cap
//! evicts the least-recently-used patterns (their sessions drop with
//! them; the shared pool survives).
//!
//! For the socket front-end, [`StreamScan`] + [`PatternRegistry::scan_block`]
//! expose the λ-composition pipeline *incrementally*: a non-blocking
//! event loop can feed whatever bytes have arrived on a connection and
//! park the scan state until more show up, holding O(1) live mappings
//! per connection.

use std::collections::HashMap;
use std::fmt;
use std::io::Read;
use std::ops::Range;
use std::sync::Arc;

use ridfa_automata::dfa::premultiply;
use ridfa_automata::nfa::{glushkov, Nfa};
use ridfa_automata::regex;
use ridfa_automata::serialize::binary::DecodeError;
use ridfa_automata::{ConstructionBudget, Error, StateId, TransitionCount};

use crate::parallel::{PoolHealth, ThreadPool};
use crate::ridfa::{artifact, RiDfa};
use crate::sfa::{Sfa, SfaCa};

use super::budget::{Budget, RecognizeError, StreamError};
use super::chunking::chunk_spans_into;
use super::kernel::{Kernel, Scratch};
use super::plan::{
    EnginePlan, FeasibleRidCa, FeasibleTable, SFA_AUTO_MAX_STATES, SFA_AUTO_MAX_TABLE_BYTES,
};
use super::session::DisjointSlots;
use super::{
    ChunkAutomaton, ConvergentRidCa, Outcome, RidCa, RidMapping, Session, StreamOutcome,
    StreamSession,
};

/// Sizing and bounding knobs of a [`PatternRegistry`].
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Workers of the one shared pool (≥ 1; the calling thread joins
    /// every reach phase, so scan parallelism is `num_workers + 1`).
    pub num_workers: usize,
    /// Block size of each pattern's warm [`StreamSession`].
    pub block_size: usize,
    /// Construction budget applied to every fresh build
    /// ([`PatternRegistry::insert_regex`] / [`insert_nfa`](PatternRegistry::insert_nfa)).
    pub budget: ConstructionBudget,
    /// Cap on total resident automaton-table bytes across patterns;
    /// inserting past it evicts least-recently-used patterns.
    pub max_table_bytes: usize,
}

impl Default for RegistryConfig {
    /// One worker per available core minus the caller, 64 KiB blocks, no
    /// construction budget, no residency cap.
    fn default() -> RegistryConfig {
        let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
        RegistryConfig {
            num_workers: cores.saturating_sub(1).max(1),
            block_size: 64 * 1024,
            budget: ConstructionBudget::UNLIMITED,
            max_table_bytes: usize::MAX,
        }
    }
}

/// Why a registry operation failed. Every variant is typed and
/// recoverable — the registry and its pool stay usable after any error.
#[derive(Debug)]
pub enum RegistryError {
    /// No pattern under this id (never inserted, or evicted).
    UnknownPattern(String),
    /// The id is already resident (remove or evict first).
    DuplicatePattern(String),
    /// Fresh construction failed (regex syntax, construction budget).
    Construction(Error),
    /// An artifact failed to decode.
    Decode(DecodeError),
    /// The pattern alone exceeds the residency cap, so no amount of
    /// eviction can make room.
    Oversized {
        /// Id of the rejected pattern.
        id: String,
        /// Resident bytes the pattern would occupy.
        bytes: usize,
        /// The configured cap.
        cap: usize,
    },
    /// A budgeted recognition tripped its deadline/cancellation (or a
    /// contained panic).
    Recognize(RecognizeError),
    /// A budgeted stream tripped its budget or failed on I/O.
    Stream(StreamError),
    /// The pattern was evicted and re-inserted (hot reload) while an
    /// incremental scan was in flight: the scan's composed prefix came
    /// from an automaton that is no longer the one resident under this
    /// id, so no sound verdict exists. The scan must be reset and the
    /// request retried against the new automaton.
    PatternReloaded {
        /// Id whose resident automaton changed mid-scan.
        id: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownPattern(id) => write!(f, "unknown pattern {id:?}"),
            RegistryError::DuplicatePattern(id) => write!(f, "pattern {id:?} already resident"),
            RegistryError::Construction(e) => write!(f, "construction failed: {e}"),
            RegistryError::Decode(e) => write!(f, "artifact rejected: {e}"),
            RegistryError::Oversized { id, bytes, cap } => write!(
                f,
                "pattern {id:?} needs {bytes} resident bytes, above the cap of {cap}"
            ),
            RegistryError::Recognize(e) => write!(f, "{e}"),
            RegistryError::Stream(e) => write!(f, "{e}"),
            RegistryError::PatternReloaded { id } => {
                write!(f, "pattern {id:?} was reloaded mid-scan")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<Error> for RegistryError {
    fn from(e: Error) -> RegistryError {
        RegistryError::Construction(e)
    }
}

impl From<DecodeError> for RegistryError {
    fn from(e: DecodeError) -> RegistryError {
        RegistryError::Decode(e)
    }
}

impl From<RecognizeError> for RegistryError {
    fn from(e: RecognizeError) -> RegistryError {
        RegistryError::Recognize(e)
    }
}

impl From<StreamError> for RegistryError {
    fn from(e: StreamError) -> RegistryError {
        RegistryError::Stream(e)
    }
}

/// Per-pattern serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatternStats {
    /// Recognitions attempted (batch, stream, and incremental scans).
    pub requests: u64,
    /// Requests that ended accepted.
    pub accepted: u64,
    /// Requests that ended rejected.
    pub rejected: u64,
    /// Requests that ended in a typed error (budget, I/O, fault).
    pub errors: u64,
    /// Input bytes scanned for this pattern.
    pub bytes: u64,
}

impl PatternStats {
    /// Accumulates `other` into `self` — used to carry counters across
    /// hot reloads and to fold a registry's retired ledger into reports.
    pub fn merge(&mut self, other: PatternStats) {
        self.requests += other.requests;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.errors += other.errors;
        self.bytes += other.bytes;
    }

    /// The counters accumulated *since* `baseline` (saturating, so a
    /// reset-to-zero baseline mismatch never underflows) — what a serve
    /// run reports when it received an already-warmed registry.
    pub fn since(&self, baseline: &PatternStats) -> PatternStats {
        PatternStats {
            requests: self.requests.saturating_sub(baseline.requests),
            accepted: self.accepted.saturating_sub(baseline.accepted),
            rejected: self.rejected.saturating_sub(baseline.rejected),
            errors: self.errors.saturating_sub(baseline.errors),
            bytes: self.bytes.saturating_sub(baseline.bytes),
        }
    }
}

struct PatternEntry {
    id: String,
    rid: RiDfa,
    /// `RidCa::interface_positions(&rid)`, precomputed at insert.
    pos: Vec<u32>,
    /// `premultiply(rid.table, rid.stride)`, precomputed at insert (or
    /// taken verified from the artifact).
    ptable: Vec<StateId>,
    /// The resolved speculation policy (never `Auto` once resident).
    plan: EnginePlan,
    /// SFA tables, present iff `plan == EnginePlan::Sfa`.
    sfa: Option<Sfa>,
    /// Feasible-start boundary table, present iff
    /// `plan == EnginePlan::FeasibleStart`.
    feasible: Option<FeasibleTable>,
    /// Record-separator byte carried from the artifact (chunk-boundary
    /// snapping hint for record-structured workloads).
    separator: Option<u8>,
    /// Pinned warm batch session (scratches/mappings stay allocated).
    session: Session,
    /// Pinned warm streaming session (block ring stays allocated).
    stream: StreamSession,
    /// Resident table bytes this entry accounts for.
    resident_bytes: usize,
    /// LRU clock stamp of the most recent use.
    last_used: u64,
    /// Insertion stamp: a re-inserted id gets a fresh epoch, so in-flight
    /// [`StreamScan`]s bound to the old automaton fail typed
    /// ([`RegistryError::PatternReloaded`]) instead of composing
    /// mappings across two different automata.
    epoch: u64,
    stats: PatternStats,
}

impl PatternEntry {
    /// The lockstep chunk automaton over this entry's cached tables —
    /// constructed per call (allocation-free borrows), while the
    /// associated-type session caches keep the warm scratch state across
    /// calls.
    fn lockstep_ca(&self) -> ConvergentRidCa<'_> {
        ConvergentRidCa::from_inner(
            RidCa::with_tables(&self.rid, &self.pos, &self.ptable),
            Kernel::Auto,
        )
    }

    /// The feasible-start chunk automaton (plan must be `FeasibleStart`).
    fn feasible_ca(&self) -> FeasibleRidCa<'_> {
        FeasibleRidCa::from_inner(
            RidCa::with_tables(&self.rid, &self.pos, &self.ptable),
            self.feasible
                .as_ref()
                .expect("FeasibleStart entries carry a feasible table"),
            Kernel::Auto,
        )
    }

    /// The SFA chunk automaton (plan must be `Sfa`).
    fn sfa_ca(&self) -> SfaCa<'_> {
        SfaCa::new(self.sfa.as_ref().expect("Sfa entries carry SFA tables"))
    }
}

/// Resident-byte footprint of an RI-DFA plus its premultiplied table —
/// the ledger entry [`PatternRegistry`] charges against
/// [`RegistryConfig::max_table_bytes`] when the pattern is inserted.
/// Exposed so tooling (`ridfa inspect-artifact`) can report exactly what
/// a pattern will cost before it is loaded.
pub fn resident_footprint(rid: &RiDfa, premultiplied_len: usize) -> usize {
    let pos = RidCa::interface_positions(rid);
    std::mem::size_of::<StateId>()
        * (rid.table.len()
            + premultiplied_len
            + pos.len()
            + rid.content.len()
            + rid.content_off.len()
            + rid.entry.len()
            + rid.delegate.len()
            + rid.interface.len())
}

/// Reusable buffers of [`PatternRegistry::scan_block_pooled`]: one span
/// table, one scan scratch per reach-phase claimant, and one
/// mapping/transition-count slot per chunk. Allocated lazily on the
/// first pooled scan of a [`StreamScan`] and reused afterwards.
#[derive(Default)]
struct PooledScanBufs {
    spans: Vec<Range<usize>>,
    scratches: Vec<Scratch>,
    slots: Vec<(RidMapping, u64)>,
    /// SFA engine counterparts: SFA scans need no scratch (unit) and the
    /// per-chunk mapping is a single SFA state.
    sfa_scratches: Vec<()>,
    sfa_slots: Vec<(StateId, u64)>,
}

/// Incremental λ-composition state for one in-flight stream (one socket
/// connection, typically). Feed blocks through
/// [`PatternRegistry::scan_block`]; read the verdict with
/// [`PatternRegistry::finish_scan`]. Buffers are reused across requests
/// when the scan is reset, so a long-lived connection slot scans with
/// zero steady-state allocations.
#[derive(Default)]
pub struct StreamScan {
    mapping: RidMapping,
    incoming: RidMapping,
    composed: RidMapping,
    scratch: Scratch,
    compose: (Vec<StateId>, Vec<StateId>),
    /// SFA engine counterparts of `mapping`/`compose` (an SFA prefix is
    /// one SFA state; composition needs one function buffer).
    sfa_mapping: StateId,
    sfa_incoming: StateId,
    sfa_compose: Vec<StateId>,
    pooled: Option<Box<PooledScanBufs>>,
    started: bool,
    dead: bool,
    /// Epoch of the pattern entry this scan is bound to (set on the
    /// first block; see [`RegistryError::PatternReloaded`]).
    epoch: u64,
    bytes: u64,
    transitions: u64,
}

impl StreamScan {
    /// A fresh scan state.
    pub fn new() -> StreamScan {
        StreamScan::default()
    }

    /// Clears verdict-carrying state for the next request, keeping every
    /// buffer's allocation.
    pub fn reset(&mut self) {
        self.started = false;
        self.dead = false;
        self.bytes = 0;
        self.transitions = 0;
    }

    /// Bytes scanned since the last [`reset`](StreamScan::reset).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Transitions executed since the last [`reset`](StreamScan::reset).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// True once the composed prefix mapping has no live run left — the
    /// verdict is already `rejected` and remaining input need not be
    /// scanned (the caller may drain or close early).
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

/// The multi-pattern registry: see the [module docs](self).
pub struct PatternRegistry {
    pool: Arc<ThreadPool>,
    config: RegistryConfig,
    entries: Vec<PatternEntry>,
    /// Counters of patterns no longer resident (removed or evicted),
    /// keyed by id. Pulled back into the live entry when the same id is
    /// re-inserted, so a hot reload never resets a pattern's stats to
    /// zero — [`ServerReport::verify`](crate::serve::ServerReport) can
    /// reconcile per-pattern sums against the connection tally.
    retired: HashMap<String, PatternStats>,
    clock: u64,
    evictions: u64,
}

impl PatternRegistry {
    /// An empty registry with its own shared pool.
    pub fn new(config: RegistryConfig) -> PatternRegistry {
        let pool = Arc::new(ThreadPool::new(config.num_workers));
        PatternRegistry {
            pool,
            config,
            entries: Vec::new(),
            retired: HashMap::new(),
            clock: 0,
            evictions: 0,
        }
    }

    /// Compiles `pattern` (regex) fresh — through the configured
    /// [`ConstructionBudget`] — and pins it under `id`, resolving the
    /// engine plan automatically.
    pub fn insert_regex(&mut self, id: &str, pattern: &str) -> Result<(), RegistryError> {
        self.insert_regex_planned(id, pattern, EnginePlan::Auto)
    }

    /// Like [`insert_regex`](PatternRegistry::insert_regex) with an
    /// explicit engine plan (`Auto` resolves at insert).
    pub fn insert_regex_planned(
        &mut self,
        id: &str,
        pattern: &str,
        plan: EnginePlan,
    ) -> Result<(), RegistryError> {
        let ast = regex::parse(pattern)?;
        let nfa = glushkov::build(&ast)?;
        self.insert_nfa_planned(id, &nfa, plan)
    }

    /// Builds the minimized RI-DFA of `nfa` — through the configured
    /// [`ConstructionBudget`] — and pins it under `id`, resolving the
    /// engine plan automatically.
    pub fn insert_nfa(&mut self, id: &str, nfa: &Nfa) -> Result<(), RegistryError> {
        self.insert_nfa_planned(id, nfa, EnginePlan::Auto)
    }

    /// Like [`insert_nfa`](PatternRegistry::insert_nfa) with an explicit
    /// engine plan.
    pub fn insert_nfa_planned(
        &mut self,
        id: &str,
        nfa: &Nfa,
        plan: EnginePlan,
    ) -> Result<(), RegistryError> {
        let rid = RiDfa::from_nfa_budgeted(nfa, &self.config.budget)?.minimized();
        let ptable = premultiply(&rid.table, rid.stride);
        self.insert_prepared(id, rid, ptable, plan, None, None, None)
    }

    /// Decodes a sealed RI-DFA artifact and pins it under `id` — the
    /// cold-start path: a validated load instead of a powerset
    /// construction. The premultiplied table, the engine plan, and any
    /// precomputed engine tables come verified from the artifact, so
    /// replicas load the compile-time decision instead of re-deriving it
    /// (a v1 artifact carries no plan and resolves at insert).
    pub fn insert_artifact(&mut self, id: &str, bytes: &[u8]) -> Result<(), RegistryError> {
        let artifact::RiDfaArtifact {
            rid,
            premultiplied,
            plan,
            feasible,
            sfa,
            separator,
        } = artifact::ridfa_from_bytes(bytes)?;
        self.insert_prepared(id, rid, premultiplied, plan, feasible, sfa, separator)
    }

    /// Resolves `requested` to a concrete engine for `rid`, building
    /// whatever tables the plan needs and is not already carrying.
    ///
    /// `Auto` runs a trial SFA construction on the shared pool under the
    /// configured budget *capped* by the auto-selection ceilings — a
    /// typed budget trip there is the expected "SFA not viable" signal,
    /// not an error — then falls back to feasible-start pruning when the
    /// interface is wide enough to make boundary seeding the bottleneck,
    /// and to plain lockstep otherwise. An *explicit* `Sfa` request
    /// builds under the full configured budget and surfaces failure.
    fn resolve_plan(
        &self,
        rid: &RiDfa,
        requested: EnginePlan,
        sfa: Option<Sfa>,
        feasible: Option<FeasibleTable>,
        base_bytes: usize,
    ) -> Result<(EnginePlan, Option<Sfa>, Option<FeasibleTable>), RegistryError> {
        match requested {
            EnginePlan::Lockstep => Ok((EnginePlan::Lockstep, None, None)),
            EnginePlan::Sfa => {
                let sfa = match sfa {
                    Some(sfa) => sfa,
                    None => Sfa::build_rid_parallel(rid, &self.config.budget, &self.pool)?,
                };
                Ok((EnginePlan::Sfa, Some(sfa), None))
            }
            EnginePlan::FeasibleStart => {
                let feasible = feasible.unwrap_or_else(|| FeasibleTable::build(rid));
                Ok((EnginePlan::FeasibleStart, None, Some(feasible)))
            }
            EnginePlan::Auto => {
                let capped = ConstructionBudget {
                    max_states: self.config.budget.max_states.min(SFA_AUTO_MAX_STATES),
                    max_table_bytes: self
                        .config
                        .budget
                        .max_table_bytes
                        .min(SFA_AUTO_MAX_TABLE_BYTES),
                };
                // Auto never picks an engine the registry cannot hold:
                // the SFA tables must fit the residency cap next to the
                // pattern's base footprint.
                let headroom = self.config.max_table_bytes.saturating_sub(base_bytes);
                match Sfa::build_rid_parallel(rid, &capped, &self.pool) {
                    Ok(sfa) if sfa.resident_bytes() <= headroom => {
                        return Ok((EnginePlan::Sfa, Some(sfa), None));
                    }
                    _ => {}
                }
                match super::plan::select(None, rid.interface().len()) {
                    EnginePlan::FeasibleStart => Ok((
                        EnginePlan::FeasibleStart,
                        None,
                        Some(feasible.unwrap_or_else(|| FeasibleTable::build(rid))),
                    )),
                    _ => Ok((EnginePlan::Lockstep, None, None)),
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_prepared(
        &mut self,
        id: &str,
        rid: RiDfa,
        ptable: Vec<StateId>,
        requested: EnginePlan,
        feasible: Option<FeasibleTable>,
        sfa: Option<Sfa>,
        separator: Option<u8>,
    ) -> Result<(), RegistryError> {
        if self.index_of(id).is_some() {
            return Err(RegistryError::DuplicatePattern(id.to_string()));
        }
        let base_bytes = resident_footprint(&rid, ptable.len());
        let (plan, sfa, feasible) =
            self.resolve_plan(&rid, requested, sfa, feasible, base_bytes)?;
        let pos = RidCa::interface_positions(&rid);
        // Engine tables are resident too: they ride the same LRU ledger.
        let resident_bytes = base_bytes
            + sfa.as_ref().map_or(0, Sfa::resident_bytes)
            + feasible.as_ref().map_or(0, FeasibleTable::resident_bytes);
        if resident_bytes > self.config.max_table_bytes {
            return Err(RegistryError::Oversized {
                id: id.to_string(),
                bytes: resident_bytes,
                cap: self.config.max_table_bytes,
            });
        }
        // Evict least-recently-used patterns until the newcomer fits.
        while self.resident_bytes() + resident_bytes > self.config.max_table_bytes {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("over cap implies at least one resident entry");
            self.retire(lru);
            self.evictions += 1;
        }
        let mut session = Session::with_shared_pool(Arc::clone(&self.pool));
        let mut stream =
            StreamSession::with_shared_pool(Arc::clone(&self.pool), self.config.block_size);
        // The artifact's record separator drives separator-snapped block
        // planning on the warm stream session: block boundaries land on
        // record boundaries, so speculative starts converge immediately.
        stream.set_separator(separator);
        // Pre-warm both sessions with the *chosen* engine's chunk
        // automaton, so the first request hits matching warm caches (the
        // session caches key on the automaton type).
        match plan {
            EnginePlan::Sfa => {
                let ca = SfaCa::new(sfa.as_ref().expect("resolved Sfa plan carries tables"));
                session.warm(&ca, b"warm");
                stream.warm(&ca, b"warm");
            }
            EnginePlan::FeasibleStart => {
                let ca = FeasibleRidCa::from_inner(
                    RidCa::with_tables(&rid, &pos, &ptable),
                    feasible
                        .as_ref()
                        .expect("resolved FeasibleStart plan carries a table"),
                    Kernel::Auto,
                );
                session.warm(&ca, b"warm");
                stream.warm(&ca, b"warm");
            }
            _ => {
                let ca = ConvergentRidCa::from_inner(
                    RidCa::with_tables(&rid, &pos, &ptable),
                    Kernel::Auto,
                );
                session.warm(&ca, b"warm");
                stream.warm(&ca, b"warm");
            }
        }
        let last_used = self.next_stamp();
        // A re-inserted id continues its retired counters (hot reload
        // must not zero a pattern's stats).
        let stats = self.retired.remove(id).unwrap_or_default();
        self.entries.push(PatternEntry {
            id: id.to_string(),
            rid,
            pos,
            ptable,
            plan,
            sfa,
            feasible,
            separator,
            session,
            stream,
            resident_bytes,
            last_used,
            epoch: last_used,
            stats,
        });
        Ok(())
    }

    /// Drops entry `i`, folding its counters into the retired ledger.
    fn retire(&mut self, i: usize) {
        let entry = self.entries.remove(i);
        self.retired.entry(entry.id).or_default().merge(entry.stats);
    }

    /// Drops the pattern under `id`, freeing its resident bytes and warm
    /// sessions (the shared pool is untouched; the pattern's counters
    /// move to the retired ledger and survive a re-insert). Returns
    /// whether it was resident.
    pub fn remove(&mut self, id: &str) -> bool {
        match self.index_of(id) {
            Some(i) => {
                self.retire(i);
                true
            }
            None => false,
        }
    }

    /// Batch recognition of `text` against pattern `id` on the pattern's
    /// warm session. `num_chunks == 0` picks one chunk per reach-phase
    /// claimant (workers + 1).
    pub fn recognize(
        &mut self,
        id: &str,
        text: &[u8],
        num_chunks: usize,
    ) -> Result<Outcome, RegistryError> {
        let chunks = self.effective_chunks(num_chunks);
        let stamp = self.next_stamp();
        let entry = self.entry_mut(id)?;
        entry.last_used = stamp;
        let PatternEntry {
            rid,
            pos,
            ptable,
            plan,
            sfa,
            feasible,
            session,
            stats,
            ..
        } = entry;
        let outcome = match plan {
            EnginePlan::Sfa => session.recognize(
                &SfaCa::new(sfa.as_ref().expect("Sfa entries carry SFA tables")),
                text,
                chunks,
            ),
            EnginePlan::FeasibleStart => session.recognize(
                &FeasibleRidCa::from_inner(
                    RidCa::with_tables(rid, pos, ptable),
                    feasible
                        .as_ref()
                        .expect("FeasibleStart entries carry a table"),
                    Kernel::Auto,
                ),
                text,
                chunks,
            ),
            _ => session.recognize(
                &ConvergentRidCa::from_inner(RidCa::with_tables(rid, pos, ptable), Kernel::Auto),
                text,
                chunks,
            ),
        };
        stats.requests += 1;
        stats.bytes += text.len() as u64;
        if outcome.accepted {
            stats.accepted += 1;
        } else {
            stats.rejected += 1;
        }
        Ok(outcome)
    }

    /// Like [`recognize`](PatternRegistry::recognize) under a [`Budget`]:
    /// deadline/cancellation trips surface as
    /// [`RegistryError::Recognize`] and count into
    /// [`PatternStats::errors`].
    pub fn recognize_budgeted(
        &mut self,
        id: &str,
        text: &[u8],
        num_chunks: usize,
        budget: &Budget,
    ) -> Result<Outcome, RegistryError> {
        let chunks = self.effective_chunks(num_chunks);
        let stamp = self.next_stamp();
        let entry = self.entry_mut(id)?;
        entry.last_used = stamp;
        let PatternEntry {
            rid,
            pos,
            ptable,
            plan,
            sfa,
            feasible,
            session,
            stats,
            ..
        } = entry;
        let result = match plan {
            EnginePlan::Sfa => session.recognize_budgeted(
                &SfaCa::new(sfa.as_ref().expect("Sfa entries carry SFA tables")),
                text,
                chunks,
                budget,
            ),
            EnginePlan::FeasibleStart => session.recognize_budgeted(
                &FeasibleRidCa::from_inner(
                    RidCa::with_tables(rid, pos, ptable),
                    feasible
                        .as_ref()
                        .expect("FeasibleStart entries carry a table"),
                    Kernel::Auto,
                ),
                text,
                chunks,
                budget,
            ),
            _ => session.recognize_budgeted(
                &ConvergentRidCa::from_inner(RidCa::with_tables(rid, pos, ptable), Kernel::Auto),
                text,
                chunks,
                budget,
            ),
        };
        stats.requests += 1;
        stats.bytes += text.len() as u64;
        match &result {
            Ok(outcome) if outcome.accepted => stats.accepted += 1,
            Ok(_) => stats.rejected += 1,
            Err(_) => stats.errors += 1,
        }
        Ok(result?)
    }

    /// Streaming recognition of `reader` against pattern `id` on the
    /// pattern's warm [`StreamSession`] (bounded memory, early rejection).
    pub fn recognize_stream<R: Read + Send>(
        &mut self,
        id: &str,
        reader: R,
    ) -> Result<StreamOutcome, RegistryError> {
        let stamp = self.next_stamp();
        let entry = self.entry_mut(id)?;
        entry.last_used = stamp;
        let PatternEntry {
            rid,
            pos,
            ptable,
            plan,
            sfa,
            feasible,
            stream,
            stats,
            ..
        } = entry;
        let result = match plan {
            EnginePlan::Sfa => stream.recognize_stream(
                &SfaCa::new(sfa.as_ref().expect("Sfa entries carry SFA tables")),
                reader,
            ),
            EnginePlan::FeasibleStart => stream.recognize_stream(
                &FeasibleRidCa::from_inner(
                    RidCa::with_tables(rid, pos, ptable),
                    feasible
                        .as_ref()
                        .expect("FeasibleStart entries carry a table"),
                    Kernel::Auto,
                ),
                reader,
            ),
            _ => stream.recognize_stream(
                &ConvergentRidCa::from_inner(RidCa::with_tables(rid, pos, ptable), Kernel::Auto),
                reader,
            ),
        }
        .map_err(|e| RegistryError::Stream(StreamError::Io(e)));
        stats.requests += 1;
        match &result {
            Ok(out) => {
                stats.bytes += out.bytes;
                if out.accepted {
                    stats.accepted += 1;
                } else {
                    stats.rejected += 1;
                }
            }
            Err(_) => stats.errors += 1,
        }
        result
    }

    /// Like [`recognize_stream`](PatternRegistry::recognize_stream) under
    /// a [`Budget`].
    pub fn recognize_stream_budgeted<R: Read + Send>(
        &mut self,
        id: &str,
        reader: R,
        budget: &Budget,
    ) -> Result<StreamOutcome, RegistryError> {
        let stamp = self.next_stamp();
        let entry = self.entry_mut(id)?;
        entry.last_used = stamp;
        let PatternEntry {
            rid,
            pos,
            ptable,
            plan,
            sfa,
            feasible,
            stream,
            stats,
            ..
        } = entry;
        let result = match plan {
            EnginePlan::Sfa => stream.recognize_stream_budgeted(
                &SfaCa::new(sfa.as_ref().expect("Sfa entries carry SFA tables")),
                reader,
                budget,
            ),
            EnginePlan::FeasibleStart => stream.recognize_stream_budgeted(
                &FeasibleRidCa::from_inner(
                    RidCa::with_tables(rid, pos, ptable),
                    feasible
                        .as_ref()
                        .expect("FeasibleStart entries carry a table"),
                    Kernel::Auto,
                ),
                reader,
                budget,
            ),
            _ => stream.recognize_stream_budgeted(
                &ConvergentRidCa::from_inner(RidCa::with_tables(rid, pos, ptable), Kernel::Auto),
                reader,
                budget,
            ),
        };
        stats.requests += 1;
        match &result {
            Ok(out) => {
                stats.bytes += out.bytes;
                if out.accepted {
                    stats.accepted += 1;
                } else {
                    stats.rejected += 1;
                }
            }
            Err(_) => stats.errors += 1,
        }
        result.map_err(RegistryError::Stream)
    }

    /// Scans one more block of an in-flight stream (incremental
    /// λ-composition; see [`StreamScan`]). Returns
    /// [`StreamScan::is_dead`] after the block — once dead, further
    /// blocks only count bytes, and the caller may answer `rejected`
    /// early. Dead-cheap per call: the chunk automaton borrows cached
    /// tables and the scan reuses the state's buffers.
    pub fn scan_block(
        &mut self,
        id: &str,
        scan: &mut StreamScan,
        block: &[u8],
    ) -> Result<bool, RegistryError> {
        let stamp = self.next_stamp();
        let entry = self.entry_mut(id)?;
        entry.last_used = stamp;
        if scan.started && scan.epoch != entry.epoch {
            return Err(RegistryError::PatternReloaded { id: id.to_string() });
        }
        scan.bytes += block.len() as u64;
        if scan.dead {
            return Ok(true);
        }
        let first = !scan.started;
        if first {
            scan.started = true;
            scan.epoch = entry.epoch;
        }
        match entry.plan {
            EnginePlan::Sfa => scan_block_step_sfa(&entry.sfa_ca(), scan, block, first),
            EnginePlan::FeasibleStart => scan_block_step(&entry.feasible_ca(), scan, block, first),
            _ => scan_block_step(&entry.lockstep_ca(), scan, block, first),
        }
        Ok(scan.dead)
    }

    /// Like [`scan_block`](PatternRegistry::scan_block), but the block is
    /// split into one span per reach-phase claimant (workers + 1) and
    /// scanned *in parallel* on the shared pool, then the per-span
    /// mappings are composed in order onto the scan's prefix. This is
    /// the big-body lane of the serve layer: a block large enough to be
    /// worth a parallel reach phase goes through here; small blocks
    /// should keep using the serial `scan_block` (the fork-join barrier
    /// costs more than it saves below roughly a worker's L2).
    ///
    /// Verdict-equivalent to feeding the same bytes through
    /// `scan_block` (λ-composition is associative).
    #[allow(unsafe_code)]
    pub fn scan_block_pooled(
        &mut self,
        id: &str,
        scan: &mut StreamScan,
        block: &[u8],
    ) -> Result<bool, RegistryError> {
        let stamp = self.next_stamp();
        let claimants = self.pool.num_workers() + 1;
        let pool = Arc::clone(&self.pool);
        let entry = self.entry_mut(id)?;
        entry.last_used = stamp;
        if scan.started && scan.epoch != entry.epoch {
            return Err(RegistryError::PatternReloaded { id: id.to_string() });
        }
        scan.bytes += block.len() as u64;
        if scan.dead {
            return Ok(true);
        }
        if block.is_empty() {
            return Ok(false);
        }
        let first = !scan.started;
        if first {
            scan.started = true;
            scan.epoch = entry.epoch;
        }
        match entry.plan {
            EnginePlan::Sfa => {
                scan_block_pooled_step_sfa(&entry.sfa_ca(), scan, block, first, &pool, claimants)
            }
            EnginePlan::FeasibleStart => {
                scan_block_pooled_step(&entry.feasible_ca(), scan, block, first, &pool, claimants)
            }
            _ => scan_block_pooled_step(&entry.lockstep_ca(), scan, block, first, &pool, claimants),
        }
        Ok(scan.dead)
    }

    /// Ends an in-flight stream: the verdict of everything fed through
    /// [`scan_block`](PatternRegistry::scan_block) since the last reset.
    /// Updates the pattern's counters and resets `scan` for reuse.
    pub fn finish_scan(&mut self, id: &str, scan: &mut StreamScan) -> Result<bool, RegistryError> {
        let entry = self.entry_mut(id)?;
        if scan.started && scan.epoch != entry.epoch {
            scan.reset();
            return Err(RegistryError::PatternReloaded { id: id.to_string() });
        }
        if !scan.started {
            // Zero-length stream: the verdict of the empty text.
            let mut counter = TransitionCount::default();
            match entry.plan {
                EnginePlan::Sfa => {
                    entry
                        .sfa_ca()
                        .scan_first_into(b"", &mut counter, &mut scan.sfa_mapping)
                }
                EnginePlan::FeasibleStart => {
                    entry
                        .feasible_ca()
                        .scan_first_into(b"", &mut counter, &mut scan.mapping)
                }
                _ => entry
                    .lockstep_ca()
                    .scan_first_into(b"", &mut counter, &mut scan.mapping),
            }
        }
        let accepted = !scan.dead
            && match entry.plan {
                EnginePlan::Sfa => entry.sfa_ca().accepts_mapping(&scan.sfa_mapping),
                EnginePlan::FeasibleStart => entry.feasible_ca().accepts_mapping(&scan.mapping),
                _ => entry.lockstep_ca().accepts_mapping(&scan.mapping),
            };
        entry.stats.requests += 1;
        entry.stats.bytes += scan.bytes;
        if accepted {
            entry.stats.accepted += 1;
        } else {
            entry.stats.rejected += 1;
        }
        scan.reset();
        Ok(accepted)
    }

    /// Records one failed request (deadline, protocol fault, I/O) against
    /// a pattern's counters — used by serving layers whose errors happen
    /// outside the registry's own calls.
    pub fn record_error(&mut self, id: &str) {
        if let Ok(entry) = self.entry_mut(id) {
            entry.stats.errors += 1;
            entry.stats.requests += 1;
        }
    }

    /// The ids of the resident patterns, in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.id.as_str())
    }

    /// Whether `id` is resident.
    pub fn contains(&self, id: &str) -> bool {
        self.index_of(id).is_some()
    }

    /// Number of resident patterns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no pattern is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total resident automaton-table bytes across patterns.
    pub fn resident_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.resident_bytes).sum()
    }

    /// Patterns evicted under byte pressure so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Serving counters of pattern `id`.
    pub fn stats(&self, id: &str) -> Option<PatternStats> {
        self.index_of(id).map(|i| self.entries[i].stats)
    }

    /// The resolved engine plan of pattern `id` (never `Auto`).
    pub fn plan(&self, id: &str) -> Option<EnginePlan> {
        self.index_of(id).map(|i| self.entries[i].plan)
    }

    /// Record-separator hint of pattern `id`, if its artifact carried one.
    pub fn separator(&self, id: &str) -> Option<u8> {
        self.index_of(id).and_then(|i| self.entries[i].separator)
    }

    /// Counters of every pattern this registry has ever served: the
    /// resident entries (whose stats already include any pre-reload
    /// history) plus retired ids that were never re-inserted. Sorted by
    /// id, so serve layers can reconcile per-pattern sums against their
    /// connection tallies even across hot reloads and evictions.
    pub fn all_stats(&self) -> Vec<(String, PatternStats)> {
        let mut out: Vec<(String, PatternStats)> = self
            .entries
            .iter()
            .map(|e| (e.id.clone(), e.stats))
            .collect();
        out.extend(self.retired.iter().map(|(id, s)| (id.clone(), *s)));
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The one shared worker pool (for health inspection and fault
    /// injection in tests).
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// A handle to the shared pool, e.g. to attach further sessions.
    pub fn shared_pool(&self) -> Arc<ThreadPool> {
        Arc::clone(&self.pool)
    }

    /// Health of the shared pool.
    pub fn health(&self) -> PoolHealth {
        self.pool.health()
    }

    /// Number of states of pattern `id`'s RI-DFA, for inspection.
    pub fn num_states(&self, id: &str) -> Option<usize> {
        self.index_of(id).map(|i| self.entries[i].rid.num_states())
    }

    fn effective_chunks(&self, num_chunks: usize) -> usize {
        if num_chunks == 0 {
            self.pool.num_workers() + 1
        } else {
            num_chunks
        }
    }

    fn next_stamp(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn index_of(&self, id: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.id == id)
    }

    fn entry_mut(&mut self, id: &str) -> Result<&mut PatternEntry, RegistryError> {
        match self.index_of(id) {
            Some(i) => Ok(&mut self.entries[i]),
            None => Err(RegistryError::UnknownPattern(id.to_string())),
        }
    }
}

/// One serial block step of a rid-mapping-shaped engine (lockstep or
/// feasible-start — they share mapping/scratch/compose types, so the
/// scan's buffers serve both).
fn scan_block_step<C>(ca: &C, scan: &mut StreamScan, block: &[u8], first: bool)
where
    C: ChunkAutomaton<
        Mapping = RidMapping,
        Scratch = Scratch,
        ComposeScratch = (Vec<StateId>, Vec<StateId>),
    >,
{
    let mut counter = TransitionCount::default();
    if first {
        ca.scan_first_into(block, &mut counter, &mut scan.mapping);
    } else {
        ca.scan_into(block, &mut scan.scratch, &mut counter, &mut scan.incoming);
        ca.compose_into(
            &scan.mapping,
            &scan.incoming,
            &mut scan.compose,
            &mut scan.composed,
        );
        std::mem::swap(&mut scan.mapping, &mut scan.composed);
    }
    scan.transitions += counter.get();
    scan.dead = ca.mapping_is_dead(&scan.mapping);
}

/// One serial block step of the SFA engine: the whole prefix is a single
/// SFA state, composed by inverse table lookup.
fn scan_block_step_sfa(ca: &SfaCa<'_>, scan: &mut StreamScan, block: &[u8], first: bool) {
    let mut counter = TransitionCount::default();
    if first {
        ca.scan_first_into(block, &mut counter, &mut scan.sfa_mapping);
    } else {
        ca.scan_into(block, &mut (), &mut counter, &mut scan.sfa_incoming);
        let mut out = scan.sfa_mapping;
        ca.compose_into(
            &scan.sfa_mapping,
            &scan.sfa_incoming,
            &mut scan.sfa_compose,
            &mut out,
        );
        scan.sfa_mapping = out;
    }
    scan.transitions += counter.get();
    scan.dead = ca.mapping_is_dead(&scan.sfa_mapping);
}

/// One pooled block step of a rid-mapping-shaped engine: span the block
/// across the pool's claimants, scan in parallel, fold serially.
#[allow(unsafe_code)]
fn scan_block_pooled_step<C>(
    ca: &C,
    scan: &mut StreamScan,
    block: &[u8],
    first: bool,
    pool: &ThreadPool,
    claimants: usize,
) where
    C: ChunkAutomaton<
            Mapping = RidMapping,
            Scratch = Scratch,
            ComposeScratch = (Vec<StateId>, Vec<StateId>),
        > + Sync,
{
    let bufs = scan.pooled.get_or_insert_with(Default::default);
    if bufs.scratches.len() < claimants {
        bufs.scratches.resize_with(claimants, Scratch::default);
    }
    chunk_spans_into(block.len(), claimants, &mut bufs.spans);
    let num_tasks = bufs.spans.len();
    if bufs.slots.len() < num_tasks {
        bufs.slots.resize_with(num_tasks, Default::default);
    }
    {
        let PooledScanBufs {
            spans,
            scratches,
            slots,
            ..
        } = &mut **bufs;
        let spans = &*spans;
        let slots = DisjointSlots::new(&mut slots[..num_tasks]);
        pool.invoke_all_scoped(num_tasks, scratches, |scratch, t| {
            let mut counter = TransitionCount::default();
            // SAFETY: the pool claims each task index exactly once,
            // so slot `t` has a single writer, and `t < num_tasks`.
            let (mapping, transitions) = unsafe { slots.get(t) };
            if t == 0 && first {
                ca.scan_first_into(&block[spans[t].clone()], &mut counter, mapping);
            } else {
                ca.scan_into(&block[spans[t].clone()], scratch, &mut counter, mapping);
            }
            *transitions = counter.get();
        });
    }
    // Serial join: fold the span mappings onto the composed prefix,
    // left to right (the first-chunk mapping, if any, is leftmost).
    for t in 0..num_tasks {
        let (mapping, transitions) = &mut bufs.slots[t];
        scan.transitions += *transitions;
        if t == 0 && first {
            std::mem::swap(&mut scan.mapping, mapping);
        } else {
            ca.compose_into(
                &scan.mapping,
                mapping,
                &mut scan.compose,
                &mut scan.composed,
            );
            std::mem::swap(&mut scan.mapping, &mut scan.composed);
        }
    }
    scan.dead = ca.mapping_is_dead(&scan.mapping);
}

/// One pooled block step of the SFA engine.
#[allow(unsafe_code)]
fn scan_block_pooled_step_sfa(
    ca: &SfaCa<'_>,
    scan: &mut StreamScan,
    block: &[u8],
    first: bool,
    pool: &ThreadPool,
    claimants: usize,
) {
    let bufs = scan.pooled.get_or_insert_with(Default::default);
    if bufs.sfa_scratches.len() < claimants {
        bufs.sfa_scratches.resize_with(claimants, Default::default);
    }
    chunk_spans_into(block.len(), claimants, &mut bufs.spans);
    let num_tasks = bufs.spans.len();
    if bufs.sfa_slots.len() < num_tasks {
        bufs.sfa_slots.resize_with(num_tasks, Default::default);
    }
    {
        let PooledScanBufs {
            spans,
            sfa_scratches,
            sfa_slots,
            ..
        } = &mut **bufs;
        let spans = &*spans;
        let slots = DisjointSlots::new(&mut sfa_slots[..num_tasks]);
        pool.invoke_all_scoped(num_tasks, sfa_scratches, |scratch, t| {
            let mut counter = TransitionCount::default();
            // SAFETY: the pool claims each task index exactly once,
            // so slot `t` has a single writer, and `t < num_tasks`.
            let (mapping, transitions) = unsafe { slots.get(t) };
            if t == 0 && first {
                ca.scan_first_into(&block[spans[t].clone()], &mut counter, mapping);
            } else {
                ca.scan_into(&block[spans[t].clone()], scratch, &mut counter, mapping);
            }
            *transitions = counter.get();
        });
    }
    for t in 0..num_tasks {
        let (mapping, transitions) = &mut bufs.sfa_slots[t];
        scan.transitions += *transitions;
        if t == 0 && first {
            scan.sfa_mapping = *mapping;
        } else {
            let mut out = scan.sfa_mapping;
            ca.compose_into(&scan.sfa_mapping, mapping, &mut scan.sfa_compose, &mut out);
            scan.sfa_mapping = out;
        }
    }
    scan.dead = ca.mapping_is_dead(&scan.sfa_mapping);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_registry() -> PatternRegistry {
        let mut reg = PatternRegistry::new(RegistryConfig {
            num_workers: 2,
            block_size: 256,
            ..RegistryConfig::default()
        });
        reg.insert_regex("abb", "(a|b)*abb").unwrap();
        reg.insert_regex("digits", "[0-9]+").unwrap();
        reg.insert_regex("word", "[a-z]+(-[a-z]+)*").unwrap();
        reg
    }

    #[test]
    fn recognizes_across_patterns_on_one_pool() {
        let mut reg = small_registry();
        assert!(reg.recognize("abb", b"bababb", 0).unwrap().accepted);
        assert!(!reg.recognize("abb", b"ba", 0).unwrap().accepted);
        assert!(reg.recognize("digits", b"123456", 4).unwrap().accepted);
        assert!(!reg.recognize("digits", b"12a", 4).unwrap().accepted);
        assert!(reg.recognize("word", b"foo-bar-baz", 3).unwrap().accepted);
        assert_eq!(reg.health().configured, 2);
        let stats = reg.stats("abb").unwrap();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn unknown_and_duplicate_ids_error_typed() {
        let mut reg = small_registry();
        assert!(matches!(
            reg.recognize("nope", b"x", 0),
            Err(RegistryError::UnknownPattern(_))
        ));
        assert!(matches!(
            reg.insert_regex("abb", "a"),
            Err(RegistryError::DuplicatePattern(_))
        ));
        assert!(matches!(
            reg.insert_regex("bad", "(("),
            Err(RegistryError::Construction(_))
        ));
    }

    #[test]
    fn incremental_scan_matches_batch() {
        let mut reg = small_registry();
        let mut scan = StreamScan::new();
        for block in [&b"bab"[..], b"ab", b"b"] {
            reg.scan_block("abb", &mut scan, block).unwrap();
        }
        assert!(reg.finish_scan("abb", &mut scan).unwrap());
        // State resets for reuse.
        reg.scan_block("abb", &mut scan, b"ba").unwrap();
        assert!(!reg.finish_scan("abb", &mut scan).unwrap());
        // Zero-length stream = verdict of the empty text.
        assert!(!reg.finish_scan("abb", &mut scan).unwrap());
    }

    #[test]
    fn dead_prefix_is_detected_early() {
        let mut reg = small_registry();
        let mut scan = StreamScan::new();
        let dead = reg.scan_block("digits", &mut scan, b"abc").unwrap();
        assert!(dead, "non-digit prefix kills every run");
        assert!(scan.is_dead());
        // Further blocks only count bytes.
        reg.scan_block("digits", &mut scan, b"123").unwrap();
        assert_eq!(scan.bytes(), 6);
        assert!(!reg.finish_scan("digits", &mut scan).unwrap());
    }

    #[test]
    fn eviction_under_byte_pressure_is_lru() {
        let mut reg = PatternRegistry::new(RegistryConfig {
            num_workers: 1,
            max_table_bytes: 64 * 1024,
            ..RegistryConfig::default()
        });
        reg.insert_regex("a", "(a|b)*abb").unwrap();
        reg.insert_regex("b", "[0-9]+").unwrap();
        // Touch "a" so "b" is the LRU entry.
        reg.recognize("a", b"abb", 0).unwrap();
        let before = reg.resident_bytes();
        assert!(before <= 64 * 1024);
        // Insert patterns until something must go.
        let mut k = 0;
        while reg.evictions() == 0 {
            reg.insert_regex(&format!("fill{k}"), "[ab]*a[ab]{6}")
                .unwrap();
            k += 1;
            assert!(k < 64, "eviction never triggered");
        }
        assert!(reg.resident_bytes() <= 64 * 1024);
        // The cold pattern went first.
        assert!(!reg.contains("b"));
        assert!(
            reg.contains("a") || k > 1,
            "the touched pattern outlives the cold one"
        );
    }

    #[test]
    fn oversized_pattern_is_rejected_not_thrashed() {
        let mut reg = PatternRegistry::new(RegistryConfig {
            num_workers: 1,
            max_table_bytes: 64,
            ..RegistryConfig::default()
        });
        assert!(matches!(
            reg.insert_regex("big", "(a|b)*abb"),
            Err(RegistryError::Oversized { .. })
        ));
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn artifact_load_equals_fresh_construction() {
        use ridfa_automata::nfa::glushkov;
        use ridfa_automata::regex::parse;
        let nfa = glushkov::build(&parse("(a|b)*abb").unwrap()).unwrap();
        let rid = RiDfa::from_nfa(&nfa).minimized();
        let bytes = artifact::ridfa_to_bytes(&rid);

        let mut fresh = PatternRegistry::new(RegistryConfig {
            num_workers: 1,
            ..RegistryConfig::default()
        });
        fresh.insert_nfa("p", &nfa).unwrap();
        let mut loaded = PatternRegistry::new(RegistryConfig {
            num_workers: 1,
            ..RegistryConfig::default()
        });
        loaded.insert_artifact("p", &bytes).unwrap();

        for text in [&b"abb"[..], b"bababb", b"", b"ba", b"abab"] {
            assert_eq!(
                fresh.recognize("p", text, 0).unwrap().accepted,
                loaded.recognize("p", text, 0).unwrap().accepted,
                "{text:?}"
            );
        }
    }

    #[test]
    fn auto_resolves_sfa_for_small_patterns_end_to_end() {
        let mut reg = small_registry();
        // Small DFAs: the trial SFA build fits the auto caps.
        assert_eq!(reg.plan("abb"), Some(EnginePlan::Sfa));
        // Every entry is resolved — Auto never survives insertion.
        for id in ["abb", "digits", "word"] {
            assert_ne!(reg.plan(id), Some(EnginePlan::Auto), "{id}");
        }
        // The SFA engine serves batch, budgeted, stream, and incremental
        // paths with verdicts identical to the serial oracle.
        use std::io::Cursor;
        for (text, expected) in [
            (&b"bababb"[..], true),
            (b"abb", true),
            (b"", false),
            (b"abba", false),
        ] {
            assert_eq!(reg.recognize("abb", text, 0).unwrap().accepted, expected);
            let out = reg
                .recognize_stream("abb", Cursor::new(text.to_vec()))
                .unwrap();
            assert_eq!(out.accepted, expected, "{text:?}");
            let mut scan = StreamScan::new();
            for block in text.chunks(2) {
                reg.scan_block("abb", &mut scan, block).unwrap();
            }
            assert_eq!(reg.finish_scan("abb", &mut scan).unwrap(), expected);
            let mut scan = StreamScan::new();
            reg.scan_block_pooled("abb", &mut scan, text).unwrap();
            assert_eq!(reg.finish_scan("abb", &mut scan).unwrap(), expected);
        }
    }

    #[test]
    fn explicit_plans_are_honored_and_agree() {
        let mut reg = PatternRegistry::new(RegistryConfig {
            num_workers: 2,
            ..RegistryConfig::default()
        });
        reg.insert_regex_planned("lock", "(a|b)*abb", EnginePlan::Lockstep)
            .unwrap();
        reg.insert_regex_planned("feas", "(a|b)*abb", EnginePlan::FeasibleStart)
            .unwrap();
        reg.insert_regex_planned("sfa", "(a|b)*abb", EnginePlan::Sfa)
            .unwrap();
        assert_eq!(reg.plan("lock"), Some(EnginePlan::Lockstep));
        assert_eq!(reg.plan("feas"), Some(EnginePlan::FeasibleStart));
        assert_eq!(reg.plan("sfa"), Some(EnginePlan::Sfa));
        for text in [&b"bababb"[..], b"abb", b"", b"ba", b"abab", b"zzz"] {
            let l = reg.recognize("lock", text, 0).unwrap().accepted;
            let f = reg.recognize("feas", text, 0).unwrap().accepted;
            let s = reg.recognize("sfa", text, 0).unwrap().accepted;
            assert_eq!(l, f, "{text:?}");
            assert_eq!(l, s, "{text:?}");
        }
    }

    #[test]
    fn stats_survive_hot_reload() {
        let mut reg = small_registry();
        reg.recognize("abb", b"bababb", 0).unwrap();
        reg.recognize("abb", b"nope", 0).unwrap();
        let before = reg.stats("abb").unwrap();
        assert_eq!(before.requests, 2);
        // Hot reload: remove + re-insert under the same id (what
        // `--reload-ms` does on a pattern-file change).
        assert!(reg.remove("abb"));
        assert!(reg.stats("abb").is_none());
        reg.insert_regex("abb", "(a|b)*abb").unwrap();
        let after = reg.stats("abb").unwrap();
        assert_eq!(after, before, "reload must not zero the counters");
        reg.recognize("abb", b"abb", 0).unwrap();
        assert_eq!(reg.stats("abb").unwrap().requests, 3);
        // The retired ledger no longer double-counts the id.
        let all = reg.all_stats();
        assert_eq!(all.iter().filter(|(id, _)| id == "abb").count(), 1);
    }

    #[test]
    fn all_stats_includes_retired_patterns() {
        let mut reg = small_registry();
        reg.recognize("digits", b"123", 0).unwrap();
        reg.remove("digits");
        let all = reg.all_stats();
        let digits = all.iter().find(|(id, _)| id == "digits").unwrap();
        assert_eq!(digits.1.requests, 1);
        assert_eq!(digits.1.accepted, 1);
    }

    #[test]
    fn stats_since_baseline_subtracts() {
        let a = PatternStats {
            requests: 10,
            accepted: 4,
            rejected: 5,
            errors: 1,
            bytes: 1000,
        };
        let b = PatternStats {
            requests: 7,
            accepted: 3,
            rejected: 3,
            errors: 1,
            bytes: 800,
        };
        let d = a.since(&b);
        assert_eq!(d.requests, 3);
        assert_eq!(d.accepted, 1);
        assert_eq!(d.rejected, 2);
        assert_eq!(d.errors, 0);
        assert_eq!(d.bytes, 200);
        // Saturating: a baseline from a *newer* state never underflows.
        let z = b.since(&a);
        assert_eq!(z.requests, 0);
    }

    #[test]
    fn artifact_plan_is_loaded_not_rederived() {
        use ridfa_automata::nfa::glushkov;
        use ridfa_automata::regex::parse;
        use ridfa_automata::ConstructionBudget;
        let nfa = glushkov::build(&parse("(a|b)*abb").unwrap()).unwrap();
        let rid = RiDfa::from_nfa(&nfa).minimized();
        let feasible = crate::csdpa::FeasibleTable::build(&rid);
        // Persist an explicit FeasibleStart decision; Auto here would
        // have picked SFA (small DFA), so a matching loaded plan proves
        // the artifact's decision won.
        let bytes = artifact::ridfa_to_bytes_with_engine(
            &rid,
            EnginePlan::FeasibleStart,
            Some(&feasible),
            None,
            Some(b'\n'),
        );
        let mut reg = PatternRegistry::new(RegistryConfig {
            num_workers: 1,
            ..RegistryConfig::default()
        });
        reg.insert_artifact("p", &bytes).unwrap();
        assert_eq!(reg.plan("p"), Some(EnginePlan::FeasibleStart));
        assert_eq!(reg.separator("p"), Some(b'\n'));
        assert!(reg.recognize("p", b"bababb", 0).unwrap().accepted);
        // An SFA artifact serves without any construction budget at all
        // (the tables come from the file).
        let sfa = Sfa::build_rid_budgeted(&rid, &ConstructionBudget::UNLIMITED).unwrap();
        let bytes =
            artifact::ridfa_to_bytes_with_engine(&rid, EnginePlan::Sfa, None, Some(&sfa), None);
        reg.insert_artifact("q", &bytes).unwrap();
        assert_eq!(reg.plan("q"), Some(EnginePlan::Sfa));
        assert!(reg.recognize("q", b"abb", 0).unwrap().accepted);
        assert!(!reg.recognize("q", b"ab", 0).unwrap().accepted);
    }

    #[test]
    fn streaming_through_registry_works() {
        use std::io::Cursor;
        let mut reg = small_registry();
        let out = reg
            .recognize_stream("abb", Cursor::new(b"bababb".to_vec()))
            .unwrap();
        assert!(out.accepted);
        assert_eq!(out.bytes, 6);
    }
}
