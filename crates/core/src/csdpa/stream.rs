//! Bounded-memory streaming recognition: validate a text of *any* length
//! — a multi-GB log file, a network pipe, stdin — without ever holding it
//! in memory.
//!
//! Every other recognition path ([`recognize`](super::recognize),
//! [`Session`](super::Session)) needs the whole text resident and buffers
//! all `c` chunk mappings before the join. A [`StreamSession`] instead
//! exploits the associativity of λ-composition
//! ([`ChunkAutomaton::compose_into`]): the join is an **incremental left
//! fold**, so only *one* composed prefix mapping has to live at any time,
//! and blocks can be scanned as they arrive.
//!
//! The execution shape is a double-buffered wave pipeline over the
//! persistent [`ThreadPool`]:
//!
//! * the text is read in fixed-size **blocks** into a ring of
//!   `2 × (workers + 1)` reusable buffers — live buffer memory is
//!   `O(workers · block_size)` regardless of stream length
//!   ([`StreamSession::buffer_bytes`] accounts for it exactly);
//! * each wave is one [`invoke_all_scoped`](ThreadPool::invoke_all_scoped)
//!   batch whose tasks are the **scans of the current wave's blocks plus
//!   the read of the next wave** — I/O overlaps scanning because the read
//!   is just another dynamically claimed task;
//! * after each wave the caller **eagerly composes** the finished
//!   mappings into the running prefix *in arrival order*, so mapping
//!   memory is O(1) live mappings (plus the per-slot scan outputs of one
//!   ring) — there is no O(c) buffered join barrier;
//! * a composed prefix with no surviving run
//!   ([`ChunkAutomaton::mapping_is_dead`]) rejects the entire stream, so
//!   the session stops reading **early** instead of scanning gigabytes of
//!   doomed suffix.
//!
//! The verdict, a [`CountedOutcome`](super::CountedOutcome)-style
//! transition tally, and byte/block counts are delivered at EOF as a
//! [`StreamOutcome`]. Once warm, a stream session performs **zero heap
//! allocations per block** (asserted by `tests/stream_alloc.rs` with a
//! counting allocator).

// Mapping/read slots are written by single claimants through
// `DisjointSlots`; see the soundness argument on that type.
#![allow(unsafe_code)]

use std::any::Any;
use std::io::{self, Read};
use std::time::{Duration, Instant};

use ridfa_automata::counter::{NoCount, TransitionCount};

use crate::parallel::{PoolHealth, ThreadPool};

use super::budget::{panic_message, Budget, Degraded, InterruptProbe, StreamError};
use super::session::DisjointSlots;
use super::{ChunkAutomaton, Kernel};

/// Result of a streaming recognition.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Did the device accept the stream?
    pub accepted: bool,
    /// Bytes scanned *and composed into the verdict*. At EOF this is the
    /// whole stream; on [`rejected_early`](StreamOutcome::rejected_early)
    /// it is the validated prefix only — note the read-ahead may have
    /// *consumed* up to one extra wave from the reader beyond this count,
    /// so it is not a resume offset for the underlying reader.
    pub bytes: u64,
    /// Blocks scanned and composed (same caveat as
    /// [`bytes`](StreamOutcome::bytes)).
    pub blocks: u64,
    /// Total executed transitions across all block scans (the paper's
    /// workload measure, as in
    /// [`CountedOutcome`](super::CountedOutcome)).
    pub transitions: u64,
    /// Wall time of the whole stream (read + scan + compose).
    pub elapsed: Duration,
    /// Time the caller spent in eager composition (the streaming
    /// equivalent of the join phase).
    pub compose: Duration,
    /// `true` when the composed prefix died before EOF and the session
    /// stopped reading — the verdict is a definite rejection.
    pub rejected_early: bool,
    /// The scan strategy the interior block scans actually executed,
    /// resolved through [`ChunkAutomaton::effective_kernel`] for the
    /// session's nominal block size (separator-snapped blocks may run
    /// slightly shorter). `None` when the CA does not scan through the
    /// lockstep kernel.
    pub kernel: Option<Kernel>,
}

/// A fixed-size reusable block buffer of the ring.
struct Block {
    data: Vec<u8>,
    /// Valid bytes (`< data.len()` only for the final block).
    len: usize,
}

/// The per-CA-type buffer set a stream session keeps warm.
struct StreamCache<S, M, C> {
    /// One scan scratch per pool worker plus one for the caller.
    scratches: Vec<S>,
    /// One `(mapping, transitions)` output slot per ring block.
    slots: Vec<(M, u64)>,
    /// Dedicated output slot of the stream's very first block — kept
    /// apart from the ring so ring slots only ever hold interior-shaped
    /// mappings and their buffers stay warm across streams.
    first: (M, u64),
    /// The composed prefix `λ_k ⊙ … ⊙ λ_1` of everything consumed so far.
    acc: M,
    /// Output slot of the next composition, swapped with `acc`.
    tmp: M,
    /// The CA's composition working memory.
    compose: C,
}

/// Exclusive state of the read-ahead task (one claimant per wave).
struct ReadAhead<'a, R> {
    reader: &'a mut R,
    blocks: &'a mut [Block],
    /// Snap full blocks back to their last occurrence of this byte
    /// (record separator); the cut-off tail rides in `carry`.
    separator: Option<u8>,
    /// Bytes deferred past the previous block's snap point, to seed the
    /// next block. Always shorter than one block; owned by the session so
    /// it survives across waves.
    carry: &'a mut Vec<u8>,
    /// Blocks of the next wave holding at least one byte.
    filled: usize,
    eof: bool,
    error: Option<io::Error>,
}

/// A persistent streaming recognition session: worker pool + block ring +
/// warm per-worker scan scratches + the O(1) composition state.
///
/// ```
/// use std::io::Cursor;
/// use ridfa_core::csdpa::{RidCa, StreamSession};
/// use ridfa_core::ridfa::RiDfa;
/// use ridfa_automata::{nfa, regex};
///
/// let ast = regex::parse("[ab]*a[ab]{4}").unwrap();
/// let nfa = nfa::glushkov::build(&ast).unwrap();
/// let rid = RiDfa::from_nfa(&nfa).minimized();
/// let ca = RidCa::new(&rid);
///
/// let mut session = StreamSession::new(2, 4096);
/// let text = b"abbaabbbaabab".repeat(1000);
/// let out = session.recognize_stream(&ca, Cursor::new(&text)).unwrap();
/// assert_eq!(out.accepted, nfa.accepts(&text));
/// assert_eq!(out.bytes, text.len() as u64);
/// ```
pub struct StreamSession {
    pool: std::sync::Arc<ThreadPool>,
    block_size: usize,
    /// `2 × (workers + 1)` fixed-size buffers: two waves of one block per
    /// reach-phase claimant.
    blocks: Vec<Block>,
    /// The [`StreamCache`] of the most recent CA type.
    cache: Option<Box<dyn Any + Send>>,
    /// Record separator for boundary snapping
    /// ([`StreamSession::set_separator`]); `None` = plain length-based
    /// blocks.
    separator: Option<u8>,
    /// The snapped-off tail of the previous block, seeding the next one.
    /// Lives outside the ring so [`StreamSession::buffer_bytes`] keeps
    /// its exact `ring × block_size` accounting.
    carry: Vec<u8>,
    /// Why the most recent stream ran degraded, if it did (cleared at the
    /// start of every stream).
    last_degraded: Option<Degraded>,
}

impl StreamSession {
    /// Creates a stream session with `num_workers` (≥ 1) pool workers
    /// reading in `block_size`-byte (≥ 1) blocks. The calling thread
    /// participates in every wave, so scan parallelism is
    /// `num_workers + 1` and the block ring holds
    /// `2 × (num_workers + 1)` buffers.
    pub fn new(num_workers: usize, block_size: usize) -> StreamSession {
        StreamSession::from_pool(ThreadPool::new(num_workers), block_size)
    }

    /// Like [`StreamSession::new`] but with a bounded worker-respawn
    /// budget (see [`ThreadPool::with_respawn_limit`]). A pool below
    /// quorum does not stop a stream — the calling thread drives every
    /// wave itself — but the loss of parallelism is recorded in
    /// [`StreamSession::last_degraded`].
    pub fn with_respawn_limit(
        num_workers: usize,
        block_size: usize,
        respawn_limit: u64,
    ) -> StreamSession {
        StreamSession::from_pool(
            ThreadPool::with_respawn_limit(num_workers, respawn_limit),
            block_size,
        )
    }

    fn from_pool(pool: ThreadPool, block_size: usize) -> StreamSession {
        StreamSession::with_shared_pool(std::sync::Arc::new(pool), block_size)
    }

    /// Creates a stream session on a pool shared with other sessions
    /// (the multi-pattern registry shape: one pool, many warm sessions).
    /// Waves from different sessions serialize on the pool's single
    /// scope slot; each session keeps its own block ring and caches.
    pub fn with_shared_pool(pool: std::sync::Arc<ThreadPool>, block_size: usize) -> StreamSession {
        let block_size = block_size.max(1);
        let ring = 2 * (pool.num_workers() + 1);
        StreamSession {
            pool,
            block_size,
            blocks: (0..ring)
                .map(|_| Block {
                    data: vec![0u8; block_size],
                    len: 0,
                })
                .collect(),
            cache: None,
            separator: None,
            carry: Vec::new(),
            last_degraded: None,
        }
    }

    /// Sets (or clears, with `None`) the record separator for
    /// **separator-snapped block planning**: every *full* block is cut
    /// back to its last occurrence of `sep`, and the severed tail seeds
    /// the next block — the streaming counterpart of
    /// [`chunk_spans_snapped`](super::chunk_spans_snapped). On
    /// record-structured texts (logs, line-oriented protocols) this
    /// aligns block boundaries with record boundaries, so speculative
    /// runs start at the states that actually occur there and converge
    /// within a few bytes instead of a few hundred. A full block with no
    /// separator at all is emitted unsnapped (the degenerate case stays
    /// correct, just unaligned), and the final partial block at EOF is
    /// never snapped. The verdict is independent of the setting — only
    /// where the scan boundaries fall changes.
    pub fn set_separator(&mut self, sep: Option<u8>) {
        self.separator = sep;
        self.carry.clear();
        if sep.is_some() {
            // Worst-case carry is one byte short of a block; reserving it
            // here keeps the steady state allocation-free.
            self.carry.reserve(self.block_size);
        }
    }

    /// The record separator blocks are snapped to, if any.
    pub fn separator(&self) -> Option<u8> {
        self.separator
    }

    /// Creates a session sized to the machine (one pool worker per core,
    /// minus the calling thread).
    pub fn with_available_parallelism(block_size: usize) -> StreamSession {
        let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
        StreamSession::new(cores.saturating_sub(1).max(1), block_size)
    }

    /// Number of pool workers (excluding the participating caller).
    pub fn num_workers(&self) -> usize {
        self.pool.num_workers()
    }

    /// The session's worker pool, for health inspection and fault
    /// injection in tests.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Worker-pool health after the most recent heal pass.
    pub fn health(&self) -> PoolHealth {
        self.pool.health()
    }

    /// Why the most recent stream ran degraded, or `None` if the pool was
    /// at quorum. Cleared at the start of every stream.
    pub fn last_degraded(&self) -> Option<Degraded> {
        self.last_degraded
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of block buffers in the ring
    /// (`2 × (`[`num_workers`](StreamSession::num_workers)` + 1)`).
    pub fn ring_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Exact bytes held by the block ring — the session's text-buffer
    /// footprint, **independent of stream length**:
    /// [`ring_blocks`](StreamSession::ring_blocks)` × `
    /// [`block_size`](StreamSession::block_size).
    pub fn buffer_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.data.capacity()).sum()
    }

    /// Number of live λ-mapping slots a stream of any length uses: one
    /// per ring block, the dedicated first-block slot, and the two
    /// composition accumulators.
    pub fn live_mappings(&self) -> usize {
        self.blocks.len() + 3
    }

    /// Pre-warms every per-worker scratch, mapping slot, and the
    /// composition buffers against `ca` so the next
    /// [`recognize_stream`](StreamSession::recognize_stream) runs
    /// allocation-free from its first block.
    pub fn warm<CA: ChunkAutomaton>(&mut self, ca: &CA, sample: &[u8]) {
        let mut cache = self.take_cache::<CA>();
        let StreamCache {
            scratches,
            slots,
            first,
            acc,
            tmp,
            compose,
        } = &mut *cache;
        for scratch in scratches.iter_mut() {
            ca.scan_into(sample, scratch, &mut NoCount, tmp);
        }
        for (slot, _) in slots.iter_mut() {
            ca.scan_into(sample, &mut scratches[0], &mut NoCount, slot);
        }
        ca.scan_first_into(sample, &mut NoCount, &mut first.0);
        // Two compositions size the accumulator/compose buffers in both
        // roles (first ⊙ interior seeding `acc`, then prefix ⊙ interior).
        ca.compose_into(&first.0, &slots[0].0, compose, acc);
        ca.compose_into(acc, &slots[0].0, compose, tmp);
        std::mem::swap(acc, tmp);
        ca.compose_into(acc, &slots[0].0, compose, tmp);
        self.cache = Some(cache);
    }

    /// Recognizes the entire `reader` stream, scanning it in
    /// [`block_size`](StreamSession::block_size) blocks that are never
    /// all resident: live memory stays `O(workers · block_size)` however
    /// long the stream runs. The verdict and the transition tally are
    /// delivered at EOF (or as soon as the composed prefix dies — see
    /// [`StreamOutcome::rejected_early`]).
    ///
    /// `reader` needs no buffering of its own (the session reads whole
    /// blocks) and may hand out data in arbitrarily small pieces;
    /// [`ErrorKind::Interrupted`](io::ErrorKind::Interrupted) reads are
    /// retried. Any other I/O error aborts recognition and is returned.
    pub fn recognize_stream<CA, R>(&mut self, ca: &CA, reader: R) -> io::Result<StreamOutcome>
    where
        CA: ChunkAutomaton,
        R: Read + Send,
    {
        match self.run_stream(ca, reader, None) {
            Ok(out) => Ok(out),
            Err(StreamError::Io(e)) => Err(e),
            Err(other) => unreachable!("unbudgeted stream cannot be interrupted: {other}"),
        }
    }

    /// Like [`StreamSession::recognize_stream`] but bounded by `budget`:
    /// the deadline/cancellation probe is checked after every wave (and
    /// once per classification block inside kernel scans), so expiry is
    /// noticed within one wave of I/O. On any error — typed interruption
    /// or reader I/O failure — the session remains fully reusable and the
    /// block ring does not grow ([`StreamSession::buffer_bytes`] is
    /// unchanged). Panics escaping the chunk automaton are trapped and
    /// surfaced as [`StreamError::Panicked`].
    pub fn recognize_stream_budgeted<CA, R>(
        &mut self,
        ca: &CA,
        reader: R,
        budget: &Budget,
    ) -> Result<StreamOutcome, StreamError>
    where
        CA: ChunkAutomaton,
        R: Read + Send,
    {
        let probe = budget.probe();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_stream(ca, reader, probe.as_ref())
        })) {
            Ok(result) => result,
            Err(payload) => Err(StreamError::Panicked(panic_message(payload))),
        }
    }

    /// Shared body of the streaming entry points; `probe` is the only
    /// difference between the plain and the budgeted path.
    fn run_stream<CA, R>(
        &mut self,
        ca: &CA,
        reader: R,
        probe: Option<&InterruptProbe>,
    ) -> Result<StreamOutcome, StreamError>
    where
        CA: ChunkAutomaton,
        R: Read + Send,
    {
        self.pool.heal();
        self.last_degraded = None;
        let health = self.pool.health();
        if health.below_quorum() {
            // The caller drives every wave itself, so a depleted pool
            // costs parallelism, not progress — record it and carry on.
            self.last_degraded = Some(Degraded::PoolBelowQuorum {
                live: health.live,
                configured: health.configured,
            });
        }
        let mut reader = reader;
        let mut cache = self.take_cache::<CA>();
        // Stale carry from an aborted stream must not leak into this one.
        self.carry.clear();
        let separator = self.separator;
        let carry = &mut self.carry;
        let StreamCache {
            scratches,
            slots,
            first,
            acc,
            tmp,
            compose,
        } = &mut *cache;

        let wave = self.pool.num_workers() + 1;
        debug_assert_eq!(self.blocks.len(), 2 * wave);
        debug_assert_eq!(slots.len(), 2 * wave);

        let start = Instant::now();
        let mut compose_time = Duration::ZERO;
        let mut bytes = 0u64;
        let mut blocks_done = 0u64;
        let mut transitions = 0u64;
        let mut rejected_early = false;

        // Prologue: the first wave is read on the caller (nothing to
        // overlap with yet).
        let (w0, w1) = self.blocks.split_at_mut(wave);
        let mut prologue = ReadAhead {
            reader: &mut reader,
            blocks: w0,
            separator,
            carry: &mut *carry,
            filled: 0,
            eof: false,
            error: None,
        };
        fill_wave(&mut prologue);
        let mut eof = prologue.eof;
        let mut cur_count = prologue.filled;
        if let Some(e) = prologue.error {
            self.cache = Some(cache);
            return Err(StreamError::Io(e));
        }
        let (mut cur_wave, mut next_wave) = (&mut *w0, &mut *w1);

        let mut cur = 0usize; // ring half holding the wave being scanned
        let mut first_wave = true;
        while cur_count > 0 {
            let read_tasks = usize::from(!eof);
            let num_tasks = cur_count + read_tasks;

            let mut read_ahead = ReadAhead {
                reader: &mut reader,
                blocks: &mut *next_wave,
                separator,
                carry: &mut *carry,
                filled: 0,
                eof: false,
                error: None,
            };
            {
                // Exclusive single-claimant cells: the read-ahead state
                // for task 0, the first-block slot, and one
                // (mapping, count) ring slot per scan task.
                let read_cell = DisjointSlots::new(std::slice::from_mut(&mut read_ahead));
                let first_cell = DisjointSlots::new(std::slice::from_mut(first));
                let slot_cells = DisjointSlots::new(&mut slots[..]);
                let scan_wave: &[Block] = cur_wave;
                let slot_base = cur * wave;
                let is_first_wave = first_wave;
                self.pool
                    .invoke_all_scoped(num_tasks, scratches, |scratch, t| {
                        ca.arm_interrupt(scratch, probe);
                        if probe.is_some_and(|p| p.should_stop()) {
                            return; // abandoned: the post-wave check bails out
                        }
                        if t < read_tasks {
                            // SAFETY: task 0 has exactly one claimant.
                            fill_wave(unsafe { read_cell.get(0) });
                        } else {
                            let b = t - read_tasks;
                            let block = &scan_wave[b];
                            let mut counter = TransitionCount::default();
                            if is_first_wave && b == 0 {
                                // SAFETY: only the stream's first scan
                                // task touches the first-block slot.
                                let (mapping, count) = unsafe { first_cell.get(0) };
                                ca.scan_first_into(&block.data[..block.len], &mut counter, mapping);
                                *count = counter.get();
                            } else {
                                // SAFETY: scan task `t` is the only
                                // claimant of slot `slot_base + b`.
                                let (mapping, count) = unsafe { slot_cells.get(slot_base + b) };
                                ca.scan_into(
                                    &block.data[..block.len],
                                    scratch,
                                    &mut counter,
                                    mapping,
                                );
                                *count = counter.get();
                            }
                        }
                    });
            }

            // A budget trip mid-wave leaves partial slot data: discard
            // the wave and surface the typed error. The ring and the
            // cache are restored, so the session stays reusable.
            if probe.is_some_and(|p| p.should_stop()) {
                let err = probe
                    .and_then(|p| p.status())
                    .expect("tripped probe reports a status");
                self.cache = Some(cache);
                return Err(err.into());
            }

            // Eager in-order composition of the finished wave: the only
            // mapping that survives it is the composed prefix `acc`. The
            // first two blocks seed `acc` directly (`first ⊙ block`), so
            // `acc`/`tmp` only ever hold composition-shaped mappings and
            // keep their buffers warm across streams; a single-block
            // stream takes its verdict straight from the first slot.
            let compose_start = Instant::now();
            let mut b = 0;
            if first_wave {
                transitions += first.1;
                bytes += cur_wave[0].len as u64;
                blocks_done += 1;
                b = 1;
                if cur_count >= 2 {
                    transitions += slots[cur * wave + 1].1;
                    bytes += cur_wave[1].len as u64;
                    blocks_done += 1;
                    ca.compose_into(&first.0, &slots[cur * wave + 1].0, compose, acc);
                    b = 2;
                }
            }
            while b < cur_count {
                let slot = cur * wave + b;
                transitions += slots[slot].1;
                bytes += cur_wave[b].len as u64;
                blocks_done += 1;
                ca.compose_into(acc, &slots[slot].0, compose, tmp);
                std::mem::swap(acc, tmp);
                b += 1;
            }
            compose_time += compose_start.elapsed();
            first_wave = false;

            if let Some(e) = read_ahead.error {
                self.cache = Some(cache);
                return Err(StreamError::Io(e));
            }
            eof |= read_ahead.eof;
            let next_count = if read_tasks == 1 {
                read_ahead.filled
            } else {
                0
            };

            // A dead prefix rejects every possible continuation: stop
            // reading instead of scanning the rest of the stream. (`acc`
            // is only seeded once two blocks exist; a single-block
            // stream is already at EOF.)
            let prefix_dead = if blocks_done >= 2 {
                ca.mapping_is_dead(acc)
            } else {
                ca.mapping_is_dead(&first.0)
            };
            if prefix_dead && !(eof && next_count == 0) {
                rejected_early = true;
                break;
            }

            cur_count = next_count;
            std::mem::swap(&mut cur_wave, &mut next_wave);
            cur = 1 - cur;
        }

        let accepted = if rejected_early {
            false
        } else if blocks_done == 0 {
            // Empty stream: acceptance of ε via one empty first scan.
            ca.scan_first_into(b"", &mut NoCount, &mut first.0);
            ca.accepts_mapping(&first.0)
        } else if blocks_done == 1 {
            ca.accepts_mapping(&first.0)
        } else {
            ca.accepts_mapping(acc)
        };
        self.cache = Some(cache);
        Ok(StreamOutcome {
            accepted,
            bytes,
            blocks: blocks_done,
            transitions,
            elapsed: start.elapsed(),
            compose: compose_time,
            rejected_early,
            kernel: ca.effective_kernel(self.block_size),
        })
    }

    /// The warm buffer set for `CA`, rebuilt if the session last served a
    /// different CA type.
    fn take_cache<CA: ChunkAutomaton>(
        &mut self,
    ) -> Box<StreamCache<CA::Scratch, CA::Mapping, CA::ComposeScratch>> {
        if let Some(cache) = self.cache.take() {
            if let Ok(typed) = cache.downcast() {
                return typed;
            }
        }
        let claimants = self.pool.num_workers() + 1;
        Box::new(StreamCache {
            scratches: (0..claimants).map(|_| CA::Scratch::default()).collect(),
            slots: (0..2 * claimants)
                .map(|_| (CA::Mapping::default(), 0))
                .collect(),
            first: (CA::Mapping::default(), 0),
            acc: CA::Mapping::default(),
            tmp: CA::Mapping::default(),
            compose: CA::ComposeScratch::default(),
        })
    }
}

/// Fills consecutive blocks of `ra.blocks` until the reader is exhausted
/// or the wave is full, recording the filled-block count and EOF. Runs on
/// whichever claimant takes the read task.
///
/// Each block is seeded with the carry left by the previous block's
/// separator snap, then topped up from the reader. EOF is detected from
/// the *raw* read (the reader could not fill the remainder) — a snapped
/// block is legitimately short without being the last one. Full blocks
/// are snapped back to their last separator (when one is configured and
/// present), the severed tail becoming the next block's carry.
fn fill_wave<R: Read>(ra: &mut ReadAhead<'_, R>) {
    for block in ra.blocks.iter_mut() {
        let seed = ra.carry.len();
        debug_assert!(seed < block.data.len(), "carry is always < one block");
        block.data[..seed].copy_from_slice(ra.carry);
        ra.carry.clear();
        match fill_block(ra.reader, &mut block.data[seed..]) {
            Ok(n) => {
                let total = seed + n;
                if total == 0 {
                    ra.eof = true;
                    return;
                }
                if n < block.data.len() - seed {
                    // The reader ran dry mid-block: this is the stream's
                    // final block, emitted whole (never snapped).
                    block.len = total;
                    ra.filled += 1;
                    ra.eof = true;
                    return;
                }
                // A full block: snap back to the last record separator so
                // the next block starts on a record boundary. No
                // separator in the whole block → emit unsnapped.
                block.len = total;
                if let Some(sep) = ra.separator {
                    if let Some(pos) = block.data[..total].iter().rposition(|&b| b == sep) {
                        ra.carry.extend_from_slice(&block.data[pos + 1..total]);
                        block.len = pos + 1;
                    }
                }
                ra.filled += 1;
            }
            Err(e) => {
                ra.error = Some(e);
                ra.eof = true;
                return;
            }
        }
    }
}

/// Reads until `buf` is full or EOF, retrying
/// [`Interrupted`](io::ErrorKind::Interrupted) and accepting arbitrarily
/// short reads (1-byte readers, block-misaligned pipes).
fn fill_block(reader: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csdpa::{recognize, Executor, RidCa};
    use crate::ridfa::construct::tests::figure1_nfa;
    use crate::ridfa::RiDfa;
    use std::io::Cursor;

    #[test]
    fn stream_matches_one_shot_on_figure1_language() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let mut session = StreamSession::new(2, 64);
        for pump in [0usize, 1, 3, 100, 1000] {
            let mut text = b"aabcab".repeat(pump);
            for tail in [false, true] {
                if tail {
                    text.push(b'c');
                }
                let expected = recognize(&ca, &text, 4, Executor::Serial).accepted;
                let out = session.recognize_stream(&ca, Cursor::new(&text)).unwrap();
                assert_eq!(out.accepted, expected, "pump {pump} tail {tail}");
            }
        }
    }

    #[test]
    fn empty_stream_is_epsilon() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let mut session = StreamSession::new(1, 4096);
        let out = session
            .recognize_stream(&ca, Cursor::new(&b""[..]))
            .unwrap();
        assert_eq!(out.accepted, nfa.accepts(b""));
        assert_eq!(out.bytes, 0);
        assert_eq!(out.blocks, 0);
    }

    #[test]
    fn transitions_match_block_aligned_one_shot() {
        // With block_size = text/2 the stream sees exactly the two chunks
        // of the one-shot device: the tallies must agree.
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let text = b"aabcab";
        let counted = crate::csdpa::recognize_counted(&ca, text, 2, Executor::Serial);
        let mut session = StreamSession::new(1, 3);
        let out = session
            .recognize_stream(&ca, Cursor::new(&text[..]))
            .unwrap();
        assert_eq!(out.transitions, counted.transitions, "Fig. 1 tally");
        assert_eq!(out.blocks, 2);
        assert_eq!(out.accepted, counted.accepted);
    }

    #[test]
    fn early_rejection_stops_reading() {
        // 'z' kills every run immediately; the session must not consume
        // the whole 10 MiB stream.
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let mut text = b"aabcab".repeat(4);
        text.push(b'z');
        text.extend(std::iter::repeat_n(b'a', 10 << 20));
        let mut session = StreamSession::new(2, 4096);
        let out = session.recognize_stream(&ca, Cursor::new(&text)).unwrap();
        assert!(!out.accepted);
        assert!(out.rejected_early);
        assert!(
            out.bytes < text.len() as u64 / 2,
            "read {} of {} bytes",
            out.bytes,
            text.len()
        );
    }

    #[test]
    fn io_errors_propagate() {
        struct Broken;
        impl Read for Broken {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::ConnectionReset, "gone"))
            }
        }
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let mut session = StreamSession::new(1, 1024);
        let err = session.recognize_stream(&ca, Broken).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // The session survives the error.
        let out = session
            .recognize_stream(&ca, Cursor::new(&b"aabcab"[..]))
            .unwrap();
        assert!(out.accepted);
    }

    #[test]
    fn buffer_accounting_is_constant() {
        let mut session = StreamSession::new(3, 8192);
        let expected = 2 * (session.num_workers() + 1) * 8192;
        assert_eq!(session.buffer_bytes(), expected);
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let text = b"aabcab".repeat(50_000); // ≫ ring capacity
        let out = session.recognize_stream(&ca, Cursor::new(&text)).unwrap();
        assert!(out.accepted);
        assert_eq!(
            session.buffer_bytes(),
            expected,
            "ring must not grow with stream length"
        );
        // Separator snapping keeps its carry outside the ring accounting.
        session.set_separator(Some(b'c'));
        let out = session.recognize_stream(&ca, Cursor::new(&text)).unwrap();
        assert!(out.accepted);
        assert_eq!(session.buffer_bytes(), expected, "carry is not ring memory");
    }

    #[test]
    fn fill_wave_snaps_full_blocks_at_separators() {
        let text = b"aaa bb cccc d eeee ff";
        let mut reader = Cursor::new(&text[..]);
        let mut blocks: Vec<Block> = (0..4)
            .map(|_| Block {
                data: vec![0u8; 8],
                len: 0,
            })
            .collect();
        let mut carry = Vec::new();
        let mut ra = ReadAhead {
            reader: &mut reader,
            blocks: &mut blocks,
            separator: Some(b' '),
            carry: &mut carry,
            filled: 0,
            eof: false,
            error: None,
        };
        fill_wave(&mut ra);
        assert!(ra.eof);
        assert_eq!(ra.filled, 3);
        // Every full (non-final) block ends exactly at a separator…
        assert_eq!(&blocks[0].data[..blocks[0].len], b"aaa bb ");
        assert_eq!(&blocks[1].data[..blocks[1].len], b"cccc d ");
        // …the final block keeps the unsnapped remainder…
        assert_eq!(&blocks[2].data[..blocks[2].len], b"eeee ff");
        // …and no byte is lost or duplicated.
        let total: Vec<u8> = blocks[..3]
            .iter()
            .flat_map(|b| b.data[..b.len].iter().copied())
            .collect();
        assert_eq!(total, text);
        assert!(carry.is_empty());
    }

    #[test]
    fn fill_wave_without_separator_in_block_emits_unsnapped() {
        // No separator anywhere: blocks stay full-length, carry stays
        // empty — the degenerate case must not stall or shrink blocks.
        let text = b"aaaaaaaaaaaaaaaa"; // 2 × 8 bytes
        let mut reader = Cursor::new(&text[..]);
        let mut blocks: Vec<Block> = (0..3)
            .map(|_| Block {
                data: vec![0u8; 8],
                len: 0,
            })
            .collect();
        let mut carry = Vec::new();
        let mut ra = ReadAhead {
            reader: &mut reader,
            blocks: &mut blocks,
            separator: Some(b'\n'),
            carry: &mut carry,
            filled: 0,
            eof: false,
            error: None,
        };
        fill_wave(&mut ra);
        assert_eq!(ra.filled, 2);
        assert_eq!(blocks[0].len, 8);
        assert_eq!(blocks[1].len, 8);
        assert!(carry.is_empty());
    }

    #[test]
    fn separator_snapping_preserves_the_verdict() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let mut plain = StreamSession::new(2, 64);
        let mut snapped = StreamSession::new(2, 64);
        snapped.set_separator(Some(b'c'));
        assert_eq!(snapped.separator(), Some(b'c'));
        for pump in [0usize, 1, 3, 50, 400] {
            let mut text = b"aabcab".repeat(pump);
            for tail in [false, true] {
                if tail {
                    text.push(b'c');
                }
                let a = plain.recognize_stream(&ca, Cursor::new(&text)).unwrap();
                let b = snapped.recognize_stream(&ca, Cursor::new(&text)).unwrap();
                assert_eq!(a.accepted, b.accepted, "pump {pump} tail {tail}");
                assert_eq!(a.bytes, b.bytes, "snapping must not drop bytes");
                // Snapped blocks are shorter, never longer: block count
                // can only grow.
                assert!(b.blocks >= a.blocks, "pump {pump} tail {tail}");
            }
        }
    }

    #[test]
    fn stream_outcome_reports_the_effective_kernel() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        // Plain RidCa does not expose a kernel choice.
        let plain = RidCa::new(&rid);
        let mut session = StreamSession::new(1, 64);
        let text = b"aabcab".repeat(100);
        let out = session
            .recognize_stream(&plain, Cursor::new(&text))
            .unwrap();
        assert_eq!(out.kernel, None);
        // The convergent CA reports what its dispatch resolves to for the
        // block size — a pinned kernel comes back verbatim.
        let conv = crate::csdpa::ConvergentRidCa::with_kernel(&rid, crate::csdpa::Kernel::PerRun);
        let out = session.recognize_stream(&conv, Cursor::new(&text)).unwrap();
        assert_eq!(out.kernel, Some(crate::csdpa::Kernel::PerRun));
        assert_eq!(out.accepted, nfa.accepts(&text));
    }
}
