//! Deadlines and cooperative cancellation for recognition.
//!
//! A [`Budget`] carries an optional wall-clock deadline and an optional
//! [`CancelToken`]; the budgeted entry points
//! ([`recognize_budgeted`](super::recognize_budgeted),
//! [`Session::recognize_budgeted`](super::Session::recognize_budgeted),
//! [`StreamSession::recognize_stream_budgeted`](super::StreamSession::recognize_stream_budgeted))
//! thread it through the reach phase as an [`InterruptProbe`]:
//!
//! * the probe is checked at chunk/wave boundaries by the executors, and
//! * inside the scan [`kernel`](super::kernel) once per classification
//!   block (4 KiB), so even a single giant chunk honors a deadline with
//!   bounded latency;
//! * a check is one relaxed atomic load on the already-tripped path, and
//!   one `Instant::now()` per 4 KiB otherwise — amortized to well under
//!   1% of scan cost and entirely allocation-free;
//! * once any claimant trips the probe, every other worker observes the
//!   shared flag at its next boundary and abandons its chunk.
//!
//! The unbudgeted entry points arm no probe and keep their historical
//! byte-for-byte hot loops.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation handle: clone it, hand one side to the
/// recognizer (via [`Budget::cancel`]) and keep the other to call
/// [`cancel`](CancelToken::cancel) from any thread.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called on any
    /// clone of this token.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Resource bounds for one recognition call: an optional wall-clock
/// deadline and an optional cancellation token. The default budget is
/// unlimited.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Wall-clock instant after which the call fails with
    /// [`RecognizeError::DeadlineExceeded`].
    pub deadline: Option<Instant>,
    /// Cooperative cancellation: when the token fires, the call fails
    /// with [`RecognizeError::Cancelled`].
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// The unlimited budget (no deadline, no cancellation).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A budget with an absolute deadline.
    pub fn with_deadline(deadline: Instant) -> Budget {
        Budget {
            deadline: Some(deadline),
            cancel: None,
        }
    }

    /// A budget expiring `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Budget {
        Budget::with_deadline(Instant::now() + timeout)
    }

    /// A budget with only a cancellation token.
    pub fn with_cancel(token: &CancelToken) -> Budget {
        Budget {
            deadline: None,
            cancel: Some(token.clone()),
        }
    }

    /// Builder-style: adds a cancellation token.
    pub fn cancelled_by(mut self, token: &CancelToken) -> Budget {
        self.cancel = Some(token.clone());
        self
    }

    /// True when nothing bounds the call.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// Materializes the probe the executors thread through the scan
    /// kernel; `None` for an unlimited budget (nothing to check, the
    /// unbudgeted hot loops run untouched).
    pub(crate) fn probe(&self) -> Option<InterruptProbe> {
        if self.is_unlimited() {
            return None;
        }
        Some(InterruptProbe {
            shared: Arc::new(ProbeShared {
                tripped: AtomicU8::new(TRIP_NONE),
                deadline: self.deadline,
                cancel: self.cancel.clone(),
            }),
        })
    }
}

const TRIP_NONE: u8 = 0;
const TRIP_DEADLINE: u8 = 1;
const TRIP_CANCELLED: u8 = 2;

/// The shared interrupt flag of one budgeted call, checked by every
/// claimant at chunk/block boundaries. Cloning shares the flag (one
/// `Arc` bump — no allocation on the scan path).
#[derive(Debug, Clone)]
pub struct InterruptProbe {
    shared: Arc<ProbeShared>,
}

#[derive(Debug)]
struct ProbeShared {
    /// `TRIP_*` — which bound fired first, if any.
    tripped: AtomicU8,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl InterruptProbe {
    /// Returns true when the call should stop: a bound already fired, the
    /// token was cancelled, or the deadline passed. The first trip is
    /// recorded so every other claimant short-circuits on one relaxed
    /// load.
    #[inline]
    pub fn should_stop(&self) -> bool {
        let shared = &*self.shared;
        if shared.tripped.load(Ordering::Relaxed) != TRIP_NONE {
            return true;
        }
        if let Some(cancel) = &shared.cancel {
            if cancel.is_cancelled() {
                shared.tripped.store(TRIP_CANCELLED, Ordering::Relaxed);
                return true;
            }
        }
        if let Some(deadline) = shared.deadline {
            if Instant::now() >= deadline {
                shared.tripped.store(TRIP_DEADLINE, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// The typed error of the bound that fired, if any.
    pub fn status(&self) -> Option<RecognizeError> {
        match self.shared.tripped.load(Ordering::Relaxed) {
            TRIP_DEADLINE => Some(RecognizeError::DeadlineExceeded),
            TRIP_CANCELLED => Some(RecognizeError::Cancelled),
            _ => None,
        }
    }
}

/// Why a budgeted recognition call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecognizeError {
    /// The [`Budget`] deadline passed before the verdict was reached.
    DeadlineExceeded,
    /// The [`CancelToken`] fired before the verdict was reached.
    Cancelled,
    /// A scan or composition panicked; the panic was contained at the
    /// API boundary and the session/pool remain usable. The payload's
    /// message, if it had one.
    Panicked(String),
}

impl fmt::Display for RecognizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecognizeError::DeadlineExceeded => write!(f, "recognition deadline exceeded"),
            RecognizeError::Cancelled => write!(f, "recognition cancelled"),
            RecognizeError::Panicked(msg) => write!(f, "recognition panicked: {msg}"),
        }
    }
}

impl std::error::Error for RecognizeError {}

/// Why a budgeted streaming recognition call failed.
#[derive(Debug)]
pub enum StreamError {
    /// The reader failed mid-stream.
    Io(io::Error),
    /// The [`Budget`] deadline passed before the stream ended.
    DeadlineExceeded,
    /// The [`CancelToken`] fired before the stream ended.
    Cancelled,
    /// A scan or composition panicked; contained at the API boundary,
    /// the session remains usable.
    Panicked(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "stream read failed: {e}"),
            StreamError::DeadlineExceeded => write!(f, "stream recognition deadline exceeded"),
            StreamError::Cancelled => write!(f, "stream recognition cancelled"),
            StreamError::Panicked(msg) => write!(f, "stream recognition panicked: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> StreamError {
        StreamError::Io(e)
    }
}

impl From<RecognizeError> for StreamError {
    fn from(e: RecognizeError) -> StreamError {
        match e {
            RecognizeError::DeadlineExceeded => StreamError::DeadlineExceeded,
            RecognizeError::Cancelled => StreamError::Cancelled,
            RecognizeError::Panicked(msg) => StreamError::Panicked(msg),
        }
    }
}

/// Why a session served a request in degraded (serial) mode; see
/// [`Session::last_degraded`](super::Session::last_degraded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degraded {
    /// The shared pool had fewer than half its configured workers alive
    /// (and healing could not restore quorum), so the reach phase ran
    /// serially on the caller instead of speculatively on a gutted pool.
    PoolBelowQuorum {
        /// Live workers at dispatch time.
        live: usize,
        /// Workers the pool was configured with.
        configured: usize,
    },
}

impl fmt::Display for Degraded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Degraded::PoolBelowQuorum { live, configured } => write!(
                f,
                "pool below quorum ({live}/{configured} workers live): ran serially"
            ),
        }
    }
}

/// Extracts a human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_has_no_probe() {
        assert!(Budget::unlimited().is_unlimited());
        assert!(Budget::default().probe().is_none());
    }

    #[test]
    fn expired_deadline_trips_immediately() {
        let budget = Budget::with_deadline(Instant::now() - Duration::from_millis(1));
        let probe = budget.probe().unwrap();
        assert!(probe.should_stop());
        assert_eq!(probe.status(), Some(RecognizeError::DeadlineExceeded));
    }

    #[test]
    fn cancel_token_trips_all_clones() {
        let token = CancelToken::new();
        let probe = Budget::with_cancel(&token).probe().unwrap();
        assert!(!probe.should_stop());
        assert!(probe.status().is_none());
        token.cancel();
        let clone = probe.clone();
        assert!(clone.should_stop());
        assert_eq!(probe.status(), Some(RecognizeError::Cancelled));
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let budget = Budget::with_timeout(Duration::from_secs(3600));
        let probe = budget.probe().unwrap();
        assert!(!probe.should_stop());
        assert!(probe.status().is_none());
    }

    #[test]
    fn cancellation_wins_when_checked_first() {
        // Both bounds violated: the cancel check runs before the
        // deadline check, so the recorded reason is Cancelled.
        let token = CancelToken::new();
        token.cancel();
        let budget =
            Budget::with_deadline(Instant::now() - Duration::from_millis(1)).cancelled_by(&token);
        let probe = budget.probe().unwrap();
        assert!(probe.should_stop());
        assert_eq!(probe.status(), Some(RecognizeError::Cancelled));
    }

    #[test]
    fn errors_display_and_convert() {
        assert_eq!(
            RecognizeError::DeadlineExceeded.to_string(),
            "recognition deadline exceeded"
        );
        let s: StreamError = RecognizeError::Cancelled.into();
        assert!(matches!(s, StreamError::Cancelled));
        let s: StreamError = io::Error::new(io::ErrorKind::WouldBlock, "nope").into();
        assert!(matches!(s, StreamError::Io(_)));
        assert!(StreamError::Panicked("x".into()).to_string().contains('x'));
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        assert_eq!(panic_message(Box::new("boom")), "boom");
        assert_eq!(panic_message(Box::new(String::from("kaboom"))), "kaboom");
        assert_eq!(panic_message(Box::new(42u32)), "non-string panic payload");
    }
}
