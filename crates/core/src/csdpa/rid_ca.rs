//! The reduced-interface chunk automaton (RID, paper Sect. 3.2): runs only
//! from the RI-DFA *interface* states — as many as the NFA has states, or
//! fewer after interface minimization — with deterministic O(1) transitions
//! per byte. This combines the state-reduction of an NFA with the speed of
//! a DFA, which is the paper's whole point.

use ridfa_automata::counter::Counter;
use ridfa_automata::{StateId, DEAD};

use crate::ridfa::RiDfa;

use super::kernel::{self, DenseTable, Kernel, Scratch};
use super::ChunkAutomaton;

/// CSDPA chunk automaton wrapping an [`RiDfa`].
///
/// Interior scans use the per-run path of the scan [`kernel`]; the
/// convergence-merging variant is
/// [`ConvergentRidCa`](super::ConvergentRidCa).
#[derive(Debug, Clone)]
pub struct RidCa<'a> {
    rid: &'a RiDfa,
    /// `pos[p]` = index of interface state `p` inside
    /// [`RiDfa::interface`], or `u32::MAX` for non-interface states.
    /// Owned when built by [`new`](RidCa::new), borrowed when a registry
    /// already holds it.
    pos: std::borrow::Cow<'a, [u32]>,
    /// Premultiplied transition table (entries are `target * stride`).
    ptable: std::borrow::Cow<'a, [StateId]>,
}

/// The λ mapping a RID chunk scan (or composition) produces.
///
/// Scans only ever yield the first two shapes; composition introduces the
/// set-valued shapes, because the interface function can expand one last
/// active state into several interface states — `λ₂ ⊙ λ₁` maps a start
/// to a *set* even though each `λᵢ` is single-valued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RidMapping {
    /// First chunk: the single run from the known initial state
    /// ([`DEAD`](ridfa_automata::DEAD) if it died).
    First(StateId),
    /// Interior chunk: `lasts[i]` = last active state of the run started
    /// in `interface()[i]` ([`DEAD`](ridfa_automata::DEAD) if it died).
    Interior(Vec<StateId>),
    /// A composed prefix whose leftmost factor was a first-chunk mapping:
    /// the set of possible last active states reachable from the known
    /// initial state (sorted, deduplicated; empty = every run died).
    Prefix(Vec<StateId>),
    /// A composition of interior mappings: row `i` holds the sorted set
    /// of possible last active states of the run started in
    /// `interface()[i]`, stored CSR-style as
    /// `lasts[offsets[i]..offsets[i + 1]]`.
    Composed {
        /// `interface().len() + 1` row boundaries into `lasts`.
        offsets: Vec<u32>,
        /// Concatenated per-row last-active-state sets.
        lasts: Vec<StateId>,
    },
}

impl Default for RidMapping {
    /// An empty interior mapping slot, ready to be scanned into.
    fn default() -> RidMapping {
        RidMapping::Interior(Vec::new())
    }
}

impl RidMapping {
    /// Reclaims the largest buffer of the current shape, so converting a
    /// slot between shapes keeps its allocation.
    fn take_vec(&mut self) -> Vec<StateId> {
        match self {
            RidMapping::First(_) => Vec::new(),
            RidMapping::Interior(v) | RidMapping::Prefix(v) => std::mem::take(v),
            RidMapping::Composed { lasts, .. } => std::mem::take(lasts),
        }
    }

    /// The interior `lasts` buffer, converting (and keeping any existing
    /// buffer's capacity) if the slot held another shape.
    pub(super) fn interior_buf(&mut self) -> &mut Vec<StateId> {
        if !matches!(self, RidMapping::Interior(_)) {
            let buf = self.take_vec();
            *self = RidMapping::Interior(buf);
        }
        match self {
            RidMapping::Interior(lasts) => lasts,
            _ => unreachable!("converted above"),
        }
    }

    /// The cleared `Prefix` set buffer, converting shape if needed.
    fn prefix_buf(&mut self) -> &mut Vec<StateId> {
        if !matches!(self, RidMapping::Prefix(_)) {
            let buf = self.take_vec();
            *self = RidMapping::Prefix(buf);
        }
        match self {
            RidMapping::Prefix(set) => {
                set.clear();
                set
            }
            _ => unreachable!("converted above"),
        }
    }

    /// The cleared `Composed` CSR buffers, converting shape if needed.
    fn composed_bufs(&mut self) -> (&mut Vec<u32>, &mut Vec<StateId>) {
        if !matches!(self, RidMapping::Composed { .. }) {
            let buf = self.take_vec();
            *self = RidMapping::Composed {
                offsets: Vec::new(),
                lasts: buf,
            };
        }
        match self {
            RidMapping::Composed { offsets, lasts } => {
                offsets.clear();
                lasts.clear();
                (offsets, lasts)
            }
            _ => unreachable!("converted above"),
        }
    }
}

/// Sorts and deduplicates `v[start..]` in place (the freshly appended row
/// of a CSR composition).
fn sort_dedup_tail(v: &mut Vec<StateId>, start: usize) {
    v[start..].sort_unstable();
    let mut write = start;
    for read in start..v.len() {
        if write == start || v[read] != v[write - 1] {
            v[write] = v[read];
            write += 1;
        }
    }
    v.truncate(write);
}

impl<'a> RidCa<'a> {
    /// Wraps `rid`, precomputing the interface-position index used by the
    /// join phase.
    pub fn new(rid: &'a RiDfa) -> Self {
        RidCa {
            rid,
            pos: std::borrow::Cow::Owned(Self::interface_positions(rid)),
            ptable: std::borrow::Cow::Owned(rid.premultiplied_table()),
        }
    }

    /// Wraps `rid` around precomputed tables (e.g. cached by a pattern
    /// registry or loaded from an artifact), making CA construction
    /// allocation-free. `pos` must equal
    /// [`interface_positions`](RidCa::interface_positions)`(rid)` and
    /// `ptable` must equal `rid.premultiplied_table()`; lengths are
    /// checked, content is the caller's contract.
    pub fn with_tables(rid: &'a RiDfa, pos: &'a [u32], ptable: &'a [StateId]) -> Self {
        assert_eq!(pos.len(), rid.num_states(), "position index length");
        assert_eq!(
            ptable.len(),
            rid.num_states() * rid.stride(),
            "premultiplied table length"
        );
        RidCa {
            rid,
            pos: std::borrow::Cow::Borrowed(pos),
            ptable: std::borrow::Cow::Borrowed(ptable),
        }
    }

    /// The interface-position index of `rid`: `pos[p]` = index of
    /// interface state `p` inside [`RiDfa::interface`], `u32::MAX`
    /// elsewhere. Precompute once and feed to
    /// [`with_tables`](RidCa::with_tables).
    pub fn interface_positions(rid: &RiDfa) -> Vec<u32> {
        let mut pos = vec![u32::MAX; rid.num_states()];
        for (i, &p) in rid.interface().iter().enumerate() {
            pos[p as usize] = i as u32;
        }
        pos
    }

    /// The wrapped automaton.
    pub fn rid(&self) -> &'a RiDfa {
        self.rid
    }

    /// The premultiplied table, shared with the convergent wrapper.
    pub(crate) fn ptable(&self) -> &[StateId] {
        &self.ptable
    }

    fn table(&self) -> DenseTable<'_> {
        DenseTable {
            ptable: &self.ptable,
            stride: self.rid.stride(),
            classes: self.rid.classes(),
        }
    }

    /// One composition step for a single PLAS set: translates `plas`
    /// through the interface function into `pis`, applies `right`'s rows
    /// to every resulting interface state, and appends the surviving last
    /// states to `out` as a fresh sorted, deduplicated row.
    fn apply_set(
        &self,
        plas: &[StateId],
        right: &RidMapping,
        pis: &mut Vec<StateId>,
        out: &mut Vec<StateId>,
    ) {
        let row_start = out.len();
        self.rid.interface_map(plas, pis);
        match right {
            RidMapping::Interior(lasts) => {
                for &p in pis.iter() {
                    let idx = self.pos[p as usize];
                    debug_assert_ne!(idx, u32::MAX, "if() returns interface states");
                    let last = lasts[idx as usize];
                    if last != DEAD {
                        out.push(last);
                    }
                }
            }
            RidMapping::Composed { offsets, lasts } => {
                for &p in pis.iter() {
                    let idx = self.pos[p as usize] as usize;
                    debug_assert_ne!(idx as u32, u32::MAX, "if() returns interface states");
                    out.extend_from_slice(&lasts[offsets[idx] as usize..offsets[idx + 1] as usize]);
                }
            }
            RidMapping::First(_) | RidMapping::Prefix(_) => {
                panic!("compose_into: the right factor must derive from interior scans")
            }
        }
        sort_dedup_tail(out, row_start);
    }
}

impl ChunkAutomaton for RidCa<'_> {
    type Mapping = RidMapping;
    type Scratch = Scratch;
    /// `(plas, pis)` working sets of the interface translation.
    type ComposeScratch = (Vec<StateId>, Vec<StateId>);

    fn scan_into(
        &self,
        chunk: &[u8],
        scratch: &mut Scratch,
        counter: &mut impl Counter,
        out: &mut RidMapping,
    ) {
        let interface = self.rid.interface();
        kernel::scan_into(
            self.table(),
            interface.iter().enumerate().map(|(i, &p)| (i as u32, p)),
            interface.len(),
            chunk,
            Kernel::PerRun,
            scratch,
            counter,
            out.interior_buf(),
        );
    }

    fn scan_first_into(&self, chunk: &[u8], counter: &mut impl Counter, out: &mut RidMapping) {
        *out = RidMapping::First(self.rid.run_from(self.rid.start(), chunk, counter));
    }

    fn arm_interrupt(&self, scratch: &mut Scratch, probe: Option<&super::budget::InterruptProbe>) {
        scratch.set_interrupt(probe.cloned());
    }

    /// `PLAS`-set composition through the interface function:
    /// `out = right ⊙ left` where each row of `left` is translated by
    /// `if(·)` (with delegation) and pushed through `right`'s rows.
    fn compose_into(
        &self,
        left: &RidMapping,
        right: &RidMapping,
        scratch: &mut (Vec<StateId>, Vec<StateId>),
        out: &mut RidMapping,
    ) {
        let (plas, pis) = scratch;
        match left {
            RidMapping::First(last) => {
                plas.clear();
                if *last != DEAD {
                    plas.push(*last);
                }
                let set = out.prefix_buf();
                self.apply_set(plas, right, pis, set);
            }
            RidMapping::Prefix(prefix) => {
                let set = out.prefix_buf();
                self.apply_set(prefix, right, pis, set);
            }
            RidMapping::Interior(lasts) => {
                let (offsets, out_lasts) = out.composed_bufs();
                offsets.push(0);
                for &last in lasts {
                    if last != DEAD {
                        plas.clear();
                        plas.push(last);
                        self.apply_set(plas, right, pis, out_lasts);
                    }
                    offsets.push(out_lasts.len() as u32);
                }
            }
            RidMapping::Composed {
                offsets: left_off,
                lasts: left_lasts,
            } => {
                let (offsets, out_lasts) = out.composed_bufs();
                offsets.push(0);
                for row in left_off.windows(2) {
                    let set = &left_lasts[row[0] as usize..row[1] as usize];
                    self.apply_set(set, right, pis, out_lasts);
                    offsets.push(out_lasts.len() as u32);
                }
            }
        }
    }

    fn accepts_mapping(&self, mapping: &RidMapping) -> bool {
        match mapping {
            RidMapping::First(last) => *last != DEAD && self.rid.is_final(*last),
            RidMapping::Prefix(set) => set.iter().any(|&p| self.rid.is_final(p)),
            RidMapping::Interior(_) | RidMapping::Composed { .. } => {
                panic!("accepts_mapping: the leftmost factor must be a first-chunk scan")
            }
        }
    }

    fn mapping_is_dead(&self, mapping: &RidMapping) -> bool {
        match mapping {
            RidMapping::First(last) => *last == DEAD,
            RidMapping::Prefix(set) => set.is_empty(),
            RidMapping::Interior(lasts) => lasts.iter().all(|&l| l == DEAD),
            RidMapping::Composed { lasts, .. } => lasts.is_empty(),
        }
    }

    fn accepts_serial(&self, text: &[u8], counter: &mut impl Counter) -> bool {
        let last = self.rid.run_from(self.rid.start(), text, counter);
        last != DEAD && self.rid.is_final(last)
    }

    fn num_speculative_starts(&self) -> usize {
        self.rid.interface().len()
    }

    fn name(&self) -> &'static str {
        "rid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ridfa::construct::tests::figure1_nfa;
    use ridfa_automata::{NoCount, TransitionCount};

    #[test]
    fn figure1_transition_count_is_9() {
        // Paper Fig. 1, new RID method: chunk "aab" (3) + chunk "cab"
        // (3 + 3 + 0) = 9 transitions.
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let mut c = TransitionCount::default();
        let m1 = ca.scan_first(b"aab", &mut c);
        let m2 = ca.scan(b"cab", &mut c);
        assert_eq!(c.get(), 9);
        assert!(ca.join(&[m1, m2]), "aabcab ∈ L");
    }

    #[test]
    fn scan_then_join_equals_serial() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        for text in [&b"aabcab"[..], b"ab", b"aab", b"", b"ccc", b"abab", b"caab"] {
            let mid = text.len() / 2;
            let m1 = ca.scan_first(&text[..mid], &mut NoCount);
            let m2 = ca.scan(&text[mid..], &mut NoCount);
            assert_eq!(ca.join(&[m1, m2]), nfa.accepts(text), "{text:?}");
        }
    }

    #[test]
    fn minimized_interface_join_still_correct() {
        // An NFA whose RI-DFA interface shrinks under minimization; the
        // adjusted if_min must keep the join exact.
        let mut b = ridfa_automata::nfa::Builder::new();
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        let q3 = b.add_state();
        b.add_transition(q0, b'a', q1);
        b.add_transition(q0, b'b', q2);
        b.add_transition(q1, b'z', q3);
        b.add_transition(q2, b'z', q3);
        b.set_start(q0);
        b.set_final(q3);
        let nfa = b.build().unwrap();
        let rid = RiDfa::from_nfa(&nfa).minimized();
        assert!(rid.interface().len() < nfa.num_states());
        let ca = RidCa::new(&rid);
        for text in [&b"az"[..], b"bz", b"z", b"azz", b"", b"ab"] {
            for cut in 0..=text.len() {
                let m1 = ca.scan_first(&text[..cut], &mut NoCount);
                let m2 = ca.scan(&text[cut..], &mut NoCount);
                assert_eq!(
                    ca.join(&[m1, m2]),
                    nfa.accepts(text),
                    "{text:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn join_of_three_chunks() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let text = b"aabcab";
        let m1 = ca.scan_first(&text[..2], &mut NoCount);
        let m2 = ca.scan(&text[2..4], &mut NoCount);
        let m3 = ca.scan(&text[4..], &mut NoCount);
        assert!(ca.join(&[m1, m2, m3]));
    }

    #[test]
    fn speculative_starts_is_interface_size() {
        let rid = RiDfa::from_nfa(&figure1_nfa());
        assert_eq!(RidCa::new(&rid).num_speculative_starts(), 3);
    }
}
