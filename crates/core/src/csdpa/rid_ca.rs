//! The reduced-interface chunk automaton (RID, paper Sect. 3.2): runs only
//! from the RI-DFA *interface* states — as many as the NFA has states, or
//! fewer after interface minimization — with deterministic O(1) transitions
//! per byte. This combines the state-reduction of an NFA with the speed of
//! a DFA, which is the paper's whole point.

use ridfa_automata::counter::Counter;
use ridfa_automata::{StateId, DEAD};

use crate::ridfa::RiDfa;

use super::kernel::{self, DenseTable, Kernel, Scratch};
use super::ChunkAutomaton;

/// CSDPA chunk automaton wrapping an [`RiDfa`].
///
/// Interior scans use the per-run path of the scan [`kernel`]; the
/// convergence-merging variant is
/// [`ConvergentRidCa`](super::ConvergentRidCa).
#[derive(Debug, Clone)]
pub struct RidCa<'a> {
    rid: &'a RiDfa,
    /// `pos[p]` = index of interface state `p` inside
    /// [`RiDfa::interface`], or `u32::MAX` for non-interface states.
    pos: Vec<u32>,
    /// Premultiplied transition table (entries are `target * stride`).
    ptable: Vec<StateId>,
}

/// The λ mapping a RID chunk scan produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RidMapping {
    /// First chunk: the single run from the known initial state
    /// ([`DEAD`](ridfa_automata::DEAD) if it died).
    First(StateId),
    /// Interior chunk: `lasts[i]` = last active state of the run started
    /// in `interface()[i]` ([`DEAD`](ridfa_automata::DEAD) if it died).
    Interior(Vec<StateId>),
}

impl Default for RidMapping {
    /// An empty interior mapping slot, ready to be scanned into.
    fn default() -> RidMapping {
        RidMapping::Interior(Vec::new())
    }
}

impl RidMapping {
    /// The interior `lasts` buffer, converting (and keeping any existing
    /// buffer's capacity) if the slot held a first-chunk mapping.
    pub(super) fn interior_buf(&mut self) -> &mut Vec<StateId> {
        if let RidMapping::First(_) = self {
            *self = RidMapping::Interior(Vec::new());
        }
        match self {
            RidMapping::Interior(lasts) => lasts,
            RidMapping::First(_) => unreachable!("converted above"),
        }
    }
}

impl<'a> RidCa<'a> {
    /// Wraps `rid`, precomputing the interface-position index used by the
    /// join phase.
    pub fn new(rid: &'a RiDfa) -> Self {
        let mut pos = vec![u32::MAX; rid.num_states()];
        for (i, &p) in rid.interface().iter().enumerate() {
            pos[p as usize] = i as u32;
        }
        RidCa {
            rid,
            pos,
            ptable: rid.premultiplied_table(),
        }
    }

    /// The wrapped automaton.
    pub fn rid(&self) -> &'a RiDfa {
        self.rid
    }

    /// The premultiplied table, shared with the convergent wrapper.
    pub(crate) fn ptable(&self) -> &[StateId] {
        &self.ptable
    }

    fn table(&self) -> DenseTable<'_> {
        DenseTable {
            ptable: &self.ptable,
            stride: self.rid.stride(),
            classes: self.rid.classes(),
        }
    }
}

impl ChunkAutomaton for RidCa<'_> {
    type Mapping = RidMapping;
    type Scratch = Scratch;
    type JoinScratch = (Vec<StateId>, Vec<StateId>);

    fn scan_into(
        &self,
        chunk: &[u8],
        scratch: &mut Scratch,
        counter: &mut impl Counter,
        out: &mut RidMapping,
    ) {
        let interface = self.rid.interface();
        kernel::scan_into(
            self.table(),
            interface.iter().enumerate().map(|(i, &p)| (i as u32, p)),
            interface.len(),
            chunk,
            Kernel::PerRun,
            scratch,
            counter,
            out.interior_buf(),
        );
    }

    fn scan_first_into(&self, chunk: &[u8], counter: &mut impl Counter, out: &mut RidMapping) {
        *out = RidMapping::First(self.rid.run_from(self.rid.start(), chunk, counter));
    }

    fn join_with(
        &self,
        mappings: &[RidMapping],
        scratch: &mut (Vec<StateId>, Vec<StateId>),
    ) -> bool {
        // PLAS₁ from the first chunk, then
        // PLASᵢ = λᵢ( if(PLASᵢ₋₁) ∩ PISᵢ ) for the interior chunks.
        let (plas, pis) = scratch;
        plas.clear();
        pis.clear();
        for (i, mapping) in mappings.iter().enumerate() {
            match mapping {
                RidMapping::First(last) => {
                    debug_assert_eq!(i, 0, "First mapping only at chunk 1");
                    plas.clear();
                    if *last != DEAD {
                        plas.push(*last);
                    }
                }
                RidMapping::Interior(lasts) => {
                    // if(PLAS) — the interface function with delegation.
                    self.rid.interface_map(plas, pis);
                    plas.clear();
                    for &p in pis.iter() {
                        let idx = self.pos[p as usize];
                        debug_assert_ne!(idx, u32::MAX, "if() returns interface states");
                        let last = lasts[idx as usize];
                        if last != DEAD {
                            plas.push(last);
                        }
                    }
                    plas.sort_unstable();
                    plas.dedup();
                }
            }
            if plas.is_empty() {
                return false;
            }
        }
        plas.iter().any(|&p| self.rid.is_final(p))
    }

    fn accepts_serial(&self, text: &[u8], counter: &mut impl Counter) -> bool {
        let last = self.rid.run_from(self.rid.start(), text, counter);
        last != DEAD && self.rid.is_final(last)
    }

    fn num_speculative_starts(&self) -> usize {
        self.rid.interface().len()
    }

    fn name(&self) -> &'static str {
        "rid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ridfa::construct::tests::figure1_nfa;
    use ridfa_automata::{NoCount, TransitionCount};

    #[test]
    fn figure1_transition_count_is_9() {
        // Paper Fig. 1, new RID method: chunk "aab" (3) + chunk "cab"
        // (3 + 3 + 0) = 9 transitions.
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let mut c = TransitionCount::default();
        let m1 = ca.scan_first(b"aab", &mut c);
        let m2 = ca.scan(b"cab", &mut c);
        assert_eq!(c.get(), 9);
        assert!(ca.join(&[m1, m2]), "aabcab ∈ L");
    }

    #[test]
    fn scan_then_join_equals_serial() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        for text in [&b"aabcab"[..], b"ab", b"aab", b"", b"ccc", b"abab", b"caab"] {
            let mid = text.len() / 2;
            let m1 = ca.scan_first(&text[..mid], &mut NoCount);
            let m2 = ca.scan(&text[mid..], &mut NoCount);
            assert_eq!(ca.join(&[m1, m2]), nfa.accepts(text), "{text:?}");
        }
    }

    #[test]
    fn minimized_interface_join_still_correct() {
        // An NFA whose RI-DFA interface shrinks under minimization; the
        // adjusted if_min must keep the join exact.
        let mut b = ridfa_automata::nfa::Builder::new();
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        let q3 = b.add_state();
        b.add_transition(q0, b'a', q1);
        b.add_transition(q0, b'b', q2);
        b.add_transition(q1, b'z', q3);
        b.add_transition(q2, b'z', q3);
        b.set_start(q0);
        b.set_final(q3);
        let nfa = b.build().unwrap();
        let rid = RiDfa::from_nfa(&nfa).minimized();
        assert!(rid.interface().len() < nfa.num_states());
        let ca = RidCa::new(&rid);
        for text in [&b"az"[..], b"bz", b"z", b"azz", b"", b"ab"] {
            for cut in 0..=text.len() {
                let m1 = ca.scan_first(&text[..cut], &mut NoCount);
                let m2 = ca.scan(&text[cut..], &mut NoCount);
                assert_eq!(
                    ca.join(&[m1, m2]),
                    nfa.accepts(text),
                    "{text:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn join_of_three_chunks() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let text = b"aabcab";
        let m1 = ca.scan_first(&text[..2], &mut NoCount);
        let m2 = ca.scan(&text[2..4], &mut NoCount);
        let m3 = ca.scan(&text[4..], &mut NoCount);
        assert!(ca.join(&[m1, m2, m3]));
    }

    #[test]
    fn speculative_starts_is_interface_size() {
        let rid = RiDfa::from_nfa(&figure1_nfa());
        assert_eq!(RidCa::new(&rid).num_speculative_starts(), 3);
    }
}
