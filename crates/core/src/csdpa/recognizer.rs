//! The full recognition device: chunking + parallel reach + serial join.

use std::time::{Duration, Instant};

use ridfa_automata::counter::{NoCount, TransitionCount};

use crate::parallel::run_indexed_with;

use super::budget::{panic_message, Budget, InterruptProbe, RecognizeError};
use super::{chunk_spans, ChunkAutomaton, Kernel};

/// How the reach phase distributes chunk scans over OS threads.
///
/// This is the thread-shape half of the adaptive execution layer; the
/// scan-strategy half (per-run vs lockstep per chunk) lives in
/// [`kernel::select`](super::kernel::select) and is consulted by the
/// chunk automata themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// All chunks on the calling thread (debug / baseline).
    Serial,
    /// One thread per chunk — the paper's Java-thread model, appropriate
    /// when `c ≤` available cores.
    PerChunk,
    /// A bounded team of `n` threads claiming chunks dynamically.
    Team(usize),
    /// Adaptive: one thread per chunk while chunks fit the available
    /// cores, a core-sized dynamic team beyond that, serial for a single
    /// chunk.
    Auto,
    /// The persistent worker pool of a [`Session`](super::Session): no
    /// thread spawn per text, per-worker scan scratches stay warm across
    /// texts. Meaningful through
    /// [`Session::recognize_with`](super::Session::recognize_with);
    /// through the free [`recognize`] functions (which have no pool at
    /// hand) it degrades to [`Executor::Auto`] — the degrade is visible
    /// in [`Outcome::executor`] / [`CountedOutcome::executor`], which
    /// always record the shape that actually ran.
    Pooled,
}

impl Executor {
    fn workers(self, num_chunks: usize) -> usize {
        match self {
            Executor::Serial => 1,
            Executor::PerChunk => num_chunks,
            Executor::Team(n) => n.max(1),
            Executor::Auto | Executor::Pooled => {
                let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
                num_chunks.min(cores)
            }
        }
    }

    /// The executor shape the free [`recognize`] functions actually run:
    /// [`Executor::Pooled`] needs a [`Session`](super::Session) and
    /// degrades to [`Executor::Auto`] here. Callers comparing execution
    /// shapes should check the recorded outcome executor rather than the
    /// one they requested.
    pub fn effective_spawning(self) -> Executor {
        match self {
            Executor::Pooled => Executor::Auto,
            other => other,
        }
    }
}

/// Result of an uninstrumented (timed) recognition.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Did the device accept the text?
    pub accepted: bool,
    /// Number of chunks actually used (after clamping).
    pub num_chunks: usize,
    /// Wall time of the parallel reach phase.
    pub reach: Duration,
    /// Wall time of the serial join phase.
    pub join: Duration,
    /// The executor shape that actually ran — [`Executor::Pooled`]
    /// requested through the free [`recognize`] degrades to
    /// [`Executor::Auto`] and is recorded as such.
    pub executor: Executor,
    /// The scan strategy the interior (speculative) chunk scans actually
    /// executed, resolved through
    /// [`ChunkAutomaton::effective_kernel`] for the largest interior
    /// chunk. `None` when the text ran as a single chunk (no speculative
    /// scans) or the CA does not scan through the lockstep kernel.
    pub kernel: Option<Kernel>,
}

/// Per-chunk measurements of an instrumented recognition.
#[derive(Debug, Clone)]
pub struct ChunkStats {
    /// Chunk length in bytes.
    pub len: usize,
    /// Transitions executed by all speculative runs of this chunk.
    pub transitions: u64,
    /// Wall time of this chunk's scan (within its worker thread).
    pub scan_time: Duration,
}

/// Result of an instrumented recognition (paper Sect. 4.3 measurements).
#[derive(Debug, Clone)]
pub struct CountedOutcome {
    /// Did the device accept the text?
    pub accepted: bool,
    /// Number of chunks actually used (after clamping).
    pub num_chunks: usize,
    /// Total transitions across all chunks (the paper's workload measure).
    pub transitions: u64,
    /// Per-chunk breakdown.
    pub per_chunk: Vec<ChunkStats>,
    /// Wall time of the parallel reach phase.
    pub reach: Duration,
    /// Wall time of the serial join phase.
    pub join: Duration,
    /// The executor shape that actually ran (see [`Outcome::executor`]).
    pub executor: Executor,
    /// The scan strategy of the interior chunk scans (see
    /// [`Outcome::kernel`]).
    pub kernel: Option<Kernel>,
}

/// Recognizes `text` with chunk automaton `ca`, split into `num_chunks`
/// chunks, using `executor` for the reach phase. No instrumentation: this
/// is the entry point to *time*.
pub fn recognize<CA: ChunkAutomaton>(
    ca: &CA,
    text: &[u8],
    num_chunks: usize,
    executor: Executor,
) -> Outcome {
    recognize_inner(ca, text, num_chunks, executor, None)
        .expect("unbudgeted recognition cannot be interrupted")
}

/// Like [`recognize`] but bounded by `budget`: the reach phase checks the
/// deadline/cancellation probe at chunk-claim boundaries and (through
/// [`ChunkAutomaton::arm_interrupt`]) once per classification block inside
/// kernel scans, so even a single giant chunk notices expiry promptly.
/// The check is amortized — an unexpired budget costs one relaxed atomic
/// load per block — and allocation-free.
///
/// Any panic escaping the chunk automaton during the reach or join phase
/// is trapped and surfaced as [`RecognizeError::Panicked`] instead of
/// unwinding through the caller.
///
/// Granularity caveat: first-chunk scans and chunk automata without a
/// kernel scratch ([`NfaCa`](super::NfaCa), [`SfaCa`](super::SfaCa)) are
/// only interruptible *between* chunks, not mid-scan.
pub fn recognize_budgeted<CA: ChunkAutomaton>(
    ca: &CA,
    text: &[u8],
    num_chunks: usize,
    executor: Executor,
    budget: &Budget,
) -> Result<Outcome, RecognizeError> {
    let probe = budget.probe();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        recognize_inner(ca, text, num_chunks, executor, probe.as_ref())
    })) {
        Ok(result) => result,
        Err(payload) => Err(RecognizeError::Panicked(panic_message(payload))),
    }
}

/// Like [`recognize`] but over caller-provided chunk spans — the entry
/// point for separator-snapped chunking
/// ([`chunk_spans_snapped`](super::chunk_spans_snapped)), where the cut
/// points depend on the text's record structure rather than its length
/// alone. `spans` must cover `text` contiguously from 0 (the
/// [`chunk_spans`]/`chunk_spans_snapped` contract); the first span is
/// scanned as the first chunk.
pub fn recognize_spans<CA: ChunkAutomaton>(
    ca: &CA,
    text: &[u8],
    spans: &[std::ops::Range<usize>],
    executor: Executor,
) -> Outcome {
    recognize_over(ca, text, spans, executor.effective_spawning(), None)
        .expect("unbudgeted recognition cannot be interrupted")
}

/// Shared body of [`recognize`] and [`recognize_budgeted`]: the probe is
/// the only difference, so the two entry points cannot drift apart.
fn recognize_inner<CA: ChunkAutomaton>(
    ca: &CA,
    text: &[u8],
    num_chunks: usize,
    executor: Executor,
    probe: Option<&InterruptProbe>,
) -> Result<Outcome, RecognizeError> {
    let executor = executor.effective_spawning();
    let spans = chunk_spans(text.len(), num_chunks);
    recognize_over(ca, text, &spans, executor, probe)
}

/// The reach + join body over explicit spans.
fn recognize_over<CA: ChunkAutomaton>(
    ca: &CA,
    text: &[u8],
    spans: &[std::ops::Range<usize>],
    executor: Executor,
    probe: Option<&InterruptProbe>,
) -> Result<Outcome, RecognizeError> {
    debug_assert!(!spans.is_empty());
    let workers = executor.workers(spans.len());
    let reach_start = Instant::now();
    let mappings = run_indexed_with(workers, spans.len(), CA::Scratch::default, |scratch, i| {
        // Arm (or clear) the in-scan probe; a tripped budget abandons the
        // chunk outright — the partial mappings are discarded below.
        ca.arm_interrupt(scratch, probe);
        if probe.is_some_and(|p| p.should_stop()) {
            return CA::Mapping::default();
        }
        let chunk = &text[spans[i].clone()];
        if i == 0 {
            ca.scan_first(chunk, &mut NoCount)
        } else {
            ca.scan_with(chunk, scratch, &mut NoCount)
        }
    });
    let reach = reach_start.elapsed();
    if let Some(err) = probe.and_then(|p| p.status()) {
        return Err(err);
    }
    let join_start = Instant::now();
    let accepted = ca.join(&mappings);
    Ok(Outcome {
        accepted,
        num_chunks: spans.len(),
        reach,
        join: join_start.elapsed(),
        executor,
        kernel: effective_kernel_for(ca, spans),
    })
}

/// The kernel recorded in outcomes: what the CA's speculative scan
/// dispatch resolves to for the *largest* interior chunk (chunk sizes of
/// one recognition differ by at most one byte, so the answer is uniform
/// in practice). `None` for single-chunk runs — only the first chunk ran,
/// deterministically, outside the speculative kernel.
pub(super) fn effective_kernel_for<CA: ChunkAutomaton>(
    ca: &CA,
    spans: &[std::ops::Range<usize>],
) -> Option<Kernel> {
    let longest = spans.iter().skip(1).map(|s| s.len()).max()?;
    ca.effective_kernel(longest)
}

/// Like [`recognize`] but tallying executed transitions per chunk — the
/// quantity Fig. 7 / Tab. 3 of the paper report. Slightly slower than
/// [`recognize`]; never mix the two in one timing comparison.
pub fn recognize_counted<CA: ChunkAutomaton>(
    ca: &CA,
    text: &[u8],
    num_chunks: usize,
    executor: Executor,
) -> CountedOutcome {
    let executor = executor.effective_spawning();
    let spans = chunk_spans(text.len(), num_chunks);
    let workers = executor.workers(spans.len());
    let reach_start = Instant::now();
    let results = run_indexed_with(workers, spans.len(), CA::Scratch::default, |scratch, i| {
        let chunk = &text[spans[i].clone()];
        let mut counter = TransitionCount::default();
        let scan_start = Instant::now();
        let mapping = if i == 0 {
            ca.scan_first(chunk, &mut counter)
        } else {
            ca.scan_with(chunk, scratch, &mut counter)
        };
        let stats = ChunkStats {
            len: chunk.len(),
            transitions: counter.get(),
            scan_time: scan_start.elapsed(),
        };
        (mapping, stats)
    });
    let reach = reach_start.elapsed();
    let (mappings, per_chunk): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    let join_start = Instant::now();
    let accepted = ca.join(&mappings);
    CountedOutcome {
        accepted,
        num_chunks: spans.len(),
        transitions: per_chunk.iter().map(|s| s.transitions).sum(),
        per_chunk,
        reach,
        join: join_start.elapsed(),
        executor,
        kernel: effective_kernel_for(ca, &spans),
    }
}

/// Serial whole-text recognition with the same automaton — the speedup
/// baseline. Returns acceptance, executed transitions, and wall time.
pub fn recognize_serial<CA: ChunkAutomaton>(ca: &CA, text: &[u8]) -> (bool, u64, Duration) {
    let mut counter = TransitionCount::default();
    let start = Instant::now();
    let accepted = ca.accepts_serial(text, &mut counter);
    (accepted, counter.get(), start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csdpa::{DfaCa, NfaCa, RidCa};
    use crate::ridfa::construct::tests::figure1_nfa;
    use crate::ridfa::RiDfa;
    use ridfa_automata::dfa::powerset::determinize;

    fn sample_text(accept: bool) -> Vec<u8> {
        // Strings over {a,b,c}; "…ab" with valid structure accepted by the
        // Fig. 1 machine. Build a long accepted text by pumping "aabcab".
        let mut t = Vec::new();
        for _ in 0..200 {
            t.extend_from_slice(b"aabcab");
        }
        if !accept {
            t.push(b'c');
        }
        t
    }

    #[test]
    fn all_variants_agree_with_serial_dfa() {
        let nfa = figure1_nfa();
        let dfa = determinize(&nfa);
        let rid = RiDfa::from_nfa(&nfa).minimized();
        let dfa_ca = DfaCa::new(&dfa);
        let nfa_ca = NfaCa::new(&nfa);
        let rid_ca = RidCa::new(&rid);
        for accept in [true, false] {
            let text = sample_text(accept);
            let expected = dfa.accepts(&text);
            assert_eq!(expected, accept);
            for chunks in [1, 2, 3, 7, 32, 1000] {
                for executor in [Executor::Serial, Executor::PerChunk, Executor::Team(3)] {
                    assert_eq!(
                        recognize(&dfa_ca, &text, chunks, executor).accepted,
                        expected,
                        "dfa c={chunks} {executor:?}"
                    );
                    assert_eq!(
                        recognize(&nfa_ca, &text, chunks, executor).accepted,
                        expected,
                        "nfa c={chunks} {executor:?}"
                    );
                    assert_eq!(
                        recognize(&rid_ca, &text, chunks, executor).accepted,
                        expected,
                        "rid c={chunks} {executor:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn counted_outcome_matches_figure1() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let out = recognize_counted(&ca, b"aabcab", 2, Executor::Serial);
        assert!(out.accepted);
        assert_eq!(out.num_chunks, 2);
        assert_eq!(out.transitions, 9, "paper Fig. 1 bottom-right total");
        assert_eq!(out.per_chunk.len(), 2);
        assert_eq!(out.per_chunk[0].transitions, 3);
        assert_eq!(out.per_chunk[1].transitions, 6);
    }

    #[test]
    fn serial_baseline_counts_text_length() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let (accepted, transitions, _) = recognize_serial(&ca, b"aabcab");
        assert!(accepted);
        assert_eq!(transitions, 6, "serial deterministic run = |x|");
    }

    #[test]
    fn empty_text_recognition() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let out = recognize(&ca, b"", 8, Executor::PerChunk);
        assert!(!out.accepted, "ε ∉ L (state 0 is not final)");
        assert_eq!(out.num_chunks, 1);
    }

    #[test]
    fn pooled_degrade_is_recorded() {
        // Regression: the free recognizer has no pool, so requesting
        // `Executor::Pooled` silently ran `Auto` — the outcome must now
        // say so instead of letting callers believe they measured the
        // pooled path.
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let out = recognize(&ca, b"aabcab", 2, Executor::Pooled);
        assert!(out.accepted);
        assert_eq!(out.executor, Executor::Auto, "degrade must be visible");
        let counted = recognize_counted(&ca, b"aabcab", 2, Executor::Pooled);
        assert_eq!(counted.executor, Executor::Auto);
        // Non-degrading shapes are recorded verbatim.
        assert_eq!(
            recognize(&ca, b"aabcab", 2, Executor::Team(3)).executor,
            Executor::Team(3)
        );
        assert_eq!(
            recognize(&ca, b"aabcab", 2, Executor::Serial).executor,
            Executor::Serial
        );
    }

    #[test]
    fn budgeted_recognition_matches_plain_and_fails_typed() {
        use super::super::budget::{Budget, CancelToken};
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let text = b"aabcab".repeat(100);
        // Unlimited budget: same verdict as the plain path.
        let out = recognize_budgeted(&ca, &text, 4, Executor::Auto, &Budget::unlimited()).unwrap();
        assert!(out.accepted);
        // Pre-expired deadline: deterministic typed failure.
        let expired = Budget::with_timeout(Duration::ZERO);
        assert_eq!(
            recognize_budgeted(&ca, &text, 4, Executor::Auto, &expired).unwrap_err(),
            RecognizeError::DeadlineExceeded
        );
        // Pre-cancelled token: ditto.
        let token = CancelToken::new();
        token.cancel();
        let cancelled = Budget::with_cancel(&token);
        assert_eq!(
            recognize_budgeted(&ca, &text, 4, Executor::Auto, &cancelled).unwrap_err(),
            RecognizeError::Cancelled
        );
        // A generous budget does not perturb the verdict.
        let roomy = Budget::with_timeout(Duration::from_secs(3600));
        assert!(
            recognize_budgeted(&ca, &text, 4, Executor::Serial, &roomy)
                .unwrap()
                .accepted
        );
    }

    #[test]
    fn recognize_spans_matches_balanced_chunking() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        for accept in [true, false] {
            let text = sample_text(accept);
            let expected = recognize(&ca, &text, 4, Executor::Serial).accepted;
            // Hand-rolled uneven spans: same verdict.
            let cut1 = text.len() / 5;
            let cut2 = text.len() / 2 + 3;
            let spans = vec![0..cut1, cut1..cut2, cut2..text.len()];
            let out = recognize_spans(&ca, &text, &spans, Executor::Team(2));
            assert_eq!(out.accepted, expected);
            assert_eq!(out.num_chunks, 3);
        }
    }

    #[test]
    fn chunk_count_clamped_to_text_len() {
        let nfa = figure1_nfa();
        let dfa = determinize(&nfa);
        let ca = DfaCa::new(&dfa);
        let out = recognize(&ca, b"ab", 64, Executor::PerChunk);
        assert_eq!(out.num_chunks, 2);
    }
}
