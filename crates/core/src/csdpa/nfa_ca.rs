//! The classic NFA chunk automaton: fewer states than the DFA (so fewer
//! speculative runs) but each run is a set-simulation whose per-byte cost
//! depends on the degree of nondeterminism — which is why the paper (and
//! prior work it cites) finds the NFA variant generally loses.

use ridfa_automata::counter::Counter;
use ridfa_automata::nfa::{Nfa, Simulator};
use ridfa_automata::StateId;

use super::ChunkAutomaton;

/// CSDPA chunk automaton wrapping an NFA.
#[derive(Debug, Clone, Copy)]
pub struct NfaCa<'a> {
    nfa: &'a Nfa,
}

impl<'a> NfaCa<'a> {
    /// Wraps `nfa` (must be ε-free, which every [`Nfa`] in this workspace
    /// is by construction).
    pub fn new(nfa: &'a Nfa) -> Self {
        NfaCa { nfa }
    }

    /// The wrapped automaton.
    pub fn nfa(&self) -> &'a Nfa {
        self.nfa
    }
}

impl ChunkAutomaton for NfaCa<'_> {
    /// `mapping[q]` = sorted set of last active states of the run started
    /// in `{q}` (empty when the run died, and for slots a first-chunk scan
    /// never starts).
    type Mapping = Vec<Vec<StateId>>;
    type Scratch = ();
    type ComposeScratch = ();

    fn scan_into(
        &self,
        chunk: &[u8],
        _scratch: &mut (),
        counter: &mut impl Counter,
        out: &mut Vec<Vec<StateId>>,
    ) {
        let n = self.nfa.num_states();
        out.iter_mut().for_each(Vec::clear);
        out.resize_with(n, Vec::new);
        let mut sim = Simulator::new(self.nfa);
        for q in 0..n as StateId {
            let last = sim.run(self.nfa, &[q], chunk, counter);
            let slot = &mut out[q as usize];
            slot.extend_from_slice(last);
            slot.sort_unstable();
        }
    }

    fn scan_first_into(
        &self,
        chunk: &[u8],
        counter: &mut impl Counter,
        out: &mut Vec<Vec<StateId>>,
    ) {
        out.iter_mut().for_each(Vec::clear);
        out.resize_with(self.nfa.num_states(), Vec::new);
        let mut sim = Simulator::new(self.nfa);
        let start = self.nfa.start();
        let last = sim.run(self.nfa, &[start], chunk, counter);
        let slot = &mut out[start as usize];
        slot.extend_from_slice(last);
        slot.sort_unstable();
    }

    /// Relation composition: `(right ⊙ left)(q) = ⋃_{p ∈ left(q)} right(p)`,
    /// each row sorted and deduplicated (a dead row stays empty).
    fn compose_into(
        &self,
        left: &Vec<Vec<StateId>>,
        right: &Vec<Vec<StateId>>,
        _scratch: &mut (),
        out: &mut Vec<Vec<StateId>>,
    ) {
        out.iter_mut().for_each(Vec::clear);
        out.resize_with(left.len(), Vec::new);
        for (q, lasts) in left.iter().enumerate() {
            let row = &mut out[q];
            for &p in lasts {
                row.extend_from_slice(&right[p as usize]);
            }
            row.sort_unstable();
            row.dedup();
        }
    }

    fn accepts_mapping(&self, mapping: &Vec<Vec<StateId>>) -> bool {
        mapping[self.nfa.start() as usize]
            .iter()
            .any(|&q| self.nfa.is_final(q))
    }

    fn mapping_is_dead(&self, mapping: &Vec<Vec<StateId>>) -> bool {
        mapping.iter().all(Vec::is_empty)
    }

    fn accepts_serial(&self, text: &[u8], counter: &mut impl Counter) -> bool {
        let mut sim = Simulator::new(self.nfa);
        sim.run_accepts(self.nfa, &[self.nfa.start()], text, counter)
    }

    fn num_speculative_starts(&self) -> usize {
        self.nfa.num_states()
    }

    fn name(&self) -> &'static str {
        "nfa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ridfa::construct::tests::figure1_nfa;
    use ridfa_automata::nfa::glushkov;
    use ridfa_automata::regex::parse;
    use ridfa_automata::{NoCount, TransitionCount};

    #[test]
    fn scan_then_join_equals_serial() {
        let nfa = glushkov::build(&parse("(a|b)*abb").unwrap()).unwrap();
        let ca = NfaCa::new(&nfa);
        for text in [&b"aababb"[..], b"abb", b"ab", b"bbbb", b""] {
            let mid = text.len() / 2;
            let m1 = ca.scan_first(&text[..mid], &mut NoCount);
            let m2 = ca.scan(&text[mid..], &mut NoCount);
            assert_eq!(ca.join(&[m1, m2]), nfa.accepts(text), "{text:?}");
        }
    }

    #[test]
    fn figure1_transition_count_is_14() {
        // Paper Fig. 1, classic optimized NFA method: 5 + 9 = 14.
        let nfa = figure1_nfa();
        let ca = NfaCa::new(&nfa);
        let mut c = TransitionCount::default();
        let m1 = ca.scan_first(b"aab", &mut c);
        let m2 = ca.scan(b"cab", &mut c);
        assert_eq!(c.get(), 14);
        assert!(ca.join(&[m1, m2]));
    }

    #[test]
    fn dead_start_state_has_empty_mapping() {
        let nfa = figure1_nfa();
        let ca = NfaCa::new(&nfa);
        let m = ca.scan(b"cab", &mut NoCount);
        assert!(m[2].is_empty(), "state 2 has no 'c' transition");
        assert!(!m[0].is_empty());
    }

    #[test]
    fn speculative_starts_counts_nfa_states() {
        let nfa = figure1_nfa();
        assert_eq!(NfaCa::new(&nfa).num_speculative_starts(), 3);
    }
}
