//! The single-pass lockstep scan kernel of the reach phase.
//!
//! A speculative chunk scan must run `k` runs — one per possible initial
//! state — over the same bytes. Scanning per run costs `k` passes over the
//! chunk: every byte is classified `k` times and the text is pulled
//! through cache `k` times. This kernel makes **one** pass, advancing all
//! runs in lockstep and merging runs that have *converged* to the same
//! state (the state-convergence optimization of the data-parallel FSM
//! literature the paper's conclusion points at), so the per-byte cost
//! shrinks monotonically as runs die or merge — on realistic texts it
//! collapses from `k` towards 1 within a few hundred bytes.
//!
//! Design points, all in service of an allocation-free inner loop:
//!
//! * **Flat origin groups.** Runs currently sharing a state form a
//!   *group*. Each group's member origins are kept as an intrusive singly
//!   linked list in one flat `next_origin` array (one `u32` per origin,
//!   head/tail per group), so merging two groups is a constant-time link
//!   splice — no `Vec<Vec<u32>>` origin lists, no per-byte churn.
//! * **Generation-stamped dedup slots.** Per byte, target states are
//!   deduplicated through a slot array stamped with a monotonically
//!   increasing generation, avoiding an `O(table)` clear per byte.
//! * **Dead-run compaction.** Groups are compacted in place every byte;
//!   a group whose transition dies is simply not carried over, so the
//!   live-group prefix only ever shrinks.
//! * **Premultiplied rows.** Group state is tracked as a premultiplied
//!   row offset (`state * stride`, see
//!   [`Dfa::premultiplied_table`](ridfa_automata::dfa::Dfa::premultiplied_table)),
//!   making the transition a single indexed load `ptable[row + class]`.
//! * **Shared byte classification.** The chunk is translated byte→class
//!   block-wise (4 KiB at a time) into a stack buffer *once*, instead of
//!   every run paying a classifier lookup per byte
//!   ([`ByteClasses::classify_into`]).
//! * **Single-run fast path.** Once every run has died or converged into
//!   one group, the scan degenerates to the plain serial loop: one load
//!   per byte, zero bookkeeping.
//!
//! All working memory lives in a reusable per-worker [`Scratch`]; after
//! its first-use warm-up a scan performs **zero heap allocations**, which
//! `tests/kernel_alloc.rs` asserts with a counting global allocator.

use ridfa_automata::alphabet::ByteClasses;
use ridfa_automata::counter::Counter;
use ridfa_automata::{StateId, DEAD};

use super::budget::InterruptProbe;

mod simd;

/// Size of the stack-resident byte→class translation buffer. 4 KiB keeps
/// the buffer comfortably inside L1 alongside the group arrays.
const CLASS_BLOCK: usize = 4096;

/// Sentinel terminating a group's origin list.
const NONE: u32 = u32::MAX;

/// Which scan strategy executes a speculative chunk scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// One independent pass per speculative start (the paper's baseline
    /// reach phase). Cheapest bookkeeping; cost is `k` passes over the
    /// chunk regardless of convergence.
    PerRun,
    /// Single lockstep pass with convergence merging; bytes are
    /// classified inline, one lookup per byte, and merging is attempted
    /// on every byte to the end of the chunk.
    Lockstep,
    /// The default fused kernel: [`Kernel::Lockstep`] plus block-wise
    /// shared byte classification through a stack buffer, plus the
    /// *partition-stabilization cutover* — when a full block passes with
    /// no merge and no death, the surviving groups finish with lean
    /// serial loops instead of paying per-byte dedup bookkeeping.
    LockstepShared,
    /// The data-parallel kernel (AVX2, runtime-detected): vectorized
    /// byte classification, a gather-based lockstep step advancing eight
    /// speculative runs per instruction (Ko et al.'s speculative SIMD
    /// membership test), and — once the scan converges to few runs — an
    /// interleaved multi-chain / checkpoint-and-repair strided walk that
    /// breaks the per-byte load-to-load dependency chain. Falls back to
    /// [`Kernel::LockstepShared`] (bit-identical mappings) when the CPU
    /// feature is missing, `RIDFA_NO_SIMD` is set, or the table shape
    /// does not allow gathers.
    Simd,
    /// Pick per chunk via [`select`], from the number of runs, the chunk
    /// length, the table size, and the runtime CPU features.
    Auto,
}

impl Kernel {
    /// Short display name for `via …` reporting lines.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::PerRun => "per-run",
            Kernel::Lockstep => "lockstep",
            Kernel::LockstepShared => "lockstep-shared",
            Kernel::Simd => "simd",
            Kernel::Auto => "auto",
        }
    }
}

/// Can [`Kernel::Simd`] actually execute on this machine and table? True
/// iff the CPU reports AVX2 at runtime (`RIDFA_NO_SIMD` unset — see
/// [`ridfa_automata::simd::enabled`]) and the premultiplied table is
/// addressable by the 32-bit gather indices the kernel uses. [`select`]
/// consults this, so `Auto` never resolves to a kernel that would only
/// fall back.
pub fn simd_supported(table_entries: usize) -> bool {
    simd::supported(table_entries)
}

/// Minimum chunk length for which [`select`] picks [`Kernel::Simd`]:
/// below this the vector setup (row broadcasts, stride bookkeeping)
/// cannot amortize and the scalar matrix applies unchanged.
pub const SIMD_MIN_CHUNK: usize = 4096;

/// Resolves [`Kernel::Auto`] for one chunk scan, consulting the actual
/// runtime CPU features (AVX2 detection + the `RIDFA_NO_SIMD` kill
/// switch) — not compile-time `cfg` — so the same binary adapts to the
/// machine it lands on. Delegates to [`select_with`].
pub fn select(num_runs: usize, chunk_len: usize, table_entries: usize) -> Kernel {
    select_with(
        num_runs,
        chunk_len,
        table_entries,
        simd::supported(table_entries),
    )
}

/// The selection matrix with the SIMD capability made explicit (tests
/// pin both halves; [`select`] passes the detected capability).
///
/// With `simd` available, any chunk of at least [`SIMD_MIN_CHUNK`] bytes
/// takes [`Kernel::Simd`]: vectorized classification pays at every run
/// count, the gather step beats per-byte dedup bookkeeping at high run
/// counts, and the interleaved/strided walks beat the serial
/// load-to-load chain at low ones.
///
/// The scalar half keeps small problems on the bookkeeping-free path:
///
/// * `k ≤ 2` — merging at most two runs can never pay for group
///   tracking, *no matter how large the table*: the lockstep pass would
///   pay per-byte dedup bookkeeping on a scan that is at worst two plain
///   row walks. Scan per run. (Checked first — an earlier version tested
///   the table size before this bail-out and sent 1–2-run scans over big
///   tables through `LockstepShared` for nothing.)
/// * large tables (> 1 MiB) — `k ≥ 3` per-run passes thrash the cache
///   with `k` disjoint row walks; the single lockstep pass touches each
///   hot row once per byte, so prefer it even for short chunks.
/// * short chunks (`len < 64` or `len < 4·k`) — runs have no room to
///   converge, so the lockstep pass would do `k` transitions per byte
///   *plus* dedup work; scan per run.
/// * otherwise — the fused lockstep kernel with shared classification.
pub fn select_with(num_runs: usize, chunk_len: usize, table_entries: usize, simd: bool) -> Kernel {
    const LARGE_TABLE_ENTRIES: usize = (1 << 20) / std::mem::size_of::<StateId>();
    if simd && chunk_len >= SIMD_MIN_CHUNK && num_runs >= 1 {
        return Kernel::Simd;
    }
    if num_runs <= 2 {
        return Kernel::PerRun;
    }
    if table_entries >= LARGE_TABLE_ENTRIES {
        return Kernel::LockstepShared;
    }
    if chunk_len < 64 || chunk_len < 4 * num_runs {
        return Kernel::PerRun;
    }
    Kernel::LockstepShared
}

/// The dense transition structure a kernel scan reads. Borrowed from a
/// [`Dfa`](ridfa_automata::dfa::Dfa) or an
/// [`RiDfa`](crate::ridfa::RiDfa) — both share the flat
/// `state * stride + class` layout.
#[derive(Clone, Copy)]
pub struct DenseTable<'a> {
    /// Premultiplied table: entries are `target * stride` (see
    /// `premultiplied_table`). Row 0 is the dead state.
    pub ptable: &'a [StateId],
    /// Row stride = number of byte classes.
    pub stride: usize,
    /// The byte→class map the table is compressed with.
    pub classes: &'a ByteClasses,
}

/// Reusable per-worker working memory of the lockstep kernel.
///
/// All vectors grow to the high-water mark of the automata scanned and
/// then stay put: after this warm-up a scan allocates nothing. One
/// `Scratch` must not be shared between concurrent scans (each worker
/// thread owns one; see `parallel::run_indexed_with`).
#[derive(Debug, Default)]
pub struct Scratch {
    /// Premultiplied row offset of each live group (compacted prefix).
    rows: Vec<StateId>,
    /// First origin of each group's member list.
    heads: Vec<u32>,
    /// Last origin of each group's member list (for O(1) splicing).
    tails: Vec<u32>,
    /// Intrusive linked list over origins: `next_origin[o]` = next member
    /// of o's group, [`NONE`] at the tail.
    next_origin: Vec<u32>,
    /// Generation stamp per table row; a slot is live iff its stamp
    /// equals the current generation.
    slot_gen: Vec<u64>,
    /// Group index the stamped row currently maps to.
    slot_idx: Vec<u32>,
    /// Monotonic generation counter (u64: never wraps in practice).
    generation: u64,
    /// Stack-sized class translation buffer, heap-allocated once so
    /// `Scratch` stays `Default` + cheap to construct.
    class_buf: Vec<u8>,
    /// Per-stride class buffers of the SIMD strided walks
    /// (`simd::NUM_CHAINS × CLASS_BLOCK`), grown on first SIMD scan.
    simd_class_buf: Vec<u8>,
    /// Checkpoint rows of the SIMD speculative strided walk, grown to
    /// the chunk-length high-water mark on first use.
    simd_ckpt: Vec<StateId>,
    /// Interrupt probe of the budgeted call currently driving this
    /// scratch, checked once per classification block. `None` (the
    /// default and the unbudgeted state) keeps the hot loops untouched.
    interrupt: Option<InterruptProbe>,
}

impl Scratch {
    /// Arms (`Some`) or clears (`None`) the deadline/cancellation probe
    /// consulted by kernel scans through this scratch. Budgeted executors
    /// set it on every chunk claim; passing `None` costs one store.
    pub fn set_interrupt(&mut self, probe: Option<InterruptProbe>) {
        self.interrupt = probe;
    }
    /// Clears the group arrays and grows everything to serve `table_len`
    /// rows and `num_origins` origins. Capacity only ever grows —
    /// repeated scans of the same automaton allocate nothing.
    fn warm_up(&mut self, table_len: usize, num_origins: usize) {
        if self.slot_gen.len() < table_len {
            self.slot_gen.resize(table_len, 0);
            self.slot_idx.resize(table_len, 0);
        }
        if self.next_origin.len() < num_origins {
            self.next_origin.resize(num_origins, NONE);
        }
        self.rows.clear();
        self.heads.clear();
        self.tails.clear();
        // At most one group per origin can ever exist.
        self.rows.reserve(num_origins);
        self.heads.reserve(num_origins);
        self.tails.reserve(num_origins);
        if self.class_buf.len() < CLASS_BLOCK {
            self.class_buf.resize(CLASS_BLOCK, 0);
        }
    }
}

/// Scans `chunk` speculatively from every `(origin, start)` pair and
/// writes the λ mapping into `out`: `out[origin]` = last active state of
/// the run started at `start`, [`DEAD`] if it died. `out` is cleared and
/// resized to `num_origins` first (no allocation once its capacity has
/// warmed up).
///
/// `kernel` picks the strategy; [`Kernel::Auto`] defers to [`select`].
/// Counting semantics per strategy:
///
/// * per-run: one increment per executed live transition per run — the
///   paper's `k`-pass reach-phase workload measure;
/// * lockstep: one increment per *group* advance — the work actually
///   executed after merging, strictly fewer on any text where runs
///   converge or die.
#[allow(clippy::too_many_arguments)] // the kernel entry point is the hot seam; a config struct would cost a rebuild of every caller's borrows
pub fn scan_into(
    table: DenseTable<'_>,
    starts: impl Iterator<Item = (u32, StateId)>,
    num_origins: usize,
    chunk: &[u8],
    kernel: Kernel,
    scratch: &mut Scratch,
    counter: &mut impl Counter,
    out: &mut Vec<StateId>,
) {
    out.clear();
    out.resize(num_origins, DEAD);
    debug_assert!(table.ptable.len().is_multiple_of(table.stride.max(1)));
    match kernel {
        Kernel::PerRun => per_run_scan(
            table,
            starts,
            chunk,
            scratch.interrupt.as_ref(),
            counter,
            out,
        ),
        Kernel::Lockstep => lockstep_scan(table, starts, chunk, false, scratch, counter, out),
        Kernel::LockstepShared => lockstep_scan(table, starts, chunk, true, scratch, counter, out),
        Kernel::Simd => {
            if simd::supported(table.ptable.len()) {
                simd::scan(table, starts, chunk, scratch, counter, out)
            } else {
                // Feature or table shape unavailable: the fused scalar
                // kernel is the drop-in oracle (identical mappings).
                lockstep_scan(table, starts, chunk, true, scratch, counter, out)
            }
        }
        Kernel::Auto => {
            // `starts` is not re-iterable, so bound k by `num_origins`
            // (equal for every caller in this crate: one start per origin).
            let choice = select(num_origins, chunk.len(), table.ptable.len());
            scan_into(
                table,
                starts,
                num_origins,
                chunk,
                choice,
                scratch,
                counter,
                out,
            )
        }
    }
}

/// Runs one premultiplied row serially over `bytes`: one indexed load per
/// byte, counting each live transition. Returns the final row, or `0`
/// (the dead row, whose state is [`DEAD`]) if the run died. Shared by the
/// per-run strategy and the lockstep finishing loop so their counting and
/// death semantics can never diverge.
#[inline(always)]
fn run_row_serial(
    table: DenseTable<'_>,
    mut row: usize,
    bytes: &[u8],
    counter: &mut impl Counter,
) -> usize {
    for &byte in bytes {
        let next = table.ptable[row + table.classes.get(byte) as usize];
        if next == 0 {
            return 0;
        }
        counter.incr();
        row = next as usize;
    }
    row
}

/// Segmented interruptible row run: like [`run_row_serial`] but checks
/// the probe once per [`CLASS_BLOCK`]. Only reached when a budget is
/// armed, so the unbudgeted hot loop stays byte-identical. On a trip the
/// partial row is returned — the budgeted caller discards the whole
/// mapping anyway.
fn run_row_interruptible(
    table: DenseTable<'_>,
    mut row: usize,
    bytes: &[u8],
    counter: &mut impl Counter,
    probe: &InterruptProbe,
) -> usize {
    for segment in bytes.chunks(CLASS_BLOCK) {
        if probe.should_stop() {
            break;
        }
        row = run_row_serial(table, row, segment, counter);
        if row == 0 {
            break;
        }
    }
    row
}

/// The baseline strategy: each run scans the whole chunk independently.
fn per_run_scan(
    table: DenseTable<'_>,
    starts: impl Iterator<Item = (u32, StateId)>,
    chunk: &[u8],
    interrupt: Option<&InterruptProbe>,
    counter: &mut impl Counter,
    out: &mut [StateId],
) {
    let stride = table.stride;
    for (origin, start) in starts {
        if start == DEAD {
            continue;
        }
        let row = match interrupt {
            None => run_row_serial(table, start as usize * stride, chunk, counter),
            Some(probe) => {
                if probe.should_stop() {
                    return; // abandoned: the caller discards the mapping
                }
                run_row_interruptible(table, start as usize * stride, chunk, counter, probe)
            }
        };
        out[origin as usize] = (row / stride) as StateId;
    }
}

/// The fused strategy: one pass, all runs in lockstep, converged runs
/// merged. With `shared_classes` the chunk is pre-classified block-wise;
/// otherwise each byte is classified inline.
fn lockstep_scan(
    table: DenseTable<'_>,
    starts: impl Iterator<Item = (u32, StateId)>,
    chunk: &[u8],
    shared_classes: bool,
    scratch: &mut Scratch,
    counter: &mut impl Counter,
    out: &mut [StateId],
) {
    scratch.warm_up(table.ptable.len(), out.len());
    let stride = table.stride;
    let mut len = seed_groups(scratch, starts, stride);
    let mut consumed = 0;
    if shared_classes {
        // Split borrows: the class buffer must be readable while the
        // group arrays are advanced.
        let mut class_buf = std::mem::take(&mut scratch.class_buf);
        // Partition-stabilization cutover: convergence happens in early
        // bursts (runs die or merge within the first few dozen bytes on
        // realistic texts). Once no group has merged or died for a full
        // horizon, the survivors are tracking distinct trajectories and
        // further convergence is unlikely — stop paying per-byte dedup
        // bookkeeping and finish each group with the lean loop below.
        // (The transitions executed stay the same; only bookkeeping is
        // shed, so lockstep never loses badly to per-run scanning.)
        const STABLE_HORIZON: usize = 256;
        let mut since_change = 0;
        'blocks: while consumed < chunk.len() && len > 1 {
            if scratch.interrupt.as_ref().is_some_and(|p| p.should_stop()) {
                break 'blocks;
            }
            let block = &chunk[consumed..(consumed + CLASS_BLOCK).min(chunk.len())];
            table.classes.classify_into(block, &mut class_buf);
            for &class in &class_buf[..block.len()] {
                let next_len = advance(table.ptable, scratch, len, class, counter);
                consumed += 1;
                since_change = if next_len == len { since_change + 1 } else { 0 };
                len = next_len;
                if len <= 1 || since_change >= STABLE_HORIZON {
                    break 'blocks;
                }
            }
        }
        scratch.class_buf = class_buf;
    } else {
        while consumed < chunk.len() && len > 1 {
            if scratch.interrupt.as_ref().is_some_and(|p| p.should_stop()) {
                break;
            }
            let segment_end = (consumed + CLASS_BLOCK).min(chunk.len());
            while consumed < segment_end && len > 1 {
                let class = table.classes.get(chunk[consumed]);
                len = advance(table.ptable, scratch, len, class, counter);
                consumed += 1;
            }
        }
    }

    if consumed < chunk.len() {
        // Finish the surviving groups with the plain serial loop — one
        // load per byte, zero bookkeeping. One group when every run
        // converged or died (the fast path); several after a
        // stabilization cutover. A group that dies parks on row 0, whose
        // state is DEAD — exactly what its origins should map to.
        let rest = &chunk[consumed..];
        let probe = scratch.interrupt.clone();
        for g in 0..len {
            let row = match &probe {
                None => run_row_serial(table, scratch.rows[g] as usize, rest, counter),
                Some(p) => run_row_interruptible(table, scratch.rows[g] as usize, rest, counter, p),
            };
            scratch.rows[g] = row as StateId;
        }
    }

    write_mapping(scratch, len, stride, out);
}

/// Builds the initial origin groups from the `(origin, start)` pairs:
/// distinct starts may already coincide (delegated interface states, for
/// instance), so they are deduplicated through the generation slots.
/// Returns the live-group count. Shared by the scalar lockstep scan and
/// the SIMD scan so seeding semantics can never diverge.
fn seed_groups(
    scratch: &mut Scratch,
    starts: impl Iterator<Item = (u32, StateId)>,
    stride: usize,
) -> usize {
    scratch.generation += 1;
    let generation = scratch.generation;
    for (origin, start) in starts {
        if start == DEAD {
            continue; // defensive: a dead start maps to DEAD, run nothing
        }
        scratch.next_origin[origin as usize] = NONE;
        let row = start as usize * stride;
        if scratch.slot_gen[row] == generation {
            let g = scratch.slot_idx[row] as usize;
            scratch.next_origin[scratch.tails[g] as usize] = origin;
            scratch.tails[g] = origin;
        } else {
            scratch.slot_gen[row] = generation;
            scratch.slot_idx[row] = scratch.rows.len() as u32;
            scratch.rows.push(row as StateId);
            scratch.heads.push(origin);
            scratch.tails.push(origin);
        }
    }
    scratch.rows.len()
}

/// Writes the final mapping: walks each surviving group's origin list
/// and records the group's state. Dead origins keep the DEAD the caller
/// pre-filled. Shared epilogue of the scalar and SIMD scans.
fn write_mapping(scratch: &Scratch, len: usize, stride: usize, out: &mut [StateId]) {
    for g in 0..len {
        let state = (scratch.rows[g] as usize / stride) as StateId;
        let mut origin = scratch.heads[g];
        while origin != NONE {
            out[origin as usize] = state;
            origin = scratch.next_origin[origin as usize];
        }
    }
}

/// Deduplicates and compacts the live groups *in place* after a merge
/// period of the SIMD gather step (which advances groups without per-byte
/// bookkeeping): groups that landed on the same row are spliced together,
/// groups that died (row 0) are dropped. Returns the new live count.
fn merge_compact(scratch: &mut Scratch, len: usize) -> usize {
    scratch.generation += 1;
    let generation = scratch.generation;
    let mut write = 0;
    for read in 0..len {
        let row = scratch.rows[read];
        if row == 0 {
            continue; // the group died during the period: origins stay DEAD
        }
        let slot = row as usize;
        if scratch.slot_gen[slot] == generation {
            let idx = scratch.slot_idx[slot] as usize;
            scratch.next_origin[scratch.tails[idx] as usize] = scratch.heads[read];
            scratch.tails[idx] = scratch.tails[read];
        } else {
            scratch.slot_gen[slot] = generation;
            scratch.slot_idx[slot] = write as u32;
            scratch.rows[write] = row;
            scratch.heads[write] = scratch.heads[read];
            scratch.tails[write] = scratch.tails[read];
            write += 1;
        }
    }
    write
}

/// Advances all `len` live groups by one byte class, merging groups that
/// land on the same target row and compacting out groups that die.
/// Returns the new live-group count.
#[inline(always)]
fn advance(
    ptable: &[StateId],
    scratch: &mut Scratch,
    len: usize,
    class: u8,
    counter: &mut impl Counter,
) -> usize {
    scratch.generation += 1;
    let generation = scratch.generation;
    let mut write = 0;
    for read in 0..len {
        let target = ptable[scratch.rows[read] as usize + class as usize];
        if target == 0 {
            continue; // the group died: its origins stay DEAD
        }
        counter.incr();
        let slot = target as usize;
        if scratch.slot_gen[slot] == generation {
            // Converged with an already-advanced group: splice the origin
            // lists in O(1). `idx < write ≤ read`, so both live in the
            // compacted prefix.
            let idx = scratch.slot_idx[slot] as usize;
            scratch.next_origin[scratch.tails[idx] as usize] = scratch.heads[read];
            scratch.tails[idx] = scratch.tails[read];
        } else {
            scratch.slot_gen[slot] = generation;
            scratch.slot_idx[slot] = write as u32;
            scratch.rows[write] = target;
            scratch.heads[write] = scratch.heads[read];
            scratch.tails[write] = scratch.tails[read];
            write += 1;
        }
    }
    write
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridfa_automata::dfa::powerset::determinize;
    use ridfa_automata::dfa::Dfa;
    use ridfa_automata::nfa::glushkov;
    use ridfa_automata::regex::parse;
    use ridfa_automata::{NoCount, TransitionCount};

    fn dfa_for(pattern: &str) -> Dfa {
        determinize(&glushkov::build(&parse(pattern).unwrap()).unwrap())
    }

    fn scan(dfa: &Dfa, chunk: &[u8], kernel: Kernel) -> (Vec<StateId>, u64) {
        let ptable = dfa.premultiplied_table();
        let table = DenseTable {
            ptable: &ptable,
            stride: dfa.stride(),
            classes: dfa.classes(),
        };
        let mut scratch = Scratch::default();
        let mut counter = TransitionCount::default();
        let mut out = Vec::new();
        scan_into(
            table,
            dfa.live_states().map(|s| (s, s)),
            dfa.num_states(),
            chunk,
            kernel,
            &mut scratch,
            &mut counter,
            &mut out,
        );
        (out, counter.get())
    }

    /// Oracle: the naive per-run scan through the unfused `Dfa` API.
    fn oracle(dfa: &Dfa, chunk: &[u8]) -> Vec<StateId> {
        let mut mapping = vec![DEAD; dfa.num_states()];
        for s in dfa.live_states() {
            mapping[s as usize] = dfa.run_from(s, chunk, &mut NoCount);
        }
        mapping
    }

    #[test]
    fn all_kernels_match_the_oracle() {
        for pattern in ["(a|b)*abb", "a{2,4}b*", "[ab]*a[ab][ab]", "abc"] {
            let dfa = dfa_for(pattern);
            for chunk in [
                &b""[..],
                b"a",
                b"abab",
                b"zzz",
                b"abbabbabbabb",
                &b"ab".repeat(3000),
                // Long enough to reach the SIMD strided single-run walk
                // (> STRIDE_MIN bytes past convergence).
                &b"ab".repeat(20_000),
            ] {
                let expected = oracle(&dfa, chunk);
                for kernel in [
                    Kernel::PerRun,
                    Kernel::Lockstep,
                    Kernel::LockstepShared,
                    Kernel::Simd,
                    Kernel::Auto,
                ] {
                    let (got, _) = scan(&dfa, chunk, kernel);
                    assert_eq!(
                        got,
                        expected,
                        "{pattern} {kernel:?} on {:?}…",
                        &chunk[..chunk.len().min(8)]
                    );
                }
            }
        }
    }

    #[test]
    fn per_run_counts_match_plain_scan_semantics() {
        // No run over {a,b} text can die in this language, so the per-run
        // kernel must count exactly k × |chunk|.
        let dfa = dfa_for("[ab]*a[ab][ab]");
        let chunk = b"abab";
        let (_, count) = scan(&dfa, chunk, Kernel::PerRun);
        assert_eq!(count, (dfa.num_live_states() * chunk.len()) as u64);
    }

    #[test]
    fn lockstep_executes_fewer_transitions_on_converging_text() {
        let dfa = dfa_for("(a|b)*abb");
        let chunk = b"ab".repeat(512);
        let (_, per_run) = scan(&dfa, &chunk, Kernel::PerRun);
        let (_, lockstep) = scan(&dfa, &chunk, Kernel::LockstepShared);
        assert!(
            lockstep < per_run,
            "lockstep {lockstep} must beat per-run {per_run}"
        );
        // Fully converged tail: cost approaches one transition per byte.
        assert!(lockstep < chunk.len() as u64 + (dfa.num_live_states() * 64) as u64);
    }

    #[test]
    fn auto_picks_per_run_for_tiny_problems_and_lockstep_for_large() {
        // Scalar half (SIMD capability off).
        assert_eq!(select_with(2, 1 << 20, 1024, false), Kernel::PerRun);
        assert_eq!(select_with(8, 16, 1024, false), Kernel::PerRun);
        assert_eq!(select_with(8, 1 << 20, 1024, false), Kernel::LockstepShared);
        assert_eq!(select_with(3, 4, 1 << 20, false), Kernel::LockstepShared);
        // `select` must agree with `select_with` under the detected
        // capability — the runtime wiring is exactly this delegation.
        for (k, len, table) in [(2, 1 << 20, 1024), (8, 16, 1024), (8, 1 << 20, 1024)] {
            assert_eq!(
                select(k, len, table),
                select_with(k, len, table, simd_supported(table)),
            );
        }
    }

    #[test]
    fn selection_matrix_is_pinned() {
        const BIG: usize = 1 << 20; // entries ≥ the large-table threshold
        const SMALL: usize = 1024;
        let select = |k, len, table| select_with(k, len, table, false);
        // k ≤ 2 always scans per run — group bookkeeping cannot pay with
        // at most one possible merge, regardless of the table size (the
        // regression: big tables used to win this tie).
        for table in [SMALL, BIG] {
            for len in [0, 16, 1 << 20] {
                assert_eq!(select(1, len, table), Kernel::PerRun, "k=1 len={len}");
                assert_eq!(select(2, len, table), Kernel::PerRun, "k=2 len={len}");
            }
        }
        // k ≥ 3 over a big table: lockstep even for short chunks.
        for len in [0, 16, 63, 1 << 20] {
            assert_eq!(select(3, len, BIG), Kernel::LockstepShared, "len={len}");
            assert_eq!(select(100, len, BIG), Kernel::LockstepShared, "len={len}");
        }
        // k ≥ 3, small table: chunk length decides.
        assert_eq!(select(8, 63, SMALL), Kernel::PerRun, "len < 64");
        assert_eq!(select(8, 64, SMALL), Kernel::LockstepShared);
        assert_eq!(select(100, 256, SMALL), Kernel::PerRun, "len < 4k");
        assert_eq!(select(100, 400, SMALL), Kernel::LockstepShared);
    }

    #[test]
    fn simd_selection_is_pinned() {
        // With the capability available, chunk length alone gates SIMD:
        // any run count benefits (vector classification at least).
        for k in [1, 2, 8, 100] {
            assert_eq!(
                select_with(k, SIMD_MIN_CHUNK, 1024, true),
                Kernel::Simd,
                "k={k}"
            );
            assert_eq!(
                select_with(k, 1 << 20, 1 << 21, true),
                Kernel::Simd,
                "k={k} big table"
            );
        }
        // Below the SIMD floor the scalar matrix applies unchanged.
        assert_eq!(
            select_with(2, SIMD_MIN_CHUNK - 1, 1024, true),
            Kernel::PerRun
        );
        assert_eq!(
            select_with(8, SIMD_MIN_CHUNK - 1, 1024, true),
            Kernel::LockstepShared
        );
    }

    #[test]
    fn scratch_is_reusable_across_automata() {
        // One scratch serving two different automata back to back must
        // not leak group state between scans.
        let small = dfa_for("ab");
        let big = dfa_for("(a|b|c)*abc(a|b)*");
        let ptable_small = small.premultiplied_table();
        let ptable_big = big.premultiplied_table();
        let mut scratch = Scratch::default();
        let mut out = Vec::new();
        for _ in 0..3 {
            for (dfa, ptable) in [(&small, &ptable_small), (&big, &ptable_big)] {
                let table = DenseTable {
                    ptable,
                    stride: dfa.stride(),
                    classes: dfa.classes(),
                };
                scan_into(
                    table,
                    dfa.live_states().map(|s| (s, s)),
                    dfa.num_states(),
                    b"abcabcab",
                    Kernel::LockstepShared,
                    &mut scratch,
                    &mut NoCount,
                    &mut out,
                );
                assert_eq!(out, oracle(dfa, b"abcabcab"));
            }
        }
    }

    #[test]
    fn duplicate_start_states_share_one_run() {
        // Two origins starting in the same state must be grouped from
        // byte 0 and charged once.
        let dfa = dfa_for("[ab]*");
        let ptable = dfa.premultiplied_table();
        let table = DenseTable {
            ptable: &ptable,
            stride: dfa.stride(),
            classes: dfa.classes(),
        };
        let start = dfa.start();
        let mut scratch = Scratch::default();
        let mut counter = TransitionCount::default();
        let mut out = Vec::new();
        scan_into(
            table,
            [(0u32, start), (1u32, start)].into_iter(),
            2,
            b"abab",
            Kernel::Lockstep,
            &mut scratch,
            &mut counter,
            &mut out,
        );
        assert_eq!(out[0], out[1]);
        assert_ne!(out[0], DEAD);
        assert_eq!(counter.get(), 4, "one merged run, one count per byte");
    }
}
