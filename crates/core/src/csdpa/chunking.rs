//! Text segmentation into chunks.

use std::ops::Range;

/// Splits `0..len` into `num_chunks` contiguous spans whose lengths differ
/// by at most one byte (the first `len % c` spans get the extra byte).
///
/// `num_chunks` is clamped to `1..=len` so every chunk is non-empty
/// (`y_i ∈ Σ+` in the paper); an empty text yields a single empty span.
pub fn chunk_spans(len: usize, num_chunks: usize) -> Vec<Range<usize>> {
    let mut spans = Vec::new();
    chunk_spans_into(len, num_chunks, &mut spans);
    spans
}

/// Like [`chunk_spans`] but writing into a reusable buffer (cleared
/// first) — allocation-free once `out` has grown to the high-water chunk
/// count. A [`Session`](super::Session) recomputes spans per text through
/// this path.
pub fn chunk_spans_into(len: usize, num_chunks: usize, out: &mut Vec<Range<usize>>) {
    out.clear();
    if len == 0 {
        out.push(0..0);
        return;
    }
    let c = num_chunks.clamp(1, len);
    let base = len / c;
    let extra = len % c;
    out.reserve(c);
    let mut offset = 0;
    for i in 0..c {
        let size = base + usize::from(i < extra);
        out.push(offset..offset + size);
        offset += size;
    }
    debug_assert_eq!(offset, len);
}

/// Like [`chunk_spans`] but with record-separator-aware boundary
/// snapping: each interior cut point is moved forward to just past the
/// next `separator` byte, so every chunk (except possibly the first)
/// starts at a record head. For record-structured workloads under a
/// feasible-start plan this collapses the feasible set at each boundary
/// to the handful of states reachable right after a separator — far
/// fewer speculative runs than an arbitrary mid-record cut seeds.
///
/// Snapping is best-effort: a cut with no separator in its remaining
/// suffix merges into the previous chunk (spans stay contiguous, cover
/// the text exactly, and are never empty), and a separator-free text
/// degrades to one span per surviving cut — i.e. plain [`chunk_spans`]
/// semantics minus the merged cuts.
pub fn chunk_spans_snapped(
    text: &[u8],
    num_chunks: usize,
    separator: u8,
    out: &mut Vec<Range<usize>>,
) {
    chunk_spans_into(text.len(), num_chunks, out);
    if text.is_empty() || out.len() < 2 {
        return;
    }
    let mut write = 0;
    let mut start = 0;
    for i in 1..out.len() {
        let cut = out[i].start;
        // Snap forward: the chunk boundary lands just after the first
        // separator at or beyond the balanced cut point.
        match text[cut..].iter().position(|&b| b == separator) {
            Some(offset) if cut + offset + 1 < text.len() => {
                let snapped = cut + offset + 1;
                if snapped > start {
                    out[write] = start..snapped;
                    write += 1;
                    start = snapped;
                }
            }
            // No separator ahead (or it is the final byte): merge this
            // cut into the running span.
            _ => {}
        }
    }
    out[write] = start..text.len();
    out.truncate(write + 1);
    debug_assert_eq!(out[0].start, 0);
    debug_assert!(out.windows(2).all(|w| w[0].end == w[1].start));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_text_exactly() {
        for len in [1usize, 2, 7, 100, 1001] {
            for c in [1usize, 2, 3, 32, 64, 1000, 5000] {
                let spans = chunk_spans(len, c);
                assert_eq!(spans[0].start, 0);
                assert_eq!(spans.last().unwrap().end, len);
                for w in spans.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                }
            }
        }
    }

    #[test]
    fn chunks_are_balanced() {
        let spans = chunk_spans(100, 7);
        let sizes: Vec<usize> = spans.iter().map(|s| s.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1);
        assert_eq!(sizes.iter().sum::<usize>(), 100);
    }

    #[test]
    fn more_chunks_than_bytes_clamps() {
        let spans = chunk_spans(3, 10);
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn empty_text_single_empty_span() {
        let spans = chunk_spans(0, 8);
        assert_eq!(spans, vec![0..0]);
    }

    #[test]
    fn spans_into_reuses_buffer() {
        let mut buf = chunk_spans(100, 7);
        let cap = buf.capacity();
        chunk_spans_into(10, 3, &mut buf);
        assert_eq!(buf, chunk_spans(10, 3));
        assert!(buf.capacity() >= cap, "capacity must be retained");
    }

    #[test]
    fn zero_chunks_clamps_to_one() {
        let spans = chunk_spans(5, 0);
        assert_eq!(spans, vec![0..5]);
    }

    #[test]
    fn snapped_spans_start_at_record_heads() {
        // Records of 10 bytes: "aaaaaaaaa\n" × 8.
        let text: Vec<u8> = b"aaaaaaaaa\n".repeat(8);
        let mut spans = Vec::new();
        chunk_spans_snapped(&text, 4, b'\n', &mut spans);
        assert_eq!(spans[0].start, 0);
        assert_eq!(spans.last().unwrap().end, text.len());
        for w in spans.windows(2) {
            assert_eq!(w[0].end, w[1].start, "contiguous");
            assert_eq!(
                text[w[1].start - 1],
                b'\n',
                "every interior boundary follows a separator"
            );
        }
        assert!(spans.len() >= 2, "separators exist, cuts must survive");
        assert!(spans.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn snapping_without_separators_degrades_to_one_span() {
        let text = vec![b'x'; 100];
        let mut spans = Vec::new();
        chunk_spans_snapped(&text, 4, b'\n', &mut spans);
        assert_eq!(spans, vec![0..100], "no separator: cuts all merge");
    }

    #[test]
    fn snapping_never_produces_empty_spans() {
        // Separators clustered at the front: several cuts snap to the
        // same record head and must collapse, not produce empty spans.
        let mut text = b"\n\n\n".to_vec();
        text.extend_from_slice(&[b'y'; 50]);
        let mut spans = Vec::new();
        chunk_spans_snapped(&text, 8, b'\n', &mut spans);
        assert!(spans.iter().all(|s| !s.is_empty()), "{spans:?}");
        assert_eq!(spans[0].start, 0);
        assert_eq!(spans.last().unwrap().end, text.len());
        for w in spans.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }
}
