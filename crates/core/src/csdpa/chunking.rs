//! Text segmentation into chunks.

use std::ops::Range;

/// Splits `0..len` into `num_chunks` contiguous spans whose lengths differ
/// by at most one byte (the first `len % c` spans get the extra byte).
///
/// `num_chunks` is clamped to `1..=len` so every chunk is non-empty
/// (`y_i ∈ Σ+` in the paper); an empty text yields a single empty span.
pub fn chunk_spans(len: usize, num_chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        let empty: Range<usize> = 0..0;
        return vec![empty];
    }
    let c = num_chunks.clamp(1, len);
    let base = len / c;
    let extra = len % c;
    let mut spans = Vec::with_capacity(c);
    let mut offset = 0;
    for i in 0..c {
        let size = base + usize::from(i < extra);
        spans.push(offset..offset + size);
        offset += size;
    }
    debug_assert_eq!(offset, len);
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_text_exactly() {
        for len in [1usize, 2, 7, 100, 1001] {
            for c in [1usize, 2, 3, 32, 64, 1000, 5000] {
                let spans = chunk_spans(len, c);
                assert_eq!(spans[0].start, 0);
                assert_eq!(spans.last().unwrap().end, len);
                for w in spans.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                }
            }
        }
    }

    #[test]
    fn chunks_are_balanced() {
        let spans = chunk_spans(100, 7);
        let sizes: Vec<usize> = spans.iter().map(|s| s.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1);
        assert_eq!(sizes.iter().sum::<usize>(), 100);
    }

    #[test]
    fn more_chunks_than_bytes_clamps() {
        let spans = chunk_spans(3, 10);
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn empty_text_single_empty_span() {
        let spans = chunk_spans(0, 8);
        assert_eq!(spans, vec![0..0]);
    }

    #[test]
    fn zero_chunks_clamps_to_one() {
        let spans = chunk_spans(5, 0);
        assert_eq!(spans, vec![0..5]);
    }
}
