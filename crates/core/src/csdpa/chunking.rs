//! Text segmentation into chunks.

use std::ops::Range;

/// Splits `0..len` into `num_chunks` contiguous spans whose lengths differ
/// by at most one byte (the first `len % c` spans get the extra byte).
///
/// `num_chunks` is clamped to `1..=len` so every chunk is non-empty
/// (`y_i ∈ Σ+` in the paper); an empty text yields a single empty span.
pub fn chunk_spans(len: usize, num_chunks: usize) -> Vec<Range<usize>> {
    let mut spans = Vec::new();
    chunk_spans_into(len, num_chunks, &mut spans);
    spans
}

/// Like [`chunk_spans`] but writing into a reusable buffer (cleared
/// first) — allocation-free once `out` has grown to the high-water chunk
/// count. A [`Session`](super::Session) recomputes spans per text through
/// this path.
pub fn chunk_spans_into(len: usize, num_chunks: usize, out: &mut Vec<Range<usize>>) {
    out.clear();
    if len == 0 {
        out.push(0..0);
        return;
    }
    let c = num_chunks.clamp(1, len);
    let base = len / c;
    let extra = len % c;
    out.reserve(c);
    let mut offset = 0;
    for i in 0..c {
        let size = base + usize::from(i < extra);
        out.push(offset..offset + size);
        offset += size;
    }
    debug_assert_eq!(offset, len);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_text_exactly() {
        for len in [1usize, 2, 7, 100, 1001] {
            for c in [1usize, 2, 3, 32, 64, 1000, 5000] {
                let spans = chunk_spans(len, c);
                assert_eq!(spans[0].start, 0);
                assert_eq!(spans.last().unwrap().end, len);
                for w in spans.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                }
            }
        }
    }

    #[test]
    fn chunks_are_balanced() {
        let spans = chunk_spans(100, 7);
        let sizes: Vec<usize> = spans.iter().map(|s| s.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1);
        assert_eq!(sizes.iter().sum::<usize>(), 100);
    }

    #[test]
    fn more_chunks_than_bytes_clamps() {
        let spans = chunk_spans(3, 10);
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn empty_text_single_empty_span() {
        let spans = chunk_spans(0, 8);
        assert_eq!(spans, vec![0..0]);
    }

    #[test]
    fn spans_into_reuses_buffer() {
        let mut buf = chunk_spans(100, 7);
        let cap = buf.capacity();
        chunk_spans_into(10, 3, &mut buf);
        assert_eq!(buf, chunk_spans(10, 3));
        assert!(buf.capacity() >= cap, "capacity must be retained");
    }

    #[test]
    fn zero_chunks_clamps_to_one() {
        let spans = chunk_spans(5, 0);
        assert_eq!(spans, vec![0..5]);
    }
}
