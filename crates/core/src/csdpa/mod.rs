//! The classic speculative data-parallel algorithm (CSDPA, paper Sect. 2)
//! and its reduced-interface refinement (RID, Sect. 3.2).
//!
//! The input text is cut into `c` chunks. The **reach phase** scans every
//! chunk in parallel with an identical *chunk automaton* (CA); because a
//! CA (except the first) cannot know the state the upstream chunk ends in,
//! it speculatively starts one run per possible initial state and returns
//! the partial mapping `λ_i : PIS → PLAS` from possible initial states to
//! possible last active states. The serial **join phase** composes
//! adjacent mappings and checks acceptance.
//!
//! Five CAs implement the common [`ChunkAutomaton`] interface:
//!
//! | CA | speculative starts | transition cost/byte | paper role |
//! |----|--------------------|----------------------|------------|
//! | [`DfaCa`] | all DFA states | 1 per run | classic DFA variant |
//! | [`NfaCa`] | all NFA states | set-simulation edges | classic NFA variant |
//! | [`RidCa`] | RI-DFA interface (≈ NFA states) | 1 per run | the paper's RID |
//! | [`ConvergentDfaCa`] | all DFA states | 1 per *merged group* | DFA + state convergence |
//! | [`ConvergentRidCa`] | RI-DFA interface | 1 per *merged group* | RID + state convergence |
//!
//! The deterministic CAs execute their interior scans through the
//! single-pass lockstep [`kernel`], which merges converged runs, shares
//! the byte→class translation across all runs, and adaptively falls back
//! to per-run scanning where lockstep bookkeeping cannot pay
//! ([`kernel::select`]).
//!
//! The reach phase runs under one of two execution shapes: the one-shot
//! spawning executors of [`recognize`] ([`Executor`]), or a persistent
//! [`Session`] that keeps a worker pool and per-worker scan scratches
//! warm across texts — the right shape for high-traffic streams of short
//! texts, where thread-spawn cost would otherwise dominate.

mod chunking;
mod convergent;
mod dfa_ca;
pub mod kernel;
mod nfa_ca;
mod recognizer;
mod rid_ca;
mod session;

pub use chunking::{chunk_spans, chunk_spans_into};
pub use convergent::{ConvergentDfaCa, ConvergentRidCa};
pub use dfa_ca::DfaCa;
pub use kernel::{Kernel, Scratch};
pub use nfa_ca::NfaCa;
pub use recognizer::{
    recognize, recognize_counted, recognize_serial, ChunkStats, CountedOutcome, Executor, Outcome,
};
pub use rid_ca::{RidCa, RidMapping};
pub use session::Session;

use ridfa_automata::counter::Counter;

/// A chunk automaton: the unit the reach phase replicates per chunk.
///
/// Implementations are read-only and shared across worker threads
/// (`Sync`); all scratch state lives in caller-provided buffers, so a
/// single CA value serves any number of concurrent chunk scans.
///
/// The required methods are the `*_into` shapes that scan and join
/// through **reusable** buffers — a warm [`Session`] recognizes a text
/// without a single heap allocation. The owning convenience wrappers
/// ([`scan`](ChunkAutomaton::scan), [`scan_with`](ChunkAutomaton::scan_with),
/// [`scan_first`](ChunkAutomaton::scan_first), [`join`](ChunkAutomaton::join))
/// are provided on top.
pub trait ChunkAutomaton: Sync {
    /// The partial mapping `λ_i` a chunk scan produces. `Default` yields
    /// an empty mapping slot a scan can fill (and later scans can reuse).
    type Mapping: Send + Default + 'static;

    /// Reusable per-worker working memory for interior scans. A worker
    /// thread of the reach phase owns one scratch and feeds it to every
    /// chunk it claims — and, under a [`Session`], to every *text* — so
    /// kernel state warms up once per worker. CAs with no scratch use `()`.
    type Scratch: Default + Send + 'static;

    /// Reusable working memory for the serial join phase. CAs whose join
    /// needs no buffers use `()`.
    type JoinScratch: Default + Send + 'static;

    /// Scans an interior chunk speculatively — one run per possible
    /// initial state — writing the mapping into `out` (cleared first;
    /// allocation-free once `out`'s buffers have grown to size) and
    /// reusing `scratch` across calls. Every executed transition
    /// increments `counter`.
    fn scan_into(
        &self,
        chunk: &[u8],
        scratch: &mut Self::Scratch,
        counter: &mut impl Counter,
        out: &mut Self::Mapping,
    );

    /// Scans the *first* chunk, whose initial state is known (`I₁ = {q0}`)
    /// — exactly one run, no speculation — writing the mapping into `out`.
    fn scan_first_into(&self, chunk: &[u8], counter: &mut impl Counter, out: &mut Self::Mapping);

    /// Serial join through a reusable scratch: composes the chunk
    /// mappings in order and decides acceptance. `mappings[0]` must come
    /// from [`scan_first_into`](ChunkAutomaton::scan_first_into).
    fn join_with(&self, mappings: &[Self::Mapping], scratch: &mut Self::JoinScratch) -> bool;

    /// Owning wrapper over [`scan_into`](ChunkAutomaton::scan_into) with
    /// a fresh mapping.
    fn scan_with(
        &self,
        chunk: &[u8],
        scratch: &mut Self::Scratch,
        counter: &mut impl Counter,
    ) -> Self::Mapping {
        let mut out = Self::Mapping::default();
        self.scan_into(chunk, scratch, counter, &mut out);
        out
    }

    /// Convenience wrapper over [`scan_with`](ChunkAutomaton::scan_with)
    /// with a throwaway scratch (first scan pays the warm-up
    /// allocations; prefer `scan_with` on hot paths).
    fn scan(&self, chunk: &[u8], counter: &mut impl Counter) -> Self::Mapping {
        self.scan_with(chunk, &mut Self::Scratch::default(), counter)
    }

    /// Owning wrapper over
    /// [`scan_first_into`](ChunkAutomaton::scan_first_into).
    fn scan_first(&self, chunk: &[u8], counter: &mut impl Counter) -> Self::Mapping {
        let mut out = Self::Mapping::default();
        self.scan_first_into(chunk, counter, &mut out);
        out
    }

    /// Convenience wrapper over [`join_with`](ChunkAutomaton::join_with)
    /// with a throwaway scratch.
    fn join(&self, mappings: &[Self::Mapping]) -> bool {
        self.join_with(mappings, &mut Self::JoinScratch::default())
    }

    /// Whole-string serial recognition — the oracle and speedup baseline.
    fn accepts_serial(&self, text: &[u8], counter: &mut impl Counter) -> bool;

    /// Number of speculative starting states of an interior chunk
    /// (`|I_A|`): the speculation-cost factor of the paper.
    fn num_speculative_starts(&self) -> usize;

    /// Short display name ("dfa", "nfa", "rid").
    fn name(&self) -> &'static str;
}
