//! The classic speculative data-parallel algorithm (CSDPA, paper Sect. 2)
//! and its reduced-interface refinement (RID, Sect. 3.2).
//!
//! The input text is cut into `c` chunks. The **reach phase** scans every
//! chunk in parallel with an identical *chunk automaton* (CA); because a
//! CA (except the first) cannot know the state the upstream chunk ends in,
//! it speculatively starts one run per possible initial state and returns
//! the partial mapping `λ_i : PIS → PLAS` from possible initial states to
//! possible last active states. The serial **join phase** composes
//! adjacent mappings and checks acceptance.
//!
//! Five CAs implement the common [`ChunkAutomaton`] interface:
//!
//! | CA | speculative starts | transition cost/byte | paper role |
//! |----|--------------------|----------------------|------------|
//! | [`DfaCa`] | all DFA states | 1 per run | classic DFA variant |
//! | [`NfaCa`] | all NFA states | set-simulation edges | classic NFA variant |
//! | [`RidCa`] | RI-DFA interface (≈ NFA states) | 1 per run | the paper's RID |
//! | [`ConvergentDfaCa`] | all DFA states | 1 per *merged group* | DFA + state convergence |
//! | [`ConvergentRidCa`] | RI-DFA interface | 1 per *merged group* | RID + state convergence |
//!
//! The deterministic CAs execute their interior scans through the
//! single-pass lockstep [`kernel`], which merges converged runs, shares
//! the byte→class translation across all runs, and adaptively falls back
//! to per-run scanning where lockstep bookkeeping cannot pay
//! ([`kernel::select`]).
//!
//! The reach phase runs under one of two execution shapes: the one-shot
//! spawning executors of [`recognize`] ([`Executor`]), or a persistent
//! [`Session`] that keeps a worker pool and per-worker scan scratches
//! warm across texts — the right shape for high-traffic streams of short
//! texts, where thread-spawn cost would otherwise dominate.

pub mod budget;
mod chunking;
mod convergent;
mod dfa_ca;
pub mod kernel;
mod nfa_ca;
pub mod plan;
mod recognizer;
pub mod registry;
mod rid_ca;
mod session;
pub mod spec;
pub mod stream;

pub use budget::{Budget, CancelToken, Degraded, RecognizeError, StreamError};
pub use chunking::{chunk_spans, chunk_spans_into, chunk_spans_snapped};
pub use convergent::{ConvergentDfaCa, ConvergentRidCa};
pub use dfa_ca::DfaCa;
pub use kernel::{Kernel, Scratch};
pub use nfa_ca::NfaCa;
pub use plan::{EnginePlan, FeasibleRidCa, FeasibleTable};
pub use recognizer::{
    recognize, recognize_budgeted, recognize_counted, recognize_serial, recognize_spans,
    ChunkStats, CountedOutcome, Executor, Outcome,
};
pub use registry::{
    resident_footprint, PatternRegistry, PatternStats, RegistryConfig, RegistryError, StreamScan,
};
pub use rid_ca::{RidCa, RidMapping};
pub use session::Session;
pub use spec::{PatternSpec, RegistrySnapshot, ReloadDelta, SpecEntry, SpecError};
pub use stream::{StreamOutcome, StreamSession};

use ridfa_automata::counter::{Counter, NoCount};

/// Reusable working memory for the join fold: two mapping accumulators
/// (composition ping-pongs between them) plus the CA's composition
/// scratch. `M` is the CA's [`Mapping`](ChunkAutomaton::Mapping), `C` its
/// [`ComposeScratch`](ChunkAutomaton::ComposeScratch); see the
/// [`JoinScratchOf`] alias.
#[derive(Debug)]
pub struct JoinScratch<M, C> {
    /// Left-composed prefix `λ_k ∘ … ∘ λ_1` of the fold so far.
    acc: M,
    /// Output slot of the next composition, swapped with `acc`.
    tmp: M,
    /// The CA's composition working memory.
    compose: C,
}

impl<M: Default, C: Default> Default for JoinScratch<M, C> {
    fn default() -> JoinScratch<M, C> {
        JoinScratch {
            acc: M::default(),
            tmp: M::default(),
            compose: C::default(),
        }
    }
}

/// The [`JoinScratch`] type of a chunk automaton.
pub type JoinScratchOf<CA> =
    JoinScratch<<CA as ChunkAutomaton>::Mapping, <CA as ChunkAutomaton>::ComposeScratch>;

/// A chunk automaton: the unit the reach phase replicates per chunk.
///
/// Implementations are read-only and shared across worker threads
/// (`Sync`); all scratch state lives in caller-provided buffers, so a
/// single CA value serves any number of concurrent chunk scans.
///
/// The required methods are the `*_into` shapes that scan and compose
/// through **reusable** buffers — a warm [`Session`] recognizes a text
/// without a single heap allocation. The owning convenience wrappers
/// ([`scan`](ChunkAutomaton::scan), [`scan_with`](ChunkAutomaton::scan_with),
/// [`scan_first`](ChunkAutomaton::scan_first), [`join`](ChunkAutomaton::join))
/// are provided on top.
///
/// # λ-composition
///
/// Partial mappings `λ_i : PIS → PLAS` compose **associatively**
/// ([`compose_into`](ChunkAutomaton::compose_into)): `λ_2 ⊙ λ_1` is the
/// mapping of the concatenated chunks. The serial join of the paper is
/// therefore just the left fold `λ_c ⊙ … ⊙ λ_1` followed by an
/// acceptance test ([`accepts_mapping`](ChunkAutomaton::accepts_mapping))
/// — which is exactly how the provided
/// [`join_with`](ChunkAutomaton::join_with) is implemented — and the same
/// two primitives give an O(1)-live-mapping streaming fold
/// ([`StreamSession`]) and a parallel tree-reduce join ([`Session`] at
/// high chunk counts) for free.
pub trait ChunkAutomaton: Sync {
    /// The partial mapping `λ_i` a chunk scan produces. `Default` yields
    /// an empty mapping slot a scan can fill (and later scans can reuse).
    /// `Sync` because the tree-reduce join reads mappings from several
    /// composing workers at once.
    type Mapping: Send + Sync + Default + 'static;

    /// Reusable per-worker working memory for interior scans. A worker
    /// thread of the reach phase owns one scratch and feeds it to every
    /// chunk it claims — and, under a [`Session`], to every *text* — so
    /// kernel state warms up once per worker. CAs with no scratch use `()`.
    type Scratch: Default + Send + 'static;

    /// Reusable working memory for λ-composition
    /// ([`compose_into`](ChunkAutomaton::compose_into)). CAs whose
    /// composition needs no buffers use `()`.
    type ComposeScratch: Default + Send + 'static;

    /// Scans an interior chunk speculatively — one run per possible
    /// initial state — writing the mapping into `out` (cleared first;
    /// allocation-free once `out`'s buffers have grown to size) and
    /// reusing `scratch` across calls. Every executed transition
    /// increments `counter`.
    fn scan_into(
        &self,
        chunk: &[u8],
        scratch: &mut Self::Scratch,
        counter: &mut impl Counter,
        out: &mut Self::Mapping,
    );

    /// Scans the *first* chunk, whose initial state is known (`I₁ = {q0}`)
    /// — exactly one run, no speculation — writing the mapping into `out`.
    fn scan_first_into(&self, chunk: &[u8], counter: &mut impl Counter, out: &mut Self::Mapping);

    /// Composes two adjacent partial mappings: `out = right ⊙ left`, the
    /// mapping of the concatenation `chunk(left) · chunk(right)` (`left`
    /// is applied first). Composition is associative, so any reduction
    /// order over a mapping sequence yields the same verdict.
    ///
    /// `left` may be any mapping shape (a
    /// [`scan_first_into`](ChunkAutomaton::scan_first_into) product, an
    /// interior mapping, or a previous composition); `right` must derive
    /// from interior scans only — a first-chunk mapping is only ever the
    /// leftmost factor. `out` is cleared first and must not alias either
    /// input; once its buffers have grown to size the composition is
    /// allocation-free.
    fn compose_into(
        &self,
        left: &Self::Mapping,
        right: &Self::Mapping,
        scratch: &mut Self::ComposeScratch,
        out: &mut Self::Mapping,
    );

    /// Acceptance verdict of a fully composed mapping whose **leftmost**
    /// factor came from
    /// [`scan_first_into`](ChunkAutomaton::scan_first_into) (so the
    /// initial state is resolved).
    fn accepts_mapping(&self, mapping: &Self::Mapping) -> bool;

    /// `true` if every extension of this mapping rejects — all
    /// speculative runs are dead, so composing further chunks onto it can
    /// never produce an accepting mapping. Used by the join fold and the
    /// streaming layer to stop early on rejection. The default is the
    /// always-sound `false`.
    fn mapping_is_dead(&self, _mapping: &Self::Mapping) -> bool {
        false
    }

    /// Serial join through a reusable scratch: the left fold of
    /// [`compose_into`](ChunkAutomaton::compose_into) over the chunk
    /// mappings, then
    /// [`accepts_mapping`](ChunkAutomaton::accepts_mapping).
    /// `mappings[0]` must come from
    /// [`scan_first_into`](ChunkAutomaton::scan_first_into).
    fn join_with(
        &self,
        mappings: &[Self::Mapping],
        scratch: &mut JoinScratch<Self::Mapping, Self::ComposeScratch>,
    ) -> bool {
        match mappings {
            [] => {
                // Zero chunks = the empty text: a single non-speculative
                // empty scan resolves acceptance of ε.
                self.scan_first_into(b"", &mut NoCount, &mut scratch.acc);
                self.accepts_mapping(&scratch.acc)
            }
            [only] => self.accepts_mapping(only),
            [first, rest @ ..] => {
                self.compose_into(first, &rest[0], &mut scratch.compose, &mut scratch.acc);
                for mapping in &rest[1..] {
                    if self.mapping_is_dead(&scratch.acc) {
                        return false;
                    }
                    self.compose_into(
                        &scratch.acc,
                        mapping,
                        &mut scratch.compose,
                        &mut scratch.tmp,
                    );
                    std::mem::swap(&mut scratch.acc, &mut scratch.tmp);
                }
                self.accepts_mapping(&scratch.acc)
            }
        }
    }

    /// Owning wrapper over [`scan_into`](ChunkAutomaton::scan_into) with
    /// a fresh mapping.
    fn scan_with(
        &self,
        chunk: &[u8],
        scratch: &mut Self::Scratch,
        counter: &mut impl Counter,
    ) -> Self::Mapping {
        let mut out = Self::Mapping::default();
        self.scan_into(chunk, scratch, counter, &mut out);
        out
    }

    /// Convenience wrapper over [`scan_with`](ChunkAutomaton::scan_with)
    /// with a throwaway scratch (first scan pays the warm-up
    /// allocations; prefer `scan_with` on hot paths).
    fn scan(&self, chunk: &[u8], counter: &mut impl Counter) -> Self::Mapping {
        self.scan_with(chunk, &mut Self::Scratch::default(), counter)
    }

    /// Owning wrapper over
    /// [`scan_first_into`](ChunkAutomaton::scan_first_into).
    fn scan_first(&self, chunk: &[u8], counter: &mut impl Counter) -> Self::Mapping {
        let mut out = Self::Mapping::default();
        self.scan_first_into(chunk, counter, &mut out);
        out
    }

    /// Convenience wrapper over [`join_with`](ChunkAutomaton::join_with)
    /// with a throwaway scratch.
    fn join(&self, mappings: &[Self::Mapping]) -> bool {
        self.join_with(mappings, &mut JoinScratch::default())
    }

    /// Owning wrapper over
    /// [`compose_into`](ChunkAutomaton::compose_into) with a fresh
    /// mapping and a throwaway scratch.
    fn compose(&self, left: &Self::Mapping, right: &Self::Mapping) -> Self::Mapping {
        let mut out = Self::Mapping::default();
        self.compose_into(left, right, &mut Self::ComposeScratch::default(), &mut out);
        out
    }

    /// Arms (or clears, with `None`) the [`InterruptProbe`](budget::InterruptProbe)
    /// of a budgeted call on this CA's scan scratch, so the kernel can
    /// honor deadlines/cancellation *inside* a chunk scan. The default is
    /// a no-op: CAs without kernel scratch (`NfaCa`, `SfaCa`) are then
    /// interrupted at chunk boundaries only. Budgeted executors call this
    /// on every chunk claim — with `None` on unbudgeted calls, so a
    /// probe never leaks from a budgeted call into a later one through a
    /// cached scratch.
    fn arm_interrupt(&self, _scratch: &mut Self::Scratch, _probe: Option<&budget::InterruptProbe>) {
    }

    /// Whole-string serial recognition — the oracle and speedup baseline.
    fn accepts_serial(&self, text: &[u8], counter: &mut impl Counter) -> bool;

    /// Number of speculative starting states of an interior chunk
    /// (`|I_A|`): the speculation-cost factor of the paper.
    fn num_speculative_starts(&self) -> usize;

    /// The scan strategy this CA would *actually* execute on an interior
    /// chunk of `chunk_len` bytes: [`Kernel::Auto`] resolved through the
    /// runtime selection matrix, and a pinned [`Kernel::Simd`] demoted to
    /// its scalar fallback when the CPU feature or the table shape rules
    /// it out. `None` (the default) means the CA does not scan through
    /// the lockstep kernel at all (set-based NFA simulation, SFA tables),
    /// and reporting layers omit the kernel field.
    fn effective_kernel(&self, _chunk_len: usize) -> Option<Kernel> {
        None
    }

    /// Short display name ("dfa", "nfa", "rid").
    fn name(&self) -> &'static str;
}
