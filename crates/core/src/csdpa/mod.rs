//! The classic speculative data-parallel algorithm (CSDPA, paper Sect. 2)
//! and its reduced-interface refinement (RID, Sect. 3.2).
//!
//! The input text is cut into `c` chunks. The **reach phase** scans every
//! chunk in parallel with an identical *chunk automaton* (CA); because a
//! CA (except the first) cannot know the state the upstream chunk ends in,
//! it speculatively starts one run per possible initial state and returns
//! the partial mapping `λ_i : PIS → PLAS` from possible initial states to
//! possible last active states. The serial **join phase** composes
//! adjacent mappings and checks acceptance.
//!
//! Five CAs implement the common [`ChunkAutomaton`] interface:
//!
//! | CA | speculative starts | transition cost/byte | paper role |
//! |----|--------------------|----------------------|------------|
//! | [`DfaCa`] | all DFA states | 1 per run | classic DFA variant |
//! | [`NfaCa`] | all NFA states | set-simulation edges | classic NFA variant |
//! | [`RidCa`] | RI-DFA interface (≈ NFA states) | 1 per run | the paper's RID |
//! | [`ConvergentDfaCa`] | all DFA states | 1 per *merged group* | DFA + state convergence |
//! | [`ConvergentRidCa`] | RI-DFA interface | 1 per *merged group* | RID + state convergence |
//!
//! The deterministic CAs execute their interior scans through the
//! single-pass lockstep [`kernel`], which merges converged runs, shares
//! the byte→class translation across all runs, and adaptively falls back
//! to per-run scanning where lockstep bookkeeping cannot pay
//! ([`kernel::select`]).

mod chunking;
mod convergent;
mod dfa_ca;
pub mod kernel;
mod nfa_ca;
mod recognizer;
mod rid_ca;

pub use chunking::chunk_spans;
pub use convergent::{ConvergentDfaCa, ConvergentRidCa};
pub use dfa_ca::DfaCa;
pub use kernel::{Kernel, Scratch};
pub use nfa_ca::NfaCa;
pub use recognizer::{
    recognize, recognize_counted, recognize_serial, ChunkStats, CountedOutcome, Executor, Outcome,
};
pub use rid_ca::{RidCa, RidMapping};

use ridfa_automata::counter::Counter;

/// A chunk automaton: the unit the reach phase replicates per chunk.
///
/// Implementations are read-only and shared across worker threads
/// (`Sync`); all scratch state lives in the per-call stack, so a single CA
/// value serves any number of concurrent chunk scans.
pub trait ChunkAutomaton: Sync {
    /// The partial mapping `λ_i` a chunk scan produces.
    type Mapping: Send;

    /// Reusable per-worker working memory for interior scans. A worker
    /// thread of the reach phase creates one scratch and feeds it to
    /// every chunk it scans, so kernel state warms up once per worker
    /// instead of once per chunk. CAs with no scratch use `()`.
    type Scratch: Default + Send;

    /// Scans an interior chunk speculatively — one run per possible
    /// initial state — reusing `scratch` across calls. Every executed
    /// transition increments `counter`.
    fn scan_with(
        &self,
        chunk: &[u8],
        scratch: &mut Self::Scratch,
        counter: &mut impl Counter,
    ) -> Self::Mapping;

    /// Convenience wrapper over [`scan_with`](ChunkAutomaton::scan_with)
    /// with a throwaway scratch (first scan pays the warm-up
    /// allocations; prefer `scan_with` on hot paths).
    fn scan(&self, chunk: &[u8], counter: &mut impl Counter) -> Self::Mapping {
        self.scan_with(chunk, &mut Self::Scratch::default(), counter)
    }

    /// Scans the *first* chunk, whose initial state is known (`I₁ = {q0}`):
    /// exactly one run, no speculation.
    fn scan_first(&self, chunk: &[u8], counter: &mut impl Counter) -> Self::Mapping;

    /// Serial join: composes the chunk mappings in order and decides
    /// acceptance. `mappings[0]` must come from
    /// [`scan_first`](ChunkAutomaton::scan_first).
    fn join(&self, mappings: &[Self::Mapping]) -> bool;

    /// Whole-string serial recognition — the oracle and speedup baseline.
    fn accepts_serial(&self, text: &[u8], counter: &mut impl Counter) -> bool;

    /// Number of speculative starting states of an interior chunk
    /// (`|I_A|`): the speculation-cost factor of the paper.
    fn num_speculative_starts(&self) -> usize;

    /// Short display name ("dfa", "nfa", "rid").
    fn name(&self) -> &'static str;
}
