//! Pattern specs and generation-stamped snapshots: one parsed,
//! compiled-once description of a pattern set, from which any number of
//! per-shard [`PatternRegistry`] replicas can be built or *delta-patched*.
//!
//! A [`PatternSpec`] is the in-memory form of a `--patterns` file: every
//! entry carries the pattern id, a content fingerprint, and the pattern
//! as a sealed **binary artifact** (`ID REGEX` lines are compiled once at
//! parse time and serialized; `ID @FILE.rida` lines are read and
//! validated). Building a registry from a spec is therefore always a
//! *load*, never a powerset construction — the property that makes
//! per-shard registry replicas affordable.
//!
//! [`RegistrySnapshot`] is the publication cell for hot reload: a spec
//! watcher re-parses the pattern file, [`publish`](RegistrySnapshot::publish)es
//! the new spec under a bumped generation, and each shard loop notices
//! the generation change between ticks and applies the insert/evict
//! delta ([`PatternSpec::apply_to`]) without dropping a connection.
//! In-flight incremental scans on a replaced pattern fail typed
//! ([`RegistryError::PatternReloaded`](super::RegistryError::PatternReloaded)),
//! never with a wrong verdict.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ridfa_automata::nfa::glushkov;
use ridfa_automata::{regex, ConstructionBudget};

use crate::ridfa::{ridfa_from_bytes, ridfa_to_bytes, RiDfa};

use super::registry::{PatternRegistry, RegistryConfig, RegistryError};

/// A pattern-spec parse/compile failure, with the 1-based line of the
/// offending entry (0 when the failure is not line-specific).
#[derive(Debug, Clone)]
pub struct SpecError {
    /// 1-based line number in the spec text, 0 if not line-specific.
    pub line: usize,
    /// What went wrong (syntax, construction budget, artifact I/O…).
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "pattern spec: {}", self.message)
        } else {
            write!(f, "pattern spec line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

/// One compiled pattern of a [`PatternSpec`].
#[derive(Debug, Clone)]
pub struct SpecEntry {
    /// The pattern id requests name.
    pub id: String,
    /// Fingerprint of the entry's *source* (regex text or artifact
    /// bytes), used to compute reload deltas.
    pub fingerprint: u64,
    /// The pattern as a sealed RI-DFA artifact, shared between shards.
    pub artifact: Arc<Vec<u8>>,
}

/// A parsed, compiled pattern set — see the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct PatternSpec {
    entries: Vec<SpecEntry>,
}

/// FNV-1a over `data`, seeded so id and payload cannot alias.
fn fnv1a(seed: u64, data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl PatternSpec {
    /// Parses pattern-file `text` (one `ID REGEX` or `ID @FILE.rida` per
    /// line; blank lines and `#` comments skipped), compiling each regex
    /// through `budget` and sealing it as an artifact. When `prev` is
    /// given, entries whose id *and* source are unchanged reuse the
    /// previous spec's compiled artifact — a reload re-compiles only
    /// what actually changed.
    pub fn parse(
        text: &str,
        budget: &ConstructionBudget,
        prev: Option<&PatternSpec>,
    ) -> Result<PatternSpec, SpecError> {
        let mut entries: Vec<SpecEntry> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| SpecError {
                line: lineno + 1,
                message,
            };
            let Some((id, source)) = line.split_once(char::is_whitespace) else {
                return Err(err("expected `ID REGEX` or `ID @ARTIFACT`".into()));
            };
            let source = source.trim();
            if id.is_empty() || id.len() > 255 {
                return Err(err(format!("pattern id must be 1..=255 bytes, got {id:?}")));
            }
            if entries.iter().any(|e| e.id == id) {
                return Err(err(format!("duplicate pattern id {id:?}")));
            }
            let entry = match source.strip_prefix('@') {
                Some(path) => {
                    let bytes = std::fs::read(path).map_err(|e| err(format!("{path}: {e}")))?;
                    let fingerprint = fnv1a(fnv1a(1, id.as_bytes()), &bytes);
                    if let Some(reused) = Self::reusable(prev, id, fingerprint) {
                        reused
                    } else {
                        // Validate now so a bad artifact is a parse error,
                        // not a per-shard insert error later.
                        ridfa_from_bytes(&bytes).map_err(|e| err(format!("{path}: {e}")))?;
                        SpecEntry {
                            id: id.to_string(),
                            fingerprint,
                            artifact: Arc::new(bytes),
                        }
                    }
                }
                None => {
                    let fingerprint = fnv1a(fnv1a(2, id.as_bytes()), source.as_bytes());
                    if let Some(reused) = Self::reusable(prev, id, fingerprint) {
                        reused
                    } else {
                        let ast = regex::parse(source).map_err(|e| err(e.to_string()))?;
                        let nfa = glushkov::build(&ast).map_err(|e| err(e.to_string()))?;
                        let rid = RiDfa::from_nfa_budgeted(&nfa, budget)
                            .map_err(|e| err(e.to_string()))?
                            .minimized();
                        SpecEntry {
                            id: id.to_string(),
                            fingerprint,
                            artifact: Arc::new(ridfa_to_bytes(&rid)),
                        }
                    }
                }
            };
            entries.push(entry);
        }
        if entries.is_empty() {
            return Err(SpecError {
                line: 0,
                message: "no patterns defined".into(),
            });
        }
        Ok(PatternSpec { entries })
    }

    fn reusable(prev: Option<&PatternSpec>, id: &str, fingerprint: u64) -> Option<SpecEntry> {
        prev?
            .entries
            .iter()
            .find(|e| e.id == id && e.fingerprint == fingerprint)
            .cloned()
    }

    /// The spec's entries, in file order.
    pub fn entries(&self) -> &[SpecEntry] {
        &self.entries
    }

    /// The pattern ids, in file order.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.id.as_str())
    }

    /// Number of patterns in the spec.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the spec holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Order-sensitive fingerprint of the whole spec — equal fingerprints
    /// mean a reload has nothing to publish.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = fnv1a(3, &[]);
        for e in &self.entries {
            hash = fnv1a(hash, e.id.as_bytes());
            hash = fnv1a(hash, &e.fingerprint.to_le_bytes());
        }
        hash
    }

    /// Builds a fresh registry replica holding exactly this spec's
    /// patterns — pure artifact loads, no construction.
    pub fn build_registry(&self, config: RegistryConfig) -> Result<PatternRegistry, RegistryError> {
        let mut registry = PatternRegistry::new(config);
        for e in &self.entries {
            registry.insert_artifact(&e.id, &e.artifact)?;
        }
        Ok(registry)
    }

    /// Patches `registry` to hold exactly this spec's patterns, evicting
    /// ids no longer in the spec, re-inserting ids whose source changed
    /// (per `applied`, the id → fingerprint map of what the registry
    /// currently holds — updated in place), and inserting new ids.
    /// Entries that fail to insert (e.g. over the residency cap) are
    /// counted, not fatal: the rest of the delta still lands.
    pub fn apply_to(
        &self,
        registry: &mut PatternRegistry,
        applied: &mut HashMap<String, u64>,
    ) -> ReloadDelta {
        let mut delta = ReloadDelta::default();
        let stale: Vec<String> = registry
            .ids()
            .filter(|id| !self.entries.iter().any(|e| e.id == *id))
            .map(str::to_string)
            .collect();
        for id in stale {
            registry.remove(&id);
            applied.remove(&id);
            delta.evicted += 1;
        }
        for e in &self.entries {
            let unchanged = registry.contains(&e.id) && applied.get(&e.id) == Some(&e.fingerprint);
            if unchanged {
                continue;
            }
            if registry.remove(&e.id) {
                delta.evicted += 1;
            }
            match registry.insert_artifact(&e.id, &e.artifact) {
                Ok(()) => {
                    applied.insert(e.id.clone(), e.fingerprint);
                    delta.inserted += 1;
                }
                Err(_) => {
                    applied.remove(&e.id);
                    delta.failed += 1;
                }
            }
        }
        delta
    }

    /// The id → fingerprint map of this spec, the initial `applied` state
    /// of a shard built with [`build_registry`](PatternSpec::build_registry).
    pub fn fingerprints(&self) -> HashMap<String, u64> {
        self.entries
            .iter()
            .map(|e| (e.id.clone(), e.fingerprint))
            .collect()
    }
}

/// What one [`PatternSpec::apply_to`] delta did to a registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReloadDelta {
    /// Patterns inserted (new id, or re-inserted with changed source).
    pub inserted: u64,
    /// Patterns removed (dropped from the spec, or replaced).
    pub evicted: u64,
    /// Patterns that failed to insert (counted, not fatal).
    pub failed: u64,
}

/// A generation-stamped [`PatternSpec`] publication cell: one writer
/// (the spec watcher) publishes, many readers (the shard loops) poll the
/// generation cheaply each tick and load the spec only when it changed.
pub struct RegistrySnapshot {
    generation: AtomicU64,
    spec: Mutex<Arc<PatternSpec>>,
}

impl RegistrySnapshot {
    /// A snapshot cell starting at generation 1 with `spec`.
    pub fn new(spec: Arc<PatternSpec>) -> RegistrySnapshot {
        RegistrySnapshot {
            generation: AtomicU64::new(1),
            spec: Mutex::new(spec),
        }
    }

    /// The current generation (cheap; lock-free).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Publishes a new spec, bumping the generation. Returns the new
    /// generation.
    pub fn publish(&self, spec: Arc<PatternSpec>) -> u64 {
        let mut slot = self.spec.lock().unwrap();
        *slot = spec;
        self.generation.fetch_add(1, Ordering::Release) + 1
    }

    /// The current (generation, spec) pair, read consistently.
    pub fn load(&self) -> (u64, Arc<PatternSpec>) {
        let slot = self.spec.lock().unwrap();
        (self.generation.load(Ordering::Acquire), Arc::clone(&slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(text: &str) -> PatternSpec {
        PatternSpec::parse(text, &ConstructionBudget::UNLIMITED, None).unwrap()
    }

    #[test]
    fn parses_compiles_and_builds_a_registry() {
        let s = spec("abb (a|b)*abb\n# comment\n\ndigits [0-9]+\n");
        assert_eq!(s.len(), 2);
        assert_eq!(s.ids().collect::<Vec<_>>(), ["abb", "digits"]);
        let mut reg = s
            .build_registry(RegistryConfig {
                num_workers: 1,
                ..RegistryConfig::default()
            })
            .unwrap();
        assert!(reg.recognize("abb", b"bababb", 0).unwrap().accepted);
        assert!(!reg.recognize("digits", b"12a", 0).unwrap().accepted);
    }

    #[test]
    fn parse_errors_carry_the_line() {
        let e = PatternSpec::parse("ok [0-9]+\nbad ((", &ConstructionBudget::UNLIMITED, None)
            .unwrap_err();
        assert_eq!(e.line, 2);
        let e =
            PatternSpec::parse("dup a\ndup b", &ConstructionBudget::UNLIMITED, None).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate"));
        let e = PatternSpec::parse("# only comments\n", &ConstructionBudget::UNLIMITED, None)
            .unwrap_err();
        assert_eq!(e.line, 0);
    }

    #[test]
    fn reparse_reuses_unchanged_artifacts() {
        let v1 = spec("abb (a|b)*abb\ndigits [0-9]+\n");
        let v2 = PatternSpec::parse(
            "abb (a|b)*abb\ndigits [0-9]{2}\n",
            &ConstructionBudget::UNLIMITED,
            Some(&v1),
        )
        .unwrap();
        // Unchanged entry: same Arc. Changed entry: recompiled.
        assert!(Arc::ptr_eq(
            &v1.entries()[0].artifact,
            &v2.entries()[0].artifact
        ));
        assert_ne!(v1.entries()[1].fingerprint, v2.entries()[1].fingerprint);
        assert_ne!(v1.fingerprint(), v2.fingerprint());
    }

    #[test]
    fn apply_to_patches_the_delta() {
        let v1 = spec("a [0-9]+\nb [a-z]+\n");
        let mut reg = v1
            .build_registry(RegistryConfig {
                num_workers: 1,
                ..RegistryConfig::default()
            })
            .unwrap();
        let mut applied = v1.fingerprints();

        // b changes, c appears, a disappears.
        let v2 = PatternSpec::parse(
            "b [a-z]{3}\nc (a|b)*abb\n",
            &ConstructionBudget::UNLIMITED,
            Some(&v1),
        )
        .unwrap();
        let delta = v2.apply_to(&mut reg, &mut applied);
        assert_eq!(delta.inserted, 2, "changed b + new c");
        assert_eq!(delta.evicted, 2, "dropped a + replaced b");
        assert_eq!(delta.failed, 0);
        assert!(!reg.contains("a"));
        assert!(reg.recognize("b", b"xyz", 0).unwrap().accepted);
        assert!(!reg.recognize("b", b"xy", 0).unwrap().accepted);
        assert!(reg.recognize("c", b"abb", 0).unwrap().accepted);

        // Applying the same spec again is a no-op.
        let delta = v2.apply_to(&mut reg, &mut applied);
        assert_eq!(delta, ReloadDelta::default());
    }

    #[test]
    fn snapshot_publication_is_generation_stamped() {
        let cell = RegistrySnapshot::new(Arc::new(spec("a [0-9]+\n")));
        assert_eq!(cell.generation(), 1);
        let (gen1, s1) = cell.load();
        assert_eq!(gen1, 1);
        assert_eq!(s1.len(), 1);
        let gen2 = cell.publish(Arc::new(spec("a [0-9]+\nb [a-z]+\n")));
        assert_eq!(gen2, 2);
        let (gen, s2) = cell.load();
        assert_eq!(gen, 2);
        assert_eq!(s2.len(), 2);
    }
}
