//! State-convergence optimization for speculative chunk scans.
//!
//! The paper's conclusion notes that the RI-DFA approach "is compatible
//! with most existing [optimizations], in particular with state-
//! convergence" (citing the data-parallel FSM work of Mytkowicz et al.
//! \[22\]). This module implements that optimization for any dense
//! deterministic table: instead of running each speculative start to
//! completion one after the other, all runs advance in lockstep and runs
//! that have *converged* to the same state are merged into one group —
//! from that byte on they are charged a single transition. On realistic
//! texts most runs converge (or die) within a few hundred bytes, so the
//! per-byte cost collapses from `|I|` towards 1.
//!
//! Offered for both the classic DFA chunk automaton
//! ([`ConvergentDfaCa`]) and the RI-DFA one ([`ConvergentRidCa`]); both
//! produce mappings identical to their non-convergent counterparts, which
//! the tests assert, so the join phase is unchanged.

use ridfa_automata::counter::Counter;
use ridfa_automata::dfa::Dfa;
use ridfa_automata::{StateId, DEAD};

use crate::ridfa::RiDfa;

use super::{ChunkAutomaton, DfaCa, RidCa, RidMapping};

/// Lockstep scan with convergence merging over a dense table.
///
/// `starts` yields `(origin, start_state)` pairs; the result has one slot
/// per origin, holding the last active state ([`DEAD`] when the run died).
/// `counter` is incremented once per *group* per byte — the work actually
/// executed after merging.
fn lockstep_scan(
    num_states: usize,
    next: impl Fn(StateId, u8) -> StateId,
    starts: impl Iterator<Item = (u32, StateId)>,
    num_origins: usize,
    chunk: &[u8],
    counter: &mut impl Counter,
) -> Vec<StateId> {
    // Groups of origins currently sharing a state. Origin lists are moved,
    // never copied, when groups merge.
    let mut states: Vec<StateId> = Vec::new();
    let mut members: Vec<Vec<u32>> = Vec::new();
    {
        // Initial grouping: distinct start states may already coincide.
        let mut slot = vec![u32::MAX; num_states];
        for (origin, start) in starts {
            let s = slot[start as usize];
            if s == u32::MAX {
                slot[start as usize] = states.len() as u32;
                states.push(start);
                members.push(vec![origin]);
            } else {
                members[s as usize].push(origin);
            }
        }
    }

    // Generation-stamped slot map: avoids an O(num_states) clear per byte.
    let mut slot: Vec<(u32, u32)> = vec![(0, 0); num_states];
    let mut generation = 0u32;
    let mut dead_origins: Vec<u32> = Vec::new();
    let mut next_states: Vec<StateId> = Vec::new();
    let mut next_members: Vec<Vec<u32>> = Vec::new();

    for &byte in chunk {
        if states.is_empty() {
            break;
        }
        generation += 1;
        next_states.clear();
        next_members.clear();
        for (state, origins) in states.drain(..).zip(next_members_drain(&mut members)) {
            let target = next(state, byte);
            if target == DEAD {
                dead_origins.extend(origins);
                continue;
            }
            counter.incr();
            let (gen, idx) = slot[target as usize];
            if gen == generation {
                next_members[idx as usize].extend(origins);
            } else {
                slot[target as usize] = (generation, next_states.len() as u32);
                next_states.push(target);
                next_members.push(origins);
            }
        }
        std::mem::swap(&mut states, &mut next_states);
        std::mem::swap(&mut members, &mut next_members);
    }

    let mut mapping = vec![DEAD; num_origins];
    for (state, origins) in states.iter().zip(&members) {
        for &origin in origins {
            mapping[origin as usize] = *state;
        }
    }
    // Dead origins already map to DEAD.
    drop(dead_origins);
    mapping
}

/// Helper: drain `members` into an iterator of owned origin lists.
fn next_members_drain(members: &mut Vec<Vec<u32>>) -> std::vec::Drain<'_, Vec<u32>> {
    members.drain(..)
}

/// The classic DFA chunk automaton with convergence merging.
#[derive(Debug, Clone, Copy)]
pub struct ConvergentDfaCa<'a> {
    inner: DfaCa<'a>,
}

impl<'a> ConvergentDfaCa<'a> {
    /// Wraps `dfa`.
    pub fn new(dfa: &'a Dfa) -> Self {
        ConvergentDfaCa {
            inner: DfaCa::new(dfa),
        }
    }
}

impl ChunkAutomaton for ConvergentDfaCa<'_> {
    type Mapping = Vec<StateId>;

    fn scan(&self, chunk: &[u8], counter: &mut impl Counter) -> Vec<StateId> {
        let dfa = self.inner.dfa();
        lockstep_scan(
            dfa.num_states(),
            |s, b| dfa.next(s, b),
            dfa.live_states().map(|s| (s, s)),
            dfa.num_states(),
            chunk,
            counter,
        )
    }

    fn scan_first(&self, chunk: &[u8], counter: &mut impl Counter) -> Vec<StateId> {
        self.inner.scan_first(chunk, counter)
    }

    fn join(&self, mappings: &[Vec<StateId>]) -> bool {
        self.inner.join(mappings)
    }

    fn accepts_serial(&self, text: &[u8], counter: &mut impl Counter) -> bool {
        self.inner.accepts_serial(text, counter)
    }

    fn num_speculative_starts(&self) -> usize {
        self.inner.num_speculative_starts()
    }

    fn name(&self) -> &'static str {
        "dfa+conv"
    }
}

/// The RID chunk automaton with convergence merging.
#[derive(Debug, Clone)]
pub struct ConvergentRidCa<'a> {
    inner: RidCa<'a>,
}

impl<'a> ConvergentRidCa<'a> {
    /// Wraps `rid`.
    pub fn new(rid: &'a RiDfa) -> Self {
        ConvergentRidCa {
            inner: RidCa::new(rid),
        }
    }
}

impl ChunkAutomaton for ConvergentRidCa<'_> {
    type Mapping = RidMapping;

    fn scan(&self, chunk: &[u8], counter: &mut impl Counter) -> RidMapping {
        let rid = self.inner.rid();
        let interface = rid.interface();
        let lasts = lockstep_scan(
            rid.num_states(),
            |s, b| rid.next(s, b),
            interface.iter().enumerate().map(|(i, &p)| (i as u32, p)),
            interface.len(),
            chunk,
            counter,
        );
        RidMapping::Interior(lasts)
    }

    fn scan_first(&self, chunk: &[u8], counter: &mut impl Counter) -> RidMapping {
        self.inner.scan_first(chunk, counter)
    }

    fn join(&self, mappings: &[RidMapping]) -> bool {
        self.inner.join(mappings)
    }

    fn accepts_serial(&self, text: &[u8], counter: &mut impl Counter) -> bool {
        self.inner.accepts_serial(text, counter)
    }

    fn num_speculative_starts(&self) -> usize {
        self.inner.num_speculative_starts()
    }

    fn name(&self) -> &'static str {
        "rid+conv"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csdpa::{recognize, recognize_counted, Executor};
    use crate::ridfa::construct::tests::figure1_nfa;
    use ridfa_automata::dfa::{minimize, powerset};
    use ridfa_automata::{NoCount, TransitionCount};

    fn setup() -> (Dfa, RiDfa) {
        let nfa = figure1_nfa();
        let dfa = minimize::minimize(&powerset::determinize(&nfa));
        let rid = RiDfa::from_nfa(&nfa);
        (dfa, rid)
    }

    #[test]
    fn convergent_mapping_equals_plain_mapping() {
        let (dfa, rid) = setup();
        let plain_dfa = DfaCa::new(&dfa);
        let conv_dfa = ConvergentDfaCa::new(&dfa);
        let plain_rid = RidCa::new(&rid);
        let conv_rid = ConvergentRidCa::new(&rid);
        for chunk in [&b"cab"[..], b"aab", b"", b"bbbb", b"aabcabaabcab"] {
            assert_eq!(
                plain_dfa.scan(chunk, &mut NoCount),
                conv_dfa.scan(chunk, &mut NoCount),
                "dfa mapping on {chunk:?}"
            );
            assert_eq!(
                plain_rid.scan(chunk, &mut NoCount),
                conv_rid.scan(chunk, &mut NoCount),
                "rid mapping on {chunk:?}"
            );
        }
    }

    #[test]
    fn convergence_reduces_executed_transitions() {
        let (dfa, _) = setup();
        let plain = DfaCa::new(&dfa);
        let conv = ConvergentDfaCa::new(&dfa);
        // Long chunk: runs converge, so the lockstep scan does less work.
        let chunk = b"aabcab".repeat(100);
        let mut c_plain = TransitionCount::default();
        plain.scan(&chunk, &mut c_plain);
        let mut c_conv = TransitionCount::default();
        conv.scan(&chunk, &mut c_conv);
        assert!(
            c_conv.get() < c_plain.get(),
            "convergent {} vs plain {}",
            c_conv.get(),
            c_plain.get()
        );
        // Lower bound: at least one transition per byte while alive.
        assert!(c_conv.get() >= chunk.len() as u64);
    }

    #[test]
    fn end_to_end_recognition_agrees() {
        let (dfa, rid) = setup();
        let conv_dfa = ConvergentDfaCa::new(&dfa);
        let conv_rid = ConvergentRidCa::new(&rid);
        let mut text = b"aabcab".repeat(200);
        for chunks in [1usize, 3, 8] {
            assert!(recognize(&conv_dfa, &text, chunks, Executor::PerChunk).accepted);
            assert!(recognize(&conv_rid, &text, chunks, Executor::PerChunk).accepted);
        }
        text.push(b'c');
        assert!(!recognize(&conv_dfa, &text, 4, Executor::PerChunk).accepted);
        assert!(!recognize(&conv_rid, &text, 4, Executor::PerChunk).accepted);
    }

    #[test]
    fn counted_outcome_still_correct() {
        let (_, rid) = setup();
        let conv = ConvergentRidCa::new(&rid);
        let out = recognize_counted(&conv, b"aabcab", 2, Executor::Serial);
        assert!(out.accepted);
        // Fig. 1 chunk 2 from {0},{1},{2}: the {0} and {1} runs converge
        // only at the end ({0,2}), the {2} run dies immediately: the
        // convergent count is 3 (first) + 5 (interior: c:2, a:2, b:1… the
        // two surviving runs converge after 'b') ≤ the plain 9.
        assert!(out.transitions <= 9);
        assert!(out.transitions >= 6);
    }
}
