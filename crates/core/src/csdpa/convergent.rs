//! State-convergence chunk automata: the lockstep [`kernel`] applied to
//! the classic DFA CA and the RI-DFA CA.
//!
//! The paper's conclusion notes that the RI-DFA approach "is compatible
//! with most existing [optimizations], in particular with state-
//! convergence" (citing the data-parallel FSM work of Mytkowicz et al.
//! \[22\]). These wrappers run all speculative starts through the
//! single-pass lockstep kernel — runs that have *converged* to the same
//! state are merged and charged a single transition from that byte on,
//! and the byte→class translation is shared across all runs. On
//! realistic texts most runs converge (or die) within a few hundred
//! bytes, so the per-byte cost collapses from `|I|` towards 1.
//!
//! Both CAs produce mappings bit-identical to their non-convergent
//! counterparts (asserted by `tests/convergence.rs` across random
//! regexes, texts and cut points), so the join phase is unchanged. The
//! kernel strategy defaults to [`Kernel::Auto`] — short chunks and tiny
//! interfaces scan per run, everything else takes the fused lockstep
//! path — and can be pinned with
//! [`with_kernel`](ConvergentDfaCa::with_kernel) for ablations.

use ridfa_automata::counter::Counter;
use ridfa_automata::dfa::Dfa;
use ridfa_automata::StateId;

use crate::ridfa::RiDfa;

use super::kernel::{self, DenseTable, Kernel, Scratch};
use super::{ChunkAutomaton, DfaCa, RidCa, RidMapping};

/// The classic DFA chunk automaton with convergence merging.
#[derive(Debug, Clone)]
pub struct ConvergentDfaCa<'a> {
    inner: DfaCa<'a>,
    kernel: Kernel,
}

impl<'a> ConvergentDfaCa<'a> {
    /// Wraps `dfa` with adaptive kernel selection.
    pub fn new(dfa: &'a Dfa) -> Self {
        Self::with_kernel(dfa, Kernel::Auto)
    }

    /// Wraps `dfa`, pinning the scan strategy (for ablations and tests).
    pub fn with_kernel(dfa: &'a Dfa, kernel: Kernel) -> Self {
        Self::from_inner(DfaCa::new(dfa), kernel)
    }

    /// Wraps an already-built [`DfaCa`] (e.g. one borrowing registry
    /// tables via [`DfaCa::with_table`]), pinning the scan strategy.
    pub fn from_inner(inner: DfaCa<'a>, kernel: Kernel) -> Self {
        ConvergentDfaCa { inner, kernel }
    }

    /// The configured scan strategy.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }
}

impl ChunkAutomaton for ConvergentDfaCa<'_> {
    type Mapping = Vec<StateId>;
    type Scratch = Scratch;
    type ComposeScratch = ();

    fn scan_into(
        &self,
        chunk: &[u8],
        scratch: &mut Scratch,
        counter: &mut impl Counter,
        out: &mut Vec<StateId>,
    ) {
        let dfa = self.inner.dfa();
        kernel::scan_into(
            DenseTable {
                ptable: self.inner.ptable(),
                stride: dfa.stride(),
                classes: dfa.classes(),
            },
            dfa.live_states().map(|s| (s, s)),
            dfa.num_states(),
            chunk,
            self.kernel,
            scratch,
            counter,
            out,
        );
    }

    fn scan_first_into(&self, chunk: &[u8], counter: &mut impl Counter, out: &mut Vec<StateId>) {
        self.inner.scan_first_into(chunk, counter, out)
    }

    fn arm_interrupt(&self, scratch: &mut Scratch, probe: Option<&super::budget::InterruptProbe>) {
        self.inner.arm_interrupt(scratch, probe)
    }

    fn compose_into(
        &self,
        left: &Vec<StateId>,
        right: &Vec<StateId>,
        scratch: &mut (),
        out: &mut Vec<StateId>,
    ) {
        self.inner.compose_into(left, right, scratch, out)
    }

    fn accepts_mapping(&self, mapping: &Vec<StateId>) -> bool {
        self.inner.accepts_mapping(mapping)
    }

    fn mapping_is_dead(&self, mapping: &Vec<StateId>) -> bool {
        self.inner.mapping_is_dead(mapping)
    }

    fn accepts_serial(&self, text: &[u8], counter: &mut impl Counter) -> bool {
        self.inner.accepts_serial(text, counter)
    }

    fn num_speculative_starts(&self) -> usize {
        self.inner.num_speculative_starts()
    }

    fn effective_kernel(&self, chunk_len: usize) -> Option<Kernel> {
        Some(resolve_kernel(
            self.kernel,
            self.num_speculative_starts(),
            chunk_len,
            self.inner.ptable().len(),
        ))
    }

    fn name(&self) -> &'static str {
        "dfa+conv"
    }
}

/// The RID chunk automaton with convergence merging.
#[derive(Debug, Clone)]
pub struct ConvergentRidCa<'a> {
    inner: RidCa<'a>,
    kernel: Kernel,
}

impl<'a> ConvergentRidCa<'a> {
    /// Wraps `rid` with adaptive kernel selection.
    pub fn new(rid: &'a RiDfa) -> Self {
        Self::with_kernel(rid, Kernel::Auto)
    }

    /// Wraps `rid`, pinning the scan strategy (for ablations and tests).
    pub fn with_kernel(rid: &'a RiDfa, kernel: Kernel) -> Self {
        Self::from_inner(RidCa::new(rid), kernel)
    }

    /// Wraps an already-built [`RidCa`] (e.g. one borrowing registry
    /// tables via [`RidCa::with_tables`]), pinning the scan strategy.
    pub fn from_inner(inner: RidCa<'a>, kernel: Kernel) -> Self {
        ConvergentRidCa { inner, kernel }
    }

    /// The configured scan strategy.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }
}

impl ChunkAutomaton for ConvergentRidCa<'_> {
    type Mapping = RidMapping;
    type Scratch = Scratch;
    type ComposeScratch = (Vec<StateId>, Vec<StateId>);

    fn scan_into(
        &self,
        chunk: &[u8],
        scratch: &mut Scratch,
        counter: &mut impl Counter,
        out: &mut RidMapping,
    ) {
        let rid = self.inner.rid();
        let interface = rid.interface();
        kernel::scan_into(
            DenseTable {
                ptable: self.inner.ptable(),
                stride: rid.stride(),
                classes: rid.classes(),
            },
            interface.iter().enumerate().map(|(i, &p)| (i as u32, p)),
            interface.len(),
            chunk,
            self.kernel,
            scratch,
            counter,
            out.interior_buf(),
        );
    }

    fn scan_first_into(&self, chunk: &[u8], counter: &mut impl Counter, out: &mut RidMapping) {
        self.inner.scan_first_into(chunk, counter, out)
    }

    fn arm_interrupt(&self, scratch: &mut Scratch, probe: Option<&super::budget::InterruptProbe>) {
        self.inner.arm_interrupt(scratch, probe)
    }

    fn compose_into(
        &self,
        left: &RidMapping,
        right: &RidMapping,
        scratch: &mut (Vec<StateId>, Vec<StateId>),
        out: &mut RidMapping,
    ) {
        self.inner.compose_into(left, right, scratch, out)
    }

    fn accepts_mapping(&self, mapping: &RidMapping) -> bool {
        self.inner.accepts_mapping(mapping)
    }

    fn mapping_is_dead(&self, mapping: &RidMapping) -> bool {
        self.inner.mapping_is_dead(mapping)
    }

    fn accepts_serial(&self, text: &[u8], counter: &mut impl Counter) -> bool {
        self.inner.accepts_serial(text, counter)
    }

    fn num_speculative_starts(&self) -> usize {
        self.inner.num_speculative_starts()
    }

    fn effective_kernel(&self, chunk_len: usize) -> Option<Kernel> {
        Some(resolve_kernel(
            self.kernel,
            self.num_speculative_starts(),
            chunk_len,
            self.inner.ptable().len(),
        ))
    }

    fn name(&self) -> &'static str {
        "rid+conv"
    }
}

/// Resolves a configured kernel to the strategy the scan dispatch will
/// actually run for a chunk of `chunk_len` bytes: [`Kernel::Auto`] goes
/// through the runtime selection matrix, and a pinned [`Kernel::Simd`]
/// is demoted to its documented scalar fallback when the CPU feature or
/// the table shape rules gathers out.
pub(super) fn resolve_kernel(
    configured: Kernel,
    num_runs: usize,
    chunk_len: usize,
    table_entries: usize,
) -> Kernel {
    let resolved = match configured {
        Kernel::Auto => kernel::select(num_runs, chunk_len, table_entries),
        pinned => pinned,
    };
    match resolved {
        Kernel::Simd if !kernel::simd_supported(table_entries) => Kernel::LockstepShared,
        k => k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csdpa::{recognize, recognize_counted, Executor};
    use crate::ridfa::construct::tests::figure1_nfa;
    use ridfa_automata::dfa::{minimize, powerset};
    use ridfa_automata::{NoCount, TransitionCount};

    fn setup() -> (Dfa, RiDfa) {
        let nfa = figure1_nfa();
        let dfa = minimize::minimize(&powerset::determinize(&nfa));
        let rid = RiDfa::from_nfa(&nfa);
        (dfa, rid)
    }

    #[test]
    fn convergent_mapping_equals_plain_mapping() {
        let (dfa, rid) = setup();
        let plain_dfa = DfaCa::new(&dfa);
        let plain_rid = RidCa::new(&rid);
        for kernel in [
            Kernel::PerRun,
            Kernel::Lockstep,
            Kernel::LockstepShared,
            Kernel::Simd,
            Kernel::Auto,
        ] {
            let conv_dfa = ConvergentDfaCa::with_kernel(&dfa, kernel);
            let conv_rid = ConvergentRidCa::with_kernel(&rid, kernel);
            for chunk in [&b"cab"[..], b"aab", b"", b"bbbb", b"aabcabaabcab"] {
                assert_eq!(
                    plain_dfa.scan(chunk, &mut NoCount),
                    conv_dfa.scan(chunk, &mut NoCount),
                    "dfa mapping ({kernel:?}) on {chunk:?}"
                );
                assert_eq!(
                    plain_rid.scan(chunk, &mut NoCount),
                    conv_rid.scan(chunk, &mut NoCount),
                    "rid mapping ({kernel:?}) on {chunk:?}"
                );
            }
        }
    }

    #[test]
    fn convergence_reduces_executed_transitions() {
        let (dfa, _) = setup();
        let plain = DfaCa::new(&dfa);
        let conv = ConvergentDfaCa::with_kernel(&dfa, Kernel::LockstepShared);
        // Long chunk: runs converge, so the lockstep scan does less work.
        let chunk = b"aabcab".repeat(100);
        let mut c_plain = TransitionCount::default();
        plain.scan(&chunk, &mut c_plain);
        let mut c_conv = TransitionCount::default();
        conv.scan(&chunk, &mut c_conv);
        assert!(
            c_conv.get() < c_plain.get(),
            "convergent {} vs plain {}",
            c_conv.get(),
            c_plain.get()
        );
        // Lower bound: at least one transition per byte while alive.
        assert!(c_conv.get() >= chunk.len() as u64);
    }

    #[test]
    fn end_to_end_recognition_agrees() {
        let (dfa, rid) = setup();
        let conv_dfa = ConvergentDfaCa::new(&dfa);
        let conv_rid = ConvergentRidCa::new(&rid);
        let mut text = b"aabcab".repeat(200);
        for chunks in [1usize, 3, 8] {
            assert!(recognize(&conv_dfa, &text, chunks, Executor::PerChunk).accepted);
            assert!(recognize(&conv_rid, &text, chunks, Executor::PerChunk).accepted);
        }
        text.push(b'c');
        assert!(!recognize(&conv_dfa, &text, 4, Executor::PerChunk).accepted);
        assert!(!recognize(&conv_rid, &text, 4, Executor::PerChunk).accepted);
    }

    #[test]
    fn counted_outcome_still_correct() {
        let (_, rid) = setup();
        let conv = ConvergentRidCa::new(&rid);
        let out = recognize_counted(&conv, b"aabcab", 2, Executor::Serial);
        assert!(out.accepted);
        // Fig. 1 chunk 2 from {0},{1},{2}: the {0} and {1} runs converge
        // only at the end ({0,2}), the {2} run dies immediately: the
        // convergent count is 3 (first) + 5 (interior: c:2, a:2, b:1… the
        // two surviving runs converge after 'b') ≤ the plain 9.
        assert!(out.transitions <= 9);
        assert!(out.transitions >= 6);
    }
}
