//! The classic DFA chunk automaton: every DFA state is a possible initial
//! state, so an interior chunk runs `|Q|` speculative scans (paper Sect. 2,
//! Fig. 2). This is the variant whose speculation overhead the RI-DFA
//! attacks.

use ridfa_automata::counter::Counter;
use ridfa_automata::dfa::Dfa;
use ridfa_automata::{StateId, DEAD};

use super::kernel::{self, DenseTable, Kernel, Scratch};
use super::ChunkAutomaton;

/// CSDPA chunk automaton wrapping a (usually minimal) DFA.
///
/// Interior scans go through the per-run path of the scan [`kernel`]
/// (premultiplied rows, shared table layout) but never merge runs, so the
/// executed-transition counts stay exactly the paper's `k × |chunk|`
/// workload measure. For the convergence-merging variant see
/// [`ConvergentDfaCa`](super::ConvergentDfaCa).
#[derive(Debug, Clone)]
pub struct DfaCa<'a> {
    dfa: &'a Dfa,
    /// Premultiplied transition table (entries are `target * stride`) —
    /// owned when built by [`new`](DfaCa::new), borrowed when a registry
    /// or artifact already holds it.
    ptable: std::borrow::Cow<'a, [StateId]>,
}

impl<'a> DfaCa<'a> {
    /// Wraps `dfa`, premultiplying its table once.
    pub fn new(dfa: &'a Dfa) -> Self {
        DfaCa {
            dfa,
            ptable: std::borrow::Cow::Owned(dfa.premultiplied_table()),
        }
    }

    /// Wraps `dfa` around an already-premultiplied table (e.g. loaded
    /// from an artifact or cached by a pattern registry), making CA
    /// construction allocation-free. `ptable` must equal
    /// `dfa.premultiplied_table()`; length is checked, content is the
    /// caller's contract.
    pub fn with_table(dfa: &'a Dfa, ptable: &'a [StateId]) -> Self {
        assert_eq!(
            ptable.len(),
            dfa.table().len(),
            "premultiplied table length must match the transition table"
        );
        DfaCa {
            dfa,
            ptable: std::borrow::Cow::Borrowed(ptable),
        }
    }

    /// The wrapped automaton.
    pub fn dfa(&self) -> &'a Dfa {
        self.dfa
    }

    /// The premultiplied table, shared with the convergent wrapper.
    pub(crate) fn ptable(&self) -> &[StateId] {
        &self.ptable
    }

    fn table(&self) -> DenseTable<'_> {
        DenseTable {
            ptable: &self.ptable,
            stride: self.dfa.stride(),
            classes: self.dfa.classes(),
        }
    }
}

impl ChunkAutomaton for DfaCa<'_> {
    /// `mapping[s]` = last active state of the run started in `s`
    /// ([`DEAD`](ridfa_automata::DEAD) when the run died, and for the slots
    /// a first-chunk scan never starts).
    type Mapping = Vec<StateId>;
    type Scratch = Scratch;
    type ComposeScratch = ();

    fn scan_into(
        &self,
        chunk: &[u8],
        scratch: &mut Scratch,
        counter: &mut impl Counter,
        out: &mut Vec<StateId>,
    ) {
        kernel::scan_into(
            self.table(),
            self.dfa.live_states().map(|s| (s, s)),
            self.dfa.num_states(),
            chunk,
            Kernel::PerRun,
            scratch,
            counter,
            out,
        );
    }

    fn scan_first_into(&self, chunk: &[u8], counter: &mut impl Counter, out: &mut Vec<StateId>) {
        out.clear();
        out.resize(self.dfa.num_states(), DEAD);
        let start = self.dfa.start();
        out[start as usize] = self.dfa.run_from(start, chunk, counter);
    }

    fn arm_interrupt(&self, scratch: &mut Scratch, probe: Option<&super::budget::InterruptProbe>) {
        scratch.set_interrupt(probe.cloned());
    }

    /// Function composition: the DFA mapping is a (partial) function
    /// `Q → Q`, so `(right ⊙ left)(s) = right(left(s))`, with
    /// [`DEAD`](ridfa_automata::DEAD) absorbing.
    fn compose_into(
        &self,
        left: &Vec<StateId>,
        right: &Vec<StateId>,
        _scratch: &mut (),
        out: &mut Vec<StateId>,
    ) {
        out.clear();
        out.extend(
            left.iter()
                .map(|&s| if s == DEAD { DEAD } else { right[s as usize] }),
        );
    }

    fn accepts_mapping(&self, mapping: &Vec<StateId>) -> bool {
        let last = mapping[self.dfa.start() as usize];
        last != DEAD && self.dfa.is_final(last)
    }

    fn mapping_is_dead(&self, mapping: &Vec<StateId>) -> bool {
        mapping.iter().all(|&s| s == DEAD)
    }

    fn accepts_serial(&self, text: &[u8], counter: &mut impl Counter) -> bool {
        let last = self.dfa.run_from(self.dfa.start(), text, counter);
        last != DEAD && self.dfa.is_final(last)
    }

    fn num_speculative_starts(&self) -> usize {
        self.dfa.num_live_states()
    }

    fn name(&self) -> &'static str {
        "dfa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridfa_automata::dfa::powerset::determinize;
    use ridfa_automata::nfa::glushkov;
    use ridfa_automata::regex::parse;
    use ridfa_automata::{NoCount, TransitionCount};

    fn ca_dfa(pattern: &str) -> Dfa {
        determinize(&glushkov::build(&parse(pattern).unwrap()).unwrap())
    }

    #[test]
    fn scan_then_join_equals_serial() {
        let dfa = ca_dfa("(a|b)*abb");
        let ca = DfaCa::new(&dfa);
        for text in [&b"aababb"[..], b"abb", b"ab", b"bbbb", b""] {
            let mid = text.len() / 2;
            let m1 = ca.scan_first(&text[..mid], &mut NoCount);
            let m2 = ca.scan(&text[mid..], &mut NoCount);
            let parallel = ca.join(&[m1, m2]);
            assert_eq!(parallel, dfa.accepts(text), "{text:?}");
        }
    }

    #[test]
    fn interior_scan_runs_all_live_states() {
        let dfa = ca_dfa("[ab]*a[ab]{2}");
        let ca = DfaCa::new(&dfa);
        let mut c = TransitionCount::default();
        ca.scan(b"ab", &mut c);
        // No run over {a,b}-only text can die in this language: the cost
        // is exactly |chunk| × |Q|.
        assert_eq!(c.get(), 2 * dfa.num_live_states() as u64);
    }

    #[test]
    fn first_scan_runs_once() {
        let dfa = ca_dfa("[ab]*a[ab]{2}");
        let ca = DfaCa::new(&dfa);
        let mut c = TransitionCount::default();
        ca.scan_first(b"abab", &mut c);
        assert_eq!(c.get(), 4, "first chunk is non-speculative");
    }

    #[test]
    fn join_rejects_when_all_runs_die() {
        let dfa = ca_dfa("aaa");
        let ca = DfaCa::new(&dfa);
        let m1 = ca.scan_first(b"zz", &mut NoCount);
        let m2 = ca.scan(b"a", &mut NoCount);
        assert!(!ca.join(&[m1, m2]));
    }

    #[test]
    fn figure1_transition_count_is_15() {
        // Paper Fig. 1, classic DFA method: "aab"+"cab" = 3 + 12 = 15.
        let nfa = crate::ridfa::construct::tests::figure1_nfa();
        let dfa = determinize(&nfa);
        let ca = DfaCa::new(&dfa);
        let mut c = TransitionCount::default();
        let m1 = ca.scan_first(b"aab", &mut c);
        let m2 = ca.scan(b"cab", &mut c);
        assert_eq!(c.get(), 15);
        assert!(ca.join(&[m1, m2]), "aabcab ∈ L");
    }
}
