//! First-class speculation policy: the per-pattern [`EnginePlan`].
//!
//! The paper's core trade-off — *minimize* speculation (RID lockstep)
//! vs *eliminate* it (SFA) vs *shrink* it (feasible-start pruning à la
//! PaREM) — used to be wired in: every pattern ran the speculative
//! lockstep kernel, and `sfa.rs` was an ablation island no selection
//! path could reach. This module makes the choice explicit and
//! portable: an [`EnginePlan`] is computed once per pattern (at
//! registration or compile time, see [`select`]), persisted in the
//! binary artifact's engine section, and carried everywhere the pattern
//! travels — registry entries, serve replicas, `inspect-artifact`.
//!
//! Three concrete engines exist:
//!
//! * **Lockstep** — the PR 1–3 speculative path: one run per interface
//!   state through the convergence-merging kernel. Always available;
//!   the fallback of every other plan.
//! * **Sfa** — zero speculation: one deterministic run per chunk over
//!   the (pre-built, budget-bounded) simultaneous automaton
//!   ([`crate::sfa::Sfa`]). Only viable when the SFA function space
//!   stayed small; [`select`] probes that with a capped trial build.
//! * **FeasibleStart** — speculation shrunk at every chunk boundary: a
//!   per-byte-class [`FeasibleTable`] (computed once per pattern) kills
//!   the runs whose origin state cannot survive the chunk's first byte
//!   *before* they are seeded, so the kernel starts `|feasible(c)|`
//!   runs instead of `|interface|`. Sound because the kernel skips
//!   [`DEAD`] seeds and a run whose first transition dies yields the
//!   same `DEAD` entry — mappings are bit-identical, verified by the
//!   engine differential suite.

use ridfa_automata::counter::Counter;
use ridfa_automata::{StateId, DEAD};

use crate::ridfa::RiDfa;

use super::kernel::{self, DenseTable, Kernel, Scratch};
use super::{ChunkAutomaton, RidCa, RidMapping};

/// SFA state-count cap for `Auto` plan resolution: a trial SFA build
/// that exceeds this many function states fails fast and the plan
/// falls back to a speculative engine. Small/medium DFAs (the regime
/// where SFA wins) stay far under it; explosion-prone patterns trip it
/// in milliseconds.
pub const SFA_AUTO_MAX_STATES: usize = 1 << 12;

/// SFA table-byte cap for `Auto` plan resolution (dense table plus the
/// retained function/inverse structures, each bounded separately).
pub const SFA_AUTO_MAX_TABLE_BYTES: usize = 8 << 20;

/// Interface size at which feasible-start pruning can pay: below this,
/// the lockstep kernel's convergence merging already collapses the few
/// speculative runs faster than a boundary pre-pass can prune them.
pub const FEASIBLE_MIN_INTERFACE: usize = 16;

/// The per-pattern speculation policy. `Auto` only exists *before*
/// resolution (in CLI flags and freshly parsed artifacts); a registry
/// entry always carries one of the three concrete engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnginePlan {
    /// Not yet decided: resolve via [`select`] at registration time.
    #[default]
    Auto,
    /// Speculative lockstep kernel over the full interface (the PR 1–3
    /// default path).
    Lockstep,
    /// Zero-speculation simultaneous automaton (requires prebuilt SFA
    /// tables).
    Sfa,
    /// Lockstep kernel with feasible-start boundary pruning (requires a
    /// prebuilt [`FeasibleTable`]).
    FeasibleStart,
}

impl EnginePlan {
    /// The artifact tag byte.
    pub fn tag(self) -> u8 {
        match self {
            EnginePlan::Auto => 0,
            EnginePlan::Lockstep => 1,
            EnginePlan::Sfa => 2,
            EnginePlan::FeasibleStart => 3,
        }
    }

    /// Parses an artifact tag byte.
    pub fn from_tag(tag: u8) -> Option<EnginePlan> {
        match tag {
            0 => Some(EnginePlan::Auto),
            1 => Some(EnginePlan::Lockstep),
            2 => Some(EnginePlan::Sfa),
            3 => Some(EnginePlan::FeasibleStart),
            _ => None,
        }
    }

    /// Short display name (CLI flag values and registry stats lines).
    pub fn name(self) -> &'static str {
        match self {
            EnginePlan::Auto => "auto",
            EnginePlan::Lockstep => "lockstep",
            EnginePlan::Sfa => "sfa",
            EnginePlan::FeasibleStart => "feasible",
        }
    }

    /// Parses a CLI flag value (`--engine auto|lockstep|sfa|feasible`).
    pub fn parse_flag(s: &str) -> Option<EnginePlan> {
        match s {
            "auto" => Some(EnginePlan::Auto),
            "lockstep" => Some(EnginePlan::Lockstep),
            "sfa" => Some(EnginePlan::Sfa),
            "feasible" => Some(EnginePlan::FeasibleStart),
            _ => None,
        }
    }
}

/// Resolves `Auto` into a concrete engine. Pure and pinned (see the
/// `engine_selection_matrix_is_pinned` test): callers pass the outcome
/// of a capped trial SFA build (`Some(states)` if it completed under
/// [`SFA_AUTO_MAX_STATES`] / [`SFA_AUTO_MAX_TABLE_BYTES`], `None` if it
/// tripped the budget) plus the pattern's interface size.
///
/// * SFA viable → **Sfa**: with the function space small, one
///   deterministic run per chunk beats any amount of speculation.
/// * SFA exploded, wide interface → **FeasibleStart**: pruning at
///   boundaries is the only lever left, and wide interfaces are where
///   it pays.
/// * SFA exploded, narrow interface → **Lockstep**: few runs to begin
///   with; convergence merging already wins.
pub fn select(sfa_states: Option<usize>, interface_len: usize) -> EnginePlan {
    match sfa_states {
        Some(states) if states <= SFA_AUTO_MAX_STATES => EnginePlan::Sfa,
        _ if interface_len >= FEASIBLE_MIN_INTERFACE => EnginePlan::FeasibleStart,
        _ => EnginePlan::Lockstep,
    }
}

/// The feasible-start table of a pattern: for every byte class `c`, the
/// set of interface positions whose origin state survives a `c`
/// transition. Computed once per pattern (`O(|interface| × stride)`),
/// consulted once per chunk/stream-block boundary; storage is
/// `stride × ⌈|interface| / 64⌉` words — a few hundred bytes for
/// typical patterns, accounted in the registry's resident ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeasibleTable {
    /// Interface positions covered per class (bit `i` of class row `c` =
    /// interface position `i` survives class `c`).
    words: Vec<u64>,
    /// Bitset words per class row.
    words_per_class: usize,
    /// Number of byte classes (rows).
    stride: usize,
    /// Number of interface positions (bits used per row).
    interface_len: usize,
}

impl FeasibleTable {
    /// Builds the table of `rid` by probing one transition per
    /// (interface state, byte class) pair.
    pub fn build(rid: &RiDfa) -> FeasibleTable {
        let interface = rid.interface();
        let stride = rid.stride();
        let words_per_class = interface.len().div_ceil(64).max(1);
        let mut words = vec![0u64; stride * words_per_class];
        for (i, &p) in interface.iter().enumerate() {
            for class in 0..stride {
                if rid.next_class(p, class as u8) != DEAD {
                    words[class * words_per_class + i / 64] |= 1 << (i % 64);
                }
            }
        }
        FeasibleTable {
            words,
            words_per_class,
            stride,
            interface_len: interface.len(),
        }
    }

    /// Rebuilds a table from its serialized parts, validating shape (the
    /// artifact decoder re-verifies *content* against the decoded RI-DFA
    /// by comparing with a fresh [`build`](FeasibleTable::build)).
    pub fn from_parts(
        stride: usize,
        interface_len: usize,
        words: Vec<u64>,
    ) -> Result<FeasibleTable, String> {
        let words_per_class = interface_len.div_ceil(64).max(1);
        if stride == 0 {
            return Err("feasible table with zero byte classes".into());
        }
        if words.len() != stride * words_per_class {
            return Err(format!(
                "feasible table holds {} words, expected {stride} classes × {words_per_class}",
                words.len()
            ));
        }
        Ok(FeasibleTable {
            words,
            words_per_class,
            stride,
            interface_len,
        })
    }

    /// Does the run from interface position `i` survive a first byte of
    /// class `class`?
    #[inline]
    pub fn is_feasible(&self, class: u8, i: usize) -> bool {
        debug_assert!(i < self.interface_len);
        let row = class as usize * self.words_per_class;
        self.words[row + i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of feasible origins for a first byte of class `class`.
    pub fn feasible_count(&self, class: u8) -> usize {
        let row = class as usize * self.words_per_class;
        self.words[row..row + self.words_per_class]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// The raw bitset words (serialization).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of byte classes (rows).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of interface positions covered per row.
    pub fn interface_len(&self) -> usize {
        self.interface_len
    }

    /// Heap bytes this table keeps resident (registry ledger).
    pub fn resident_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }
}

/// The RID chunk automaton with feasible-start boundary pruning: a
/// [`ConvergentRidCa`](super::ConvergentRidCa) whose interior scans
/// consult the [`FeasibleTable`] on the chunk's first byte and seed
/// [`DEAD`] for every origin that cannot survive it. The kernel skips
/// `DEAD` seeds, so the pruned runs cost nothing — and since an unpruned
/// run with an infeasible origin dies on its first transition anyway
/// (recording the same `DEAD`), the produced mapping is bit-identical
/// to the unpruned one. Empty chunks are never pruned (there is no
/// first byte to prune on).
#[derive(Debug, Clone)]
pub struct FeasibleRidCa<'a> {
    inner: RidCa<'a>,
    feasible: &'a FeasibleTable,
    kernel: Kernel,
}

impl<'a> FeasibleRidCa<'a> {
    /// Wraps `rid` and its feasible table with adaptive kernel selection.
    pub fn new(rid: &'a RiDfa, feasible: &'a FeasibleTable) -> Self {
        Self::from_inner(RidCa::new(rid), feasible, Kernel::Auto)
    }

    /// Wraps an already-built [`RidCa`] (e.g. one borrowing registry
    /// tables via [`RidCa::with_tables`]), pinning the scan strategy.
    pub fn from_inner(inner: RidCa<'a>, feasible: &'a FeasibleTable, kernel: Kernel) -> Self {
        debug_assert_eq!(feasible.interface_len(), inner.rid().interface().len());
        debug_assert_eq!(feasible.stride(), inner.rid().stride());
        FeasibleRidCa {
            inner,
            feasible,
            kernel,
        }
    }

    /// The feasible-start table consulted at chunk boundaries.
    pub fn feasible(&self) -> &FeasibleTable {
        self.feasible
    }
}

impl ChunkAutomaton for FeasibleRidCa<'_> {
    type Mapping = RidMapping;
    type Scratch = Scratch;
    type ComposeScratch = (Vec<StateId>, Vec<StateId>);

    fn scan_into(
        &self,
        chunk: &[u8],
        scratch: &mut Scratch,
        counter: &mut impl Counter,
        out: &mut RidMapping,
    ) {
        let rid = self.inner.rid();
        let interface = rid.interface();
        let table = DenseTable {
            ptable: self.inner.ptable(),
            stride: rid.stride(),
            classes: rid.classes(),
        };
        let first_class = chunk.first().map(|&b| rid.classes().get(b));
        kernel::scan_into(
            table,
            interface.iter().enumerate().map(|(i, &p)| {
                let origin = match first_class {
                    // Pruned: seeded DEAD, skipped by the kernel — the
                    // same entry an unpruned dead-on-first-byte run
                    // would record.
                    Some(c) if !self.feasible.is_feasible(c, i) => DEAD,
                    _ => p,
                };
                (i as u32, origin)
            }),
            interface.len(),
            chunk,
            self.kernel,
            scratch,
            counter,
            out.interior_buf(),
        );
    }

    fn scan_first_into(&self, chunk: &[u8], counter: &mut impl Counter, out: &mut RidMapping) {
        self.inner.scan_first_into(chunk, counter, out)
    }

    fn arm_interrupt(&self, scratch: &mut Scratch, probe: Option<&super::budget::InterruptProbe>) {
        self.inner.arm_interrupt(scratch, probe)
    }

    fn compose_into(
        &self,
        left: &RidMapping,
        right: &RidMapping,
        scratch: &mut (Vec<StateId>, Vec<StateId>),
        out: &mut RidMapping,
    ) {
        self.inner.compose_into(left, right, scratch, out)
    }

    fn accepts_mapping(&self, mapping: &RidMapping) -> bool {
        self.inner.accepts_mapping(mapping)
    }

    fn mapping_is_dead(&self, mapping: &RidMapping) -> bool {
        self.inner.mapping_is_dead(mapping)
    }

    fn accepts_serial(&self, text: &[u8], counter: &mut impl Counter) -> bool {
        self.inner.accepts_serial(text, counter)
    }

    fn num_speculative_starts(&self) -> usize {
        self.inner.num_speculative_starts()
    }

    fn effective_kernel(&self, chunk_len: usize) -> Option<Kernel> {
        Some(super::convergent::resolve_kernel(
            self.kernel,
            self.num_speculative_starts(),
            chunk_len,
            self.inner.ptable().len(),
        ))
    }

    fn name(&self) -> &'static str {
        "rid+feasible"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csdpa::{recognize, ConvergentRidCa, Executor};
    use crate::ridfa::construct::tests::figure1_nfa;
    use ridfa_automata::NoCount;

    #[test]
    fn plan_tags_roundtrip() {
        for plan in [
            EnginePlan::Auto,
            EnginePlan::Lockstep,
            EnginePlan::Sfa,
            EnginePlan::FeasibleStart,
        ] {
            assert_eq!(EnginePlan::from_tag(plan.tag()), Some(plan));
            assert_eq!(EnginePlan::parse_flag(plan.name()), Some(plan));
        }
        assert_eq!(EnginePlan::from_tag(9), None);
        assert_eq!(EnginePlan::parse_flag("turbo"), None);
    }

    #[test]
    fn feasible_table_matches_direct_probing() {
        let rid = RiDfa::from_nfa(&figure1_nfa()).minimized();
        let table = FeasibleTable::build(&rid);
        assert_eq!(table.interface_len(), rid.interface().len());
        for (i, &p) in rid.interface().iter().enumerate() {
            for class in 0..rid.stride() as u8 {
                assert_eq!(
                    table.is_feasible(class, i),
                    rid.next_class(p, class) != DEAD,
                    "origin {i} class {class}"
                );
            }
        }
        // Shape survives a serialization roundtrip.
        let back = FeasibleTable::from_parts(
            table.stride(),
            table.interface_len(),
            table.words().to_vec(),
        )
        .unwrap();
        assert_eq!(back, table);
    }

    #[test]
    fn feasible_mappings_are_bit_identical_to_lockstep() {
        let rid = RiDfa::from_nfa(&figure1_nfa()).minimized();
        let table = FeasibleTable::build(&rid);
        let pruned = FeasibleRidCa::new(&rid, &table);
        let plain = ConvergentRidCa::new(&rid);
        for chunk in [&b"cab"[..], b"aab", b"", b"bbbb", b"aabcabaabcab", b"zzz"] {
            assert_eq!(
                pruned.scan(chunk, &mut NoCount),
                plain.scan(chunk, &mut NoCount),
                "{chunk:?}"
            );
        }
    }

    #[test]
    fn feasible_recognition_agrees_end_to_end() {
        let rid = RiDfa::from_nfa(&figure1_nfa()).minimized();
        let table = FeasibleTable::build(&rid);
        let ca = FeasibleRidCa::new(&rid, &table);
        let mut text = b"aabcab".repeat(100);
        for chunks in [1usize, 2, 5, 16] {
            assert!(recognize(&ca, &text, chunks, Executor::Auto).accepted);
        }
        text.push(b'c');
        assert!(!recognize(&ca, &text, 4, Executor::Auto).accepted);
    }

    #[test]
    fn engine_selection_matrix_is_pinned() {
        // SFA viable → Sfa, whatever the interface width.
        assert_eq!(select(Some(1), 1), EnginePlan::Sfa);
        assert_eq!(select(Some(SFA_AUTO_MAX_STATES), 4096), EnginePlan::Sfa);
        // Over the viability cap → treated as exploded.
        assert_eq!(
            select(Some(SFA_AUTO_MAX_STATES + 1), 4),
            EnginePlan::Lockstep
        );
        // Exploded + wide interface → feasible-start pruning.
        assert_eq!(
            select(None, FEASIBLE_MIN_INTERFACE),
            EnginePlan::FeasibleStart
        );
        assert_eq!(select(None, 4096), EnginePlan::FeasibleStart);
        // Exploded + narrow interface → plain lockstep.
        assert_eq!(
            select(None, FEASIBLE_MIN_INTERFACE - 1),
            EnginePlan::Lockstep
        );
        assert_eq!(select(None, 0), EnginePlan::Lockstep);
        assert_eq!(select(None, 1), EnginePlan::Lockstep);
    }
}
