//! The data-parallel scan kernel ([`Kernel::Simd`](super::Kernel::Simd)).
//!
//! Three techniques, composed per phase of one chunk scan and gated on
//! *runtime* AVX2 detection (see [`ridfa_automata::simd::enabled`]):
//!
//! 1. **Vectorized classification.** Every phase pulls byte classes
//!    through [`ByteClasses::classify_into`], whose AVX2 nibble-shuffle
//!    path translates 32 bytes per iteration.
//! 2. **Gather-based lockstep stepping** (Ko et al.'s speculative SIMD
//!    membership test, arXiv:1210.5093). While many speculative runs are
//!    live, their premultiplied rows are advanced eight per
//!    `vpgatherdd` against one shared class vector. The per-byte dedup
//!    bookkeeping of the scalar lockstep kernel is *amortized* instead
//!    of paid per byte: groups advance freely for a short period, then a
//!    merge/compact pass splices converged groups and drops dead ones
//!    (sound because the dead row 0 is absorbing — `ptable[0 + c] = 0` —
//!    so an unmerged duplicate or dead lane just keeps gathering zeros).
//! 3. **Dependency-breaking finishes.** Once few runs survive, the scan
//!    is latency-bound on the `load → index → load` chain (~5 cycles per
//!    byte however fast the ALUs are). For 2–4 survivors the chains are
//!    *interleaved* in one pass — independent loads overlap, so four
//!    chains cost the wall time of one. For a single survivor the
//!    remainder is split into [`NUM_CHAINS`] strides walked in the same
//!    interleaved fashion: stride 0 continues deterministically from the
//!    known row, every later stride *speculates* from the entry row and
//!    records periodic row checkpoints. A serial repair pass then
//!    rescans each stride from its true entry only until it meets a
//!    matching checkpoint — by DFA determinism, agreement at one
//!    position implies identical rows ever after, so the stride's
//!    precomputed end row is adopted and the rest skipped. On convergent
//!    texts (the common case the paper measures) repairs cost a few
//!    hundred bytes per stride; the worst case degrades to the plain
//!    serial walk plus the wasted speculation, never to a wrong answer.
//!
//! Counting semantics are **per executed transition per lane/chain** —
//! work actually performed, including speculation that repair later
//! discards. This is honest but *not* comparable to the scalar lockstep
//! per-group counts (which merge eagerly); differential tests compare
//! mappings and verdicts, never tallies.

// The crate denies unsafe code; this module is the audited exception
// (AVX2 gathers behind runtime feature detection).
#![allow(unsafe_code)]

use ridfa_automata::counter::Counter;
use ridfa_automata::StateId;

use super::{
    merge_compact, run_row_serial, seed_groups, write_mapping, DenseTable, Scratch, CLASS_BLOCK,
};

/// Chains interleaved by the low-run finishes (multi-chain and strided).
/// Four ~5-cycle dependent load chains saturate the L1 load ports without
/// spilling the row state out of registers.
pub(super) const NUM_CHAINS: usize = 4;

/// Bytes between merge/compact passes of the gather phase. Short enough
/// to catch the early convergence burst, long enough to amortize the
/// compaction over the period.
const MERGE_PERIOD: usize = 256;

/// Below this many live groups the gather step stops paying (most lanes
/// idle) and the interleaved scalar finishes take over.
const GATHER_EXIT: usize = 4;

/// Checkpoint spacing of the speculative strided walk (power of two).
/// Repair scans at most this many bytes past the true convergence point.
const CKPT_INTERVAL: usize = 256;

/// Remainders shorter than this are not worth splitting into strides:
/// the repair floor (one checkpoint interval per stride) would eat the
/// latency win.
const STRIDE_MIN: usize = 8 * 1024;

/// Can the SIMD kernel execute here? Runtime AVX2 (plus the
/// `RIDFA_NO_SIMD` kill switch) and a premultiplied table addressable by
/// the signed 32-bit indices `vpgatherdd` consumes.
pub(super) fn supported(table_entries: usize) -> bool {
    cfg!(target_arch = "x86_64")
        && table_entries <= i32::MAX as usize
        && ridfa_automata::simd::enabled()
}

/// The SIMD chunk scan. Same contract as the scalar
/// [`lockstep_scan`](super::lockstep_scan): `out` is pre-filled with
/// [`DEAD`](ridfa_automata::DEAD) by the dispatcher and sized to the
/// origin count.
pub(super) fn scan(
    table: DenseTable<'_>,
    starts: impl Iterator<Item = (u32, StateId)>,
    chunk: &[u8],
    scratch: &mut Scratch,
    counter: &mut impl Counter,
    out: &mut [StateId],
) {
    debug_assert!(supported(table.ptable.len()));
    scratch.warm_up(table.ptable.len(), out.len());
    let stride = table.stride;
    let mut len = seed_groups(scratch, starts, stride);
    let mut consumed = 0;

    // Phase 1: many live runs — gather-based lockstep with periodic
    // merge/compact passes.
    if len > GATHER_EXIT {
        let mut class_buf = std::mem::take(&mut scratch.class_buf);
        'gather: while consumed < chunk.len() && len > GATHER_EXIT {
            if scratch.interrupt.as_ref().is_some_and(|p| p.should_stop()) {
                break 'gather; // abandoned: the budgeted caller discards
            }
            let block = &chunk[consumed..(consumed + CLASS_BLOCK).min(chunk.len())];
            table.classes.classify_into(block, &mut class_buf);
            for period in class_buf[..block.len()].chunks(MERGE_PERIOD) {
                advance_gathered(table.ptable, &mut scratch.rows[..len], period, counter);
                consumed += period.len();
                len = merge_compact(scratch, len);
                if len <= GATHER_EXIT {
                    break 'gather;
                }
            }
        }
        scratch.class_buf = class_buf;
    }

    // Phase 2: few live runs — dependency-breaking interleaved finishes.
    if consumed < chunk.len() && (1..=GATHER_EXIT).contains(&len) {
        let rest = &chunk[consumed..];
        if len == 1 {
            let entry = scratch.rows[0] as usize;
            let final_row = strided_single_run(table, entry, rest, scratch, counter);
            scratch.rows[0] = final_row as StateId;
        } else {
            multi_chain_finish(table, scratch, len, rest, counter);
        }
    }

    write_mapping(scratch, len, stride, out);
}

/// Advances all live groups over one period of pre-classified bytes,
/// eight premultiplied rows per gather, without merge bookkeeping. Dead
/// groups (and the row-0 pad lanes of the last vector) are absorbed by
/// the all-zero dead row, so no masking is needed; live transitions are
/// counted per lane from the not-dead movemask.
#[cfg(target_arch = "x86_64")]
fn advance_gathered(
    ptable: &[StateId],
    rows: &mut [StateId],
    classes: &[u8],
    counter: &mut impl Counter,
) {
    // SAFETY: `supported` (asserted by the caller) verified AVX2.
    unsafe { advance_gathered_avx2(ptable, rows, classes, counter) }
}

/// # Safety
/// Requires AVX2. Every row in `rows` must be a valid premultiplied row
/// offset of `ptable` (hence `row + class < ptable.len()` for any class
/// the table was built with), and `ptable.len() ≤ i32::MAX`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn advance_gathered_avx2(
    ptable: &[StateId],
    rows: &mut [StateId],
    classes: &[u8],
    counter: &mut impl Counter,
) {
    use std::arch::x86_64::*;
    let base = ptable.as_ptr() as *const i32;
    let zero = _mm256_setzero_si256();
    let mut g = 0;
    while g < rows.len() {
        let lanes = (rows.len() - g).min(8);
        // Load up to eight group rows, padding the tail vector with the
        // absorbing dead row 0 (gathers `ptable[0 + c] = 0`, never
        // counted, never stored back).
        let mut lane_buf = [0u32; 8];
        lane_buf[..lanes].copy_from_slice(&rows[g..g + lanes]);
        let mut v = _mm256_loadu_si256(lane_buf.as_ptr() as *const __m256i);
        for &class in classes {
            let idx = _mm256_add_epi32(v, _mm256_set1_epi32(class as i32));
            // SAFETY: rows are premultiplied offsets and `class` is a
            // valid class of the table, so every index is in bounds;
            // pad lanes index row 0.
            v = _mm256_i32gather_epi32::<4>(base, idx);
            let dead = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, zero)));
            counter.add(8 - (dead.count_ones() as u64));
        }
        _mm256_storeu_si256(lane_buf.as_mut_ptr() as *mut __m256i, v);
        rows[g..g + lanes].copy_from_slice(&lane_buf[..lanes]);
        g += lanes;
    }
}

/// Fallback stub so non-x86 builds type-check; unreachable because
/// [`supported`] is false there.
#[cfg(not(target_arch = "x86_64"))]
fn advance_gathered(
    _ptable: &[StateId],
    _rows: &mut [StateId],
    _classes: &[u8],
    _counter: &mut impl Counter,
) {
    unreachable!("SIMD scan dispatched without architecture support")
}

/// Runs the 2..=[`NUM_CHAINS`] surviving groups to the end of the chunk
/// as *interleaved* independent chains: one shared classification pass,
/// one loop, [`NUM_CHAINS`] in-flight loads per byte (unused chains are
/// parked on the absorbing dead row and never counted). Replaces the
/// scalar kernel's one-group-after-another serial finish, which walks
/// the remainder `len` times with a bare dependency chain each.
fn multi_chain_finish(
    table: DenseTable<'_>,
    scratch: &mut Scratch,
    len: usize,
    rest: &[u8],
    counter: &mut impl Counter,
) {
    debug_assert!((2..=NUM_CHAINS).contains(&len));
    let ptable = table.ptable;
    let mut r = [0usize; NUM_CHAINS];
    for (chain, &row) in r.iter_mut().zip(&scratch.rows[..len]) {
        *chain = row as usize;
    }
    let mut class_buf = std::mem::take(&mut scratch.class_buf);
    let probe = scratch.interrupt.clone();
    for seg in rest.chunks(CLASS_BLOCK) {
        if probe.as_ref().is_some_and(|p| p.should_stop()) {
            break; // abandoned: the budgeted caller discards the mapping
        }
        table.classes.classify_into(seg, &mut class_buf);
        for &class in &class_buf[..seg.len()] {
            let c = class as usize;
            let next = [
                ptable[r[0] + c] as usize,
                ptable[r[1] + c] as usize,
                ptable[r[2] + c] as usize,
                ptable[r[3] + c] as usize,
            ];
            counter.add(next.iter().map(|&n| (n != 0) as u64).sum());
            r = next;
        }
    }
    scratch.class_buf = class_buf;
    for (row, &chain) in scratch.rows[..len].iter_mut().zip(&r) {
        *row = chain as StateId;
    }
}

/// The single-run remainder walk: checkpoint-and-repair strided
/// speculation. Returns the final premultiplied row (0 = dead).
///
/// The remainder is cut into [`NUM_CHAINS`] equal strides. Stride 0 runs
/// deterministically from `row` (the one surviving group); each later
/// stride runs **one** speculative chain from `row` as a guessed entry,
/// recording its row every [`CKPT_INTERVAL`] bytes. All chains advance
/// interleaved in a single loop, so the ~5-cycle dependent-load latency
/// of the DFA walk is overlapped [`NUM_CHAINS`]-fold. The repair pass
/// then walks left to right: the true row entering stride `j` rescans
/// serially, but only until it equals the speculative chain's checkpoint
/// at the same position — determinism then guarantees both trajectories
/// are identical forever after, so the chain's precomputed end row is
/// adopted and the rest of the stride is skipped.
fn strided_single_run(
    table: DenseTable<'_>,
    row: usize,
    rest: &[u8],
    scratch: &mut Scratch,
    counter: &mut impl Counter,
) -> usize {
    let probe = scratch.interrupt.clone();
    if rest.len() < STRIDE_MIN {
        return match &probe {
            None => run_row_serial(table, row, rest, counter),
            Some(p) => super::run_row_interruptible(table, row, rest, counter, p),
        };
    }
    let ptable = table.ptable;
    let stride_len = rest.len() / NUM_CHAINS;
    // Stride j covers rest[j*stride_len ..][..stride_len]; the division
    // remainder (< NUM_CHAINS bytes) is appended to the last stride.
    let tail_start = NUM_CHAINS * stride_len;

    // Working buffers (capacity persists across scans: zero allocations
    // once warmed to the chunk-size high-water mark).
    let mut class_buf = std::mem::take(&mut scratch.simd_class_buf);
    if class_buf.len() < NUM_CHAINS * CLASS_BLOCK {
        class_buf.resize(NUM_CHAINS * CLASS_BLOCK, 0);
    }
    let mut ckpt = std::mem::take(&mut scratch.simd_ckpt);
    let ckpt_cap = stride_len / CKPT_INTERVAL + 2;
    if ckpt.len() < NUM_CHAINS * ckpt_cap {
        ckpt.resize(NUM_CHAINS * ckpt_cap, 0);
    }

    // Interleaved main walk: chain 0 deterministic, chains 1.. from the
    // guessed entry `row` (on convergent texts any live entry lands on
    // the same trajectory within a few hundred bytes).
    let mut r = [row; NUM_CHAINS];
    let mut n_ck = 0usize;
    let mut tripped = false;
    let mut seg_start = 0;
    while seg_start < stride_len {
        if probe.as_ref().is_some_and(|p| p.should_stop()) {
            tripped = true;
            break; // abandoned: the budgeted caller discards the mapping
        }
        let seg_len = (stride_len - seg_start).min(CLASS_BLOCK);
        for (j, buf) in class_buf.chunks_mut(CLASS_BLOCK).enumerate() {
            let from = j * stride_len + seg_start;
            table
                .classes
                .classify_into(&rest[from..from + seg_len], buf);
        }
        for k in 0..seg_len {
            let next = [
                ptable[r[0] + class_buf[k] as usize] as usize,
                ptable[r[1] + class_buf[CLASS_BLOCK + k] as usize] as usize,
                ptable[r[2] + class_buf[2 * CLASS_BLOCK + k] as usize] as usize,
                ptable[r[3] + class_buf[3 * CLASS_BLOCK + k] as usize] as usize,
            ];
            counter.add(next.iter().map(|&n| (n != 0) as u64).sum());
            r = next;
            if (seg_start + k + 1) % CKPT_INTERVAL == 0 {
                for j in 1..NUM_CHAINS {
                    ckpt[j * ckpt_cap + n_ck] = r[j] as StateId;
                }
                n_ck += 1;
            }
        }
        seg_start += seg_len;
    }
    // The last stride's division-remainder tail (< NUM_CHAINS bytes).
    if !tripped {
        for (i, &byte) in rest[tail_start..].iter().enumerate() {
            let next = ptable[r[NUM_CHAINS - 1] + table.classes.get(byte) as usize] as usize;
            counter.add((next != 0) as u64);
            r[NUM_CHAINS - 1] = next;
            if (stride_len + i + 1).is_multiple_of(CKPT_INTERVAL) {
                ckpt[(NUM_CHAINS - 1) * ckpt_cap + n_ck] = r[NUM_CHAINS - 1] as StateId;
                // Checkpoint indices of the shorter chains past their end
                // are never compared; only the tail chain reads this slot.
            }
        }
    }

    // Repair pass: resolve the true trajectory left to right.
    let mut cur = r[0]; // stride 0 ran from the true entry
    if !tripped {
        'strides: for j in 1..NUM_CHAINS {
            if cur == 0 {
                break; // the true run died: row 0 absorbs everything after
            }
            let from = j * stride_len;
            let to = if j == NUM_CHAINS - 1 {
                rest.len()
            } else {
                from + stride_len
            };
            let region = &rest[from..to];
            for (t, seg) in region.chunks(CKPT_INTERVAL).enumerate() {
                if probe.as_ref().is_some_and(|p| p.should_stop()) {
                    break 'strides; // abandoned: the partial row is discarded
                }
                cur = run_row_serial(table, cur, seg, counter);
                if cur == 0 {
                    break 'strides; // dead is absorbing: the verdict is DEAD
                }
                // A full-interval boundary has a recorded speculative row;
                // agreement there pins the whole remaining trajectory.
                if seg.len() == CKPT_INTERVAL && cur == ckpt[j * ckpt_cap + t] as usize {
                    cur = r[j];
                    continue 'strides;
                }
            }
            // No checkpoint matched: `cur` was rescanned to the stride's
            // end and *is* the true row — the speculation is discarded.
        }
    }
    scratch.simd_class_buf = class_buf;
    scratch.simd_ckpt = ckpt;
    cur
}
