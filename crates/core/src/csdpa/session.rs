//! Persistent recognition sessions: the warm execution layer for
//! high-traffic streams of (mostly short) texts.
//!
//! The free [`recognize`](super::recognize) functions spawn OS threads
//! per text through `std::thread::scope`. That mirrors the paper's
//! one-measurement-at-a-time driver, but under serving traffic the spawn
//! cost dominates short texts, and every per-worker scan
//! [`Scratch`](super::Scratch) is thrown away between calls, re-paying
//! warm-up allocations each text. A [`Session`] fixes both:
//!
//! * a persistent [`ThreadPool`] — workers park on a condvar between
//!   texts; dispatching a text is a notify, not `c` thread spawns;
//! * **per-worker resident scratches** — pool worker `w` reuses *its own*
//!   scan scratch for every chunk of every text it ever claims, so kernel
//!   warm-up happens once per worker per session;
//! * **buffer reuse** — chunk spans, λ-mapping slots, and join buffers
//!   all live in the session; once warm (see [`Session::warm`]),
//!   [`Session::recognize`] performs **zero heap allocations** per text
//!   (asserted by `tests/session_alloc.rs` with a counting allocator);
//! * a batch path — [`Session::recognize_many`] pipelines a whole slice
//!   of texts through the pool as one task stream: chunk scans of text
//!   `t+1` start while scans of text `t` are still in flight, with a
//!   single quiescence point per *batch* instead of a barrier per text.
//!
//! One session serves any mix of chunk-automaton types; the typed buffers
//! are cached per CA type and rebuilt transparently when the type
//! changes (keep one session per CA type if that matters for latency).

// λ-mapping slots are written by whichever claimant picks the chunk; the
// disjointness argument lives on `DisjointSlots`.
#![allow(unsafe_code)]

use std::any::Any;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

use ridfa_automata::counter::{NoCount, TransitionCount};

use crate::parallel::{PoolHealth, ThreadPool};

use super::budget::{panic_message, Budget, Degraded, InterruptProbe, RecognizeError};
use super::{
    chunk_spans_into, recognizer, ChunkAutomaton, ChunkStats, CountedOutcome, Executor,
    JoinScratch, JoinScratchOf, Outcome,
};

/// Minimum chunk count before [`Session::recognize`] switches from the
/// serial fold-join to the parallel tree-reduce join.
const TREE_JOIN_MIN: usize = 64;

/// The tree reduction hands the last few partials to the serial fold —
/// below this width, dispatch overhead exceeds the composition work.
const TREE_JOIN_TAIL: usize = 8;

/// A flattened (text, chunk) task of a batch recognition.
struct BatchTask {
    text: u32,
    start: usize,
    end: usize,
    first: bool,
}

/// The per-CA-type buffer set a session keeps warm.
struct TypedCache<S, M, C> {
    /// One scan scratch per pool worker plus one for the calling thread
    /// (slot layout mandated by [`ThreadPool::invoke_all_scoped`]).
    scratches: Vec<S>,
    /// λ-mapping slots, one per chunk task; grown to the high-water mark
    /// and reused across texts.
    mappings: Vec<M>,
    /// Join-phase working memory (fold accumulators + compose scratch).
    join: JoinScratch<M, C>,
    /// Output slots of one tree-reduce level (high-water sized).
    tree: Vec<M>,
    /// One compose scratch per pool worker plus one for the caller, for
    /// the parallel tree-reduce join.
    compose_slots: Vec<C>,
}

/// A persistent recognition session: worker pool + warm per-worker scan
/// scratches + reusable chunk/λ/join buffers.
///
/// ```
/// use ridfa_core::csdpa::{Session, RidCa};
/// use ridfa_core::ridfa::RiDfa;
/// use ridfa_automata::{nfa, regex};
///
/// let ast = regex::parse("[ab]*a[ab]{4}").unwrap();
/// let nfa = nfa::glushkov::build(&ast).unwrap();
/// let rid = RiDfa::from_nfa(&nfa).minimized();
/// let ca = RidCa::new(&rid);
///
/// let mut session = Session::new(4);
/// session.warm(&ca, b"abab");
/// assert!(session.recognize(&ca, b"abbaabbbaabab", 4).accepted);
/// let verdicts = session.recognize_many(&ca, &[&b"abbaabbbaabab"[..], b"zzz"], 2);
/// assert_eq!(verdicts, [true, false]);
/// ```
pub struct Session {
    pool: std::sync::Arc<ThreadPool>,
    /// Reusable chunk spans of the current text.
    spans: Vec<std::ops::Range<usize>>,
    /// Reusable flattened task table of a batch.
    batch: Vec<BatchTask>,
    /// `offsets[t]..offsets[t+1]` = `batch`/mapping indices of text `t`.
    offsets: Vec<usize>,
    /// The [`TypedCache`] of the most recent CA type.
    cache: Option<Box<dyn Any + Send>>,
    /// Why the most recent recognition ran degraded, if it did (cleared
    /// at the start of every recognition).
    last_degraded: Option<Degraded>,
}

impl Session {
    /// Creates a session with `num_workers` (≥ 1) pool workers. The
    /// calling thread participates in every reach phase too, so total
    /// scan parallelism is `num_workers + 1`.
    pub fn new(num_workers: usize) -> Session {
        Session::from_pool(ThreadPool::new(num_workers))
    }

    /// Like [`Session::new`] but with a bounded worker-respawn budget
    /// (see [`ThreadPool::with_respawn_limit`]): once the budget is
    /// exhausted and the pool drops below quorum, recognitions degrade to
    /// an explicit serial path and record
    /// [`Degraded::PoolBelowQuorum`] in [`Session::last_degraded`].
    pub fn with_respawn_limit(num_workers: usize, respawn_limit: u64) -> Session {
        Session::from_pool(ThreadPool::with_respawn_limit(num_workers, respawn_limit))
    }

    fn from_pool(pool: ThreadPool) -> Session {
        Session::with_shared_pool(std::sync::Arc::new(pool))
    }

    /// Creates a session on a pool shared with other sessions (the
    /// multi-pattern registry shape: one pool, many warm sessions).
    /// Concurrent recognitions from different sessions serialize on the
    /// pool's single scope slot; per-session caches stay private.
    pub fn with_shared_pool(pool: std::sync::Arc<ThreadPool>) -> Session {
        Session {
            pool,
            spans: Vec::new(),
            batch: Vec::new(),
            offsets: Vec::new(),
            cache: None,
            last_degraded: None,
        }
    }

    /// Creates a session sized to the machine: one pool worker per
    /// available core, minus the calling thread.
    pub fn with_available_parallelism() -> Session {
        let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
        Session::new(cores.saturating_sub(1).max(1))
    }

    /// Number of pool workers (excluding the participating caller).
    pub fn num_workers(&self) -> usize {
        self.pool.num_workers()
    }

    /// The session's worker pool, for health inspection (and for fault
    /// injection in tests — [`ThreadPool::execute`] is the only path
    /// through which an untrappable panic can kill a worker).
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Worker-pool health after the most recent heal pass.
    pub fn health(&self) -> PoolHealth {
        self.pool.health()
    }

    /// Why the most recent recognition ran degraded, or `None` if it ran
    /// at full shape. Cleared at the start of every recognition, so a
    /// healed pool reads `None` again on the next call.
    pub fn last_degraded(&self) -> Option<Degraded> {
        self.last_degraded
    }

    /// Heals the pool and decides whether this recognition must degrade:
    /// returns the reason when the pool is below quorum after healing.
    fn check_quorum(&mut self) -> Option<Degraded> {
        self.pool.heal();
        self.last_degraded = None;
        let health = self.pool.health();
        if health.below_quorum() {
            let reason = Degraded::PoolBelowQuorum {
                live: health.live,
                configured: health.configured,
            };
            self.last_degraded = Some(reason);
            Some(reason)
        } else {
            None
        }
    }

    /// Pre-warms every per-worker scratch (and the join buffers) against
    /// `ca` by scanning `sample` once per slot on the calling thread.
    ///
    /// Without this, a pool worker that happens not to claim any chunk of
    /// the first few texts still pays its scratch warm-up allocations the
    /// first time it does — harmless, but latency-visible. After `warm`
    /// plus one recognition (which sizes the mapping slots), a session
    /// recognizes without allocating.
    pub fn warm<CA: ChunkAutomaton>(&mut self, ca: &CA, sample: &[u8]) {
        let mut cache = self.take_cache::<CA>();
        let mut interior = CA::Mapping::default();
        for scratch in cache.scratches.iter_mut() {
            ca.scan_into(sample, scratch, &mut NoCount, &mut interior);
        }
        let mut first = CA::Mapping::default();
        ca.scan_first_into(sample, &mut NoCount, &mut first);
        let _ = ca.join_with(std::slice::from_ref(&first), &mut cache.join);
        self.cache = Some(cache);
    }

    /// Recognizes `text` on the session pool — the warm counterpart of
    /// the free [`recognize`](super::recognize) with
    /// [`Executor::Pooled`]. Allocation-free once the session is warm.
    ///
    /// Availability: dead pool workers are respawned first
    /// ([`ThreadPool::heal`]); if the pool is still below quorum (more
    /// than half the configured workers dead with the respawn budget
    /// spent), the text is recognized on an explicit serial path, the
    /// outcome records [`Executor::Serial`], and
    /// [`Session::last_degraded`] records why.
    pub fn recognize<CA: ChunkAutomaton>(
        &mut self,
        ca: &CA,
        text: &[u8],
        num_chunks: usize,
    ) -> Outcome {
        self.recognize_inner(ca, text, num_chunks, None)
            .expect("unbudgeted recognition cannot be interrupted")
    }

    /// Like [`Session::recognize`] but bounded by `budget` (deadline
    /// and/or cancellation): the probe is checked at chunk-claim
    /// boundaries and once per classification block inside kernel scans.
    /// Any panic escaping the chunk automaton is trapped and surfaced as
    /// [`RecognizeError::Panicked`]; the session stays usable afterwards
    /// (warm buffers may be rebuilt on the next call).
    pub fn recognize_budgeted<CA: ChunkAutomaton>(
        &mut self,
        ca: &CA,
        text: &[u8],
        num_chunks: usize,
        budget: &Budget,
    ) -> Result<Outcome, RecognizeError> {
        let probe = budget.probe();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.recognize_inner(ca, text, num_chunks, probe.as_ref())
        })) {
            Ok(result) => result,
            Err(payload) => Err(RecognizeError::Panicked(panic_message(payload))),
        }
    }

    /// Shared body of the timed single-text entry points: heal + quorum
    /// policy, then the pooled (or degraded-serial) reach and join.
    fn recognize_inner<CA: ChunkAutomaton>(
        &mut self,
        ca: &CA,
        text: &[u8],
        num_chunks: usize,
        probe: Option<&InterruptProbe>,
    ) -> Result<Outcome, RecognizeError> {
        let degraded = self.check_quorum().is_some();
        let mut cache = self.take_cache::<CA>();
        chunk_spans_into(text.len(), num_chunks, &mut self.spans);
        let n = self.spans.len();
        let cache_mut = &mut *cache;
        if cache_mut.mappings.len() < n {
            cache_mut.mappings.resize_with(n, CA::Mapping::default);
        }
        let reach_start = Instant::now();
        if degraded {
            let TypedCache {
                scratches,
                mappings,
                ..
            } = cache_mut;
            let scratch = scratches.last_mut().expect("session keeps a caller slot");
            ca.arm_interrupt(scratch, probe);
            for (i, span) in self.spans.iter().enumerate() {
                if probe.is_some_and(|p| p.should_stop()) {
                    break;
                }
                let chunk = &text[span.clone()];
                if i == 0 {
                    ca.scan_first_into(chunk, &mut NoCount, &mut mappings[i]);
                } else {
                    ca.scan_into(chunk, scratch, &mut NoCount, &mut mappings[i]);
                }
            }
        } else {
            pooled_reach(
                &self.pool,
                ca,
                text,
                &self.spans,
                &mut cache_mut.scratches,
                &mut cache_mut.mappings[..n],
                None,
                probe,
            );
        }
        let reach = reach_start.elapsed();
        if let Some(err) = probe.and_then(|p| p.status()) {
            self.cache = Some(cache);
            return Err(err);
        }
        let join_start = Instant::now();
        let accepted = if degraded {
            ca.join_with(&cache_mut.mappings[..n], &mut cache_mut.join)
        } else {
            Self::join_mappings(&self.pool, ca, cache_mut, n)
        };
        let join = join_start.elapsed();
        self.cache = Some(cache);
        Ok(Outcome {
            accepted,
            num_chunks: n,
            reach,
            join,
            executor: if degraded {
                Executor::Serial
            } else {
                Executor::Pooled
            },
            kernel: recognizer::effective_kernel_for(ca, &self.spans),
        })
    }

    /// Like [`Session::recognize`] but tallying executed transitions per
    /// chunk (paper Sect. 4.3). The instrumentation buffers are per-call,
    /// so this path allocates; never mix it into a timing comparison with
    /// the uncounted path.
    pub fn recognize_counted<CA: ChunkAutomaton>(
        &mut self,
        ca: &CA,
        text: &[u8],
        num_chunks: usize,
    ) -> CountedOutcome {
        self.pool.heal();
        let mut cache = self.take_cache::<CA>();
        chunk_spans_into(text.len(), num_chunks, &mut self.spans);
        let n = self.spans.len();
        let cache_mut = &mut *cache;
        if cache_mut.mappings.len() < n {
            cache_mut.mappings.resize_with(n, CA::Mapping::default);
        }
        let mut per_chunk = vec![
            ChunkStats {
                len: 0,
                transitions: 0,
                scan_time: Duration::ZERO,
            };
            n
        ];
        let reach_start = Instant::now();
        pooled_reach(
            &self.pool,
            ca,
            text,
            &self.spans,
            &mut cache_mut.scratches,
            &mut cache_mut.mappings[..n],
            Some(&mut per_chunk[..]),
            None,
        );
        let reach = reach_start.elapsed();
        let join_start = Instant::now();
        let accepted = Self::join_mappings(&self.pool, ca, cache_mut, n);
        let join = join_start.elapsed();
        self.cache = Some(cache);
        CountedOutcome {
            accepted,
            num_chunks: n,
            transitions: per_chunk.iter().map(|s| s.transitions).sum(),
            per_chunk,
            reach,
            join,
            executor: Executor::Pooled,
            kernel: recognizer::effective_kernel_for(ca, &self.spans),
        }
    }

    /// Recognizes with an explicit [`Executor`] shape:
    /// [`Executor::Pooled`] and [`Executor::Auto`] run on the session
    /// pool (a session *is* the preferred executor when one exists);
    /// the spawning shapes delegate to the free
    /// [`recognize`](super::recognize) unchanged — useful for
    /// apples-to-apples comparisons over one code path.
    pub fn recognize_with<CA: ChunkAutomaton>(
        &mut self,
        ca: &CA,
        text: &[u8],
        num_chunks: usize,
        executor: Executor,
    ) -> Outcome {
        match executor {
            Executor::Pooled | Executor::Auto => self.recognize(ca, text, num_chunks),
            other => recognizer::recognize(ca, text, num_chunks, other),
        }
    }

    /// Recognizes a whole batch of texts as **one** pipelined task stream
    /// over the pool: every chunk of every text is a claimable task, so
    /// workers flow from text to text without a per-text barrier (the
    /// single quiescence point is at the end of the batch), and short
    /// texts never leave workers idle. Returns one verdict per text, in
    /// order.
    ///
    /// Peak memory holds one λ mapping per chunk across the whole batch;
    /// chop very large streams into waves of a few thousand texts.
    pub fn recognize_many<CA, T>(&mut self, ca: &CA, texts: &[T], num_chunks: usize) -> Vec<bool>
    where
        CA: ChunkAutomaton,
        T: AsRef<[u8]> + Sync,
    {
        self.recognize_many_inner(ca, texts, num_chunks, None)
            .expect("unbudgeted recognition cannot be interrupted")
    }

    /// Like [`Session::recognize_many`] but bounded by `budget`: on
    /// deadline expiry or cancellation the whole batch fails with one
    /// typed error (no partial verdicts — a half-scanned batch has no
    /// meaningful prefix). Panics escaping the chunk automaton are
    /// trapped and surfaced as [`RecognizeError::Panicked`].
    pub fn recognize_many_budgeted<CA, T>(
        &mut self,
        ca: &CA,
        texts: &[T],
        num_chunks: usize,
        budget: &Budget,
    ) -> Result<Vec<bool>, RecognizeError>
    where
        CA: ChunkAutomaton,
        T: AsRef<[u8]> + Sync,
    {
        let probe = budget.probe();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.recognize_many_inner(ca, texts, num_chunks, probe.as_ref())
        })) {
            Ok(result) => result,
            Err(payload) => Err(RecognizeError::Panicked(panic_message(payload))),
        }
    }

    fn recognize_many_inner<CA, T>(
        &mut self,
        ca: &CA,
        texts: &[T],
        num_chunks: usize,
        probe: Option<&InterruptProbe>,
    ) -> Result<Vec<bool>, RecognizeError>
    where
        CA: ChunkAutomaton,
        T: AsRef<[u8]> + Sync,
    {
        assert!(u32::try_from(texts.len()).is_ok(), "batch too large");
        let degraded = self.check_quorum().is_some();
        let mut cache = self.take_cache::<CA>();
        self.batch.clear();
        self.offsets.clear();
        for (t, text) in texts.iter().enumerate() {
            self.offsets.push(self.batch.len());
            chunk_spans_into(text.as_ref().len(), num_chunks, &mut self.spans);
            for (ci, span) in self.spans.iter().enumerate() {
                self.batch.push(BatchTask {
                    text: t as u32,
                    start: span.start,
                    end: span.end,
                    first: ci == 0,
                });
            }
        }
        self.offsets.push(self.batch.len());
        let total = self.batch.len();
        let cache_mut = &mut *cache;
        if cache_mut.mappings.len() < total {
            cache_mut.mappings.resize_with(total, CA::Mapping::default);
        }
        if degraded {
            let TypedCache {
                scratches,
                mappings,
                ..
            } = cache_mut;
            let scratch = scratches.last_mut().expect("session keeps a caller slot");
            ca.arm_interrupt(scratch, probe);
            for (i, task) in self.batch.iter().enumerate() {
                if probe.is_some_and(|p| p.should_stop()) {
                    break;
                }
                let chunk = &texts[task.text as usize].as_ref()[task.start..task.end];
                if task.first {
                    ca.scan_first_into(chunk, &mut NoCount, &mut mappings[i]);
                } else {
                    ca.scan_into(chunk, scratch, &mut NoCount, &mut mappings[i]);
                }
            }
        } else {
            let batch = &self.batch;
            let slots = DisjointSlots::new(&mut cache_mut.mappings[..total]);
            self.pool
                .invoke_all_scoped(total, &mut cache_mut.scratches, |scratch, i| {
                    ca.arm_interrupt(scratch, probe);
                    if probe.is_some_and(|p| p.should_stop()) {
                        return; // abandoned: the error return below skips the join
                    }
                    // SAFETY: the pool claims each task index exactly once.
                    let out = unsafe { slots.get(i) };
                    let task = &batch[i];
                    let chunk = &texts[task.text as usize].as_ref()[task.start..task.end];
                    if task.first {
                        ca.scan_first_into(chunk, &mut NoCount, out);
                    } else {
                        ca.scan_into(chunk, scratch, &mut NoCount, out);
                    }
                });
        }
        if let Some(err) = probe.and_then(|p| p.status()) {
            self.cache = Some(cache);
            return Err(err);
        }
        let verdicts = (0..texts.len())
            .map(|t| {
                let mappings = &cache_mut.mappings[self.offsets[t]..self.offsets[t + 1]];
                ca.join_with(mappings, &mut cache_mut.join)
            })
            .collect();
        self.cache = Some(cache);
        Ok(verdicts)
    }

    /// The warm buffer set for `CA`'s scratch/mapping/join types, taken
    /// out of the session for the duration of a call (split-borrow
    /// friendly); rebuilt if the session last served a different CA type.
    fn take_cache<CA: ChunkAutomaton>(
        &mut self,
    ) -> Box<TypedCache<CA::Scratch, CA::Mapping, CA::ComposeScratch>> {
        if let Some(cache) = self.cache.take() {
            if let Ok(typed) = cache.downcast() {
                return typed;
            }
        }
        let slots = self.pool.num_workers() + 1;
        Box::new(TypedCache {
            scratches: (0..slots).map(|_| CA::Scratch::default()).collect(),
            mappings: Vec::new(),
            join: JoinScratchOf::<CA>::default(),
            tree: Vec::new(),
            compose_slots: (0..slots).map(|_| CA::ComposeScratch::default()).collect(),
        })
    }

    /// The join phase of a pooled recognition: the serial fold for small
    /// chunk counts, the parallel tree reduction over
    /// [`compose_into`](ChunkAutomaton::compose_into) once the O(c)
    /// serial barrier would dominate.
    fn join_mappings<CA: ChunkAutomaton>(
        pool: &ThreadPool,
        ca: &CA,
        cache: &mut TypedCache<CA::Scratch, CA::Mapping, CA::ComposeScratch>,
        n: usize,
    ) -> bool {
        if n >= TREE_JOIN_MIN {
            tree_join(
                pool,
                ca,
                &mut cache.mappings[..n],
                &mut cache.tree,
                &mut cache.compose_slots,
                &mut cache.join,
            )
        } else {
            ca.join_with(&cache.mappings[..n], &mut cache.join)
        }
    }
}

/// Parallel tree-reduce join: each level composes adjacent pairs of
/// partial mappings concurrently on the pool (an odd tail rides up
/// unchanged), halving the sequence until the serial fold finishes the
/// last few — O(log c) parallel depth instead of the O(c) serial
/// barrier. Associativity of λ-composition guarantees the same verdict
/// as the left fold; the contents of `mappings` are consumed as scratch.
fn tree_join<CA: ChunkAutomaton>(
    pool: &ThreadPool,
    ca: &CA,
    mappings: &mut [CA::Mapping],
    tree: &mut Vec<CA::Mapping>,
    compose_slots: &mut [CA::ComposeScratch],
    join: &mut JoinScratchOf<CA>,
) -> bool {
    let mut len = mappings.len();
    while len > TREE_JOIN_TAIL {
        let pairs = len / 2;
        let odd = len % 2;
        if tree.len() < pairs {
            tree.resize_with(pairs, CA::Mapping::default);
        }
        {
            let src: &[CA::Mapping] = &mappings[..len];
            let slots = DisjointSlots::new(&mut tree[..pairs]);
            pool.invoke_all_scoped(pairs, compose_slots, |scratch, i| {
                // SAFETY: the pool claims each task index exactly once.
                let out = unsafe { slots.get(i) };
                ca.compose_into(&src[2 * i], &src[2 * i + 1], scratch, out);
            });
        }
        // Swap the level's results back to the front (pointer swaps, so
        // the buffers of both levels stay warm for the next call).
        for i in 0..pairs {
            std::mem::swap(&mut mappings[i], &mut tree[i]);
        }
        if odd == 1 {
            mappings.swap(pairs, len - 1);
        }
        len = pairs + odd;
    }
    ca.join_with(&mappings[..len], join)
}

/// The single-text pooled reach phase, shared by the timed and the
/// counted entry points: every chunk is a claimable pool task scanned
/// into its own mapping slot. With `stats` the scan is instrumented
/// (per-chunk transition counts and scan wall time). With `probe` the
/// scan is interruptible: each claimant arms its scratch and abandons
/// unclaimed chunks once the budget trips (the caller never joins
/// abandoned mappings — it returns the probe's error instead).
#[allow(clippy::too_many_arguments)] // internal seam of the three Session entry points; all args are hot borrows
fn pooled_reach<CA: ChunkAutomaton>(
    pool: &ThreadPool,
    ca: &CA,
    text: &[u8],
    spans: &[std::ops::Range<usize>],
    scratches: &mut [CA::Scratch],
    mappings: &mut [CA::Mapping],
    stats: Option<&mut [ChunkStats]>,
    probe: Option<&InterruptProbe>,
) {
    debug_assert_eq!(spans.len(), mappings.len());
    let slots = DisjointSlots::new(mappings);
    let stat_slots = stats.map(DisjointSlots::new);
    pool.invoke_all_scoped(spans.len(), scratches, |scratch, i| {
        ca.arm_interrupt(scratch, probe);
        if probe.is_some_and(|p| p.should_stop()) {
            return; // abandoned: the error return upstream skips the join
        }
        // SAFETY: the pool claims each task index exactly once.
        let out = unsafe { slots.get(i) };
        let chunk = &text[spans[i].clone()];
        if let Some(stat_slots) = &stat_slots {
            let mut counter = TransitionCount::default();
            let scan_start = Instant::now();
            if i == 0 {
                ca.scan_first_into(chunk, &mut counter, out);
            } else {
                ca.scan_into(chunk, scratch, &mut counter, out);
            }
            // SAFETY: same index, same single claimant.
            *unsafe { stat_slots.get(i) } = ChunkStats {
                len: chunk.len(),
                transitions: counter.get(),
                scan_time: scan_start.elapsed(),
            };
        } else if i == 0 {
            ca.scan_first_into(chunk, &mut NoCount, out);
        } else {
            ca.scan_into(chunk, scratch, &mut NoCount, out);
        }
    });
}

/// Shares a slice across a pooled batch for disjoint per-index writes
/// (used by the reach phase, the tree-reduce join, and the streaming
/// layer).
///
/// Soundness argument: the pool hands out each task index to exactly one
/// claimant (an atomic `fetch_add`), and `get(i)` is only called with
/// that claimant's own index, so no two live `&mut` ever alias.
pub(crate) struct DisjointSlots<'a, T> {
    ptr: *mut T,
    len: usize,
    _slice: PhantomData<&'a mut [T]>,
}

// SAFETY: see the disjointness argument on the type; T values are moved
// across threads, hence T: Send.
unsafe impl<T: Send> Sync for DisjointSlots<'_, T> {}

impl<'a, T> DisjointSlots<'a, T> {
    pub(crate) fn new(slice: &'a mut [T]) -> DisjointSlots<'a, T> {
        DisjointSlots {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _slice: PhantomData,
        }
    }

    /// # Safety
    ///
    /// `i < len`, and no two concurrent calls may pass the same `i`.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csdpa::{DfaCa, NfaCa, RidCa};
    use crate::ridfa::construct::tests::figure1_nfa;
    use crate::ridfa::RiDfa;
    use ridfa_automata::dfa::powerset::determinize;

    fn sample_text(accept: bool) -> Vec<u8> {
        let mut t = b"aabcab".repeat(300);
        if !accept {
            t.push(b'c');
        }
        t
    }

    #[test]
    fn session_agrees_with_free_recognizer() {
        let nfa = figure1_nfa();
        let dfa = determinize(&nfa);
        let rid = RiDfa::from_nfa(&nfa).minimized();
        let dfa_ca = DfaCa::new(&dfa);
        let rid_ca = RidCa::new(&rid);
        let mut session = Session::new(3);
        for accept in [true, false] {
            let text = sample_text(accept);
            for chunks in [1usize, 2, 7, 32] {
                assert_eq!(
                    session.recognize(&dfa_ca, &text, chunks).accepted,
                    accept,
                    "dfa c={chunks}"
                );
                assert_eq!(
                    session.recognize(&rid_ca, &text, chunks).accepted,
                    accept,
                    "rid c={chunks}"
                );
            }
        }
    }

    #[test]
    fn session_counted_matches_figure1() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let mut session = Session::new(2);
        let out = session.recognize_counted(&ca, b"aabcab", 2);
        assert!(out.accepted);
        assert_eq!(out.num_chunks, 2);
        assert_eq!(out.transitions, 9, "paper Fig. 1 bottom-right total");
        assert_eq!(out.per_chunk.len(), 2);
        assert_eq!(out.per_chunk[0].transitions, 3);
        assert_eq!(out.per_chunk[1].transitions, 6);
    }

    #[test]
    fn batch_verdicts_match_single_texts() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa).minimized();
        let ca = RidCa::new(&rid);
        let mut session = Session::new(2);
        let texts: Vec<Vec<u8>> = (0..17)
            .map(|i| {
                let mut t = b"aabcab".repeat(1 + i % 5);
                if i % 3 == 0 {
                    t.push(b'c'); // rejected
                }
                t
            })
            .collect();
        let batch = session.recognize_many(&ca, &texts, 3);
        for (i, text) in texts.iter().enumerate() {
            assert_eq!(
                batch[i],
                session.recognize(&ca, text, 3).accepted,
                "text {i}"
            );
        }
    }

    #[test]
    fn batch_of_empty_and_tiny_texts() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let mut session = Session::new(2);
        let texts: [&[u8]; 4] = [b"", b"a", b"aabcab", b"c"];
        let verdicts = session.recognize_many(&ca, &texts, 8);
        for (i, text) in texts.iter().enumerate() {
            assert_eq!(verdicts[i], nfa.accepts(text), "text {i}");
        }
        assert!(session.recognize_many(&ca, &[] as &[&[u8]], 4).is_empty());
    }

    #[test]
    fn cache_rebuilds_across_ca_types() {
        // Alternating CA types through one session must stay correct
        // (the typed buffers are rebuilt on each switch).
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let rid_ca = RidCa::new(&rid);
        let nfa_ca = NfaCa::new(&nfa);
        let mut session = Session::new(2);
        for _ in 0..3 {
            assert!(session.recognize(&rid_ca, b"aabcab", 2).accepted);
            assert!(session.recognize(&nfa_ca, b"aabcab", 2).accepted);
            assert!(!session.recognize(&nfa_ca, b"caa", 2).accepted);
        }
    }

    #[test]
    fn budgeted_session_paths_fail_typed_and_recover() {
        use super::super::budget::CancelToken;
        use std::time::Duration;
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let ca = RidCa::new(&rid);
        let mut session = Session::new(2);
        let text = sample_text(true);
        let texts: [&[u8]; 3] = [b"aabcab", b"c", b"aabcabaabcab"];

        let expired = Budget::with_timeout(Duration::ZERO);
        assert_eq!(
            session
                .recognize_budgeted(&ca, &text, 4, &expired)
                .unwrap_err(),
            RecognizeError::DeadlineExceeded
        );
        let token = CancelToken::new();
        token.cancel();
        let cancelled = Budget::with_cancel(&token);
        assert_eq!(
            session
                .recognize_many_budgeted(&ca, &texts, 2, &cancelled)
                .unwrap_err(),
            RecognizeError::Cancelled
        );

        // The session is fully reusable after both failures, with the
        // unbudgeted paths unaffected.
        assert!(session.recognize(&ca, &text, 4).accepted);
        assert_eq!(session.recognize_many(&ca, &texts, 2), [true, false, true]);
        assert!(session.last_degraded().is_none());
        assert!(
            session
                .recognize_budgeted(&ca, &text, 4, &Budget::unlimited())
                .unwrap()
                .accepted
        );
    }

    #[test]
    fn executor_shapes_through_session_agree() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa).minimized();
        let ca = RidCa::new(&rid);
        let mut session = Session::new(2);
        for accept in [true, false] {
            let text = sample_text(accept);
            for executor in [
                Executor::Serial,
                Executor::PerChunk,
                Executor::Team(2),
                Executor::Auto,
                Executor::Pooled,
            ] {
                assert_eq!(
                    session.recognize_with(&ca, &text, 5, executor).accepted,
                    accept,
                    "{executor:?}"
                );
            }
        }
    }
}
