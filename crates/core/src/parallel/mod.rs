//! Minimal parallel runtime for the reach phase.
//!
//! The paper's implementation runs each chunk automaton as a Java thread
//! and joins them with an `ExecutorService` before the serial join phase —
//! the only synchronization point. We mirror that structure with two
//! executors:
//!
//! * [`scoped::run_indexed`] — fork-join over borrowed data with
//!   `std::thread::scope`: either one OS thread per chunk (the paper's
//!   model) or a bounded team pulling chunk indices from an atomic counter;
//! * [`pool::ThreadPool`] — a persistent worker pool (`std::sync` channel
//!   and condvar wait-group) for benchmark drivers that dispatch
//!   thousands of recognitions and must not pay thread-spawn cost per
//!   text.

pub mod pool;
pub mod scoped;

pub use pool::ThreadPool;
pub use scoped::{run_indexed, run_indexed_with};
