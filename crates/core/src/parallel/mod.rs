//! Minimal parallel runtime for the reach phase.
//!
//! The paper's implementation runs each chunk automaton as a Java thread
//! and joins them with an `ExecutorService` before the serial join phase —
//! the only synchronization point. We mirror that structure with two
//! executors:
//!
//! * [`scoped::run_indexed`] — fork-join over borrowed data with
//!   `std::thread::scope`: either one OS thread per chunk (the paper's
//!   model) or a bounded team pulling chunk indices from an atomic
//!   counter. Simple and dependency-free, but it pays thread-spawn cost
//!   on every call — fine for long texts, ruinous for short ones;
//! * [`pool::ThreadPool`] — a persistent worker pool whose scoped
//!   [`invoke_all_scoped`](pool::ThreadPool::invoke_all_scoped) runs
//!   borrowed-data batches with per-worker resident state and zero
//!   allocations per warm call. This is what a
//!   [`Session`](crate::csdpa::Session) dispatches texts through when
//!   recognitions arrive by the thousands.

pub mod pool;
pub mod scoped;

pub use pool::{PoolHealth, ThreadPool};
pub use scoped::{run_indexed, run_indexed_with};
