//! A persistent worker pool — the `ExecutorService` analogue.
//!
//! Recognition traffic is dominated by *short* texts: spawning `c` OS
//! threads per text (as the scoped executor does) costs more than the
//! scan itself once chunks drop below a few tens of kilobytes. The pool
//! keeps `n` workers parked on a condvar and offers two submission paths:
//!
//! * [`ThreadPool::execute`] — fire-and-forget boxed `'static` jobs
//!   (queued behind a mutex, like a classic executor);
//! * [`ThreadPool::invoke_all_scoped`] — the hot path: a *scoped*
//!   `invokeAll` over **borrowed** data with **per-worker resident
//!   state**. No `Arc`, no boxing, no channel node: the call publishes a
//!   raw descriptor of a stack-resident scope, workers claim task indices
//!   from an atomic counter, and each worker reuses its own long-lived
//!   slot of caller-provided state (the reach phase keeps one scan
//!   `Scratch` per worker warm across *texts*, not just across the chunks
//!   of one text). A warm call performs zero heap allocations.
//!
//! Panic safety (the liveness contract): a panicking job can neither kill
//! a worker (each job runs under `catch_unwind`) nor strand a caller —
//! scoped workers detach through a drop guard, so the invoking thread
//! always drains, and the first panic payload is re-raised on the caller
//! once the scope is quiescent. The same guard pattern is available to
//! manual [`execute`](ThreadPool::execute)/[`WaitGroup`] users via
//! [`WaitGroup::done_guard`].
//!
//! Self-healing (the availability contract): `catch_unwind` cannot trap
//! everything — a panic payload whose own `Drop` panics, or a panic from
//! the worker's bookkeeping, unwinds the worker thread itself. Each
//! worker's top frame records such a death in the shared defunct list;
//! [`heal`](ThreadPool::heal) (called automatically at the head of every
//! submission) joins the corpse and respawns a fresh worker under the
//! same slot index, up to a configurable respawn budget.
//! [`health`](ThreadPool::health) reports live workers, trapped panics,
//! and respawns so callers can degrade (e.g. to a serial executor) when
//! the pool falls [below quorum](PoolHealth::below_quorum). Correctness
//! never depends on worker liveness: the scoped caller is itself a
//! claimant and drains every task even with zero live workers.
//!
//! Built entirely on `std::sync`; no external runtime dependency.

// The scoped path shares caller-stack data with workers through raw
// pointers; every dereference is justified by the attach/drain protocol
// documented on `ScopeHeader`.
#![allow(unsafe_code)]

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;
type PanicPayload = Box<dyn Any + Send + 'static>;

/// A fixed-size pool of worker threads executing boxed jobs and scoped
/// borrowed-data batches. Workers that die abnormally are respawned by
/// [`heal`](ThreadPool::heal); see [`health`](ThreadPool::health).
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    /// Worker handles by slot index; `None` while a dead slot awaits
    /// respawn (or permanently, once the respawn budget is spent).
    workers: Mutex<Vec<Option<std::thread::JoinHandle<()>>>>,
    /// The worker count the pool was built with (stable across deaths).
    configured: usize,
    /// Maximum number of respawns over the pool's lifetime.
    respawn_limit: u64,
    /// Respawns performed so far.
    respawns: AtomicU64,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signaled on every state change: new job, new scope, scope slot
    /// freed, shutdown. Workers and scope-slot waiters both park here.
    signal: Condvar,
    /// Panics contained by the pool: queued jobs trapped in the worker
    /// loop plus scoped-task panics re-raised on their caller.
    panics_trapped: AtomicU64,
    /// Number of worker slots currently without a live thread.
    dead: AtomicUsize,
    /// Slot indices of workers that died abnormally, awaiting `heal`.
    defunct: Mutex<Vec<usize>>,
}

/// A point-in-time snapshot of pool liveness, from
/// [`ThreadPool::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolHealth {
    /// Worker count the pool was configured with.
    pub configured: usize,
    /// Workers currently alive (configured minus unhealed deaths).
    pub live: usize,
    /// Panics the pool has contained so far (queued-job panics trapped in
    /// the worker loop and scoped-task panics re-raised on the caller).
    pub panics_trapped: u64,
    /// Workers respawned after an abnormal death.
    pub respawns: u64,
}

impl PoolHealth {
    /// True when fewer than half of the configured workers are alive —
    /// the point at which sessions degrade to serial execution rather
    /// than run speculation on a gutted pool.
    pub fn below_quorum(&self) -> bool {
        self.live * 2 < self.configured
    }
}

struct PoolState {
    /// One-shot boxed jobs ([`ThreadPool::execute`]).
    queue: VecDeque<Job>,
    /// The (single) scoped batch currently being broadcast, if any.
    scoped: Option<ScopedTask>,
    /// Monotonic batch id so a worker never re-enters a batch it has
    /// already served.
    scoped_seq: u64,
    shutdown: bool,
}

/// Type-erased descriptor of a scoped batch, pointing into the invoking
/// caller's stack frame.
#[derive(Clone, Copy)]
struct ScopedTask {
    seq: u64,
    header: *const ScopeHeader,
    data: *const (),
    /// Monomorphized entry point: `run(data, worker_index)`.
    run: unsafe fn(*const (), usize),
}

// SAFETY: the pointers reference a `Scope` pinned on the caller's stack
// for the whole batch. The attach/drain protocol (see `ScopeHeader`)
// guarantees no worker dereferences them after the caller returns.
unsafe impl Send for ScopedTask {}

/// The non-generic part of a scoped batch, shared between the caller and
/// the workers.
///
/// # Lifetime protocol
///
/// The header lives on the caller's stack. A worker may only learn of it
/// by reading `PoolState::scoped` **while holding the pool lock**, and
/// must [`attach`](Latch::attach) before releasing that lock. The caller
/// tears down by clearing `PoolState::scoped` under the same lock and
/// then blocking until the attach count drains to zero. Hence every
/// worker dereference happens either under the pool lock (slot still
/// published) or between attach and detach (caller still draining) — the
/// header is alive for both.
struct ScopeHeader {
    /// Next unclaimed task index; claims are `fetch_add(1)`.
    next: AtomicUsize,
    num_tasks: usize,
    /// Counts workers currently inside the scope.
    attached: Latch,
    /// First panic raised by any claimant, re-raised on the caller.
    panic: Mutex<Option<PanicPayload>>,
}

impl ScopeHeader {
    fn store_panic(&self, payload: PanicPayload) {
        let mut slot = self.panic.lock().expect("scope panic slot poisoned");
        slot.get_or_insert(payload);
    }
}

/// The generic part of a scoped batch: the work closure and the base of
/// the per-worker state slots. All pointers, no lifetimes — validity is
/// carried by the [`ScopeHeader`] protocol, not the type system.
struct Scope<S, F> {
    header: ScopeHeader,
    work: *const F,
    /// Worker `w` exclusively owns slot `locals[w]`; the caller uses a
    /// separate slot it holds directly.
    locals: *mut S,
    num_slots: usize,
}

impl<S, F: Fn(&mut S, usize) + Sync> Scope<S, F> {
    /// Claims and runs task indices until the batch is exhausted or a
    /// task panics (the panic is recorded; remaining indices are left to
    /// the other claimants).
    fn drive(&self, slot: &mut S) {
        // SAFETY: `work` points to the caller's closure, alive for the
        // whole batch per the header protocol.
        let work = unsafe { &*self.work };
        let result = catch_unwind(AssertUnwindSafe(|| loop {
            let i = self.header.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.header.num_tasks {
                break;
            }
            work(slot, i);
        }));
        if let Err(payload) = result {
            self.header.store_panic(payload);
        }
    }
}

/// Monomorphized worker entry point stored in [`ScopedTask::run`].
///
/// # Safety
///
/// `data` must point to a live `Scope<S, F>` whose slot region has at
/// least `worker + 1` elements, and slot `worker` must not be aliased by
/// any other thread (guaranteed: each pool worker has a unique index and
/// serves a batch at most once).
unsafe fn run_scope_worker<S, F: Fn(&mut S, usize) + Sync>(data: *const (), worker: usize) {
    let scope = &*(data as *const Scope<S, F>);
    debug_assert!(worker < scope.num_slots);
    let slot = &mut *scope.locals.add(worker);
    scope.drive(slot);
}

/// Detaches from the scope on drop, so the caller's drain can never hang
/// on a worker — not even one whose task panicked.
struct DetachGuard {
    header: *const ScopeHeader,
}

impl Drop for DetachGuard {
    fn drop(&mut self) {
        // SAFETY: between attach and this detach the header is alive per
        // the ScopeHeader protocol.
        unsafe { (*self.header).attached.detach() }
    }
}

/// An inline (non-`Arc`) count-to-zero latch.
struct Latch {
    count: Mutex<usize>,
    zero: Condvar,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            count: Mutex::new(0),
            zero: Condvar::new(),
        }
    }

    fn attach(&self) {
        *self.count.lock().expect("latch poisoned") += 1;
    }

    fn detach(&self) {
        let mut count = self.count.lock().expect("latch poisoned");
        *count -= 1;
        if *count == 0 {
            self.zero.notify_all();
        }
    }

    fn wait_zero(&self) {
        let mut count = self.count.lock().expect("latch poisoned");
        while *count > 0 {
            count = self.zero.wait(count).expect("latch poisoned");
        }
    }
}

impl ThreadPool {
    /// Spawns `num_workers` (≥ 1) parked worker threads with an unlimited
    /// respawn budget.
    pub fn new(num_workers: usize) -> ThreadPool {
        ThreadPool::with_respawn_limit(num_workers, u64::MAX)
    }

    /// Spawns `num_workers` (≥ 1) parked worker threads, respawning at
    /// most `respawn_limit` dead workers over the pool's lifetime. A
    /// limit of 0 makes every worker death permanent — useful to test
    /// the degraded (below-quorum) path deterministically.
    pub fn with_respawn_limit(num_workers: usize, respawn_limit: u64) -> ThreadPool {
        let num_workers = num_workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                scoped: None,
                scoped_seq: 0,
                shutdown: false,
            }),
            signal: Condvar::new(),
            panics_trapped: AtomicU64::new(0),
            dead: AtomicUsize::new(0),
            defunct: Mutex::new(Vec::new()),
        });
        // Block until every worker has bootstrapped and entered its
        // loop: OS thread start-up allocates on the child thread, and a
        // lazily scheduled worker would otherwise pay that inside some
        // later (supposedly allocation-free) batch.
        let started = WaitGroup::new(num_workers);
        let workers = (0..num_workers)
            .map(|index| Some(spawn_worker(&shared, index, Some(started.clone()))))
            .collect();
        started.wait();
        ThreadPool {
            shared,
            workers: Mutex::new(workers),
            configured: num_workers,
            respawn_limit,
            respawns: AtomicU64::new(0),
        }
    }

    /// Number of worker threads the pool was configured with (including
    /// any currently dead; see [`health`](ThreadPool::health) for
    /// liveness).
    pub fn num_workers(&self) -> usize {
        self.configured
    }

    /// A snapshot of pool liveness: live workers, trapped panics, and
    /// respawns performed.
    pub fn health(&self) -> PoolHealth {
        let dead = self
            .shared
            .dead
            .load(Ordering::Acquire)
            .min(self.configured);
        PoolHealth {
            configured: self.configured,
            live: self.configured - dead,
            panics_trapped: self.shared.panics_trapped.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
        }
    }

    /// Joins workers that died abnormally and respawns replacements under
    /// the same slot indices, up to the respawn budget. Returns the
    /// number of workers respawned. Called automatically at the head of
    /// [`execute`](ThreadPool::execute) and
    /// [`invoke_all_scoped`](ThreadPool::invoke_all_scoped); the fast
    /// path (no deaths) is a single relaxed atomic load.
    pub fn heal(&self) -> usize {
        if self.shared.dead.load(Ordering::Acquire) == 0 {
            return 0;
        }
        let mut handles = self.workers.lock().expect("pool worker list poisoned");
        let defunct: Vec<usize> = {
            let mut list = self.shared.defunct.lock().expect("defunct list poisoned");
            list.drain(..).collect()
        };
        let mut respawned = 0;
        for index in defunct {
            // Reap the corpse so the OS thread is not leaked.
            if let Some(handle) = handles[index].take() {
                let _ = handle.join();
            }
            if self.respawns.load(Ordering::Relaxed) >= self.respawn_limit {
                // Budget spent: the slot stays dead and `health()` keeps
                // reporting it, letting sessions degrade.
                continue;
            }
            handles[index] = Some(spawn_worker(&self.shared, index, None));
            self.respawns.fetch_add(1, Ordering::Relaxed);
            self.shared.dead.fetch_sub(1, Ordering::Release);
            respawned += 1;
        }
        respawned
    }

    /// Submits a fire-and-forget job (runs as soon as a worker is free).
    /// A panicking job is contained by the worker; pair with a
    /// [`WaitGroup`] and [`WaitGroup::done_guard`] to observe completion
    /// robustly.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.heal();
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        assert!(!state.shutdown, "pool is shutting down");
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.signal.notify_all();
    }

    /// Submits `num_tasks` indexed jobs and blocks until all complete —
    /// the `invokeAll` pattern. `work` may borrow from the caller's
    /// frame. If any task panics, the panic is re-raised here *after*
    /// every in-flight task has finished (no deadlock, no leaked
    /// borrows); the pool remains fully usable.
    pub fn invoke_all(&self, num_tasks: usize, work: impl Fn(usize) + Sync) {
        let mut locals = vec![(); self.num_workers() + 1];
        self.invoke_all_scoped(num_tasks, &mut locals, |_, i| work(i));
    }

    /// The scoped `invokeAll` with per-worker resident state: runs
    /// `work(&mut locals[w], i)` for every `i in 0..num_tasks`, where `w`
    /// is a claimant-private slot index. `locals` must hold at least
    /// [`num_workers`](ThreadPool::num_workers)` + 1` slots: slot `w`
    /// belongs to pool worker `w` *stably across calls* (pass the same
    /// buffer every time and each worker's state stays warm from one call
    /// to the next), and the last slot belongs to the calling thread,
    /// which participates in claiming.
    ///
    /// Tasks are claimed dynamically from an atomic counter, so skewed
    /// task costs self-balance exactly like the scoped team executor.
    /// Panics in tasks are contained and the first one is re-raised here
    /// once the batch is quiescent.
    ///
    /// Not re-entrant: calling this from inside a `work` closure of the
    /// same pool deadlocks (the scope slot is single-occupancy).
    pub fn invoke_all_scoped<S, F>(&self, num_tasks: usize, locals: &mut [S], work: F)
    where
        S: Send,
        F: Fn(&mut S, usize) + Sync,
    {
        self.heal();
        let num_workers = self.num_workers();
        assert!(
            locals.len() > num_workers,
            "need one local slot per pool worker plus one for the caller \
             ({} workers, {} slots)",
            num_workers,
            locals.len()
        );
        if num_tasks == 0 {
            return;
        }
        let (worker_slots, caller_slots) = locals.split_at_mut(num_workers);
        let caller_slot = &mut caller_slots[0];
        if num_tasks == 1 {
            // Single task: not worth waking the pool.
            work(caller_slot, 0);
            return;
        }

        let scope = Scope {
            header: ScopeHeader {
                next: AtomicUsize::new(0),
                num_tasks,
                attached: Latch::new(),
                panic: Mutex::new(None),
            },
            work: &work,
            locals: worker_slots.as_mut_ptr(),
            num_slots: worker_slots.len(),
        };

        // Publish the scope. A pool shared by several sessions serializes
        // batches here (single scope slot).
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            while state.scoped.is_some() {
                state = self.shared.signal.wait(state).expect("pool lock poisoned");
            }
            state.scoped_seq += 1;
            state.scoped = Some(ScopedTask {
                seq: state.scoped_seq,
                header: &scope.header,
                data: &scope as *const Scope<S, F> as *const (),
                run: run_scope_worker::<S, F>,
            });
            drop(state);
            self.shared.signal.notify_all();
        }

        // The caller is a claimant too: on short batches it often drains
        // everything before a worker even wakes.
        scope.drive(caller_slot);

        // Teardown: retract the descriptor, then wait for attached
        // workers to finish their in-flight tasks.
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.scoped = None;
            drop(state);
            self.shared.signal.notify_all();
        }
        scope.header.attached.wait_zero();

        let panic = scope
            .header
            .panic
            .lock()
            .expect("scope panic slot poisoned")
            .take();
        if let Some(payload) = panic {
            self.shared.panics_trapped.fetch_add(1, Ordering::Relaxed);
            resume_unwind(payload);
        }
    }
}

/// Spawns the worker thread for slot `index`. The top frame traps any
/// unwind escaping `worker_loop` (e.g. a panic payload whose own `Drop`
/// panics) and records the death for [`ThreadPool::heal`] to repair.
fn spawn_worker(
    shared: &Arc<PoolShared>,
    index: usize,
    started: Option<WaitGroup>,
) -> std::thread::JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("ridfa-worker-{index}"))
        .spawn(move || {
            if let Some(started) = &started {
                started.done();
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| worker_loop(&shared, index)));
            if let Err(payload) = outcome {
                // Record the death before touching the payload: dropping
                // it may panic *again*, and by then the bookkeeping must
                // already be visible to `heal`. Leak the payload instead
                // of risking that second unwind.
                std::mem::forget(payload);
                if let Ok(mut defunct) = shared.defunct.lock() {
                    defunct.push(index);
                }
                shared.dead.fetch_add(1, Ordering::Release);
            }
        })
        .expect("failed to spawn pool worker")
}

fn worker_loop(shared: &PoolShared, index: usize) {
    let mut last_seq = 0u64;
    let mut state = shared.state.lock().expect("pool lock poisoned");
    loop {
        // Scoped batches take priority: a blocked invoke_all_scoped
        // caller is latency-sensitive, queued jobs are not.
        if let Some(task) = state.scoped.filter(|t| t.seq != last_seq) {
            last_seq = task.seq;
            // SAFETY: the slot is published, so the scope is alive and
            // attaching under the pool lock is race-free (teardown clears
            // the slot under this same lock).
            unsafe { (*task.header).attached.attach() };
            drop(state);
            {
                let _guard = DetachGuard {
                    header: task.header,
                };
                // SAFETY: attached above; slot `index` is this worker's
                // exclusively (unique index, one batch entry per seq).
                unsafe { (task.run)(task.data, index) };
                // `_guard` detaches here, panic or not.
            }
            state = shared.state.lock().expect("pool lock poisoned");
            continue;
        }
        if let Some(job) = state.queue.pop_front() {
            drop(state);
            // Contain panics so one bad job cannot kill the worker. Count
            // the trap *before* dropping the payload: if the payload's
            // own `Drop` panics, that unwind escapes this loop (no lock
            // held here) and is recorded as a worker death by
            // `spawn_worker`'s top frame.
            let trapped = catch_unwind(AssertUnwindSafe(job));
            if trapped.is_err() {
                shared.panics_trapped.fetch_add(1, Ordering::Relaxed);
            }
            drop(trapped);
            state = shared.state.lock().expect("pool lock poisoned");
            continue;
        }
        if state.shutdown {
            return;
        }
        state = shared.signal.wait(state).expect("pool lock poisoned");
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Workers drain outstanding queued jobs (the queue is checked
        // before the shutdown flag) and exit.
        if let Ok(mut state) = self.shared.state.lock() {
            state.shutdown = true;
        }
        self.shared.signal.notify_all();
        let mut handles = self
            .workers
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for handle in handles.drain(..).flatten() {
            let _ = handle.join();
        }
    }
}

/// Counts outstanding jobs; `wait` parks until the count reaches zero.
#[derive(Clone)]
pub struct WaitGroup {
    inner: Arc<WaitGroupInner>,
}

struct WaitGroupInner {
    remaining: Mutex<usize>,
    all_done: Condvar,
}

impl WaitGroup {
    /// Creates a group expecting `count` completions.
    pub fn new(count: usize) -> WaitGroup {
        WaitGroup {
            inner: Arc::new(WaitGroupInner {
                remaining: Mutex::new(count),
                all_done: Condvar::new(),
            }),
        }
    }

    /// Marks one job complete.
    pub fn done(&self) {
        let mut remaining = self.inner.remaining.lock().expect("waitgroup poisoned");
        *remaining = remaining
            .checked_sub(1)
            .expect("WaitGroup::done called more times than jobs");
        if *remaining == 0 {
            self.inner.all_done.notify_all();
        }
    }

    /// Returns a guard that calls [`done`](WaitGroup::done) when dropped —
    /// **including on unwind**. Jobs submitted via
    /// [`ThreadPool::execute`] should take one at entry so a panicking
    /// job can never strand a [`wait`](WaitGroup::wait)ing caller.
    pub fn done_guard(&self) -> DoneGuard {
        DoneGuard {
            group: self.clone(),
        }
    }

    /// Blocks until every job has called [`done`](WaitGroup::done).
    pub fn wait(&self) {
        let mut remaining = self.inner.remaining.lock().expect("waitgroup poisoned");
        while *remaining > 0 {
            remaining = self
                .inner
                .all_done
                .wait(remaining)
                .expect("waitgroup poisoned");
        }
    }
}

/// Calls [`WaitGroup::done`] exactly once on drop (see
/// [`WaitGroup::done_guard`]).
pub struct DoneGuard {
    group: WaitGroup,
}

impl Drop for DoneGuard {
    fn drop(&mut self) {
        self.group.done();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        let wg = WaitGroup::new(50);
        for _ in 0..50 {
            let hits = Arc::clone(&hits);
            let wg = wg.clone();
            pool.execute(move || {
                let _done = wg.done_guard();
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        wg.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn invoke_all_blocks_until_done() {
        let pool = ThreadPool::new(3);
        let sum = AtomicUsize::new(0);
        pool.invoke_all(10, |i| {
            sum.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn invoke_all_borrows_without_arc() {
        // The whole point of the scoped rewrite: plain borrows, no Arc.
        let data = [1u64, 2, 3, 4, 5];
        let pool = ThreadPool::new(2);
        let sum = AtomicUsize::new(0);
        pool.invoke_all(data.len(), |i| {
            sum.fetch_add(data[i] as usize, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn panicking_job_does_not_deadlock_invoke_all() {
        // The headline regression: before the drop-guard/drain protocol a
        // panicking job skipped its completion signal and `invoke_all`
        // hung forever. It must now return (by re-raising the panic).
        let pool = ThreadPool::new(2);
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.invoke_all(8, |i| {
                if i == 3 {
                    panic!("job 3 exploded");
                }
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err(), "panic must propagate to the caller");

        // And the pool must still be fully alive afterwards.
        let sum = AtomicUsize::new(0);
        pool.invoke_all(16, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 120);
    }

    #[test]
    fn panicking_queued_job_does_not_kill_workers() {
        let pool = ThreadPool::new(1);
        let wg = WaitGroup::new(2);
        {
            let wg = wg.clone();
            pool.execute(move || {
                let _done = wg.done_guard();
                panic!("queued job exploded");
            });
        }
        {
            let wg = wg.clone();
            pool.execute(move || {
                let _done = wg.done_guard();
            });
        }
        // With a single worker, the second job only runs if the worker
        // survived the first one's panic.
        wg.wait();
    }

    #[test]
    fn scoped_invoke_keeps_worker_state_warm() {
        // Slots accumulate across calls: per-worker state is resident.
        let pool = ThreadPool::new(3);
        let mut locals = vec![0u64; pool.num_workers() + 1];
        for round in 0..5 {
            pool.invoke_all_scoped(64, &mut locals, |slot, _i| {
                *slot += 1;
            });
            let total: u64 = locals.iter().sum();
            assert_eq!(total, 64 * (round + 1), "round {round}");
        }
    }

    #[test]
    fn scoped_invoke_writes_disjoint_results_in_order() {
        let pool = ThreadPool::new(4);
        let results: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let mut locals = vec![(); pool.num_workers() + 1];
        pool.invoke_all_scoped(100, &mut locals, |_, i| {
            results[i].fetch_add(i * i + 1, Ordering::Relaxed);
        });
        for (i, slot) in results.iter().enumerate() {
            assert_eq!(slot.load(Ordering::Relaxed), i * i + 1, "task {i}");
        }
    }

    #[test]
    fn drop_joins_workers_after_draining() {
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..20 {
                let hits = Arc::clone(&hits);
                pool.execute(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Pool dropped here: all 20 jobs must still run.
        }
        assert_eq!(hits.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.num_workers(), 1);
        let flag = AtomicUsize::new(0);
        pool.invoke_all(1, |_| {
            flag.store(7, Ordering::Relaxed);
        });
        assert_eq!(flag.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn waitgroup_with_zero_jobs_returns_immediately() {
        WaitGroup::new(0).wait();
    }

    #[test]
    fn concurrent_invoke_all_callers_serialize_on_the_scope_slot() {
        // Several threads sharing one pool: batches take the (single)
        // scope slot in turn; every task of every batch must still run.
        let pool = Arc::new(ThreadPool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                scope.spawn(move || {
                    for _ in 0..8 {
                        pool.invoke_all(16, |_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 8 * 16);
    }

    #[test]
    fn queued_jobs_and_scoped_batches_interleave() {
        let pool = ThreadPool::new(2);
        let queued = Arc::new(AtomicUsize::new(0));
        let wg = WaitGroup::new(32);
        for _ in 0..32 {
            let queued = Arc::clone(&queued);
            let wg = wg.clone();
            pool.execute(move || {
                let _done = wg.done_guard();
                queued.fetch_add(1, Ordering::Relaxed);
            });
        }
        let scoped = AtomicUsize::new(0);
        pool.invoke_all(64, |_| {
            scoped.fetch_add(1, Ordering::Relaxed);
        });
        wg.wait();
        assert_eq!(queued.load(Ordering::Relaxed), 32);
        assert_eq!(scoped.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn sequential_batches_reuse_the_pool() {
        let pool = ThreadPool::new(2);
        for n in [1usize, 2, 7, 33] {
            let count = AtomicUsize::new(0);
            pool.invoke_all(n, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), n);
        }
    }

    /// A panic payload whose own `Drop` panics: the one thing
    /// `catch_unwind` in the worker loop cannot contain, so it kills the
    /// worker thread (deterministically — the payload is dropped right
    /// after the trap).
    struct DropBomb;

    impl Drop for DropBomb {
        fn drop(&mut self) {
            if !std::thread::panicking() {
                panic!("drop bomb detonated");
            }
        }
    }

    /// Waits (bounded) until `pool.health().live` drops to `expect`.
    fn wait_for_live(pool: &ThreadPool, expect: usize) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while pool.health().live != expect {
            assert!(
                std::time::Instant::now() < deadline,
                "worker death never recorded: {:?}",
                pool.health()
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn fresh_pool_health_is_all_live() {
        let pool = ThreadPool::new(3);
        let h = pool.health();
        assert_eq!(h.configured, 3);
        assert_eq!(h.live, 3);
        assert_eq!(h.panics_trapped, 0);
        assert_eq!(h.respawns, 0);
        assert!(!h.below_quorum());
        assert_eq!(pool.heal(), 0);
    }

    #[test]
    fn killed_worker_is_respawned_and_pool_keeps_working() {
        let pool = ThreadPool::new(2);
        pool.execute(|| std::panic::panic_any(DropBomb));
        wait_for_live(&pool, 1);

        assert_eq!(pool.heal(), 1);
        let h = pool.health();
        assert_eq!(h.live, 2, "{h:?}");
        assert_eq!(h.respawns, 1);
        assert!(h.panics_trapped >= 1, "the original panic was trapped");

        let sum = AtomicUsize::new(0);
        pool.invoke_all(16, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 120);
    }

    #[test]
    fn submission_paths_heal_implicitly() {
        let pool = ThreadPool::new(2);
        pool.execute(|| std::panic::panic_any(DropBomb));
        wait_for_live(&pool, 1);
        // No explicit heal(): invoke_all's entry heals before running.
        let count = AtomicUsize::new(0);
        pool.invoke_all(8, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
        assert_eq!(pool.health().live, 2);
        assert_eq!(pool.health().respawns, 1);
    }

    #[test]
    fn respawn_limit_zero_leaves_pool_degraded_but_functional() {
        let pool = ThreadPool::with_respawn_limit(1, 0);
        pool.execute(|| std::panic::panic_any(DropBomb));
        wait_for_live(&pool, 0);

        assert_eq!(pool.heal(), 0, "respawn budget of 0 must not respawn");
        let h = pool.health();
        assert_eq!(h.live, 0);
        assert_eq!(h.respawns, 0);
        assert!(h.below_quorum());

        // Scoped batches still complete: the caller is a claimant and
        // drains every task itself.
        let sum = AtomicUsize::new(0);
        pool.invoke_all(8, |i| {
            sum.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 36);
    }

    #[test]
    fn repeated_deaths_all_respawn_under_budget() {
        let pool = ThreadPool::new(1);
        for round in 1..=3u64 {
            pool.execute(|| std::panic::panic_any(DropBomb));
            wait_for_live(&pool, 0);
            assert_eq!(pool.heal(), 1);
            assert_eq!(pool.health().respawns, round);
            let count = AtomicUsize::new(0);
            pool.invoke_all(4, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 4);
        }
    }
}
