//! A persistent worker pool — the `ExecutorService` analogue.
//!
//! Benchmark drivers recognize thousands of texts back to back; spawning
//! `c` OS threads per text would dominate the measurement for short
//! chunks. The pool keeps `n` workers parked on a shared channel and
//! tracks outstanding jobs with a condvar-based [`WaitGroup`], so the
//! caller can serialize the reach and join phases exactly like the paper's
//! `ExecutorService.invokeAll` — the only synchronization requirement.
//! Built entirely on `std::sync` (an `mpsc` channel behind a receiver
//! mutex): no external runtime dependency.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing boxed jobs.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `num_workers` (≥ 1) parked worker threads.
    pub fn new(num_workers: usize) -> ThreadPool {
        let num_workers = num_workers.max(1);
        let (sender, receiver) = channel::<Job>();
        // `mpsc::Receiver` is single-consumer; workers share it behind a
        // mutex held only for the blocking `recv`, never while running a
        // job, so job execution stays fully parallel.
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..num_workers)
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("ridfa-worker-{i}"))
                    .spawn(move || loop {
                        // Channel disconnect (pool drop) ends the loop.
                        let job = match receiver.lock() {
                            Ok(guard) => match guard.recv() {
                                Ok(job) => job,
                                Err(_) => break,
                            },
                            Err(_) => break,
                        };
                        job();
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job (runs as soon as a worker is free).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool is shutting down")
            .send(Box::new(job))
            .expect("pool workers disappeared");
    }

    /// Submits `num_tasks` indexed jobs and blocks until all complete —
    /// the `invokeAll` pattern. `work` must be `'static`, so share inputs
    /// via `Arc`.
    pub fn invoke_all(&self, num_tasks: usize, work: impl Fn(usize) + Send + Sync + 'static) {
        let wg = WaitGroup::new(num_tasks);
        let work = Arc::new(work);
        for i in 0..num_tasks {
            let wg = wg.clone();
            let work = Arc::clone(&work);
            self.execute(move || {
                work(i);
                wg.done();
            });
        }
        wg.wait();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Disconnect the channel; workers drain outstanding jobs and exit.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Counts outstanding jobs; `wait` parks until the count reaches zero.
#[derive(Clone)]
pub struct WaitGroup {
    inner: Arc<WaitGroupInner>,
}

struct WaitGroupInner {
    remaining: Mutex<usize>,
    all_done: Condvar,
}

impl WaitGroup {
    /// Creates a group expecting `count` completions.
    pub fn new(count: usize) -> WaitGroup {
        WaitGroup {
            inner: Arc::new(WaitGroupInner {
                remaining: Mutex::new(count),
                all_done: Condvar::new(),
            }),
        }
    }

    /// Marks one job complete.
    pub fn done(&self) {
        let mut remaining = self.inner.remaining.lock().expect("waitgroup poisoned");
        *remaining = remaining
            .checked_sub(1)
            .expect("WaitGroup::done called more times than jobs");
        if *remaining == 0 {
            self.inner.all_done.notify_all();
        }
    }

    /// Blocks until every job has called [`done`](WaitGroup::done).
    pub fn wait(&self) {
        let mut remaining = self.inner.remaining.lock().expect("waitgroup poisoned");
        while *remaining > 0 {
            remaining = self
                .inner
                .all_done
                .wait(remaining)
                .expect("waitgroup poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        let wg = WaitGroup::new(50);
        for _ in 0..50 {
            let hits = Arc::clone(&hits);
            let wg = wg.clone();
            pool.execute(move || {
                hits.fetch_add(1, Ordering::Relaxed);
                wg.done();
            });
        }
        wg.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn invoke_all_blocks_until_done() {
        let pool = ThreadPool::new(3);
        let sum = Arc::new(AtomicUsize::new(0));
        let sum2 = Arc::clone(&sum);
        pool.invoke_all(10, move |i| {
            sum2.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn drop_joins_workers_after_draining() {
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..20 {
                let hits = Arc::clone(&hits);
                pool.execute(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Pool dropped here: all 20 jobs must still run.
        }
        assert_eq!(hits.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.num_workers(), 1);
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&flag);
        pool.invoke_all(1, move |_| {
            f2.store(7, Ordering::Relaxed);
        });
        assert_eq!(flag.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn waitgroup_with_zero_jobs_returns_immediately() {
        WaitGroup::new(0).wait();
    }
}
