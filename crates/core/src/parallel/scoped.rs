//! Scoped fork-join execution over borrowed data — the spawn-per-call
//! executor behind the free `recognize` functions. Each call spawns (and
//! joins) fresh OS threads, so prefer the pooled
//! [`Session`](crate::csdpa::Session) path when many texts are
//! recognized back to back.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `work(i)` for every `i in 0..num_tasks`, writing each result into
/// the `i`-th output slot, using at most `num_workers` OS threads.
///
/// Stateless convenience wrapper over [`run_indexed_with`]; see there for
/// the executor shapes.
pub fn run_indexed<T, F>(num_workers: usize, num_tasks: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(num_workers, num_tasks, || (), |(), i| work(i))
}

/// Runs `work(&mut state, i)` for every `i in 0..num_tasks`, writing each
/// result into the `i`-th output slot, using at most `num_workers` OS
/// threads. `init` builds one private `state` value **per worker thread**
/// — the reach phase threads a reusable scan scratch through every chunk
/// a worker claims, so kernel warm-up allocations happen once per worker,
/// not once per chunk.
///
/// * `num_workers >= num_tasks` degenerates to one thread per task — the
///   paper's "each CA is a Java thread" model.
/// * `num_workers < num_tasks` spawns a bounded team; workers claim task
///   indices from a shared atomic counter (dynamic self-scheduling), so an
///   unlucky long chunk does not leave threads idle.
/// * `num_workers <= 1` runs everything on the calling thread with a
///   single state (the serial executor used for debugging and as a
///   baseline).
///
/// `work` only borrows its environment: no `Arc`, no channels, no locks on
/// the hot path. Results are collected into a fresh `Vec` in task order.
pub fn run_indexed_with<T, S, I, F>(
    num_workers: usize,
    num_tasks: usize,
    init: I,
    work: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let mut results: Vec<Option<T>> = (0..num_tasks).map(|_| None).collect();
    if num_tasks == 0 {
        return Vec::new();
    }
    if num_workers <= 1 {
        let mut state = init();
        for (i, slot) in results.iter_mut().enumerate() {
            *slot = Some(work(&mut state, i));
        }
    } else if num_workers >= num_tasks {
        // One thread per task, each owning exactly one result slot. Joining
        // explicitly (instead of letting the scope reap the threads) keeps
        // the original panic payload: a task panic re-raises verbatim on the
        // caller rather than as the scope's generic replacement message.
        std::thread::scope(|scope| {
            let handles: Vec<_> = results
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    let work = &work;
                    let init = &init;
                    scope.spawn(move || {
                        *slot = Some(work(&mut init(), i));
                    })
                })
                .collect();
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
    } else {
        // Bounded team with dynamic index claiming. Each worker receives a
        // disjoint set of slots via a striped split: slot i is written only
        // by the worker that claimed index i, so we hand out raw exclusive
        // access through a mutex-free partitioning: collect into per-worker
        // buffers, then scatter.
        let counter = AtomicUsize::new(0);
        let buffers: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..num_workers)
                .map(|_| {
                    let work = &work;
                    let init = &init;
                    let counter = &counter;
                    scope.spawn(move || {
                        let mut state = init();
                        let mut local = Vec::new();
                        loop {
                            let i = counter.fetch_add(1, Ordering::Relaxed);
                            if i >= num_tasks {
                                break;
                            }
                            local.push((i, work(&mut state, i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(buffer) => buffer,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        for buffer in buffers {
            for (i, value) in buffer {
                results[i] = Some(value);
            }
        }
    }
    results
        .into_iter()
        .map(|slot| slot.expect("every task index was executed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_arrive_in_task_order() {
        for workers in [1, 2, 3, 8, 64] {
            let out = run_indexed(workers, 17, |i| i * i);
            assert_eq!(
                out,
                (0..17).map(|i| i * i).collect::<Vec<_>>(),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn zero_tasks_is_empty() {
        let out: Vec<u32> = run_indexed(4, 0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let out = run_indexed(3, 100, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn borrows_environment_without_arc() {
        let data = [10u64, 20, 30, 40];
        let out = run_indexed(2, data.len(), |i| data[i] + 1);
        assert_eq!(out, vec![11, 21, 31, 41]);
    }

    #[test]
    fn single_worker_is_serial() {
        // With one worker the closure runs on the calling thread; thread
        // ids must match.
        let main_id = std::thread::current().id();
        let ids = run_indexed(1, 4, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == main_id));
    }
}
