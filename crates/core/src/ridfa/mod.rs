//! The reduced-interface DFA (RI-DFA) — Sect. 3 of the paper.
//!
//! An RI-DFA `B = (P, Σ, δ_B, I_B, F_B)` is a *multi-entry* DFA derived
//! from an NFA `N` with states `Q_N = {q0, …, q_{ℓ-1}}`:
//!
//! * its transition function `δ_B` is deterministic (a dense table, shared
//!   layout with [`Dfa`](ridfa_automata::dfa::Dfa));
//! * its state set `P` contains one state per *subset of NFA states*
//!   discovered by running the powerset construction incrementally from
//!   each singleton `{q_i}` (so `P` includes every singleton);
//! * its initial-state set — the **interface** `I_B` — is exactly the
//!   singletons, i.e. `|I_B| = |Q_N|`, typically far fewer than the states
//!   of the equivalent DFA.
//!
//! A speculative chunk automaton therefore starts only `|Q_N|` runs instead
//! of `|Q_DFA|`, while every run advances with a single deterministic table
//! lookup per byte. The *interface function* `if` (Sect. 3.2) re-maps the
//! possible last active states of a chunk onto the possible initial states
//! of the next chunk via the NFA-state *content* of each RI-DFA state.
//! [Interface minimization](minimize_interface) (Sect. 3.4) further
//! downgrades language-equivalent interface states via *delegation*.

pub mod artifact;
pub(crate) mod construct;
mod interface;
mod minimize;

pub use artifact::{ridfa_from_bytes, ridfa_to_bytes, ridfa_to_bytes_with_engine, RiDfaArtifact};
pub use construct::{construct, construct_budgeted, construct_limited};
pub use minimize::minimize_interface;

use ridfa_automata::alphabet::ByteClasses;
use ridfa_automata::counter::Counter;
use ridfa_automata::nfa::Nfa;
use ridfa_automata::{BitSet, StateId, DEAD};

/// A reduced-interface DFA (multi-entry deterministic chunk automaton).
///
/// Build one with [`RiDfa::from_nfa`] (or [`construct_limited`] to bound
/// state growth), then optionally shrink its interface with
/// [`RiDfa::minimized`].
#[derive(Debug, Clone, PartialEq)]
pub struct RiDfa {
    pub(crate) classes: ByteClasses,
    pub(crate) stride: usize,
    /// Dense transition table, `table[p * stride + class]`; row 0 = dead.
    pub(crate) table: Vec<StateId>,
    /// States whose content includes an NFA final state (`F_RID`).
    pub(crate) finals: BitSet,
    /// The entry state of the conventional run: `entry[q0]`.
    pub(crate) start: StateId,
    /// Number of states of the source NFA (`ℓ = |Q_N|`).
    pub(crate) num_nfa_states: usize,
    /// Content CSR: NFA states represented by RI-DFA state `p` are
    /// `content[content_off[p]..content_off[p+1]]` (sorted).
    pub(crate) content_off: Vec<u32>,
    pub(crate) content: Vec<StateId>,
    /// `entry[q]` = RI-DFA state id of the singleton `{q}`.
    pub(crate) entry: Vec<StateId>,
    /// `delegate[q]` = the interface state serving NFA state `q`:
    /// equals `entry[q]` until interface minimization downgrades `{q}` and
    /// delegates its role to a language-equivalent representative.
    pub(crate) delegate: Vec<StateId>,
    /// The current interface `I_B`: sorted, deduplicated delegate image.
    pub(crate) interface: Vec<StateId>,
}

impl RiDfa {
    /// Builds the RI-DFA of `nfa` by the incremental powerset construction
    /// of Sect. 3.1 (no interface minimization; call
    /// [`minimized`](RiDfa::minimized) for the Sect. 3.4 reduction).
    pub fn from_nfa(nfa: &Nfa) -> RiDfa {
        construct(nfa)
    }

    /// Builds the RI-DFA of `nfa` under a
    /// [`ConstructionBudget`](ridfa_automata::ConstructionBudget)
    /// (state count and table bytes), failing with a typed
    /// [`Error::LimitExceeded`](ridfa_automata::Error::LimitExceeded)
    /// instead of allocating without bound on adversarial patterns.
    pub fn from_nfa_budgeted(
        nfa: &Nfa,
        budget: &ridfa_automata::ConstructionBudget,
    ) -> ridfa_automata::Result<RiDfa> {
        construct_budgeted(nfa, budget)
    }

    /// Returns a copy with the interface minimized by delegation
    /// (Sect. 3.4). The transition graph is unchanged.
    pub fn minimized(&self) -> RiDfa {
        minimize_interface(self)
    }

    /// Number of states, including the dead state 0.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.table.len() / self.stride
    }

    /// Number of live states (excluding dead).
    #[inline]
    pub fn num_live_states(&self) -> usize {
        self.num_states() - 1
    }

    /// Number of states of the source NFA (`|Q_N|`).
    #[inline]
    pub fn num_nfa_states(&self) -> usize {
        self.num_nfa_states
    }

    /// The interface `I_B`: the states a speculative chunk run may start
    /// from, sorted by id. Before minimization this has exactly
    /// `|Q_N|` elements; minimization can only shrink it.
    #[inline]
    pub fn interface(&self) -> &[StateId] {
        &self.interface
    }

    /// The entry state of the singleton `{q}` for NFA state `q`.
    #[inline]
    pub fn entry(&self, q: StateId) -> StateId {
        self.entry[q as usize]
    }

    /// The interface state serving NFA state `q` (its delegate).
    #[inline]
    pub fn delegate(&self, q: StateId) -> StateId {
        self.delegate[q as usize]
    }

    /// The NFA states represented by RI-DFA state `p` (sorted).
    #[inline]
    pub fn content(&self, p: StateId) -> &[StateId] {
        let lo = self.content_off[p as usize] as usize;
        let hi = self.content_off[p as usize + 1] as usize;
        &self.content[lo..hi]
    }

    /// Initial state of the conventional (first-chunk) run: `entry(q0)`.
    #[inline]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Final states `F_RID`.
    #[inline]
    pub fn finals(&self) -> &BitSet {
        &self.finals
    }

    /// `true` if `p` is final.
    #[inline]
    pub fn is_final(&self, p: StateId) -> bool {
        self.finals.contains(p)
    }

    /// Byte-class map of the transition table.
    #[inline]
    pub fn classes(&self) -> &ByteClasses {
        &self.classes
    }

    /// Table stride (= number of byte classes).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Successor of `p` on `byte`.
    #[inline(always)]
    pub fn next(&self, p: StateId, byte: u8) -> StateId {
        self.table[p as usize * self.stride + self.classes.get(byte) as usize]
    }

    /// Successor of `p` on a byte class id.
    #[inline(always)]
    pub fn next_class(&self, p: StateId, class: u8) -> StateId {
        self.table[p as usize * self.stride + class as usize]
    }

    /// A copy of the transition table with every entry premultiplied by
    /// the stride — same layout contract as
    /// [`Dfa::premultiplied_table`](ridfa_automata::dfa::Dfa::premultiplied_table);
    /// consumed by the lockstep scan kernel.
    pub fn premultiplied_table(&self) -> Vec<StateId> {
        ridfa_automata::dfa::premultiply(&self.table, self.stride)
    }

    /// Runs from state `p` over `chunk`; returns the last active state or
    /// [`DEAD`](ridfa_automata::DEAD) if the run terminated in error.
    /// Counts one transition per consumed byte (the step that discovers
    /// death is not counted — same convention as the DFA scanner).
    #[inline]
    pub fn run_from(&self, p: StateId, chunk: &[u8], counter: &mut impl Counter) -> StateId {
        let table = &self.table;
        let stride = self.stride;
        let classes = &self.classes;
        let mut s = p;
        for &byte in chunk {
            let next = table[s as usize * stride + classes.get(byte) as usize];
            if next == DEAD {
                return DEAD;
            }
            counter.incr();
            s = next;
        }
        s
    }

    /// Serial whole-string recognition: a single deterministic run from
    /// [`start`](RiDfa::start) — exactly `|text|` transitions unless it
    /// dies. (The RID device degenerates to a plain DFA when `c = 1`.)
    pub fn accepts(&self, text: &[u8]) -> bool {
        let last = self.run_from(self.start, text, &mut ridfa_automata::NoCount);
        last != DEAD && self.is_final(last)
    }

    /// The interface function `if` of Sect. 3.2, composed with delegation
    /// (Sect. 3.4): maps a set of last-active states onto the interface
    /// states from which the downstream chunk automaton must have started.
    ///
    /// `out` receives `{ delegate(q) | p ∈ plas, q ∈ content(p) }`,
    /// deduplicated; it is cleared first.
    pub fn interface_map(&self, plas: &[StateId], out: &mut Vec<StateId>) {
        interface::interface_map(self, plas, out)
    }

    /// Checks internal invariants; used by tests and the deserializer.
    /// Returns a description of the first violated invariant, if any.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_states();
        if self.content_off.len() != n + 1 {
            return Err(format!(
                "content_off has {} entries, expected {}",
                self.content_off.len(),
                n + 1
            ));
        }
        if self.table[..self.stride].iter().any(|&t| t != DEAD) {
            return Err("row 0 must be dead".into());
        }
        if let Some(&bad) = self.table.iter().find(|&&t| t as usize >= n) {
            return Err(format!("transition target {bad} out of range"));
        }
        if self.entry.len() != self.num_nfa_states || self.delegate.len() != self.num_nfa_states {
            return Err("entry/delegate must have one slot per NFA state".into());
        }
        for (q, &e) in self.entry.iter().enumerate() {
            if self.content(e) != [q as StateId] {
                return Err(format!("entry[{q}] does not point at singleton {{{q}}}"));
            }
        }
        for &d in &self.delegate {
            if !self.interface.contains(&d) {
                return Err(format!("delegate {d} not in interface"));
            }
        }
        if !self.interface.windows(2).all(|w| w[0] < w[1]) {
            return Err("interface must be sorted and deduplicated".into());
        }
        for &p in &self.interface {
            if p == DEAD || p as usize >= n {
                return Err(format!("interface state {p} invalid"));
            }
        }
        if self.start == DEAD || self.start as usize >= n {
            return Err(format!("start state {} invalid", self.start));
        }
        if !self.entry.contains(&self.start) {
            return Err("start must be the entry of some NFA state".into());
        }
        Ok(())
    }
}
