//! Interface minimization by delegation (paper Sect. 3.4).
//!
//! The classical state-partition algorithm applies to an RI-DFA because
//! every state — including the multiple initial ones — has deterministic
//! *outgoing* transitions. Among each language-equivalence class we keep a
//! single interface state as representative and *downgrade* the others to
//! plain (non-initial) states, recording the representative as their
//! **delegate**. Crucially (Fig. 6 of the paper), equivalent states are
//! *not merged*: merging initial states would re-introduce nondeterminism
//! or force a full minimization, while downgrading leaves the transition
//! graph untouched and only shrinks the set of speculative runs.
//!
//! Every run that would have started in a downgraded state `{q}` is covered
//! by its delegate: the two states recognize the same language, so no
//! accepting computation is lost and none is added (the paper's RID_min
//! equivalence argument).

use ridfa_automata::dfa::minimize::partition_refine;
use ridfa_automata::StateId;

use super::RiDfa;

/// Returns a copy of `rid` with language-equivalent interface states
/// downgraded to non-initial, their role delegated to the smallest-id
/// equivalent entry state. Idempotent.
pub fn minimize_interface(rid: &RiDfa) -> RiDfa {
    let classes = partition_refine(
        rid.num_states(),
        rid.stride,
        |s, c| rid.next_class(s, c),
        |s| rid.is_final(s),
    );
    let num_classes = classes.iter().copied().max().unwrap_or(0) as usize + 1;

    // Representative per Nerode class: the smallest-id *entry* state.
    // Only entry states may represent, so delegates remain valid chunk
    // starting points whose content is a singleton.
    let mut rep = vec![StateId::MAX; num_classes];
    for &e in &rid.entry {
        let c = classes[e as usize] as usize;
        if e < rep[c] {
            rep[c] = e;
        }
    }

    let delegate: Vec<StateId> = rid
        .entry
        .iter()
        .map(|&e| rep[classes[e as usize] as usize])
        .collect();
    let mut interface = delegate.clone();
    interface.sort_unstable();
    interface.dedup();

    let min = RiDfa {
        delegate,
        interface,
        ..rid.clone()
    };
    debug_assert_eq!(min.validate(), Ok(()));
    min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ridfa::construct::tests::figure1_nfa;
    use ridfa_automata::nfa::Builder;

    /// NFA with two language-equivalent states (1 and 3): both accept
    /// exactly "z". Modeled on the Fig. 5 situation where states p1 and p3
    /// are undistinguishable and p3 delegates to p1.
    fn delegating_nfa() -> ridfa_automata::nfa::Nfa {
        let mut b = Builder::new();
        let q0 = b.add_state();
        let q1 = b.add_state();
        let _q2 = b.add_state();
        let q3 = b.add_state();
        let q4 = b.add_state();
        b.add_transition(q0, b'a', q1);
        b.add_transition(q0, b'c', q3);
        // q2 is a distinct detour: accepts "zz".
        b.add_transition(q0, b'b', 2);
        b.add_transition(2, b'z', q3);
        b.add_transition(q1, b'z', q4);
        b.add_transition(q3, b'z', q4);
        b.set_start(q0);
        b.set_final(q4);
        b.build().unwrap()
    }

    #[test]
    fn equivalent_entries_are_delegated() {
        let nfa = delegating_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        assert_eq!(rid.interface().len(), 5);
        let min = rid.minimized();
        // {1} ≡ {3}: one of them is downgraded.
        assert_eq!(min.interface().len(), 4);
        let d1 = min.delegate(1);
        let d3 = min.delegate(3);
        assert_eq!(d1, d3, "both NFA states share one delegate");
        assert_eq!(d1, min.entry(1).min(min.entry(3)), "smallest id wins");
        // The transition graph is untouched.
        assert_eq!(min.num_states(), rid.num_states());
    }

    #[test]
    fn language_is_preserved() {
        let nfa = delegating_nfa();
        let min = RiDfa::from_nfa(&nfa).minimized();
        for input in [&b"az"[..], b"cz", b"bzz", b"z", b"", b"azz", b"bz"] {
            assert_eq!(nfa.accepts(input), min.accepts(input), "{input:?}");
        }
    }

    #[test]
    fn figure1_interface_is_already_minimal() {
        // The three singletons of Fig. 1 are pairwise inequivalent.
        let rid = RiDfa::from_nfa(&figure1_nfa());
        let min = rid.minimized();
        assert_eq!(min.interface(), rid.interface());
        assert_eq!(min.delegate, min.entry);
    }

    #[test]
    fn minimization_is_idempotent() {
        let min1 = RiDfa::from_nfa(&delegating_nfa()).minimized();
        let min2 = min1.minimized();
        assert_eq!(min1, min2);
    }

    #[test]
    fn delegates_are_language_equivalent() {
        let nfa = delegating_nfa();
        let min = RiDfa::from_nfa(&nfa).minimized();
        let classes = partition_refine(
            min.num_states(),
            min.stride(),
            |s, c| min.next_class(s, c),
            |s| min.is_final(s),
        );
        for q in 0..min.num_nfa_states() as StateId {
            let e = min.entry(q);
            let d = min.delegate(q);
            assert_eq!(
                classes[e as usize], classes[d as usize],
                "delegate of {q} must be Nerode-equivalent to its entry"
            );
        }
    }

    #[test]
    fn interface_shrinks_only_by_downgrading() {
        let nfa = delegating_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let min = rid.minimized();
        // Minimized interface is a subset of the original.
        assert!(min.interface().iter().all(|p| rid.interface().contains(p)));
    }
}
