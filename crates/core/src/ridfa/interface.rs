//! The interface function `if` (paper Sect. 3.2, adjusted per Sect. 3.4).
//!
//! Between two adjacent chunks, the join phase must translate the possible
//! last active states (PLAS) of the upstream chunk automaton — arbitrary
//! RI-DFA states, i.e. *sets* of NFA states — into the possible initial
//! states (PIS) of the downstream one, which are interface states. The
//! interface function decomposes each PLAS state into its NFA-state
//! content and maps every NFA state to the interface state serving it:
//!
//! ```text
//! if(PLAS) = ⋃_{p ∈ PLAS} { delegate(q) | q ∈ content(p) }
//! ```
//!
//! Before interface minimization `delegate(q)` is the singleton `{q}`
//! itself, giving exactly the paper's `if`; after minimization it is the
//! language-equivalent representative (`if_min`).

use ridfa_automata::StateId;

use super::RiDfa;

/// Computes `if(plas)` into `out` (cleared first), sorted and deduplicated.
pub(crate) fn interface_map(rid: &RiDfa, plas: &[StateId], out: &mut Vec<StateId>) {
    out.clear();
    for &p in plas {
        for &q in rid.content(p) {
            out.push(rid.delegate[q as usize]);
        }
    }
    out.sort_unstable();
    out.dedup();
}

#[cfg(test)]
mod tests {
    use crate::ridfa::construct::tests::figure1_nfa;
    use crate::ridfa::RiDfa;
    use ridfa_automata::NoCount;

    #[test]
    fn figure4_interface_example() {
        // Paper Fig. 4: after chunk 1 = "aab", PLAS₁ = {{0,2}} and
        // if(PLAS₁) = {{0},{2}}.
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let last = rid.run_from(rid.start(), b"aab", &mut NoCount);
        assert_eq!(rid.content(last), &[0, 2], "PLAS₁ = {{0,2}}");

        let mut pis = Vec::new();
        rid.interface_map(&[last], &mut pis);
        let expected = {
            let mut v = vec![rid.entry(0), rid.entry(2)];
            v.sort_unstable();
            v
        };
        assert_eq!(pis, expected);
    }

    #[test]
    fn interface_map_deduplicates() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        // Two PLAS states sharing NFA state 0 produce one entry for it.
        let p01 = rid.next(rid.entry(1), b'a'); // {0,1} per Fig. 4
        assert_eq!(rid.content(p01), &[0, 1]);
        let p0 = rid.entry(0);
        let mut out = Vec::new();
        rid.interface_map(&[p01, p0], &mut out);
        let expected = {
            let mut v = vec![rid.entry(0), rid.entry(1)];
            v.sort_unstable();
            v
        };
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_plas_maps_to_empty() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        let mut out = vec![99];
        rid.interface_map(&[], &mut out);
        assert!(out.is_empty());
    }
}
