//! Incremental powerset construction of the RI-DFA (paper Sect. 3.1).
//!
//! For each NFA state `q_i` in turn, the classical subset construction is
//! run with `{q_i}` as the seed — but *sharing* the subset→state map and
//! transition table across all ℓ runs:
//!
//! ```text
//! N(q0) := powerset machine for N with initial state q0
//! N(q1) := N(q0) ∪ additional states/transitions reachable from {q1}
//! …
//! P     := states of N(q_{ℓ-1});  I_B := the singletons {q0}…{q_{ℓ-1}}
//! ```
//!
//! Because each successive powerset run only *adds* the subsets not yet
//! discovered, the total cost is far below ℓ independent determinizations —
//! the paper measures ≈ 20× the cost of one NFA→DFA conversion on the
//! Ondrik collection instead of the worst-case ℓ ≈ 2490× (Sect. 4.5).

use std::collections::HashMap;

use ridfa_automata::nfa::Nfa;
use ridfa_automata::{BitSet, ConstructionBudget, Result, StateId, DEAD};

use super::RiDfa;

/// Budget axis labels for RI-DFA construction.
const WHAT_STATES: &str = "RI-DFA states";
const WHAT_BYTES: &str = "RI-DFA table bytes";

/// Builds the RI-DFA of `nfa` (unbounded).
pub fn construct(nfa: &Nfa) -> RiDfa {
    construct_limited(nfa, usize::MAX).expect("unbounded construction cannot hit the limit")
}

/// Builds the RI-DFA of `nfa`, failing with
/// [`Error::LimitExceeded`](ridfa_automata::Error::LimitExceeded) when
/// more than `max_states` live states would be created.
pub fn construct_limited(nfa: &Nfa, max_states: usize) -> Result<RiDfa> {
    construct_budgeted(nfa, &ConstructionBudget::with_max_states(max_states))
}

/// Builds the RI-DFA of `nfa` under a full [`ConstructionBudget`] (state
/// count *and* table bytes), failing with a typed
/// [`Error::LimitExceeded`](ridfa_automata::Error::LimitExceeded) before
/// any allocation beyond the budget happens.
pub fn construct_budgeted(nfa: &Nfa, budget: &ConstructionBudget) -> Result<RiDfa> {
    let classes = nfa.byte_classes();
    let stride = classes.num_classes();
    let reps = classes.representatives();
    let num_nfa_states = nfa.num_states();

    // Shared across all ℓ seed runs: the subset → state map, the growing
    // table, and the per-state contents. Dead state occupies id 0.
    let mut ids: HashMap<Vec<StateId>, StateId> = HashMap::new();
    let mut contents: Vec<Vec<StateId>> = vec![Vec::new()];
    let mut table: Vec<StateId> = Vec::new();
    budget.grow_table(&mut table, stride, DEAD, WHAT_BYTES)?;

    let mut worklist: Vec<StateId> = Vec::new();
    let mut entry = vec![DEAD; num_nfa_states];
    let mut target: Vec<StateId> = Vec::new();

    for q in 0..num_nfa_states as StateId {
        let singleton = vec![q];
        let seed = match ids.get(&singleton) {
            // `{q}` already discovered during an earlier seed run: its
            // whole subgraph is already explored, nothing to do.
            Some(&id) => id,
            None => {
                let id = alloc_state(
                    singleton,
                    &mut ids,
                    &mut contents,
                    &mut table,
                    stride,
                    budget,
                )?;
                worklist.push(id);
                id
            }
        };
        entry[q as usize] = seed;

        // Incremental subset construction from this seed.
        while let Some(s) = worklist.pop() {
            for (class, &rep) in reps.iter().enumerate() {
                target.clear();
                for &nq in &contents[s as usize] {
                    for &(_, t) in nfa.targets(nq, rep) {
                        target.push(t);
                    }
                }
                target.sort_unstable();
                target.dedup();
                if target.is_empty() {
                    continue; // stays DEAD
                }
                let next_id = match ids.get(&target) {
                    Some(&id) => id,
                    None => {
                        let id = alloc_state(
                            target.clone(),
                            &mut ids,
                            &mut contents,
                            &mut table,
                            stride,
                            budget,
                        )?;
                        worklist.push(id);
                        id
                    }
                };
                table[s as usize * stride + class] = next_id;
            }
        }
    }

    // F_RID: union of the final sets of the ℓ powerset machines = every
    // state whose content meets the NFA finals.
    let mut finals = BitSet::new(contents.len());
    for (id, content) in contents.iter().enumerate().skip(1) {
        if content.iter().any(|&q| nfa.is_final(q)) {
            finals.insert(id as StateId);
        }
    }

    // Flatten contents into CSR.
    let mut content_off = Vec::with_capacity(contents.len() + 1);
    let mut content = Vec::with_capacity(contents.iter().map(Vec::len).sum());
    content_off.push(0u32);
    for c in &contents {
        content.extend_from_slice(c);
        content_off.push(content.len() as u32);
    }

    let start = entry[nfa.start() as usize];
    let interface: Vec<StateId> = {
        let mut i = entry.clone();
        i.sort_unstable();
        i.dedup();
        i
    };
    let rid = RiDfa {
        classes,
        stride,
        table,
        finals,
        start,
        num_nfa_states,
        content_off,
        content,
        delegate: entry.clone(),
        entry,
        interface,
    };
    debug_assert_eq!(rid.validate(), Ok(()));
    Ok(rid)
}

/// Allocates a fresh RI-DFA state for `subset`, growing the table under
/// the construction budget.
fn alloc_state(
    subset: Vec<StateId>,
    ids: &mut HashMap<Vec<StateId>, StateId>,
    contents: &mut Vec<Vec<StateId>>,
    table: &mut Vec<StateId>,
    stride: usize,
    budget: &ConstructionBudget,
) -> Result<StateId> {
    budget.charge_state(contents.len(), WHAT_STATES)?;
    budget.grow_table(table, stride, DEAD, WHAT_BYTES)?;
    let id = contents.len() as StateId;
    ids.insert(subset.clone(), id);
    contents.push(subset);
    Ok(id)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::ridfa::RiDfa;
    use ridfa_automata::dfa::powerset::determinize;
    use ridfa_automata::nfa::{glushkov, Builder};
    use ridfa_automata::regex::parse;
    use ridfa_automata::Error;

    pub(crate) fn figure1_nfa() -> Nfa {
        // Paper Fig. 1: 0 -a,c→ 1 ; 1 -a→ 1 ; 1 -Σ→ 0 ; 1 -b→ 2 ;
        // 2 -b→ 1 ; start 0, F = {2}.
        let mut b = Builder::new();
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.add_transition(q0, b'a', q1);
        b.add_transition(q0, b'c', q1);
        b.add_transition(q1, b'a', q1);
        b.add_transition(q1, b'a', q0);
        b.add_transition(q1, b'b', q0);
        b.add_transition(q1, b'b', q2);
        b.add_transition(q1, b'c', q0);
        b.add_transition(q2, b'b', q1);
        b.set_start(q0);
        b.set_final(q2);
        b.build().unwrap()
    }

    #[test]
    fn figure1_ridfa_has_five_states_three_initial() {
        // Paper: Q_RI-DFA = {0, 1, 2, 01, 02}, interface = {0, 1, 2}.
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        assert_eq!(rid.num_live_states(), 5);
        assert_eq!(rid.interface().len(), 3);
        // Interface states are exactly the singletons.
        for q in 0..3u32 {
            assert_eq!(rid.content(rid.entry(q)), &[q]);
        }
    }

    #[test]
    fn ridfa_serial_recognition_equals_nfa() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        for input in [
            &b""[..],
            b"a",
            b"ab",
            b"aab",
            b"aabcab",
            b"cab",
            b"abab",
            b"bb",
            b"aabb",
            b"caab",
        ] {
            assert_eq!(nfa.accepts(input), rid.accepts(input), "{input:?}");
        }
    }

    #[test]
    fn interface_size_equals_nfa_size() {
        for pattern in ["(a|b)*abb", "[ab]*a[ab]{4}", "x+y*z?", "(ab|ba)+"] {
            let nfa = glushkov::build(&parse(pattern).unwrap()).unwrap();
            let rid = RiDfa::from_nfa(&nfa);
            assert_eq!(rid.interface().len(), nfa.num_states(), "{pattern}");
        }
    }

    #[test]
    fn ridfa_contains_at_least_dfa_reachable_part() {
        // Every subset reachable from {q0} is also an RI-DFA state.
        let nfa = figure1_nfa();
        let dfa = determinize(&nfa);
        let rid = RiDfa::from_nfa(&nfa);
        assert!(rid.num_live_states() >= dfa.num_live_states());
    }

    #[test]
    fn exponential_family_interface_stays_linear() {
        // The headline property: DFA states blow up exponentially in k,
        // the RI-DFA interface stays at |Q_N| = k + 3 (Glushkov of
        // [ab]*a[ab]{k}).
        let nfa = glushkov::build(&parse("[ab]*a[ab]{8}").unwrap()).unwrap();
        let dfa = determinize(&nfa);
        let rid = RiDfa::from_nfa(&nfa);
        assert!(dfa.num_live_states() >= 1 << 9);
        assert_eq!(rid.interface().len(), 8 + 3);
    }

    #[test]
    fn limit_is_enforced() {
        let nfa = glushkov::build(&parse("[ab]*a[ab]{12}").unwrap()).unwrap();
        let err = construct_limited(&nfa, 50).unwrap_err();
        assert!(matches!(err, Error::LimitExceeded { .. }));
    }

    #[test]
    fn byte_budget_is_enforced() {
        let nfa = glushkov::build(&parse("[ab]*a[ab]{12}").unwrap()).unwrap();
        let budget = ConstructionBudget::with_max_table_bytes(8 << 10);
        let err = construct_budgeted(&nfa, &budget).unwrap_err();
        assert!(matches!(
            err,
            Error::LimitExceeded {
                what: "RI-DFA table bytes",
                ..
            }
        ));
        // A small machine fits under the same budget.
        let small = glushkov::build(&parse("(a|b)*abb").unwrap()).unwrap();
        assert!(construct_budgeted(&small, &budget).is_ok());
    }

    #[test]
    fn validate_passes_on_fresh_construction() {
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        assert_eq!(rid.validate(), Ok(()));
    }

    #[test]
    fn run_from_counts_and_dies_like_paper() {
        use ridfa_automata::TransitionCount;
        let nfa = figure1_nfa();
        let rid = RiDfa::from_nfa(&nfa);
        // Chunk 2 of Fig. 1 ("cab") from the three interface states:
        // {0}: 3 transitions, {1}: 3, {2}: dies on 'c' with 0.
        let counts: Vec<u64> = (0..3u32)
            .map(|q| {
                let mut c = TransitionCount::default();
                rid.run_from(rid.entry(q), b"cab", &mut c);
                c.get()
            })
            .collect();
        assert_eq!(counts, vec![3, 3, 0]);
    }
}
