//! Binary artifact codec for [`RiDfa`] — the serving cold-start path.
//!
//! Built on the container and section primitives of
//! [`ridfa_automata::serialize::binary`]: the payload is the minimized
//! core (byte classes, dense table, premultiplied table, finals, start)
//! followed by the interface sections (content CSR, entry/delegate maps,
//! the interface itself). Decoding re-validates everything a fresh
//! construction establishes — [`RiDfa::validate`] plus a premultiplied
//! table check — so a loaded artifact is indistinguishable from a built
//! automaton, at a small fraction of the powerset cost.

use ridfa_automata::dfa::premultiply;
use ridfa_automata::serialize::binary::{
    open, peek, seal, ArtifactKind, DecodeError, Decoder, Encoder, MAX_DECODE_STATES,
};
use ridfa_automata::StateId;

use super::RiDfa;
use crate::csdpa::{EnginePlan, FeasibleTable};
use crate::sfa::Sfa;

/// Engine-section flag bits (format v2).
const FLAG_FEASIBLE: u8 = 1 << 0;
const FLAG_SFA: u8 = 1 << 1;
const FLAG_SEPARATOR: u8 = 1 << 2;
const FLAG_KNOWN: u8 = FLAG_FEASIBLE | FLAG_SFA | FLAG_SEPARATOR;

/// A decoded RI-DFA artifact: the validated automaton plus its
/// premultiplied table (verified at decode, so serving skips even that
/// pass), and — format v2 — the engine plan chosen at compile time with
/// its optional precomputed tables, so registry replicas load the
/// decision instead of re-deriving it. v1 artifacts predate the engine
/// section and decode with [`EnginePlan::Auto`] and no tables.
#[derive(Debug, Clone)]
pub struct RiDfaArtifact {
    /// The validated automaton.
    pub rid: RiDfa,
    /// `premultiply(table, stride)`, verified at decode.
    pub premultiplied: Vec<StateId>,
    /// The engine plan persisted at compile time (`Auto` for v1 artifacts).
    pub plan: EnginePlan,
    /// Feasible-start boundary table, verified against a fresh build.
    pub feasible: Option<FeasibleTable>,
    /// SFA tables, re-validated against the automaton at decode.
    pub sfa: Option<Sfa>,
    /// Record-separator byte for boundary snapping, if the pattern's
    /// workload is record-structured.
    pub separator: Option<u8>,
}

/// Serializes an RI-DFA (including its premultiplied table) to a sealed
/// artifact with an empty engine section ([`EnginePlan::Auto`], no
/// precomputed tables).
pub fn ridfa_to_bytes(rid: &RiDfa) -> Vec<u8> {
    ridfa_to_bytes_with_engine(rid, EnginePlan::Auto, None, None, None)
}

/// Serializes an RI-DFA plus its engine plan and any precomputed engine
/// tables — what `ridfa compile --engine …` and registry snapshots write.
pub fn ridfa_to_bytes_with_engine(
    rid: &RiDfa,
    plan: EnginePlan,
    feasible: Option<&FeasibleTable>,
    sfa: Option<&Sfa>,
    separator: Option<u8>,
) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_classes(&rid.classes);
    enc.put_u64(rid.num_states() as u64);
    enc.put_u32(rid.start);
    enc.put_bitset(&rid.finals);
    enc.put_u32s(&rid.table);
    enc.put_u32s(&premultiply(&rid.table, rid.stride));
    enc.put_u64(rid.num_nfa_states as u64);
    enc.put_u32s(&rid.content_off);
    enc.put_u32s(&rid.content);
    enc.put_u32s(&rid.entry);
    enc.put_u32s(&rid.delegate);
    enc.put_u32s(&rid.interface);
    // Engine section (format v2): plan tag, flags, then the optional
    // separator byte, feasible-start words and SFA tables in flag order.
    enc.put_u8(plan.tag());
    let mut flags = 0u8;
    if feasible.is_some() {
        flags |= FLAG_FEASIBLE;
    }
    if sfa.is_some() {
        flags |= FLAG_SFA;
    }
    if separator.is_some() {
        flags |= FLAG_SEPARATOR;
    }
    enc.put_u8(flags);
    if let Some(sep) = separator {
        enc.put_u8(sep);
    }
    if let Some(feasible) = feasible {
        enc.put_u64(feasible.words().len() as u64);
        for &word in feasible.words() {
            enc.put_u64(word);
        }
    }
    if let Some(sfa) = sfa {
        enc.put_u32s(sfa.table());
        enc.put_u32s(&sfa.flattened_functions());
    }
    seal(ArtifactKind::RiDfa, &enc.into_payload())
}

/// Decodes a sealed RI-DFA artifact, re-validating the full structural
/// contract (dead row, target ranges, CSR shape, interface invariants,
/// premultiplied table).
pub fn ridfa_from_bytes(bytes: &[u8]) -> Result<RiDfaArtifact, DecodeError> {
    let version = peek(bytes)?.version;
    let payload = open(bytes, ArtifactKind::RiDfa)?;
    let mut dec = Decoder::new(payload);
    let classes = dec.take_classes()?;
    let num_states = dec.take_u64()?;
    if num_states == 0 || num_states > MAX_DECODE_STATES as u64 {
        return Err(DecodeError::Malformed(format!(
            "state count {num_states} outside 1..={MAX_DECODE_STATES}"
        )));
    }
    let start = dec.take_u32()?;
    let finals = dec.take_bitset()?;
    let table = dec.take_u32s()?;
    let premultiplied = dec.take_u32s()?;
    let num_nfa_states = dec.take_u64()?;
    let content_off = dec.take_u32s()?;
    let content = dec.take_u32s()?;
    let entry = dec.take_u32s()?;
    let delegate = dec.take_u32s()?;
    let interface = dec.take_u32s()?;
    // Engine section — absent in v1 artifacts, which decode with a
    // synthesized `EnginePlan::Auto` (the registry re-derives the plan).
    let mut plan = EnginePlan::Auto;
    let mut separator = None;
    let mut feasible_words = None;
    let mut sfa_parts = None;
    if version >= 2 {
        let tag = dec.take_u8()?;
        plan = EnginePlan::from_tag(tag)
            .ok_or_else(|| DecodeError::Malformed(format!("unknown engine plan tag {tag}")))?;
        let flags = dec.take_u8()?;
        if flags & !FLAG_KNOWN != 0 {
            return Err(DecodeError::Malformed(format!(
                "unknown engine section flags {flags:#04x}"
            )));
        }
        if flags & FLAG_SEPARATOR != 0 {
            separator = Some(dec.take_u8()?);
        }
        if flags & FLAG_FEASIBLE != 0 {
            let count = dec.take_u64()?;
            // Bounded by what the automaton can need: stride × words per
            // class, both ≤ MAX_DECODE_STATES-scale — cap before reserving.
            if count > (MAX_DECODE_STATES as u64) * 4 {
                return Err(DecodeError::Malformed(format!(
                    "feasible table declares {count} words"
                )));
            }
            let mut words = Vec::with_capacity(count as usize);
            for _ in 0..count {
                words.push(dec.take_u64()?);
            }
            feasible_words = Some(words);
        }
        if flags & FLAG_SFA != 0 {
            let table = dec.take_u32s()?;
            let functions = dec.take_u32s()?;
            sfa_parts = Some((table, functions));
        }
    }
    dec.finish()?;

    let stride = classes.num_classes();
    if table.len() != num_states as usize * stride {
        return Err(DecodeError::Malformed(format!(
            "table holds {} entries, header declares {num_states} states × stride {stride}",
            table.len()
        )));
    }
    if num_nfa_states > num_states {
        return Err(DecodeError::Malformed(format!(
            "{num_nfa_states} NFA states exceed the {num_states} RI-DFA states"
        )));
    }
    if finals.capacity() != num_states as usize {
        return Err(DecodeError::Malformed(format!(
            "finals capacity {} does not match {num_states} states",
            finals.capacity()
        )));
    }
    let rid = RiDfa {
        classes,
        stride,
        table,
        finals,
        start,
        num_nfa_states: num_nfa_states as usize,
        content_off,
        content,
        entry,
        delegate,
        interface,
    };
    rid.validate().map_err(DecodeError::Malformed)?;
    if premultiplied != premultiply(&rid.table, rid.stride) {
        return Err(DecodeError::Malformed(
            "premultiplied table does not match the transition table".into(),
        ));
    }
    // Precomputed engine tables are re-verified against the decoded
    // automaton, so a loaded engine is indistinguishable from a fresh
    // build (and forged tables cannot smuggle wrong verdicts in).
    let feasible = match feasible_words {
        None => None,
        Some(words) => {
            let table = FeasibleTable::from_parts(rid.stride, rid.interface.len(), words)
                .map_err(DecodeError::Malformed)?;
            if table.words() != FeasibleTable::build(&rid).words() {
                return Err(DecodeError::Malformed(
                    "feasible-start table does not match the automaton".into(),
                ));
            }
            Some(table)
        }
    };
    let sfa = match sfa_parts {
        None => None,
        Some((table, functions)) => {
            Some(Sfa::from_rid_parts(&rid, table, functions).map_err(DecodeError::Malformed)?)
        }
    };
    Ok(RiDfaArtifact {
        rid,
        premultiplied,
        plan,
        feasible,
        sfa,
        separator,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridfa_automata::nfa::glushkov;
    use ridfa_automata::regex::parse;

    fn sample_rid() -> RiDfa {
        RiDfa::from_nfa(&glushkov::build(&parse("(a|b)*abb").unwrap()).unwrap()).minimized()
    }

    #[test]
    fn ridfa_binary_roundtrip_is_identical() {
        let rid = sample_rid();
        let bytes = ridfa_to_bytes(&rid);
        let back = ridfa_from_bytes(&bytes).unwrap();
        assert_eq!(back.rid, rid);
        assert_eq!(back.premultiplied, premultiply(&rid.table, rid.stride));
        assert_eq!(back.plan, EnginePlan::Auto);
        assert!(back.feasible.is_none() && back.sfa.is_none() && back.separator.is_none());
    }

    #[test]
    fn engine_section_roundtrips_plan_and_tables() {
        use ridfa_automata::ConstructionBudget;
        let rid = sample_rid();
        let feasible = FeasibleTable::build(&rid);
        let sfa = Sfa::build_rid_budgeted(&rid, &ConstructionBudget::UNLIMITED).unwrap();
        let bytes = ridfa_to_bytes_with_engine(
            &rid,
            EnginePlan::Sfa,
            Some(&feasible),
            Some(&sfa),
            Some(b'\n'),
        );
        let back = ridfa_from_bytes(&bytes).unwrap();
        assert_eq!(back.rid, rid);
        assert_eq!(back.plan, EnginePlan::Sfa);
        assert_eq!(back.separator, Some(b'\n'));
        assert_eq!(back.feasible.as_ref().unwrap().words(), feasible.words());
        let dec = back.sfa.unwrap();
        assert_eq!(dec.table(), sfa.table());
        assert_eq!(dec.flattened_functions(), sfa.flattened_functions());
    }

    /// Re-creates a pre-engine-section (format v1) artifact: the v1
    /// payload layout sealed normally, then the header's version field
    /// (bytes 6..8, not covered by the payload checksum) patched back to
    /// 1. Decoding must succeed and synthesize `EnginePlan::Auto`.
    fn forge_v1(rid: &RiDfa) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_classes(&rid.classes);
        enc.put_u64(rid.num_states() as u64);
        enc.put_u32(rid.start);
        enc.put_bitset(&rid.finals);
        enc.put_u32s(&rid.table);
        enc.put_u32s(&premultiply(&rid.table, rid.stride));
        enc.put_u64(rid.num_nfa_states as u64);
        enc.put_u32s(&rid.content_off);
        enc.put_u32s(&rid.content);
        enc.put_u32s(&rid.entry);
        enc.put_u32s(&rid.delegate);
        enc.put_u32s(&rid.interface);
        let mut bytes = seal(ArtifactKind::RiDfa, &enc.into_payload());
        bytes[6..8].copy_from_slice(&1u16.to_le_bytes());
        bytes
    }

    #[test]
    fn v1_artifact_decodes_with_synthesized_auto_plan() {
        let rid = sample_rid();
        let bytes = forge_v1(&rid);
        let back = ridfa_from_bytes(&bytes).unwrap();
        assert_eq!(back.rid, rid);
        assert_eq!(back.plan, EnginePlan::Auto);
        assert!(back.feasible.is_none() && back.sfa.is_none() && back.separator.is_none());
    }

    #[test]
    fn forged_engine_tables_are_rejected() {
        use ridfa_automata::ConstructionBudget;
        let rid = sample_rid();
        let feasible = FeasibleTable::build(&rid);
        // Flip one feasibility bit: shape-valid, content-inconsistent.
        let mut words = feasible.words().to_vec();
        words[0] ^= 1;
        let bad = FeasibleTable::from_parts(rid.stride, rid.interface.len(), words).unwrap();
        let bytes =
            ridfa_to_bytes_with_engine(&rid, EnginePlan::FeasibleStart, Some(&bad), None, None);
        assert!(matches!(
            ridfa_from_bytes(&bytes),
            Err(DecodeError::Malformed(_))
        ));
        // SFA functions that disagree with the automaton are rejected by
        // the same validation the decoder runs (`Sfa::from_rid_parts`).
        let sfa = Sfa::build_rid_budgeted(&rid, &ConstructionBudget::UNLIMITED).unwrap();
        let mut functions = sfa.flattened_functions();
        let last = functions.len() - 1;
        functions[last] = (functions[last] + 1) % rid.num_states() as u32;
        assert!(Sfa::from_rid_parts(&rid, sfa.table().to_vec(), functions).is_err());
    }

    #[test]
    fn every_truncation_errors_typed() {
        let bytes = ridfa_to_bytes(&sample_rid());
        for len in 0..bytes.len() {
            assert!(ridfa_from_bytes(&bytes[..len]).is_err(), "prefix {len}");
        }
    }

    #[test]
    fn single_byte_corruption_never_decodes_invalid() {
        let rid = sample_rid();
        let bytes = ridfa_to_bytes(&rid);
        for i in (0..bytes.len()).step_by(3) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            // Typed error — or, only if the checksum collided (it cannot
            // for a single flipped bit), an automaton passing validation.
            assert!(ridfa_from_bytes(&bad).is_err(), "offset {i}");
        }
    }

    #[test]
    fn dfa_artifact_is_rejected_as_wrong_kind() {
        use ridfa_automata::dfa::powerset::determinize;
        let nfa = glushkov::build(&parse("ab*").unwrap()).unwrap();
        let bytes = ridfa_automata::serialize::binary::dfa_to_bytes(&determinize(&nfa));
        assert!(matches!(
            ridfa_from_bytes(&bytes),
            Err(DecodeError::WrongKind { .. })
        ));
    }
}
