//! Binary artifact codec for [`RiDfa`] — the serving cold-start path.
//!
//! Built on the container and section primitives of
//! [`ridfa_automata::serialize::binary`]: the payload is the minimized
//! core (byte classes, dense table, premultiplied table, finals, start)
//! followed by the interface sections (content CSR, entry/delegate maps,
//! the interface itself). Decoding re-validates everything a fresh
//! construction establishes — [`RiDfa::validate`] plus a premultiplied
//! table check — so a loaded artifact is indistinguishable from a built
//! automaton, at a small fraction of the powerset cost.

use ridfa_automata::dfa::premultiply;
use ridfa_automata::serialize::binary::{
    open, seal, ArtifactKind, DecodeError, Decoder, Encoder, MAX_DECODE_STATES,
};
use ridfa_automata::StateId;

use super::RiDfa;

/// A decoded RI-DFA artifact: the validated automaton plus its
/// premultiplied table (verified at decode, so serving skips even that
/// pass).
#[derive(Debug, Clone)]
pub struct RiDfaArtifact {
    /// The validated automaton.
    pub rid: RiDfa,
    /// `premultiply(table, stride)`, verified at decode.
    pub premultiplied: Vec<StateId>,
}

/// Serializes an RI-DFA (including its premultiplied table) to a sealed
/// artifact.
pub fn ridfa_to_bytes(rid: &RiDfa) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_classes(&rid.classes);
    enc.put_u64(rid.num_states() as u64);
    enc.put_u32(rid.start);
    enc.put_bitset(&rid.finals);
    enc.put_u32s(&rid.table);
    enc.put_u32s(&premultiply(&rid.table, rid.stride));
    enc.put_u64(rid.num_nfa_states as u64);
    enc.put_u32s(&rid.content_off);
    enc.put_u32s(&rid.content);
    enc.put_u32s(&rid.entry);
    enc.put_u32s(&rid.delegate);
    enc.put_u32s(&rid.interface);
    seal(ArtifactKind::RiDfa, &enc.into_payload())
}

/// Decodes a sealed RI-DFA artifact, re-validating the full structural
/// contract (dead row, target ranges, CSR shape, interface invariants,
/// premultiplied table).
pub fn ridfa_from_bytes(bytes: &[u8]) -> Result<RiDfaArtifact, DecodeError> {
    let payload = open(bytes, ArtifactKind::RiDfa)?;
    let mut dec = Decoder::new(payload);
    let classes = dec.take_classes()?;
    let num_states = dec.take_u64()?;
    if num_states == 0 || num_states > MAX_DECODE_STATES as u64 {
        return Err(DecodeError::Malformed(format!(
            "state count {num_states} outside 1..={MAX_DECODE_STATES}"
        )));
    }
    let start = dec.take_u32()?;
    let finals = dec.take_bitset()?;
    let table = dec.take_u32s()?;
    let premultiplied = dec.take_u32s()?;
    let num_nfa_states = dec.take_u64()?;
    let content_off = dec.take_u32s()?;
    let content = dec.take_u32s()?;
    let entry = dec.take_u32s()?;
    let delegate = dec.take_u32s()?;
    let interface = dec.take_u32s()?;
    dec.finish()?;

    let stride = classes.num_classes();
    if table.len() != num_states as usize * stride {
        return Err(DecodeError::Malformed(format!(
            "table holds {} entries, header declares {num_states} states × stride {stride}",
            table.len()
        )));
    }
    if num_nfa_states > num_states {
        return Err(DecodeError::Malformed(format!(
            "{num_nfa_states} NFA states exceed the {num_states} RI-DFA states"
        )));
    }
    if finals.capacity() != num_states as usize {
        return Err(DecodeError::Malformed(format!(
            "finals capacity {} does not match {num_states} states",
            finals.capacity()
        )));
    }
    let rid = RiDfa {
        classes,
        stride,
        table,
        finals,
        start,
        num_nfa_states: num_nfa_states as usize,
        content_off,
        content,
        entry,
        delegate,
        interface,
    };
    rid.validate().map_err(DecodeError::Malformed)?;
    if premultiplied != premultiply(&rid.table, rid.stride) {
        return Err(DecodeError::Malformed(
            "premultiplied table does not match the transition table".into(),
        ));
    }
    Ok(RiDfaArtifact { rid, premultiplied })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridfa_automata::nfa::glushkov;
    use ridfa_automata::regex::parse;

    fn sample_rid() -> RiDfa {
        RiDfa::from_nfa(&glushkov::build(&parse("(a|b)*abb").unwrap()).unwrap()).minimized()
    }

    #[test]
    fn ridfa_binary_roundtrip_is_identical() {
        let rid = sample_rid();
        let bytes = ridfa_to_bytes(&rid);
        let back = ridfa_from_bytes(&bytes).unwrap();
        assert_eq!(back.rid, rid);
        assert_eq!(back.premultiplied, premultiply(&rid.table, rid.stride));
    }

    #[test]
    fn every_truncation_errors_typed() {
        let bytes = ridfa_to_bytes(&sample_rid());
        for len in 0..bytes.len() {
            assert!(ridfa_from_bytes(&bytes[..len]).is_err(), "prefix {len}");
        }
    }

    #[test]
    fn single_byte_corruption_never_decodes_invalid() {
        let rid = sample_rid();
        let bytes = ridfa_to_bytes(&rid);
        for i in (0..bytes.len()).step_by(3) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            // Typed error — or, only if the checksum collided (it cannot
            // for a single flipped bit), an automaton passing validation.
            assert!(ridfa_from_bytes(&bad).is_err(), "offset {i}");
        }
    }

    #[test]
    fn dfa_artifact_is_rejected_as_wrong_kind() {
        use ridfa_automata::dfa::powerset::determinize;
        let nfa = glushkov::build(&parse("ab*").unwrap()).unwrap();
        let bytes = ridfa_automata::serialize::binary::dfa_to_bytes(&determinize(&nfa));
        assert!(matches!(
            ridfa_from_bytes(&bytes),
            Err(DecodeError::WrongKind { .. })
        ));
    }
}
