//! `ridfa` — command-line generator / recognizer / test driver, mirroring
//! the paper's Java tool (Sect. 4: "a generator of the RI-DFA automaton
//! from either an RE or an FA, a parallel recognizer for recognizing user
//! supplied texts, and a test driver to measure performance").
//!
//! ```text
//! ridfa gen --regex '(a|b)*abb' --out machine.nfa      # RE → NFA (text format)
//! ridfa info --regex '(a|b)*abb'                       # construction report
//! ridfa recognize --regex '(a|b)*abb' --text input.txt --variant rid --chunks 8
//! ridfa recognize --regex '(a|b)*abb' --text input.txt --pool  # warm session
//! ridfa drive --regex '(a|b)*abb' --text input.txt     # compare all variants
//! ridfa serve --requests 1024 --len 2048               # batch/serving mode
//! ridfa help
//! ```

use std::io::Read;
use std::process::ExitCode;
use std::time::Instant;

use ridfa_automata::dfa::{minimize, powerset};
use ridfa_automata::nfa::{glushkov, Nfa};
use ridfa_automata::{regex, serialize};
use ridfa_core::csdpa::{
    recognize_counted, ChunkAutomaton, ConvergentDfaCa, ConvergentRidCa, CountedOutcome, DfaCa,
    Executor, NfaCa, RidCa, Session, StreamOutcome, StreamSession,
};
use ridfa_core::ridfa::RiDfa;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(|s| s.as_str()) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = Opts::parse(&args[1..]).and_then(|opts| match command {
        "gen" => cmd_gen(&opts),
        "info" => cmd_info(&opts),
        "recognize" => cmd_recognize(&opts),
        "drive" => cmd_drive(&opts),
        "serve" => cmd_serve(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
ridfa — parallel recognizer for regular texts with minimal speculation

USAGE:
  ridfa gen        --regex PATTERN [--out FILE]        print/save the NFA
  ridfa info       (--regex PATTERN | --nfa FILE | --workload NAME)
                                                       construction report
  ridfa recognize  (--regex PATTERN | --nfa FILE | --workload NAME)
                   --text FILE
                   [--variant dfa|nfa|rid|convergent-dfa|convergent-rid]
                   [--chunks N] [--threads N] [--pool]  recognize one text
                   [--stream] [--block-size BYTES]      …or recognize the
                                                        text as a bounded-
                                                        memory stream (the
                                                        file/stdin is never
                                                        loaded whole)
  ridfa drive      (--regex PATTERN | --nfa FILE | --workload NAME)
                   --text FILE [--chunks N] [--pool]    compare all variants
  ridfa serve      [--requests N] [--len BYTES] [--chunks N] [--threads N]
                   [--variant ...] [--no-pool]          batch-recognize a
                                                        generated syslog
                                                        stream (workloads::
                                                        traffic) through a
                                                        warm session
                   [--stream] [--bytes N]               …or validate one
                   [--block-size BYTES]                 N-byte generated
                                                        record pipe through
                                                        a StreamSession
  ridfa help

`--pool` recognizes through a persistent Session (no thread spawn per
text, warm per-worker scan state) instead of spawning threads per call.
`--stream` reads fixed-size blocks through a reusable ring and composes
chunk mappings eagerly: live memory is O(threads × block-size) no matter
how large the input. `--workload traffic|bible` uses a built-in benchmark
pattern instead of --regex/--nfa.

Exit code of `recognize`: 0 = accepted, 1 = rejected or error.";

struct Opts {
    flags: Vec<(String, String)>,
}

impl Opts {
    /// Parses `--name [value]` pairs. A following token that itself
    /// starts with `--` is **not** consumed as a value (it is the next
    /// flag; the previous flag simply has no value), and stray
    /// positional tokens are rejected.
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut flags = Vec::new();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!(
                    "unexpected argument {arg:?} (options are --name [value])"
                ));
            };
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => iter.next().cloned().unwrap_or_default(),
                _ => String::new(),
            };
            flags.push((name.to_string(), value));
        }
        Ok(Opts { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Is the boolean flag present (with or without a value)?
    fn get_bool(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// The flag's value, requiring one if the flag is present at all
    /// (`--text --variant rid` errors instead of silently reading a file
    /// named `--variant`).
    fn get_value(&self, name: &str) -> Result<Option<&str>, String> {
        match self.get(name) {
            Some("") => Err(format!("flag --{name} requires a value")),
            other => Ok(other),
        }
    }

    /// Numeric flag with a default; malformed numbers are an error, not
    /// a silent fallback.
    fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get_value(name)? {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                format!("invalid value for --{name}: {v:?} (expected a non-negative integer)")
            }),
        }
    }
}

/// Loads the NFA from `--regex`, `--nfa`, or a built-in `--workload`.
fn load_nfa(opts: &Opts) -> Result<Nfa, String> {
    if let Some(pattern) = opts.get_value("regex")? {
        let ast = regex::parse(pattern).map_err(|e| e.to_string())?;
        return glushkov::build(&ast).map_err(|e| e.to_string());
    }
    if let Some(path) = opts.get_value("nfa")? {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        return serialize::nfa_from_text(&text).map_err(|e| e.to_string());
    }
    if let Some(name) = opts.get_value("workload")? {
        return match name {
            "traffic" => Ok(ridfa_workloads::traffic::nfa()),
            "bible" => Ok(ridfa_workloads::bible::nfa()),
            other => Err(format!("unknown workload {other:?} (traffic|bible)")),
        };
    }
    Err("need --regex PATTERN, --nfa FILE, or --workload NAME".into())
}

fn load_text(opts: &Opts) -> Result<Vec<u8>, String> {
    match opts.get_value("text")? {
        Some("-") => {
            let mut buffer = Vec::new();
            std::io::stdin()
                .lock()
                .read_to_end(&mut buffer)
                .map_err(|e| e.to_string())?;
            Ok(buffer)
        }
        Some(path) => std::fs::read(path).map_err(|e| format!("{path}: {e}")),
        None => Err("need --text FILE (or --text - for stdin)".into()),
    }
}

fn cmd_gen(opts: &Opts) -> Result<(), String> {
    let nfa = load_nfa(opts)?;
    let text = serialize::nfa_to_text(&nfa);
    match opts.get_value("out")? {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("{path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn cmd_info(opts: &Opts) -> Result<(), String> {
    let nfa = load_nfa(opts)?;
    let t0 = Instant::now();
    let dfa = powerset::determinize(&nfa);
    let t_dfa = t0.elapsed();
    let t1 = Instant::now();
    let min = minimize::minimize(&dfa);
    let t_min = t1.elapsed();
    let t2 = Instant::now();
    let rid = RiDfa::from_nfa(&nfa);
    let t_rid = t2.elapsed();
    let t3 = Instant::now();
    let rid_min = rid.minimized();
    let t_ridmin = t3.elapsed();

    println!(
        "NFA          : {} states, {} transitions",
        nfa.num_states(),
        nfa.num_transitions()
    );
    println!(
        "DFA          : {} live states        (powerset, {:.3} ms)",
        dfa.num_live_states(),
        t_dfa.as_secs_f64() * 1e3
    );
    println!(
        "minimal DFA  : {} live states        (Hopcroft, +{:.3} ms)",
        min.num_live_states(),
        t_min.as_secs_f64() * 1e3
    );
    println!(
        "RI-DFA       : {} live states, {} interface states ({:.3} ms)",
        rid.num_live_states(),
        rid.interface().len(),
        t_rid.as_secs_f64() * 1e3
    );
    println!(
        "RI-DFA (min) : interface reduced {} → {} (+{:.3} ms)",
        rid.interface().len(),
        rid_min.interface().len(),
        t_ridmin.as_secs_f64() * 1e3
    );
    println!(
        "speculation  : DFA variant starts {} runs/chunk, RID starts {} — {:.2}× fewer",
        min.num_live_states(),
        rid_min.interface().len(),
        min.num_live_states() as f64 / rid_min.interface().len().max(1) as f64
    );
    Ok(())
}

/// How a command's recognitions are executed: spawn threads per call, or
/// dispatch to a warm [`Session`].
enum Runner {
    Spawn(Executor),
    Pool(Session),
}

impl Runner {
    fn from_opts(opts: &Opts) -> Result<Runner, String> {
        let threads = opts.get_usize("threads", default_threads())?;
        Ok(Runner::new(opts.get_bool("pool"), threads))
    }

    fn new(pooled: bool, threads: usize) -> Runner {
        if pooled {
            // The session's caller thread participates in every reach
            // phase, so size the pool one below the requested width.
            Runner::Pool(Session::new(threads.saturating_sub(1).max(1)))
        } else {
            Runner::Spawn(Executor::Team(threads))
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Runner::Spawn(_) => "spawn",
            Runner::Pool(_) => "pooled",
        }
    }

    fn recognize<CA: ChunkAutomaton>(
        &mut self,
        ca: &CA,
        text: &[u8],
        chunks: usize,
    ) -> CountedOutcome {
        match self {
            Runner::Spawn(executor) => recognize_counted(ca, text, chunks, *executor),
            Runner::Pool(session) => session.recognize_counted(ca, text, chunks),
        }
    }

    /// Pre-warms the pooled shape's per-worker state (no-op for spawn),
    /// so timed runs start from steady state.
    fn warm<CA: ChunkAutomaton>(&mut self, ca: &CA, sample: &[u8]) {
        if let Runner::Pool(session) = self {
            session.warm(ca, &sample[..sample.len().min(4096)]);
        }
    }

    /// Recognizes a whole stream, returning the accepted count — the
    /// pooled shape pipelines it as one `recognize_many` batch.
    fn recognize_batch<CA: ChunkAutomaton>(
        &mut self,
        ca: &CA,
        texts: &[Vec<u8>],
        chunks: usize,
    ) -> usize {
        match self {
            Runner::Spawn(executor) => texts
                .iter()
                .filter(|text| ridfa_core::csdpa::recognize(ca, text, chunks, *executor).accepted)
                .count(),
            Runner::Pool(session) => session
                .recognize_many(ca, texts, chunks)
                .iter()
                .filter(|&&v| v)
                .count(),
        }
    }
}

fn cmd_recognize(opts: &Opts) -> Result<(), String> {
    let nfa = load_nfa(opts)?;
    let variant = opts.get_value("variant")?.unwrap_or("rid");
    if opts.get_bool("stream") {
        return cmd_recognize_stream(opts, &nfa, variant);
    }
    let text = load_text(opts)?;
    let chunks = opts.get_usize("chunks", default_threads())?;
    let mut runner = Runner::from_opts(opts)?;

    let accepted = match variant {
        "rid" => {
            let rid = RiDfa::from_nfa(&nfa).minimized();
            report(&RidCa::new(&rid), &text, chunks, &mut runner)
        }
        "dfa" => {
            let dfa = minimize::minimize(&powerset::determinize(&nfa));
            report(&DfaCa::new(&dfa), &text, chunks, &mut runner)
        }
        "nfa" => report(&NfaCa::new(&nfa), &text, chunks, &mut runner),
        "convergent-rid" => {
            let rid = RiDfa::from_nfa(&nfa).minimized();
            report(&ConvergentRidCa::new(&rid), &text, chunks, &mut runner)
        }
        "convergent-dfa" => {
            let dfa = minimize::minimize(&powerset::determinize(&nfa));
            report(&ConvergentDfaCa::new(&dfa), &text, chunks, &mut runner)
        }
        other => {
            return Err(format!(
                "unknown variant {other:?} (dfa|nfa|rid|convergent-dfa|convergent-rid)"
            ))
        }
    };
    if accepted {
        Ok(())
    } else {
        Err("text rejected".into())
    }
}

fn report<CA: ChunkAutomaton>(ca: &CA, text: &[u8], chunks: usize, runner: &mut Runner) -> bool {
    let out = runner.recognize(ca, text, chunks);
    // `out.executor` is the shape that actually ran, not the one asked
    // for — Executor::Pooled without a session degrades to Auto and says
    // so here.
    println!(
        "{}: {} | {} bytes, {} chunks, {} transitions, reach {:.3} ms, join {:.3} ms, via {:?}",
        ca.name(),
        if out.accepted { "ACCEPTED" } else { "REJECTED" },
        text.len(),
        out.num_chunks,
        out.transitions,
        out.reach.as_secs_f64() * 1e3,
        out.join.as_secs_f64() * 1e3,
        out.executor,
    );
    out.accepted
}

/// The `recognize --stream` path: never loads the text; reads the file or
/// stdin through a [`StreamSession`] in `--block-size` blocks.
fn cmd_recognize_stream(opts: &Opts, nfa: &Nfa, variant: &str) -> Result<(), String> {
    if opts.get_bool("pool") {
        return Err("--stream manages its own worker pool; drop --pool".into());
    }
    let block_size = opts.get_usize("block-size", 1 << 20)?;
    if block_size == 0 {
        return Err("invalid value for --block-size: 0 (expected ≥ 1)".into());
    }
    let threads = opts.get_usize("threads", default_threads())?;
    let mut session = StreamSession::new(threads.saturating_sub(1).max(1), block_size);

    let rid;
    let dfa;
    let accepted = match variant {
        "rid" => {
            rid = RiDfa::from_nfa(nfa).minimized();
            stream_report(&RidCa::new(&rid), opts, &mut session)?
        }
        "convergent-rid" => {
            rid = RiDfa::from_nfa(nfa).minimized();
            stream_report(&ConvergentRidCa::new(&rid), opts, &mut session)?
        }
        "dfa" => {
            dfa = minimize::minimize(&powerset::determinize(nfa));
            stream_report(&DfaCa::new(&dfa), opts, &mut session)?
        }
        "convergent-dfa" => {
            dfa = minimize::minimize(&powerset::determinize(nfa));
            stream_report(&ConvergentDfaCa::new(&dfa), opts, &mut session)?
        }
        "nfa" => stream_report(&NfaCa::new(nfa), opts, &mut session)?,
        other => {
            return Err(format!(
                "unknown variant {other:?} (dfa|nfa|rid|convergent-dfa|convergent-rid)"
            ))
        }
    };
    if accepted {
        Ok(())
    } else {
        Err("text rejected".into())
    }
}

fn stream_report<CA: ChunkAutomaton>(
    ca: &CA,
    opts: &Opts,
    session: &mut StreamSession,
) -> Result<bool, String> {
    let out = match opts.get_value("text")? {
        Some("-") => session.recognize_stream(ca, std::io::stdin()),
        Some(path) => {
            let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
            session.recognize_stream(ca, file)
        }
        None => return Err("need --text FILE (or --text - for stdin)".into()),
    }
    .map_err(|e| e.to_string())?;
    print_stream_outcome(ca.name(), session, &out);
    Ok(out.accepted)
}

fn print_stream_outcome(name: &str, session: &StreamSession, out: &StreamOutcome) {
    let secs = out.elapsed.as_secs_f64().max(1e-9);
    println!(
        "{}: {} | streamed {} bytes in {} blocks of ≤{} KiB, {} transitions, \
         {:.1} MiB/s, compose {:.3} ms, ring {} KiB{}",
        name,
        if out.accepted { "ACCEPTED" } else { "REJECTED" },
        out.bytes,
        out.blocks,
        session.block_size() / 1024,
        out.transitions,
        out.bytes as f64 / secs / (1024.0 * 1024.0),
        out.compose.as_secs_f64() * 1e3,
        session.buffer_bytes() / 1024,
        if out.rejected_early {
            " (rejected early, rest of stream skipped)"
        } else {
            ""
        },
    );
}

fn cmd_drive(opts: &Opts) -> Result<(), String> {
    let nfa = load_nfa(opts)?;
    let text = load_text(opts)?;
    let chunks = opts.get_usize("chunks", default_threads())?;
    let mut runner = Runner::from_opts(opts)?;

    let dfa = minimize::minimize(&powerset::determinize(&nfa));
    let rid = RiDfa::from_nfa(&nfa).minimized();
    let verdicts = [
        report(&DfaCa::new(&dfa), &text, chunks, &mut runner),
        report(&NfaCa::new(&nfa), &text, chunks, &mut runner),
        report(&RidCa::new(&rid), &text, chunks, &mut runner),
        report(&ConvergentDfaCa::new(&dfa), &text, chunks, &mut runner),
        report(&ConvergentRidCa::new(&rid), &text, chunks, &mut runner),
    ];
    if verdicts.iter().any(|&v| v != verdicts[0]) {
        return Err("variants disagree — this is a bug, please report".into());
    }
    Ok(())
}

/// Batch/serving mode: generate `--requests` syslog texts with the
/// `traffic` workload generator and recognize them all through a warm
/// [`Session`] (one pipelined task stream), reporting aggregate
/// throughput and mean per-text latency. `--no-pool` recognizes each
/// text with the spawning executor instead, for comparison.
fn cmd_serve(opts: &Opts) -> Result<(), String> {
    if opts.get_bool("stream") {
        return cmd_serve_stream(opts);
    }
    let requests = opts.get_usize("requests", 256)?;
    let len = opts.get_usize("len", 2048)?;
    let chunks = opts.get_usize("chunks", 4)?;
    let threads = opts.get_usize("threads", default_threads())?;
    let variant = opts.get_value("variant")?.unwrap_or("convergent-rid");
    let pooled = !opts.get_bool("no-pool");

    let nfa = ridfa_workloads::traffic::nfa();
    // One malformed record stream in eight keeps the rejection path warm.
    let texts = ridfa_workloads::traffic::request_stream(requests, len, 8);
    let total_bytes: usize = texts.iter().map(Vec::len).sum();

    let mut runner = Runner::new(pooled, threads);
    let rid;
    let dfa;
    let accepted = match variant {
        "rid" => {
            rid = RiDfa::from_nfa(&nfa).minimized();
            serve(&RidCa::new(&rid), &texts, chunks, &mut runner)
        }
        "convergent-rid" => {
            rid = RiDfa::from_nfa(&nfa).minimized();
            serve(&ConvergentRidCa::new(&rid), &texts, chunks, &mut runner)
        }
        "dfa" => {
            dfa = minimize::minimize(&powerset::determinize(&nfa));
            serve(&DfaCa::new(&dfa), &texts, chunks, &mut runner)
        }
        "convergent-dfa" => {
            dfa = minimize::minimize(&powerset::determinize(&nfa));
            serve(&ConvergentDfaCa::new(&dfa), &texts, chunks, &mut runner)
        }
        other => {
            return Err(format!(
                "unknown variant {other:?} (dfa|rid|convergent-dfa|convergent-rid)"
            ))
        }
    };
    let expected = texts.len() - texts.len() / 8;
    if accepted != expected {
        return Err(format!(
            "acceptance mismatch: {accepted} accepted, expected {expected}"
        ));
    }
    println!(
        "serve: {} texts OK ({} accepted / {} rejected, {} bytes total)",
        texts.len(),
        accepted,
        texts.len() - accepted,
        total_bytes
    );
    Ok(())
}

/// Streaming serve mode: validate one long *generated* record pipe
/// (`workloads::traffic::RecordSource`) through a [`StreamSession`] —
/// the record stream is produced lazily and scanned in blocks, so
/// neither side ever holds more than O(threads × block-size) bytes. Runs
/// an accepted pipe and a corrupted (rejected) pipe, so both verdict
/// paths stay exercised.
fn cmd_serve_stream(opts: &Opts) -> Result<(), String> {
    let bytes = opts.get_usize("bytes", 64 << 20)? as u64;
    let block_size = opts.get_usize("block-size", 1 << 20)?;
    if block_size == 0 {
        return Err("invalid value for --block-size: 0 (expected ≥ 1)".into());
    }
    let threads = opts.get_usize("threads", default_threads())?;
    let variant = opts.get_value("variant")?.unwrap_or("convergent-rid");

    let nfa = ridfa_workloads::traffic::nfa();
    let mut session = StreamSession::new(threads.saturating_sub(1).max(1), block_size);
    let rid;
    let dfa;
    match variant {
        "rid" => {
            rid = RiDfa::from_nfa(&nfa).minimized();
            serve_stream(&RidCa::new(&rid), bytes, &mut session)
        }
        "convergent-rid" => {
            rid = RiDfa::from_nfa(&nfa).minimized();
            serve_stream(&ConvergentRidCa::new(&rid), bytes, &mut session)
        }
        "dfa" => {
            dfa = minimize::minimize(&powerset::determinize(&nfa));
            serve_stream(&DfaCa::new(&dfa), bytes, &mut session)
        }
        "convergent-dfa" => {
            dfa = minimize::minimize(&powerset::determinize(&nfa));
            serve_stream(&ConvergentDfaCa::new(&dfa), bytes, &mut session)
        }
        other => Err(format!(
            "unknown variant {other:?} (dfa|rid|convergent-dfa|convergent-rid)"
        )),
    }
}

fn serve_stream<CA: ChunkAutomaton>(
    ca: &CA,
    bytes: u64,
    session: &mut StreamSession,
) -> Result<(), String> {
    use ridfa_workloads::traffic::{text, RecordSource};

    session.warm(ca, &text(4096, 0));

    let out = session
        .recognize_stream(ca, RecordSource::new(bytes, 1))
        .map_err(|e| e.to_string())?;
    print_stream_outcome(ca.name(), session, &out);
    if !out.accepted {
        return Err("conforming record pipe was rejected — this is a bug".into());
    }

    // The rejection path: a short pipe with one malformed record. Records
    // are at most ~128 bytes, so index `reject_bytes / 256` is always
    // among the records the pipe actually emits.
    let reject_bytes = bytes.clamp(1, 1 << 20);
    let bad = session
        .recognize_stream(
            ca,
            RecordSource::with_corruption(reject_bytes, 2, reject_bytes / 256),
        )
        .map_err(|e| e.to_string())?;
    print_stream_outcome(ca.name(), session, &bad);
    if bad.accepted {
        return Err("corrupted record pipe was accepted — this is a bug".into());
    }
    println!(
        "serve --stream: OK ({} accepted bytes, corrupted pipe rejected{})",
        out.bytes,
        if bad.rejected_early { " early" } else { "" },
    );
    Ok(())
}

fn serve<CA: ChunkAutomaton>(
    ca: &CA,
    texts: &[Vec<u8>],
    chunks: usize,
    runner: &mut Runner,
) -> usize {
    if let Some(sample) = texts.first() {
        runner.warm(ca, sample);
    }
    let start = Instant::now();
    let accepted = runner.recognize_batch(ca, texts, chunks);
    let elapsed = start.elapsed();
    let total_bytes: usize = texts.iter().map(Vec::len).sum();
    println!(
        "{} [{}]: {} texts in {:.3} ms | {:.1} texts/s | {:.1} MiB/s | {:.1} µs/text",
        ca.name(),
        runner.name(),
        texts.len(),
        elapsed.as_secs_f64() * 1e3,
        texts.len() as f64 / elapsed.as_secs_f64(),
        total_bytes as f64 / elapsed.as_secs_f64() / (1024.0 * 1024.0),
        elapsed.as_secs_f64() * 1e6 / texts.len().max(1) as f64,
    );
    accepted
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}
