//! `ridfa` — command-line generator / recognizer / test driver, mirroring
//! the paper's Java tool (Sect. 4: "a generator of the RI-DFA automaton
//! from either an RE or an FA, a parallel recognizer for recognizing user
//! supplied texts, and a test driver to measure performance").
//!
//! ```text
//! ridfa gen --regex '(a|b)*abb' --out machine.nfa      # RE → NFA (text format)
//! ridfa info --regex '(a|b)*abb'                       # construction report
//! ridfa recognize --regex '(a|b)*abb' --text input.txt --variant rid --chunks 8
//! ridfa recognize --regex '(a|b)*abb' --text input.txt --pool  # warm session
//! ridfa drive --regex '(a|b)*abb' --text input.txt     # compare all variants
//! ridfa serve --requests 1024 --len 2048               # batch/serving mode
//! ridfa compile --regex '(a|b)*abb' --out p.rida       # RE → binary artifact
//! ridfa serve --listen 127.0.0.1:0 --patterns pats.txt # network serving mode
//! ridfa query --connect 127.0.0.1:4041 --pattern p --text input.txt
//! ridfa help
//! ```

use std::io::Read;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use ridfa_automata::dfa::{minimize, powerset, Dfa};
use ridfa_automata::nfa::{glushkov, Nfa};
use ridfa_automata::serialize::binary;
use ridfa_automata::{regex, serialize, ConstructionBudget};
use ridfa_core::csdpa::{
    plan, recognize_counted, resident_footprint, Budget, ChunkAutomaton, ConvergentDfaCa,
    ConvergentRidCa, CountedOutcome, DfaCa, EnginePlan, Executor, FeasibleTable, Kernel, NfaCa,
    Outcome, RecognizeError, RegistryConfig, RidCa, Session, StreamError, StreamOutcome,
    StreamSession,
};
use ridfa_core::ridfa::{ridfa_from_bytes, ridfa_to_bytes, ridfa_to_bytes_with_engine, RiDfa};
use ridfa_core::serve::{protocol, ServeConfig, Server};
use ridfa_core::sfa::Sfa;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(|s| s.as_str()) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = Opts::parse(&args[1..])
        .map_err(CliError::Usage)
        .and_then(|opts| match command {
            "gen" => cmd_gen(&opts),
            "info" => cmd_info(&opts),
            "recognize" => cmd_recognize(&opts),
            "drive" => cmd_drive(&opts),
            "serve" => cmd_serve(&opts),
            "compile" => cmd_compile(&opts),
            "inspect-artifact" => cmd_inspect_artifact(&opts),
            "query" => cmd_query(&opts),
            "help" | "--help" | "-h" => {
                println!("{USAGE}");
                Ok(())
            }
            other => Err(CliError::Usage(format!(
                "unknown command {other:?}\n{USAGE}"
            ))),
        });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => error.report(),
    }
}

/// Typed CLI failure: each category carries a distinct exit code, so a
/// caller can tell a rejected text from a broken reader from an expired
/// deadline without parsing stderr.
enum CliError {
    /// The text is simply not in the language (exit 1) — mirrors `grep`.
    Rejected,
    /// Bad flags, patterns, or configuration (exit 2).
    Usage(String),
    /// The reader or filesystem failed (exit 3).
    Io(String),
    /// The `--timeout-ms` deadline expired, or the run was cancelled
    /// (exit 4).
    Interrupted(String),
    /// A `--max-states` construction budget was exhausted (exit 5).
    Budget(String),
    /// A contained internal fault (exit 6) — reported, never re-thrown.
    Internal(String),
}

/// Plain-`String` errors from helpers are configuration-level.
impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError::Usage(message)
    }
}

impl CliError {
    /// Prints the one-line message and yields the process exit code.
    fn report(self) -> ExitCode {
        let (code, message) = match self {
            CliError::Rejected => (1, "text rejected".into()),
            CliError::Usage(m) => (2, m),
            CliError::Io(m) => (3, m),
            CliError::Interrupted(m) => (4, m),
            CliError::Budget(m) => (5, m),
            CliError::Internal(m) => (6, m),
        };
        eprintln!("error: {message}");
        ExitCode::from(code)
    }
}

fn recognize_error(error: RecognizeError) -> CliError {
    match error {
        RecognizeError::DeadlineExceeded => {
            CliError::Interrupted("deadline exceeded (--timeout-ms)".into())
        }
        RecognizeError::Cancelled => CliError::Interrupted("recognition cancelled".into()),
        RecognizeError::Panicked(m) => CliError::Internal(format!("contained panic: {m}")),
    }
}

fn stream_error(error: StreamError) -> CliError {
    match error {
        StreamError::Io(e) => CliError::Io(e.to_string()),
        StreamError::DeadlineExceeded => {
            CliError::Interrupted("deadline exceeded (--timeout-ms)".into())
        }
        StreamError::Cancelled => CliError::Interrupted("recognition cancelled".into()),
        StreamError::Panicked(m) => CliError::Internal(format!("contained panic: {m}")),
    }
}

const USAGE: &str = "\
ridfa — parallel recognizer for regular texts with minimal speculation

USAGE:
  ridfa gen        --regex PATTERN [--out FILE]        print/save the NFA
  ridfa info       (--regex PATTERN | --nfa FILE | --workload NAME)
                                                       construction report
  ridfa recognize  (--regex PATTERN | --nfa FILE | --workload NAME)
                   --text FILE
                   [--variant dfa|nfa|rid|convergent-dfa|convergent-rid]
                   [--chunks N] [--threads N] [--pool]  recognize one text
                   [--timeout-ms MS] [--max-states N]   …under a deadline /
                                                        construction cap
                   [--stream] [--block-size BYTES]      …or recognize the
                                                        text as a bounded-
                                                        memory stream (the
                                                        file/stdin is never
                                                        loaded whole)
                   [--separator BYTE]                   snap stream blocks
                                                        back to the last
                                                        record separator
                                                        so speculative runs
                                                        start on record
                                                        boundaries
  ridfa drive      (--regex PATTERN | --nfa FILE | --workload NAME)
                   --text FILE [--chunks N] [--pool]    compare all variants
  ridfa serve      [--requests N] [--len BYTES] [--chunks N] [--threads N]
                   [--variant ...] [--no-pool]          batch-recognize a
                                                        generated syslog
                                                        stream (workloads::
                                                        traffic) through a
                                                        warm session
                   [--stream] [--bytes N]               …or validate one
                   [--block-size BYTES]                 N-byte generated
                                                        record pipe through
                                                        a StreamSession
  ridfa serve      --listen ADDR --patterns FILE        network serving mode:
                   [--max-requests N] [--deadline-ms MS] bind ADDR (port 0
                   [--idle-ms MS] [--max-body BYTES]    picks a free port),
                   [--threads N] [--block-size BYTES]   load the pattern
                   [--max-states N] [--max-table-bytes N] file, serve until
                   [--shards N]                         the request quota;
                                                        N loop threads, each
                                                        with its own registry
                                                        replica
                   [--reload-ms MS]                     watch the pattern
                                                        file, hot-reload
                                                        edits into running
                                                        shards
                   [--offload-bytes BYTES]              bodies above BYTES
                                                        scan in bounded
                                                        slices off the tick
                                                        (big bodies never
                                                        stall small ones)
  ridfa compile    (--regex PATTERN | --nfa FILE | --workload NAME)
                   --out FILE [--kind ridfa|dfa]        build the (minimized)
                   [--max-states N]                     automaton once, seal
                                                        it as a checksummed
                                                        binary artifact
                   [--engine auto|lockstep|sfa|feasible] resolve the engine
                   [--separator BYTE]                   plan now and bake its
                                                        tables (SFA /
                                                        feasible-start) into
                                                        the artifact; servers
                                                        load them instead of
                                                        re-deriving
  ridfa inspect-artifact --file FILE                    validate + describe
                                                        an artifact
  ridfa query      --connect ADDR --pattern ID          request(s) against a
                   --text FILE [--repeat N]             running server; C
                   [--concurrency C]                    connections × N
                                                        pipelined requests;
                                                        exit code = worst
                                                        verdict seen
  ridfa help

A `--patterns FILE` holds one pattern per line: `ID REGEX`, or
`ID @FILE.rida` to load a compiled artifact (cold start without any
powerset construction). Blank lines and `#` comments are skipped.

`--pool` recognizes through a persistent Session (no thread spawn per
text, warm per-worker scan state) instead of spawning threads per call.
`--stream` reads fixed-size blocks through a reusable ring and composes
chunk mappings eagerly: live memory is O(threads × block-size) no matter
how large the input. `--workload traffic|bible` uses a built-in benchmark
pattern instead of --regex/--nfa.

`--timeout-ms MS` bounds wall time: recognition past the deadline stops
at the next 4 KiB block boundary with exit code 4, never a partial
verdict. `--max-states N` caps every automaton construction; exceeding
it is exit code 5 instead of an OOM kill.

Exit codes: 0 = accepted · 1 = rejected · 2 = usage/config error ·
3 = I/O error · 4 = deadline exceeded or cancelled · 5 = construction
budget exceeded · 6 = contained internal fault.";

struct Opts {
    flags: Vec<(String, String)>,
}

impl Opts {
    /// Parses `--name [value]` pairs. A following token that itself
    /// starts with `--` is **not** consumed as a value (it is the next
    /// flag; the previous flag simply has no value), and stray
    /// positional tokens are rejected.
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut flags = Vec::new();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!(
                    "unexpected argument {arg:?} (options are --name [value])"
                ));
            };
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => iter.next().cloned().unwrap_or_default(),
                _ => String::new(),
            };
            flags.push((name.to_string(), value));
        }
        Ok(Opts { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Is the boolean flag present (with or without a value)?
    fn get_bool(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// The flag's value, requiring one if the flag is present at all
    /// (`--text --variant rid` errors instead of silently reading a file
    /// named `--variant`).
    fn get_value(&self, name: &str) -> Result<Option<&str>, String> {
        match self.get(name) {
            Some("") => Err(format!("flag --{name} requires a value")),
            other => Ok(other),
        }
    }

    /// Numeric flag with a default; malformed numbers are an error, not
    /// a silent fallback.
    fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get_value(name)? {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                format!("invalid value for --{name}: {v:?} (expected a non-negative integer)")
            }),
        }
    }
}

/// Loads the NFA from `--regex`, `--nfa`, or a built-in `--workload`.
fn load_nfa(opts: &Opts) -> Result<Nfa, CliError> {
    if let Some(pattern) = opts.get_value("regex")? {
        let ast = regex::parse(pattern).map_err(|e| e.to_string())?;
        return glushkov::build(&ast).map_err(|e| CliError::Usage(e.to_string()));
    }
    if let Some(path) = opts.get_value("nfa")? {
        let text =
            std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        return serialize::nfa_from_text(&text).map_err(|e| CliError::Usage(e.to_string()));
    }
    if let Some(name) = opts.get_value("workload")? {
        return match name {
            "traffic" => Ok(ridfa_workloads::traffic::nfa()),
            "bible" => Ok(ridfa_workloads::bible::nfa()),
            other => Err(CliError::Usage(format!(
                "unknown workload {other:?} (traffic|bible)"
            ))),
        };
    }
    Err(CliError::Usage(
        "need --regex PATTERN, --nfa FILE, or --workload NAME".into(),
    ))
}

fn load_text(opts: &Opts) -> Result<Vec<u8>, CliError> {
    match opts.get_value("text")? {
        Some("-") => {
            let mut buffer = Vec::new();
            std::io::stdin()
                .lock()
                .read_to_end(&mut buffer)
                .map_err(|e| CliError::Io(e.to_string()))?;
            Ok(buffer)
        }
        Some(path) => std::fs::read(path).map_err(|e| CliError::Io(format!("{path}: {e}"))),
        None => Err(CliError::Usage(
            "need --text FILE (or --text - for stdin)".into(),
        )),
    }
}

/// `--timeout-ms` as a recognition budget (absent → no deadline).
fn timeout_budget(opts: &Opts) -> Result<Option<Budget>, String> {
    match opts.get_value("timeout-ms")? {
        None => Ok(None),
        Some(v) => {
            let ms: u64 = v.parse().map_err(|_| {
                format!("invalid value for --timeout-ms: {v:?} (expected milliseconds)")
            })?;
            Ok(Some(Budget::with_timeout(Duration::from_millis(ms))))
        }
    }
}

/// `--max-states` as a construction budget (absent → unbudgeted).
fn construction_budget(opts: &Opts) -> Result<Option<ConstructionBudget>, String> {
    match opts.get_value("max-states")? {
        None => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(ConstructionBudget::with_max_states(n))),
            _ => Err(format!(
                "invalid value for --max-states: {v:?} (expected an integer ≥ 1)"
            )),
        },
    }
}

/// Builds the minimized RI-DFA, honoring `--max-states`.
fn build_rid(nfa: &Nfa, opts: &Opts) -> Result<RiDfa, CliError> {
    Ok(match construction_budget(opts)? {
        None => RiDfa::from_nfa(nfa),
        Some(budget) => {
            RiDfa::from_nfa_budgeted(nfa, &budget).map_err(|e| CliError::Budget(e.to_string()))?
        }
    }
    .minimized())
}

/// Builds the minimal DFA, honoring `--max-states`.
fn build_dfa(nfa: &Nfa, opts: &Opts) -> Result<Dfa, CliError> {
    let dfa = match construction_budget(opts)? {
        None => powerset::determinize(nfa),
        Some(budget) => powerset::determinize_budgeted(nfa, &budget)
            .map_err(|e| CliError::Budget(e.to_string()))?,
    };
    Ok(minimize::minimize(&dfa))
}

fn cmd_gen(opts: &Opts) -> Result<(), CliError> {
    let nfa = load_nfa(opts)?;
    let text = serialize::nfa_to_text(&nfa);
    match opts.get_value("out")? {
        Some(path) => std::fs::write(path, text).map_err(|e| CliError::Io(format!("{path}: {e}"))),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn cmd_info(opts: &Opts) -> Result<(), CliError> {
    let nfa = load_nfa(opts)?;
    let cap = construction_budget(opts)?;
    let t0 = Instant::now();
    let dfa = match &cap {
        None => powerset::determinize(&nfa),
        Some(budget) => powerset::determinize_budgeted(&nfa, budget)
            .map_err(|e| CliError::Budget(e.to_string()))?,
    };
    let t_dfa = t0.elapsed();
    let t1 = Instant::now();
    let min = minimize::minimize(&dfa);
    let t_min = t1.elapsed();
    let t2 = Instant::now();
    let rid = match &cap {
        None => RiDfa::from_nfa(&nfa),
        Some(budget) => {
            RiDfa::from_nfa_budgeted(&nfa, budget).map_err(|e| CliError::Budget(e.to_string()))?
        }
    };
    let t_rid = t2.elapsed();
    let t3 = Instant::now();
    let rid_min = rid.minimized();
    let t_ridmin = t3.elapsed();

    println!(
        "NFA          : {} states, {} transitions",
        nfa.num_states(),
        nfa.num_transitions()
    );
    println!(
        "DFA          : {} live states        (powerset, {:.3} ms)",
        dfa.num_live_states(),
        t_dfa.as_secs_f64() * 1e3
    );
    println!(
        "minimal DFA  : {} live states        (Hopcroft, +{:.3} ms)",
        min.num_live_states(),
        t_min.as_secs_f64() * 1e3
    );
    println!(
        "RI-DFA       : {} live states, {} interface states ({:.3} ms)",
        rid.num_live_states(),
        rid.interface().len(),
        t_rid.as_secs_f64() * 1e3
    );
    println!(
        "RI-DFA (min) : interface reduced {} → {} (+{:.3} ms)",
        rid.interface().len(),
        rid_min.interface().len(),
        t_ridmin.as_secs_f64() * 1e3
    );
    println!(
        "speculation  : DFA variant starts {} runs/chunk, RID starts {} — {:.2}× fewer",
        min.num_live_states(),
        rid_min.interface().len(),
        min.num_live_states() as f64 / rid_min.interface().len().max(1) as f64
    );
    Ok(())
}

/// How a command's recognitions are executed: spawn threads per call, or
/// dispatch to a warm [`Session`].
enum Runner {
    Spawn(Executor),
    Pool(Session),
}

impl Runner {
    fn from_opts(opts: &Opts) -> Result<Runner, String> {
        let threads = opts.get_usize("threads", default_threads())?;
        Ok(Runner::new(opts.get_bool("pool"), threads))
    }

    fn new(pooled: bool, threads: usize) -> Runner {
        if pooled {
            // The session's caller thread participates in every reach
            // phase, so size the pool one below the requested width.
            Runner::Pool(Session::new(threads.saturating_sub(1).max(1)))
        } else {
            Runner::Spawn(Executor::Team(threads))
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Runner::Spawn(_) => "spawn",
            Runner::Pool(_) => "pooled",
        }
    }

    fn recognize<CA: ChunkAutomaton>(
        &mut self,
        ca: &CA,
        text: &[u8],
        chunks: usize,
    ) -> CountedOutcome {
        match self {
            Runner::Spawn(executor) => recognize_counted(ca, text, chunks, *executor),
            Runner::Pool(session) => session.recognize_counted(ca, text, chunks),
        }
    }

    /// Recognizes under a deadline/cancellation budget; typed errors, no
    /// partial verdicts.
    fn recognize_budgeted<CA: ChunkAutomaton>(
        &mut self,
        ca: &CA,
        text: &[u8],
        chunks: usize,
        budget: &Budget,
    ) -> Result<Outcome, RecognizeError> {
        match self {
            Runner::Spawn(executor) => {
                ridfa_core::csdpa::recognize_budgeted(ca, text, chunks, *executor, budget)
            }
            Runner::Pool(session) => session.recognize_budgeted(ca, text, chunks, budget),
        }
    }

    /// Pre-warms the pooled shape's per-worker state (no-op for spawn),
    /// so timed runs start from steady state.
    fn warm<CA: ChunkAutomaton>(&mut self, ca: &CA, sample: &[u8]) {
        if let Runner::Pool(session) = self {
            session.warm(ca, &sample[..sample.len().min(4096)]);
        }
    }

    /// Recognizes a whole stream, returning the accepted count — the
    /// pooled shape pipelines it as one `recognize_many` batch.
    fn recognize_batch<CA: ChunkAutomaton>(
        &mut self,
        ca: &CA,
        texts: &[Vec<u8>],
        chunks: usize,
    ) -> usize {
        match self {
            Runner::Spawn(executor) => texts
                .iter()
                .filter(|text| ridfa_core::csdpa::recognize(ca, text, chunks, *executor).accepted)
                .count(),
            Runner::Pool(session) => session
                .recognize_many(ca, texts, chunks)
                .iter()
                .filter(|&&v| v)
                .count(),
        }
    }
}

fn cmd_recognize(opts: &Opts) -> Result<(), CliError> {
    let nfa = load_nfa(opts)?;
    let variant = opts.get_value("variant")?.unwrap_or("rid");
    if opts.get_bool("stream") {
        return cmd_recognize_stream(opts, &nfa, variant);
    }
    let text = load_text(opts)?;
    let chunks = opts.get_usize("chunks", default_threads())?;
    let budget = timeout_budget(opts)?;
    let mut runner = Runner::from_opts(opts)?;

    let accepted = match variant {
        "rid" => {
            let rid = build_rid(&nfa, opts)?;
            run(
                &RidCa::new(&rid),
                &text,
                chunks,
                &mut runner,
                budget.as_ref(),
            )?
        }
        "dfa" => {
            let dfa = build_dfa(&nfa, opts)?;
            run(
                &DfaCa::new(&dfa),
                &text,
                chunks,
                &mut runner,
                budget.as_ref(),
            )?
        }
        "nfa" => run(
            &NfaCa::new(&nfa),
            &text,
            chunks,
            &mut runner,
            budget.as_ref(),
        )?,
        "convergent-rid" => {
            let rid = build_rid(&nfa, opts)?;
            run(
                &ConvergentRidCa::new(&rid),
                &text,
                chunks,
                &mut runner,
                budget.as_ref(),
            )?
        }
        "convergent-dfa" => {
            let dfa = build_dfa(&nfa, opts)?;
            run(
                &ConvergentDfaCa::new(&dfa),
                &text,
                chunks,
                &mut runner,
                budget.as_ref(),
            )?
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown variant {other:?} (dfa|nfa|rid|convergent-dfa|convergent-rid)"
            )))
        }
    };
    if accepted {
        Ok(())
    } else {
        Err(CliError::Rejected)
    }
}

/// Recognizes through the runner — budgeted (typed errors, no transition
/// counter) when `--timeout-ms` is set, the counted report otherwise.
fn run<CA: ChunkAutomaton>(
    ca: &CA,
    text: &[u8],
    chunks: usize,
    runner: &mut Runner,
    budget: Option<&Budget>,
) -> Result<bool, CliError> {
    let Some(budget) = budget else {
        return Ok(report(ca, text, chunks, runner));
    };
    let out = runner
        .recognize_budgeted(ca, text, chunks, budget)
        .map_err(recognize_error)?;
    println!(
        "{}: {} | {} bytes, {} chunks, via {:?}{}",
        ca.name(),
        if out.accepted { "ACCEPTED" } else { "REJECTED" },
        text.len(),
        out.num_chunks,
        out.executor,
        kernel_suffix(out.kernel),
    );
    Ok(out.accepted)
}

/// `", kernel <name>"` when the outcome records the scan strategy its
/// speculative chunk scans actually executed; empty otherwise. The name
/// is the *resolved* kernel — `auto` never appears here.
fn kernel_suffix(kernel: Option<Kernel>) -> String {
    kernel.map_or_else(String::new, |k| format!(", kernel {}", k.name()))
}

fn report<CA: ChunkAutomaton>(ca: &CA, text: &[u8], chunks: usize, runner: &mut Runner) -> bool {
    let out = runner.recognize(ca, text, chunks);
    // `out.executor` is the shape that actually ran, not the one asked
    // for — Executor::Pooled without a session degrades to Auto and says
    // so here.
    println!(
        "{}: {} | {} bytes, {} chunks, {} transitions, reach {:.3} ms, join {:.3} ms, via {:?}{}",
        ca.name(),
        if out.accepted { "ACCEPTED" } else { "REJECTED" },
        text.len(),
        out.num_chunks,
        out.transitions,
        out.reach.as_secs_f64() * 1e3,
        out.join.as_secs_f64() * 1e3,
        out.executor,
        kernel_suffix(out.kernel),
    );
    out.accepted
}

/// The `recognize --stream` path: never loads the text; reads the file or
/// stdin through a [`StreamSession`] in `--block-size` blocks.
fn cmd_recognize_stream(opts: &Opts, nfa: &Nfa, variant: &str) -> Result<(), CliError> {
    if opts.get_bool("pool") {
        return Err(CliError::Usage(
            "--stream manages its own worker pool; drop --pool".into(),
        ));
    }
    let block_size = opts.get_usize("block-size", 1 << 20)?;
    if block_size == 0 {
        return Err(CliError::Usage(
            "invalid value for --block-size: 0 (expected ≥ 1)".into(),
        ));
    }
    let threads = opts.get_usize("threads", default_threads())?;
    let budget = timeout_budget(opts)?;
    let mut session = StreamSession::new(threads.saturating_sub(1).max(1), block_size);
    if let Some(v) = opts.get_value("separator")? {
        let sep = v.parse::<u8>().map_err(|_| {
            CliError::Usage(format!(
                "invalid value for --separator: {v:?} (expected a byte 0-255)"
            ))
        })?;
        session.set_separator(Some(sep));
    }

    let rid;
    let dfa;
    let accepted = match variant {
        "rid" => {
            rid = build_rid(nfa, opts)?;
            stream_report(&RidCa::new(&rid), opts, &mut session, budget.as_ref())?
        }
        "convergent-rid" => {
            rid = build_rid(nfa, opts)?;
            stream_report(
                &ConvergentRidCa::new(&rid),
                opts,
                &mut session,
                budget.as_ref(),
            )?
        }
        "dfa" => {
            dfa = build_dfa(nfa, opts)?;
            stream_report(&DfaCa::new(&dfa), opts, &mut session, budget.as_ref())?
        }
        "convergent-dfa" => {
            dfa = build_dfa(nfa, opts)?;
            stream_report(
                &ConvergentDfaCa::new(&dfa),
                opts,
                &mut session,
                budget.as_ref(),
            )?
        }
        "nfa" => stream_report(&NfaCa::new(nfa), opts, &mut session, budget.as_ref())?,
        other => {
            return Err(CliError::Usage(format!(
                "unknown variant {other:?} (dfa|nfa|rid|convergent-dfa|convergent-rid)"
            )))
        }
    };
    if accepted {
        Ok(())
    } else {
        Err(CliError::Rejected)
    }
}

fn stream_report<CA: ChunkAutomaton>(
    ca: &CA,
    opts: &Opts,
    session: &mut StreamSession,
    budget: Option<&Budget>,
) -> Result<bool, CliError> {
    fn drive<CA: ChunkAutomaton>(
        ca: &CA,
        session: &mut StreamSession,
        reader: impl Read + Send,
        budget: Option<&Budget>,
    ) -> Result<StreamOutcome, CliError> {
        match budget {
            None => session
                .recognize_stream(ca, reader)
                .map_err(|e| CliError::Io(e.to_string())),
            Some(budget) => session
                .recognize_stream_budgeted(ca, reader, budget)
                .map_err(stream_error),
        }
    }
    let out = match opts.get_value("text")? {
        Some("-") => drive(ca, session, std::io::stdin(), budget)?,
        Some(path) => {
            let file =
                std::fs::File::open(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            drive(ca, session, file, budget)?
        }
        None => {
            return Err(CliError::Usage(
                "need --text FILE (or --text - for stdin)".into(),
            ))
        }
    };
    print_stream_outcome(ca.name(), session, &out);
    Ok(out.accepted)
}

fn print_stream_outcome(name: &str, session: &StreamSession, out: &StreamOutcome) {
    let secs = out.elapsed.as_secs_f64().max(1e-9);
    println!(
        "{}: {} | streamed {} bytes in {} blocks of ≤{} KiB, {} transitions, \
         {:.1} MiB/s, compose {:.3} ms, ring {} KiB{}{}",
        name,
        if out.accepted { "ACCEPTED" } else { "REJECTED" },
        out.bytes,
        out.blocks,
        session.block_size() / 1024,
        out.transitions,
        out.bytes as f64 / secs / (1024.0 * 1024.0),
        out.compose.as_secs_f64() * 1e3,
        session.buffer_bytes() / 1024,
        kernel_suffix(out.kernel),
        if out.rejected_early {
            " (rejected early, rest of stream skipped)"
        } else {
            ""
        },
    );
}

fn cmd_drive(opts: &Opts) -> Result<(), CliError> {
    let nfa = load_nfa(opts)?;
    let text = load_text(opts)?;
    let chunks = opts.get_usize("chunks", default_threads())?;
    let mut runner = Runner::from_opts(opts)?;

    let dfa = build_dfa(&nfa, opts)?;
    let rid = build_rid(&nfa, opts)?;
    let verdicts = [
        report(&DfaCa::new(&dfa), &text, chunks, &mut runner),
        report(&NfaCa::new(&nfa), &text, chunks, &mut runner),
        report(&RidCa::new(&rid), &text, chunks, &mut runner),
        report(&ConvergentDfaCa::new(&dfa), &text, chunks, &mut runner),
        report(&ConvergentRidCa::new(&rid), &text, chunks, &mut runner),
    ];
    if verdicts.iter().any(|&v| v != verdicts[0]) {
        return Err(CliError::Internal(
            "variants disagree — this is a bug, please report".into(),
        ));
    }
    Ok(())
}

/// Batch/serving mode: generate `--requests` syslog texts with the
/// `traffic` workload generator and recognize them all through a warm
/// [`Session`] (one pipelined task stream), reporting aggregate
/// throughput and mean per-text latency. `--no-pool` recognizes each
/// text with the spawning executor instead, for comparison.
fn cmd_serve(opts: &Opts) -> Result<(), CliError> {
    if opts.get("listen").is_some() {
        return cmd_serve_listen(opts);
    }
    if opts.get_bool("stream") {
        return cmd_serve_stream(opts);
    }
    let requests = opts.get_usize("requests", 256)?;
    let len = opts.get_usize("len", 2048)?;
    let chunks = opts.get_usize("chunks", 4)?;
    let threads = opts.get_usize("threads", default_threads())?;
    let variant = opts.get_value("variant")?.unwrap_or("convergent-rid");
    let pooled = !opts.get_bool("no-pool");

    let nfa = ridfa_workloads::traffic::nfa();
    // One malformed record stream in eight keeps the rejection path warm.
    let texts = ridfa_workloads::traffic::request_stream(requests, len, 8);
    let total_bytes: usize = texts.iter().map(Vec::len).sum();

    let mut runner = Runner::new(pooled, threads);
    let rid;
    let dfa;
    let accepted = match variant {
        "rid" => {
            rid = build_rid(&nfa, opts)?;
            serve(&RidCa::new(&rid), &texts, chunks, &mut runner)
        }
        "convergent-rid" => {
            rid = build_rid(&nfa, opts)?;
            serve(&ConvergentRidCa::new(&rid), &texts, chunks, &mut runner)
        }
        "dfa" => {
            dfa = build_dfa(&nfa, opts)?;
            serve(&DfaCa::new(&dfa), &texts, chunks, &mut runner)
        }
        "convergent-dfa" => {
            dfa = build_dfa(&nfa, opts)?;
            serve(&ConvergentDfaCa::new(&dfa), &texts, chunks, &mut runner)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown variant {other:?} (dfa|rid|convergent-dfa|convergent-rid)"
            )))
        }
    };
    let expected = texts.len() - texts.len() / 8;
    if accepted != expected {
        return Err(CliError::Internal(format!(
            "acceptance mismatch: {accepted} accepted, expected {expected}"
        )));
    }
    println!(
        "serve: {} texts OK ({} accepted / {} rejected, {} bytes total)",
        texts.len(),
        accepted,
        texts.len() - accepted,
        total_bytes
    );
    Ok(())
}

/// Streaming serve mode: validate one long *generated* record pipe
/// (`workloads::traffic::RecordSource`) through a [`StreamSession`] —
/// the record stream is produced lazily and scanned in blocks, so
/// neither side ever holds more than O(threads × block-size) bytes. Runs
/// an accepted pipe and a corrupted (rejected) pipe, so both verdict
/// paths stay exercised.
fn cmd_serve_stream(opts: &Opts) -> Result<(), CliError> {
    let bytes = opts.get_usize("bytes", 64 << 20)? as u64;
    let block_size = opts.get_usize("block-size", 1 << 20)?;
    if block_size == 0 {
        return Err(CliError::Usage(
            "invalid value for --block-size: 0 (expected ≥ 1)".into(),
        ));
    }
    let threads = opts.get_usize("threads", default_threads())?;
    let variant = opts.get_value("variant")?.unwrap_or("convergent-rid");

    let nfa = ridfa_workloads::traffic::nfa();
    let mut session = StreamSession::new(threads.saturating_sub(1).max(1), block_size);
    let rid;
    let dfa;
    match variant {
        "rid" => {
            rid = build_rid(&nfa, opts)?;
            serve_stream(&RidCa::new(&rid), bytes, &mut session)
        }
        "convergent-rid" => {
            rid = build_rid(&nfa, opts)?;
            serve_stream(&ConvergentRidCa::new(&rid), bytes, &mut session)
        }
        "dfa" => {
            dfa = build_dfa(&nfa, opts)?;
            serve_stream(&DfaCa::new(&dfa), bytes, &mut session)
        }
        "convergent-dfa" => {
            dfa = build_dfa(&nfa, opts)?;
            serve_stream(&ConvergentDfaCa::new(&dfa), bytes, &mut session)
        }
        other => Err(CliError::Usage(format!(
            "unknown variant {other:?} (dfa|rid|convergent-dfa|convergent-rid)"
        ))),
    }
}

fn serve_stream<CA: ChunkAutomaton>(
    ca: &CA,
    bytes: u64,
    session: &mut StreamSession,
) -> Result<(), CliError> {
    use ridfa_workloads::traffic::{text, RecordSource};

    session.warm(ca, &text(4096, 0));

    let out = session
        .recognize_stream(ca, RecordSource::new(bytes, 1))
        .map_err(|e| CliError::Io(e.to_string()))?;
    print_stream_outcome(ca.name(), session, &out);
    if !out.accepted {
        return Err(CliError::Internal(
            "conforming record pipe was rejected — this is a bug".into(),
        ));
    }

    // The rejection path: a short pipe with one malformed record. Records
    // are at most ~128 bytes, so index `reject_bytes / 256` is always
    // among the records the pipe actually emits.
    let reject_bytes = bytes.clamp(1, 1 << 20);
    let bad = session
        .recognize_stream(
            ca,
            RecordSource::with_corruption(reject_bytes, 2, reject_bytes / 256),
        )
        .map_err(|e| CliError::Io(e.to_string()))?;
    print_stream_outcome(ca.name(), session, &bad);
    if bad.accepted {
        return Err(CliError::Internal(
            "corrupted record pipe was accepted — this is a bug".into(),
        ));
    }
    println!(
        "serve --stream: OK ({} accepted bytes, corrupted pipe rejected{})",
        out.bytes,
        if bad.rejected_early { " early" } else { "" },
    );
    Ok(())
}

fn serve<CA: ChunkAutomaton>(
    ca: &CA,
    texts: &[Vec<u8>],
    chunks: usize,
    runner: &mut Runner,
) -> usize {
    if let Some(sample) = texts.first() {
        runner.warm(ca, sample);
    }
    let start = Instant::now();
    let accepted = runner.recognize_batch(ca, texts, chunks);
    let elapsed = start.elapsed();
    let total_bytes: usize = texts.iter().map(Vec::len).sum();
    println!(
        "{} [{}]: {} texts in {:.3} ms | {:.1} texts/s | {:.1} MiB/s | {:.1} µs/text",
        ca.name(),
        runner.name(),
        texts.len(),
        elapsed.as_secs_f64() * 1e3,
        texts.len() as f64 / elapsed.as_secs_f64(),
        total_bytes as f64 / elapsed.as_secs_f64() / (1024.0 * 1024.0),
        elapsed.as_secs_f64() * 1e6 / texts.len().max(1) as f64,
    );
    accepted
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// `ridfa compile`: build the automaton once, seal it as a checksummed
/// binary artifact — cold starts become a validated load.
fn cmd_compile(opts: &Opts) -> Result<(), CliError> {
    let nfa = load_nfa(opts)?;
    let Some(out) = opts.get_value("out")? else {
        return Err(CliError::Usage("need --out FILE".into()));
    };
    let kind = opts.get_value("kind")?.unwrap_or("ridfa");
    let engine = match opts.get_value("engine")? {
        None => None,
        Some(v) => Some(EnginePlan::parse_flag(v).ok_or_else(|| {
            CliError::Usage(format!(
                "invalid value for --engine: {v:?} (auto|lockstep|sfa|feasible)"
            ))
        })?),
    };
    let separator = match opts.get_value("separator")? {
        None => None,
        Some(v) => Some(v.parse::<u8>().map_err(|_| {
            CliError::Usage(format!(
                "invalid value for --separator: {v:?} (expected a byte 0-255)"
            ))
        })?),
    };
    if kind != "ridfa" && (engine.is_some() || separator.is_some()) {
        return Err(CliError::Usage(
            "--engine/--separator apply to --kind ridfa artifacts only".into(),
        ));
    }
    let bytes = match kind {
        "ridfa" => {
            let rid = build_rid(&nfa, opts)?;
            println!(
                "compile: RI-DFA, {} states, {} interface states",
                rid.num_states(),
                rid.interface().len()
            );
            match engine {
                // No --engine: an Auto-tagged empty engine section; the
                // loading registry resolves the plan at insert time.
                None if separator.is_none() => ridfa_to_bytes(&rid),
                None => ridfa_to_bytes_with_engine(&rid, EnginePlan::Auto, None, None, separator),
                Some(requested) => {
                    let (plan, sfa, feasible) = compile_engine(&rid, requested, opts)?;
                    match (&sfa, &feasible) {
                        (Some(sfa), _) => println!(
                            "compile: engine {}, {} SFA function states ({} table bytes)",
                            plan.name(),
                            sfa.num_states(),
                            sfa.resident_bytes()
                        ),
                        (_, Some(table)) => println!(
                            "compile: engine {}, feasible table {} classes x {} interface \
                             positions ({} bytes)",
                            plan.name(),
                            table.stride(),
                            table.interface_len(),
                            table.resident_bytes()
                        ),
                        _ => println!("compile: engine {}", plan.name()),
                    }
                    ridfa_to_bytes_with_engine(
                        &rid,
                        plan,
                        feasible.as_ref(),
                        sfa.as_ref(),
                        separator,
                    )
                }
            }
        }
        "dfa" => {
            let dfa = build_dfa(&nfa, opts)?;
            println!(
                "compile: minimal DFA, {} live states",
                dfa.num_live_states()
            );
            binary::dfa_to_bytes(&dfa)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown artifact kind {other:?} (ridfa|dfa)"
            )))
        }
    };
    std::fs::write(out, &bytes).map_err(|e| CliError::Io(format!("{out}: {e}")))?;
    println!(
        "compile: wrote {} bytes ({kind} artifact) to {out}",
        bytes.len()
    );
    Ok(())
}

/// Resolves `--engine` for `ridfa compile`: the same policy the serving
/// registry applies at insert time ([`plan::select`] with a capped trial
/// SFA build), run once here so the artifact carries the finished tables.
/// An explicit `--engine sfa` builds under the full `--max-states` budget
/// and surfaces the typed failure (exit 5) instead of falling back.
fn compile_engine(
    rid: &RiDfa,
    requested: EnginePlan,
    opts: &Opts,
) -> Result<(EnginePlan, Option<Sfa>, Option<FeasibleTable>), CliError> {
    let budget = construction_budget(opts)?.unwrap_or(ConstructionBudget::UNLIMITED);
    match requested {
        EnginePlan::Lockstep => Ok((EnginePlan::Lockstep, None, None)),
        EnginePlan::Sfa => {
            let sfa = Sfa::build_rid_budgeted(rid, &budget)
                .map_err(|e| CliError::Budget(e.to_string()))?;
            Ok((EnginePlan::Sfa, Some(sfa), None))
        }
        EnginePlan::FeasibleStart => Ok((
            EnginePlan::FeasibleStart,
            None,
            Some(FeasibleTable::build(rid)),
        )),
        EnginePlan::Auto => {
            let capped = ConstructionBudget {
                max_states: budget.max_states.min(plan::SFA_AUTO_MAX_STATES),
                max_table_bytes: budget.max_table_bytes.min(plan::SFA_AUTO_MAX_TABLE_BYTES),
            };
            if let Ok(sfa) = Sfa::build_rid_budgeted(rid, &capped) {
                return Ok((EnginePlan::Sfa, Some(sfa), None));
            }
            match plan::select(None, rid.interface().len()) {
                EnginePlan::FeasibleStart => Ok((
                    EnginePlan::FeasibleStart,
                    None,
                    Some(FeasibleTable::build(rid)),
                )),
                _ => Ok((EnginePlan::Lockstep, None, None)),
            }
        }
    }
}

/// `ridfa inspect-artifact`: header, checksum and payload validation,
/// then a human summary. A corrupt or truncated file exits 2 with the
/// typed decode error, never a panic.
fn cmd_inspect_artifact(opts: &Opts) -> Result<(), CliError> {
    let Some(path) = opts.get_value("file")? else {
        return Err(CliError::Usage("need --file FILE".into()));
    };
    let bytes = std::fs::read(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    let header = binary::peek(&bytes).map_err(|e| CliError::Usage(e.to_string()))?;
    println!(
        "artifact : {} format v{}, {} payload bytes, checksum {:#018x}",
        header.kind.name(),
        header.version,
        header.payload_len,
        header.checksum
    );
    match header.kind {
        binary::ArtifactKind::Dfa => {
            let loaded =
                binary::dfa_from_bytes(&bytes).map_err(|e| CliError::Usage(e.to_string()))?;
            println!(
                "dfa      : {} states ({} live), {} byte classes, premultiplied table cached",
                loaded.dfa.num_states(),
                loaded.dfa.num_live_states(),
                loaded.dfa.classes().num_classes()
            );
            println!(
                "tables   : {} dense bytes + {} premultiplied bytes",
                std::mem::size_of_val(loaded.dfa.table()),
                std::mem::size_of_val(loaded.premultiplied.as_slice()),
            );
        }
        binary::ArtifactKind::RiDfa => {
            let loaded = ridfa_from_bytes(&bytes).map_err(|e| CliError::Usage(e.to_string()))?;
            println!(
                "ri-dfa   : {} states, {} interface states, {} byte classes, \
                 premultiplied table cached",
                loaded.rid.num_states(),
                loaded.rid.interface().len(),
                loaded.rid.classes().num_classes()
            );
            match (&loaded.sfa, &loaded.feasible) {
                (Some(sfa), _) => println!(
                    "engine   : {} plan, {} SFA function states ({} table bytes)",
                    loaded.plan.name(),
                    sfa.num_states(),
                    sfa.resident_bytes()
                ),
                (_, Some(table)) => println!(
                    "engine   : {} plan, feasible table {} classes x {} interface positions \
                     ({} bytes)",
                    loaded.plan.name(),
                    table.stride(),
                    table.interface_len(),
                    table.resident_bytes()
                ),
                _ => println!(
                    "engine   : {} plan (no precomputed tables)",
                    loaded.plan.name()
                ),
            }
            if let Some(sep) = loaded.separator {
                println!("separator: byte {sep:#04x} (boundary snapping)");
            }
            // The same number the serving registry books against its
            // residency cap when this artifact is inserted: the automaton
            // footprint plus any engine tables it ships.
            let engine_bytes = loaded.sfa.as_ref().map_or(0, |s| s.resident_bytes())
                + loaded.feasible.as_ref().map_or(0, |f| f.resident_bytes());
            println!(
                "resident : {} bytes as served (registry ledger)",
                resident_footprint(&loaded.rid, loaded.premultiplied.len()) + engine_bytes,
            );
        }
    }
    println!("verdict  : artifact OK");
    Ok(())
}

/// `ridfa serve --listen`: the real network mode — an acceptor dealing
/// connections to `--shards` non-blocking loops, each serving its own
/// registry replica built from the `--patterns` file. Prints
/// `listening on ADDR` (resolved port) before serving so a driver
/// script can connect, and a reconciled counter report after.
fn cmd_serve_listen(opts: &Opts) -> Result<(), CliError> {
    let Some(addr) = opts.get_value("listen")? else {
        return Err(CliError::Usage("need --listen ADDR".into()));
    };
    let Some(patterns) = opts.get_value("patterns")? else {
        return Err(CliError::Usage("need --patterns FILE".into()));
    };
    let threads = opts.get_usize("threads", default_threads())?;
    let shards = opts.get_usize("shards", 1)?;
    if !(1..=64).contains(&shards) {
        return Err(CliError::Usage(format!(
            "--shards must be 1..=64, got {shards}"
        )));
    }
    // Split the thread budget across the shard replicas: each shard's
    // pool gets its share minus the shard thread itself (which joins
    // every pooled reach phase).
    let per_shard_threads = (threads / shards).max(1);
    let registry_config = RegistryConfig {
        num_workers: per_shard_threads.saturating_sub(1).max(1),
        block_size: opts.get_usize("block-size", 64 * 1024)?,
        budget: construction_budget(opts)?.unwrap_or(ConstructionBudget::UNLIMITED),
        max_table_bytes: opts.get_usize("max-table-bytes", usize::MAX)?,
    };

    let max_requests = match opts.get_value("max-requests")? {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| CliError::Usage(format!("invalid value for --max-requests: {v:?}")))?,
        ),
    };
    let deadline = match opts.get_value("deadline-ms")? {
        None => None,
        Some(v) => Some(Duration::from_millis(v.parse::<u64>().map_err(|_| {
            CliError::Usage(format!("invalid value for --deadline-ms: {v:?}"))
        })?)),
    };
    let idle = match opts.get_value("idle-ms")? {
        None => Some(Duration::from_secs(30)),
        Some(v) => Some(Duration::from_millis(v.parse::<u64>().map_err(|_| {
            CliError::Usage(format!("invalid value for --idle-ms: {v:?}"))
        })?)),
    };
    let reload_interval = match opts.get_value("reload-ms")? {
        None => None,
        Some(v) => Some(Duration::from_millis(v.parse::<u64>().map_err(|_| {
            CliError::Usage(format!("invalid value for --reload-ms: {v:?}"))
        })?)),
    };
    let offload_bytes = match opts.get_value("offload-bytes")? {
        None => u64::MAX,
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| CliError::Usage(format!("invalid value for --offload-bytes: {v:?}")))?,
    };
    let config = ServeConfig {
        max_requests,
        request_deadline: deadline,
        idle_timeout: idle,
        max_body_bytes: opts.get_usize("max-body", usize::MAX)? as u64,
        shards,
        offload_bytes,
        reload_interval,
        ..ServeConfig::default()
    };

    let server = Server::bind_spec_file(
        addr,
        std::path::PathBuf::from(patterns),
        registry_config,
        config,
    )
    .map_err(|e| match e.kind() {
        std::io::ErrorKind::InvalidInput => CliError::Usage(format!("{patterns}: {e}")),
        _ => CliError::Io(e.to_string()),
    })?;
    let loaded = server.pattern_count();
    let bound = server
        .local_addr()
        .map_err(|e| CliError::Io(e.to_string()))?;
    println!("listening on {bound} ({loaded} patterns)");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let report = server.run().map_err(|e| CliError::Io(e.to_string()))?;
    let t = &report.tally;
    println!(
        "serve: {} requests ({} accepted / {} rejected / {} protocol / {} deadline / \
         {} budget / {} fault) | {} bytes | {} connections ({} refused, {} io-dropped, \
         {} idle-closed)",
        t.requests,
        t.accepted,
        t.rejected,
        t.protocol_errors,
        t.deadline_errors,
        t.budget_errors,
        t.faults,
        t.bytes,
        t.connections,
        t.refused,
        t.io_errors,
        t.idle_closed,
    );
    for shard in &report.shards {
        let s = &shard.tally;
        let errors = s.protocol_errors + s.deadline_errors + s.budget_errors + s.faults;
        println!(
            "shard {}: {} requests ({} accepted / {} rejected / {} errors), {} bytes | \
             reload: {} generations (+{} / -{} / {} failed)",
            shard.shard,
            s.requests,
            s.accepted,
            s.rejected,
            errors,
            s.bytes,
            shard.reload.generations,
            shard.reload.inserted,
            shard.reload.evicted,
            shard.reload.failed,
        );
    }
    if report.reload_errors > 0 {
        println!("reload errors: {}", report.reload_errors);
    }
    for pattern in &report.patterns {
        let s = &pattern.stats;
        let engine = pattern.plan.map_or("retired", |p| p.name());
        println!(
            "pattern {} [{engine}]: {} requests ({} accepted / {} rejected / {} errors), \
             {} bytes",
            pattern.id, s.requests, s.accepted, s.rejected, s.errors, s.bytes
        );
    }
    for conn in &report.connections {
        println!(
            "conn {}: {} requests ({} accepted / {} rejected / {} errors), {} bytes",
            conn.peer, conn.requests, conn.accepted, conn.rejected, conn.errors, conn.bytes
        );
    }
    match report.verify() {
        Ok(()) => println!(
            "reconcile: ok ({} shards, {} requests)",
            report.shards.len(),
            t.requests
        ),
        Err(msg) => return Err(CliError::Internal(format!("reconcile failed: {msg}"))),
    }
    Ok(())
}

/// `ridfa query`: requests against a running server; the exit code *is*
/// the worst response status seen (the taxonomies coincide). `--repeat`
/// pipelines N requests per connection, `--concurrency` opens C
/// connections in parallel — `C × N` requests total, a one-command load
/// generator for the sharded server.
fn cmd_query(opts: &Opts) -> Result<(), CliError> {
    let Some(addr) = opts.get_value("connect")? else {
        return Err(CliError::Usage("need --connect ADDR".into()));
    };
    let Some(id) = opts.get_value("pattern")? else {
        return Err(CliError::Usage("need --pattern ID".into()));
    };
    let repeat = opts.get_usize("repeat", 1)?;
    let concurrency = opts.get_usize("concurrency", 1)?;
    if repeat == 0 || concurrency == 0 {
        return Err(CliError::Usage(
            "--repeat and --concurrency must be at least 1".into(),
        ));
    }
    let body = load_text(opts)?;

    let worst = if repeat == 1 && concurrency == 1 {
        let mut stream =
            std::net::TcpStream::connect(addr).map_err(|e| CliError::Io(format!("{addr}: {e}")))?;
        let response =
            protocol::query(&mut stream, id, &body).map_err(|e| CliError::Io(e.to_string()))?;
        println!(
            "query {id}: {:?} | {} of {} bytes scanned",
            response.status,
            response.scanned,
            body.len()
        );
        response.status
    } else {
        // One thread per connection, `repeat` pipelined requests each;
        // every thread reports its per-status counts.
        let results: Vec<Result<[u64; 7], String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..concurrency)
                .map(|_| {
                    let body = &body;
                    scope.spawn(move || -> Result<[u64; 7], String> {
                        let mut stream = std::net::TcpStream::connect(addr)
                            .map_err(|e| format!("{addr}: {e}"))?;
                        let mut counts = [0u64; 7];
                        for _ in 0..repeat {
                            let response = protocol::query(&mut stream, id, body)
                                .map_err(|e| e.to_string())?;
                            counts[response.status as usize] += 1;
                        }
                        Ok(counts)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| Err("worker panicked".into())))
                .collect()
        });
        let mut counts = [0u64; 7];
        for result in results {
            let conn_counts = result.map_err(CliError::Io)?;
            for (total, n) in counts.iter_mut().zip(conn_counts) {
                *total += n;
            }
        }
        println!(
            "query {id}: {} requests over {} connections ({} accepted / {} rejected / \
             {} protocol / {} io / {} deadline / {} budget / {} fault)",
            (repeat * concurrency) as u64,
            concurrency,
            counts[0],
            counts[1],
            counts[2],
            counts[3],
            counts[4],
            counts[5],
            counts[6],
        );
        // Worst = highest status byte seen, mirroring exit-code severity.
        let worst_byte = (0..7u8)
            .rev()
            .find(|&b| counts[b as usize] > 0)
            .unwrap_or(0);
        protocol::Status::from_byte(worst_byte).unwrap_or(protocol::Status::Fault)
    };

    match worst {
        protocol::Status::Accepted => Ok(()),
        protocol::Status::Rejected => Err(CliError::Rejected),
        protocol::Status::Protocol => Err(CliError::Usage("server: protocol error".into())),
        protocol::Status::Io => Err(CliError::Io("server: I/O error".into())),
        protocol::Status::Deadline => Err(CliError::Interrupted(
            "server: request deadline exceeded".into(),
        )),
        protocol::Status::Budget => Err(CliError::Budget("server: body over byte budget".into())),
        protocol::Status::Fault => Err(CliError::Internal("server: contained fault".into())),
    }
}
