//! `ridfa` — command-line generator / recognizer / test driver, mirroring
//! the paper's Java tool (Sect. 4: "a generator of the RI-DFA automaton
//! from either an RE or an FA, a parallel recognizer for recognizing user
//! supplied texts, and a test driver to measure performance").
//!
//! ```text
//! ridfa gen --regex '(a|b)*abb' --out machine.nfa      # RE → NFA (text format)
//! ridfa info --regex '(a|b)*abb'                       # construction report
//! ridfa recognize --regex '(a|b)*abb' --text input.txt --variant rid --chunks 8
//! ridfa drive --regex '(a|b)*abb' --text input.txt     # compare all variants
//! ridfa help
//! ```

use std::io::Read;
use std::process::ExitCode;
use std::time::Instant;

use ridfa_automata::dfa::{minimize, powerset};
use ridfa_automata::nfa::{glushkov, Nfa};
use ridfa_automata::{regex, serialize};
use ridfa_core::csdpa::{recognize_counted, ChunkAutomaton, DfaCa, Executor, NfaCa, RidCa};
use ridfa_core::ridfa::RiDfa;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(|s| s.as_str()) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = Opts::parse(&args[1..]);
    let result = match command {
        "gen" => cmd_gen(&opts),
        "info" => cmd_info(&opts),
        "recognize" => cmd_recognize(&opts),
        "drive" => cmd_drive(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
ridfa — parallel recognizer for regular texts with minimal speculation

USAGE:
  ridfa gen        --regex PATTERN [--out FILE]        print/save the NFA
  ridfa info       (--regex PATTERN | --nfa FILE)      construction report
  ridfa recognize  (--regex PATTERN | --nfa FILE)
                   --text FILE [--variant dfa|nfa|rid]
                   [--chunks N] [--threads N]           recognize one text
  ridfa drive      (--regex PATTERN | --nfa FILE)
                   --text FILE [--chunks N]             compare all variants
  ridfa help

Exit code of `recognize`: 0 = accepted, 1 = rejected or error.";

struct Opts {
    flags: Vec<(String, String)>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut flags = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = iter.next().cloned().unwrap_or_default();
                flags.push((name.to_string(), value));
            }
        }
        Opts { flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Loads the NFA from `--regex` or `--nfa`.
fn load_nfa(opts: &Opts) -> Result<Nfa, String> {
    if let Some(pattern) = opts.get("regex") {
        let ast = regex::parse(pattern).map_err(|e| e.to_string())?;
        return glushkov::build(&ast).map_err(|e| e.to_string());
    }
    if let Some(path) = opts.get("nfa") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        return serialize::nfa_from_text(&text).map_err(|e| e.to_string());
    }
    Err("need --regex PATTERN or --nfa FILE".into())
}

fn load_text(opts: &Opts) -> Result<Vec<u8>, String> {
    match opts.get("text") {
        Some("-") => {
            let mut buffer = Vec::new();
            std::io::stdin()
                .lock()
                .read_to_end(&mut buffer)
                .map_err(|e| e.to_string())?;
            Ok(buffer)
        }
        Some(path) => std::fs::read(path).map_err(|e| format!("{path}: {e}")),
        None => Err("need --text FILE (or --text - for stdin)".into()),
    }
}

fn cmd_gen(opts: &Opts) -> Result<(), String> {
    let nfa = load_nfa(opts)?;
    let text = serialize::nfa_to_text(&nfa);
    match opts.get("out") {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("{path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn cmd_info(opts: &Opts) -> Result<(), String> {
    let nfa = load_nfa(opts)?;
    let t0 = Instant::now();
    let dfa = powerset::determinize(&nfa);
    let t_dfa = t0.elapsed();
    let t1 = Instant::now();
    let min = minimize::minimize(&dfa);
    let t_min = t1.elapsed();
    let t2 = Instant::now();
    let rid = RiDfa::from_nfa(&nfa);
    let t_rid = t2.elapsed();
    let t3 = Instant::now();
    let rid_min = rid.minimized();
    let t_ridmin = t3.elapsed();

    println!(
        "NFA          : {} states, {} transitions",
        nfa.num_states(),
        nfa.num_transitions()
    );
    println!(
        "DFA          : {} live states        (powerset, {:.3} ms)",
        dfa.num_live_states(),
        t_dfa.as_secs_f64() * 1e3
    );
    println!(
        "minimal DFA  : {} live states        (Hopcroft, +{:.3} ms)",
        min.num_live_states(),
        t_min.as_secs_f64() * 1e3
    );
    println!(
        "RI-DFA       : {} live states, {} interface states ({:.3} ms)",
        rid.num_live_states(),
        rid.interface().len(),
        t_rid.as_secs_f64() * 1e3
    );
    println!(
        "RI-DFA (min) : interface reduced {} → {} (+{:.3} ms)",
        rid.interface().len(),
        rid_min.interface().len(),
        t_ridmin.as_secs_f64() * 1e3
    );
    println!(
        "speculation  : DFA variant starts {} runs/chunk, RID starts {} — {:.2}× fewer",
        min.num_live_states(),
        rid_min.interface().len(),
        min.num_live_states() as f64 / rid_min.interface().len().max(1) as f64
    );
    Ok(())
}

fn cmd_recognize(opts: &Opts) -> Result<(), String> {
    let nfa = load_nfa(opts)?;
    let text = load_text(opts)?;
    let chunks = opts.get_usize("chunks", default_threads());
    let threads = opts.get_usize("threads", default_threads());
    let variant = opts.get("variant").unwrap_or("rid");
    let executor = Executor::Team(threads);

    let accepted = match variant {
        "rid" => {
            let rid = RiDfa::from_nfa(&nfa).minimized();
            report(&RidCa::new(&rid), &text, chunks, executor)
        }
        "dfa" => {
            let dfa = minimize::minimize(&powerset::determinize(&nfa));
            report(&DfaCa::new(&dfa), &text, chunks, executor)
        }
        "nfa" => report(&NfaCa::new(&nfa), &text, chunks, executor),
        other => return Err(format!("unknown variant {other:?} (dfa|nfa|rid)")),
    };
    if accepted {
        Ok(())
    } else {
        Err("text rejected".into())
    }
}

fn report<CA: ChunkAutomaton>(ca: &CA, text: &[u8], chunks: usize, executor: Executor) -> bool {
    let out = recognize_counted(ca, text, chunks, executor);
    println!(
        "{}: {} | {} bytes, {} chunks, {} transitions, reach {:.3} ms, join {:.3} ms",
        ca.name(),
        if out.accepted { "ACCEPTED" } else { "REJECTED" },
        text.len(),
        out.num_chunks,
        out.transitions,
        out.reach.as_secs_f64() * 1e3,
        out.join.as_secs_f64() * 1e3,
    );
    out.accepted
}

fn cmd_drive(opts: &Opts) -> Result<(), String> {
    let nfa = load_nfa(opts)?;
    let text = load_text(opts)?;
    let chunks = opts.get_usize("chunks", default_threads());
    let executor = Executor::Team(opts.get_usize("threads", default_threads()));

    let dfa = minimize::minimize(&powerset::determinize(&nfa));
    let rid = RiDfa::from_nfa(&nfa).minimized();
    let a = report(&DfaCa::new(&dfa), &text, chunks, executor);
    let b = report(&NfaCa::new(&nfa), &text, chunks, executor);
    let c = report(&RidCa::new(&rid), &text, chunks, executor);
    if a != b || b != c {
        return Err("variants disagree — this is a bug, please report".into());
    }
    Ok(())
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}
