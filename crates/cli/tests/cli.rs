//! End-to-end tests of the `ridfa` binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn ridfa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ridfa"))
}

#[test]
fn help_prints_usage() {
    let out = ridfa().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("recognize"));
}

#[test]
fn no_args_fails_with_usage() {
    let out = ridfa().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("USAGE"));
}

#[test]
fn gen_prints_nfa_text() {
    let out = ridfa()
        .args(["gen", "--regex", "(a|b)*abb"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("nfa "));
    assert!(text.contains("end"));
}

#[test]
fn info_reports_interface_reduction() {
    let out = ridfa()
        .args(["info", "--regex", "[ab]*a[ab]{6}"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("minimal DFA  : 128 live states"), "{text}");
    assert!(text.contains("interface"), "{text}");
}

#[test]
fn recognize_accepts_and_rejects_via_exit_code() {
    for (input, expect_ok) in [("aabb", true), ("ba", false)] {
        let mut child = ridfa()
            .args([
                "recognize",
                "--regex",
                "(a|b)*abb",
                "--text",
                "-",
                "--chunks",
                "2",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
        let status = child.wait().unwrap();
        assert_eq!(status.success(), expect_ok, "input {input:?}");
    }
}

#[test]
fn drive_compares_all_variants() {
    let mut child = ridfa()
        .args(["drive", "--regex", "(xy)*", "--text", "-", "--chunks", "3"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"xyxyxyxy")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("dfa:"), "{text}");
    assert!(text.contains("nfa:"), "{text}");
    assert!(text.contains("rid:"), "{text}");
}

#[test]
fn gen_roundtrip_through_file() {
    let dir = std::env::temp_dir().join(format!("ridfa-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let nfa_path = dir.join("machine.nfa");
    let status = ridfa()
        .args(["gen", "--regex", "a+b", "--out", nfa_path.to_str().unwrap()])
        .status()
        .unwrap();
    assert!(status.success());

    let text_path = dir.join("input.txt");
    std::fs::write(&text_path, "aaab").unwrap();
    let status = ridfa()
        .args([
            "recognize",
            "--nfa",
            nfa_path.to_str().unwrap(),
            "--text",
            text_path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_regex_reports_error() {
    let out = ridfa().args(["info", "--regex", "(a"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("error"));
}

#[test]
fn flag_value_cannot_be_another_flag() {
    // Regression: `--text --variant rid` used to silently read a file
    // named "--variant". It must now demand a value for --text.
    let out = ridfa()
        .args(["recognize", "--regex", "a*", "--text", "--variant", "rid"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--text requires a value"), "{err}");
}

#[test]
fn malformed_number_is_rejected() {
    // Regression: `--chunks abc` used to fall back to the default
    // silently.
    for (flag, value) in [("--chunks", "abc"), ("--threads", "4x"), ("--chunks", "-1")] {
        let mut child = ridfa()
            .args(["recognize", "--regex", "a*", "--text", "-", flag, value])
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        child.stdin.as_mut().unwrap().write_all(b"aaa").unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(!out.status.success(), "{flag} {value}");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("invalid value"), "{flag} {value}: {err}");
    }
}

#[test]
fn stray_positional_argument_is_rejected() {
    let out = ridfa()
        .args(["recognize", "--regex", "a*", "input.txt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unexpected argument"), "{err}");
}

#[test]
fn convergent_variants_recognize() {
    for variant in ["convergent-dfa", "convergent-rid"] {
        for (input, expect_ok) in [("aabb", true), ("ba", false)] {
            let mut child = ridfa()
                .args([
                    "recognize",
                    "--regex",
                    "(a|b)*abb",
                    "--text",
                    "-",
                    "--variant",
                    variant,
                    "--chunks",
                    "3",
                ])
                .stdin(Stdio::piped())
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .unwrap();
            child
                .stdin
                .as_mut()
                .unwrap()
                .write_all(input.as_bytes())
                .unwrap();
            let status = child.wait().unwrap();
            assert_eq!(status.success(), expect_ok, "{variant} on {input:?}");
        }
    }
}

#[test]
fn pooled_recognition_matches_spawned() {
    for pool in [false, true] {
        for (input, expect_ok) in [("abababaabb", true), ("abba", false)] {
            let mut args = vec![
                "recognize",
                "--regex",
                "(a|b)*abb",
                "--text",
                "-",
                "--chunks",
                "4",
                "--threads",
                "3",
            ];
            if pool {
                args.push("--pool");
            }
            let mut child = ridfa()
                .args(&args)
                .stdin(Stdio::piped())
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .unwrap();
            child
                .stdin
                .as_mut()
                .unwrap()
                .write_all(input.as_bytes())
                .unwrap();
            let status = child.wait().unwrap();
            assert_eq!(status.success(), expect_ok, "pool={pool} input={input:?}");
        }
    }
}

#[test]
fn drive_includes_convergent_variants() {
    let mut child = ridfa()
        .args(["drive", "--regex", "(xy)*", "--text", "-", "--chunks", "3"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(b"xyxyxy").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("dfa+conv:"), "{text}");
    assert!(text.contains("rid+conv:"), "{text}");
}

/// Two handwritten records conforming to the `workloads::traffic`
/// grammar (month, day, time, host, daemon[pid], src/dst/len, message).
const SYSLOG: &str =
    "Jan  1 00:00:00 host1 sshd[123]: src=1.2.3.4 dst=5.6.7.8 len=100 hello world\n\
                      Feb 12 23:59:59 host42 nginx[9]: src=10.0.0.1 dst=10.0.0.2 len=1 x\n";

#[test]
fn stream_recognize_accepts_and_rejects_from_stdin() {
    // (input, expect_ok): the corrupted variant malforms the first month.
    let corrupted = SYSLOG.replacen("Jan", "Xxx", 1);
    for (input, expect_ok) in [(SYSLOG.to_string(), true), (corrupted, false)] {
        let mut child = ridfa()
            .args([
                "recognize",
                "--workload",
                "traffic",
                "--stream",
                "--block-size",
                "32",
                "--text",
                "-",
                "--threads",
                "2",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert_eq!(out.status.success(), expect_ok, "input {input:?}");
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("streamed"), "{text}");
    }
}

#[test]
fn stream_recognize_reads_files_without_loading() {
    let dir = std::env::temp_dir().join(format!("ridfa-stream-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("records.log");
    std::fs::write(&path, SYSLOG.repeat(64)).unwrap();
    let out = ridfa()
        .args([
            "recognize",
            "--workload",
            "traffic",
            "--stream",
            "--block-size",
            "256",
            "--text",
            path.to_str().unwrap(),
            "--variant",
            "convergent-rid",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("ACCEPTED"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stream_rejects_pool_flag() {
    let out = ridfa()
        .args([
            "recognize",
            "--regex",
            "a*",
            "--stream",
            "--pool",
            "--text",
            "-",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--stream"), "{err}");
}

#[test]
fn serve_stream_validates_a_generated_pipe() {
    let out = ridfa()
        .args([
            "serve",
            "--stream",
            "--bytes",
            "200000",
            "--block-size",
            "8192",
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("serve --stream: OK"), "{text}");
    assert!(text.contains("rejected"), "{text}");
}

#[test]
fn recognize_reports_effective_executor() {
    // The outcome line must say which executor shape actually ran —
    // pooled when --pool, the spawning team otherwise.
    for (pool, needle) in [(true, "via Pooled"), (false, "via Team")] {
        let mut args = vec![
            "recognize",
            "--regex",
            "a*",
            "--text",
            "-",
            "--threads",
            "2",
        ];
        if pool {
            args.push("--pool");
        }
        let mut child = ridfa()
            .args(&args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        child.stdin.as_mut().unwrap().write_all(b"aaa").unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success(), "pool={pool}");
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains(needle), "pool={pool}: {text}");
    }
}

#[test]
fn serve_batch_mode_reports_throughput() {
    for mode in [&["--no-pool"][..], &[][..]] {
        let out = ridfa()
            .args([
                "serve",
                "--requests",
                "24",
                "--len",
                "512",
                "--threads",
                "2",
                "--chunks",
                "2",
            ])
            .args(mode)
            .output()
            .unwrap();
        assert!(out.status.success(), "mode {mode:?}");
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("texts/s"), "{text}");
        assert!(text.contains("24 texts OK"), "{text}");
    }
}

#[test]
fn exit_codes_distinguish_rejection_usage_and_io() {
    // Rejected text is exit 1, exactly.
    let mut child = ridfa()
        .args(["recognize", "--regex", "(a|b)*abb", "--text", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(b"ba").unwrap();
    assert_eq!(child.wait().unwrap().code(), Some(1));

    // Configuration errors are exit 2.
    let out = ridfa()
        .args([
            "recognize",
            "--regex",
            "a*",
            "--variant",
            "bogus",
            "--text",
            "-",
        ])
        .stdin(Stdio::null())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown variant");

    // Reader/filesystem failures are exit 3.
    let out = ridfa()
        .args([
            "recognize",
            "--regex",
            "a*",
            "--text",
            "/nonexistent/input.txt",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "missing file");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("/nonexistent/input.txt"), "{err}");
}

#[test]
fn expired_timeout_exits_with_deadline_code() {
    // --timeout-ms 0 is a pre-expired deadline: deterministic exit 4,
    // one-line message, never a verdict.
    for extra in [
        &[][..],
        &["--pool"][..],
        &["--stream", "--block-size", "64"][..],
    ] {
        let mut child = ridfa()
            .args([
                "recognize",
                "--regex",
                "(a|b)*abb",
                "--text",
                "-",
                "--timeout-ms",
                "0",
            ])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        child.stdin.as_mut().unwrap().write_all(b"aabb").unwrap();
        let out = child.wait_with_output().unwrap();
        assert_eq!(out.status.code(), Some(4), "{extra:?}");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("deadline"), "{extra:?}: {err}");
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(
            !text.contains("ACCEPTED") && !text.contains("REJECTED"),
            "{text}"
        );
    }
}

#[test]
fn generous_timeout_still_recognizes() {
    for (input, code) in [("aabb", 0), ("ba", 1)] {
        let mut child = ridfa()
            .args([
                "recognize",
                "--regex",
                "(a|b)*abb",
                "--text",
                "-",
                "--timeout-ms",
                "60000",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
        assert_eq!(child.wait().unwrap().code(), Some(code), "input {input:?}");
    }
}

#[test]
fn exhausted_state_budget_exits_with_budget_code() {
    // [ab]*a[ab]{12} needs 2^13 DFA states; a cap of 64 must fail typed
    // (exit 5) for every construction the variants reach.
    for variant in ["dfa", "rid"] {
        let mut child = ridfa()
            .args([
                "recognize",
                "--regex",
                "[ab]*a[ab]{12}",
                "--text",
                "-",
                "--variant",
                variant,
                "--max-states",
                "64",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        child.stdin.as_mut().unwrap().write_all(b"ab").unwrap();
        let out = child.wait_with_output().unwrap();
        assert_eq!(out.status.code(), Some(5), "{variant}");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("error"), "{variant}: {err}");
    }
    // Within the cap, recognition proceeds normally.
    let mut child = ridfa()
        .args([
            "recognize",
            "--regex",
            "(a|b)*abb",
            "--text",
            "-",
            "--max-states",
            "4096",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(b"aabb").unwrap();
    assert_eq!(child.wait().unwrap().code(), Some(0));
}

#[test]
fn info_honors_max_states() {
    let out = ridfa()
        .args(["info", "--regex", "[ab]*a[ab]{12}", "--max-states", "64"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5));
}
