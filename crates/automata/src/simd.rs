//! Runtime-gated SIMD acceleration for the byte→class translation.
//!
//! The scan kernels classify every input byte through a 256-entry map
//! ([`ByteClasses`](crate::alphabet::ByteClasses)); at streaming rates
//! that scalar gather is a measurable slice of the per-byte budget. This
//! module vectorizes it with the classic AVX2 *nibble-shuffle* scheme:
//! the 256-byte map is viewed as 16 rows of 16 bytes (`map[b] =
//! row[b >> 4][b & 0xF]`), each row is broadcast into a register once
//! per call, and a 32-byte block of input is translated with one
//! `pshufb` per row selected by a high-nibble compare — ~1.5 simple ops
//! per byte, no memory gathers in the loop.
//!
//! Gating policy:
//!
//! * **Runtime detection, not compile-time cfg.** [`enabled`] consults
//!   `is_x86_feature_detected!("avx2")` once (cached), so a binary built
//!   for a generic x86-64 target still uses AVX2 where the machine has
//!   it, and a `-Ctarget-cpu=native` build still runs correctly on
//!   feature-poor hardware.
//! * **Force-off switch.** Setting the `RIDFA_NO_SIMD` environment
//!   variable (to anything but `0`/empty) disables every SIMD path in
//!   the workspace — CI runs the whole test suite once per setting, and
//!   the scalar implementations stay the differential oracle.
//! * **Scalar fallback everywhere.** Every entry point returns to the
//!   scalar loop when the feature is missing; results are byte-identical
//!   either way (asserted by the unit tests below on random inputs at
//!   every alignment).
//!
//! The implementation handles unaligned input (`loadu`/`storeu`), so
//! callers owe no alignment contract — blocks, mid-chunk offsets, and
//! scalar tails all work.

// The crate denies unsafe code; this module is the audited exception
// (raw SIMD intrinsics behind runtime feature detection).
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// Is SIMD acceleration active in this process? True iff the CPU
/// reports AVX2 at runtime and `RIDFA_NO_SIMD` is not set. Computed
/// once and cached — hot paths may call it per block.
#[inline]
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(detect)
}

fn detect() -> bool {
    if std::env::var_os("RIDFA_NO_SIMD").is_some_and(|v| !v.is_empty() && v != "0") {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Minimum input length worth the 16-row register setup; shorter blocks
/// classify faster through the plain scalar loop.
const MIN_LEN: usize = 64;

/// Translates `bytes` through the 256-entry `map` into `out` with the
/// AVX2 nibble-shuffle kernel. Returns `false` (without touching `out`)
/// when SIMD is disabled, the architecture lacks it, or the input is too
/// short to pay for setup — the caller then runs its scalar loop.
///
/// # Panics
/// When `map` is not exactly 256 bytes or `out` is shorter than `bytes`.
#[inline]
pub fn classify(map: &[u8], bytes: &[u8], out: &mut [u8]) -> bool {
    assert_eq!(map.len(), 256, "class map must cover every byte");
    assert!(out.len() >= bytes.len());
    #[cfg(target_arch = "x86_64")]
    {
        if bytes.len() >= MIN_LEN && enabled() {
            // SAFETY: AVX2 presence was verified at runtime by `enabled`.
            unsafe { classify_avx2(map, bytes, out) };
            return true;
        }
    }
    let _ = (map, bytes, out);
    false
}

/// The AVX2 nibble-shuffle translation. 16 `vpshufb` table rows are set
/// up once; each 32-byte block costs one shuffle + compare + blend per
/// row. Trailing bytes (< 32) fall back to the scalar gather.
///
/// # Safety
/// The caller must ensure the CPU supports AVX2. `map` must be exactly
/// 256 bytes and `out` at least as long as `bytes` (checked by the safe
/// wrapper [`classify`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn classify_avx2(map: &[u8], bytes: &[u8], out: &mut [u8]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(map.len(), 256);
    debug_assert!(out.len() >= bytes.len());
    // One register per 16-byte map row, the row duplicated into both
    // 128-bit lanes so `vpshufb` (which shuffles per lane) sees it from
    // either half of the input vector.
    let mut rows = [_mm256_setzero_si256(); 16];
    for (r, row) in rows.iter_mut().enumerate() {
        let half = _mm_loadu_si128(map.as_ptr().add(r * 16) as *const __m128i);
        *row = _mm256_broadcastsi128_si256(half);
    }
    let nibble = _mm256_set1_epi8(0x0F);
    let mut i = 0;
    while i + 32 <= bytes.len() {
        let v = _mm256_loadu_si256(bytes.as_ptr().add(i) as *const __m256i);
        let lo = _mm256_and_si256(v, nibble);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), nibble);
        let mut acc = _mm256_setzero_si256();
        for (r, row) in rows.iter().enumerate() {
            // Lanes whose high nibble selects row `r` take their shuffle
            // result; all other lanes contribute zero to the OR.
            let sel = _mm256_cmpeq_epi8(hi, _mm256_set1_epi8(r as i8));
            let picked = _mm256_and_si256(sel, _mm256_shuffle_epi8(*row, lo));
            acc = _mm256_or_si256(acc, picked);
        }
        _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, acc);
        i += 32;
    }
    for j in i..bytes.len() {
        out[j] = map[bytes[j] as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::ByteClasses;

    /// Deterministic xorshift byte stream (no RNG dependency).
    fn pseudo_random_bytes(len: usize, mut seed: u64) -> Vec<u8> {
        (0..len)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn enabled_is_stable() {
        assert_eq!(enabled(), enabled());
    }

    #[test]
    fn classify_matches_scalar_on_random_input() {
        let maps = [
            ByteClasses::identity(),
            ByteClasses::from_key_fn(|b| b.is_ascii_digit()),
            ByteClasses::from_key_fn(|b| b % 7),
            ByteClasses::from_key_fn(|b| b.is_ascii_alphabetic() as u8 + (b > 128) as u8),
        ];
        for (m, classes) in maps.iter().enumerate() {
            for len in [0, 1, 31, 32, 33, 63, 64, 65, 255, 4096, 4099] {
                let bytes = pseudo_random_bytes(len, 0x9E3779B97F4A7C15 ^ m as u64);
                let mut scalar = vec![0u8; len];
                classes.classify_into_scalar(&bytes, &mut scalar);
                let mut fused = vec![0xAAu8; len];
                classes.classify_into(&bytes, &mut fused);
                assert_eq!(fused, scalar, "map {m} len {len}");
            }
        }
    }

    #[test]
    fn classify_matches_scalar_at_every_alignment() {
        let classes = ByteClasses::from_key_fn(|b| b % 5);
        let bytes = pseudo_random_bytes(1024, 42);
        for offset in 0..33 {
            let slice = &bytes[offset..];
            let mut scalar = vec![0u8; slice.len()];
            classes.classify_into_scalar(slice, &mut scalar);
            let mut fused = vec![0u8; slice.len()];
            classes.classify_into(slice, &mut fused);
            assert_eq!(fused, scalar, "offset {offset}");
        }
    }

    #[test]
    fn classify_covers_every_byte_value() {
        let classes = ByteClasses::from_key_fn(|b| b.count_ones() as u8);
        let bytes: Vec<u8> = (0..=255u8).cycle().take(512).collect();
        let mut out = vec![0u8; bytes.len()];
        classes.classify_into(&bytes, &mut out);
        for (i, &b) in bytes.iter().enumerate() {
            assert_eq!(out[i], classes.get(b), "byte {b:#04x}");
        }
    }
}
