//! Byte-class alphabet compression.
//!
//! Real automata rarely distinguish all 256 bytes: the paper's `traffic`
//! NFA, for instance, treats every letter in a hostname identically. Mapping
//! each input byte to an *equivalence class* first shrinks DFA transition
//! tables by `256 / num_classes`, which directly attacks the cache-miss
//! problem the paper attributes to large chunk automata (Sect. 1).
//!
//! Two bytes are equivalent when no state of the source automaton can tell
//! them apart, i.e. they have identical transition columns.

use std::collections::HashMap;

/// A surjective map `byte → class` with classes numbered `0..num_classes`.
#[derive(Clone, PartialEq, Eq)]
pub struct ByteClasses {
    map: Vec<u8>, // length 256
    num_classes: u16,
}

impl ByteClasses {
    /// The identity mapping: every byte is its own class.
    pub fn identity() -> ByteClasses {
        ByteClasses {
            map: (0..=255).collect(),
            num_classes: 256,
        }
    }

    /// Builds classes by grouping bytes with equal keys.
    ///
    /// `key(b)` must be a complete description of how the automaton reacts
    /// to byte `b` (e.g. the concatenated transition column). Classes are
    /// numbered in order of first appearance, so class ids are deterministic.
    pub fn from_key_fn<K: std::hash::Hash + Eq>(mut key: impl FnMut(u8) -> K) -> ByteClasses {
        let mut ids: HashMap<K, u8> = HashMap::new();
        let mut map = Vec::with_capacity(256);
        for b in 0..=255u8 {
            let next = ids.len() as u8;
            let id = *ids.entry(key(b)).or_insert(next);
            map.push(id);
        }
        ByteClasses {
            num_classes: ids.len() as u16,
            map,
        }
    }

    /// Builds a class map from explicit per-byte ids (e.g. loaded from
    /// disk), preserving the given numbering. Every class in
    /// `0..num_classes` must have at least one member byte, so dense
    /// transition tables keep a well-defined stride and representative set.
    pub fn from_exact_map(map: Vec<u8>, num_classes: usize) -> crate::Result<ByteClasses> {
        use crate::error::Error;
        if map.len() != 256 {
            return Err(Error::InvalidAutomaton(format!(
                "class map has {} entries, expected 256",
                map.len()
            )));
        }
        if num_classes == 0 || num_classes > 256 {
            return Err(Error::InvalidAutomaton(format!(
                "num_classes {num_classes} out of range 1..=256"
            )));
        }
        let mut used = vec![false; num_classes];
        for &c in &map {
            if c as usize >= num_classes {
                return Err(Error::InvalidAutomaton(format!(
                    "class id {c} exceeds num_classes {num_classes}"
                )));
            }
            used[c as usize] = true;
        }
        if let Some(missing) = used.iter().position(|&u| !u) {
            return Err(Error::InvalidAutomaton(format!(
                "class {missing} has no member byte"
            )));
        }
        Ok(ByteClasses {
            map,
            num_classes: num_classes as u16,
        })
    }

    /// Class of `byte`.
    #[inline(always)]
    pub fn get(&self, byte: u8) -> u8 {
        // `map` always has length 256, so this never bounds-checks in
        // release builds.
        self.map[byte as usize]
    }

    /// Classifies a block of bytes in one pass: `out[i] = get(bytes[i])`.
    ///
    /// This is the shared byte→class translation of the lockstep scan
    /// kernel: a chunk is classified block-wise *once*, instead of every
    /// speculative run paying one [`get`](ByteClasses::get) per byte.
    /// Where the CPU has AVX2 (detected at runtime, see
    /// [`simd::enabled`](crate::simd::enabled)) the translation runs as a
    /// nibble-shuffle vector kernel; otherwise — and always on the
    /// explicitly callable [`classify_into_scalar`](ByteClasses::classify_into_scalar)
    /// oracle — it is a plain gather over the 256-byte table. Both
    /// produce identical output for any input and alignment.
    ///
    /// # Panics
    /// When `out` is shorter than `bytes`.
    #[inline]
    pub fn classify_into(&self, bytes: &[u8], out: &mut [u8]) {
        let out = &mut out[..bytes.len()];
        if crate::simd::classify(&self.map, bytes, out) {
            return;
        }
        self.classify_into_scalar(bytes, out);
    }

    /// The scalar byte→class translation — the differential oracle for
    /// the SIMD path of [`classify_into`](ByteClasses::classify_into),
    /// and the fallback where the vector kernel is unavailable. A pure
    /// gather over the 256-byte map, which the compiler unrolls and the
    /// hardware prefetches perfectly.
    ///
    /// # Panics
    /// When `out` is shorter than `bytes`.
    #[inline]
    pub fn classify_into_scalar(&self, bytes: &[u8], out: &mut [u8]) {
        let out = &mut out[..bytes.len()];
        for (slot, &byte) in out.iter_mut().zip(bytes) {
            *slot = self.map[byte as usize];
        }
    }

    /// Number of distinct classes (the stride of dense transition tables).
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes as usize
    }

    /// One representative byte per class, in class order. Useful for
    /// iterating "over the alphabet" during subset constructions.
    pub fn representatives(&self) -> Vec<u8> {
        let mut reps = vec![None; self.num_classes as usize];
        for b in 0..=255u8 {
            let c = self.map[b as usize] as usize;
            if reps[c].is_none() {
                reps[c] = Some(b);
            }
        }
        reps.into_iter()
            .map(|r| r.expect("class without member"))
            .collect()
    }

    /// All bytes belonging to `class`.
    pub fn members(&self, class: u8) -> impl Iterator<Item = u8> + '_ {
        (0u16..256)
            .map(|b| b as u8)
            .filter(move |&b| self.map[b as usize] == class)
    }

    /// The coarsest common refinement of two class maps: bytes are
    /// equivalent iff they are equivalent under *both* inputs. Needed when
    /// comparing two automata built with different alphabets.
    pub fn refine(&self, other: &ByteClasses) -> ByteClasses {
        ByteClasses::from_key_fn(|b| (self.get(b), other.get(b)))
    }
}

impl std::fmt::Debug for ByteClasses {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ByteClasses({} classes)", self.num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_256_classes() {
        let c = ByteClasses::identity();
        assert_eq!(c.num_classes(), 256);
        for b in 0..=255u8 {
            assert_eq!(c.get(b), b);
        }
    }

    #[test]
    fn grouping_by_key() {
        // Key: is the byte a digit? → exactly two classes.
        let c = ByteClasses::from_key_fn(|b| b.is_ascii_digit());
        assert_eq!(c.num_classes(), 2);
        assert_eq!(c.get(b'3'), c.get(b'9'));
        assert_ne!(c.get(b'3'), c.get(b'x'));
        // Class ids assigned in first-appearance order: byte 0 is not a
        // digit, so the non-digit class is 0.
        assert_eq!(c.get(0), 0);
        assert_eq!(c.get(b'0'), 1);
    }

    #[test]
    fn representatives_cover_all_classes() {
        let c = ByteClasses::from_key_fn(|b| b % 3);
        let reps = c.representatives();
        assert_eq!(reps.len(), c.num_classes());
        let mut seen: Vec<u8> = reps.iter().map(|&b| c.get(b)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), c.num_classes());
    }

    #[test]
    fn members_partition_the_byte_space() {
        let c = ByteClasses::from_key_fn(|b| b.is_ascii_alphabetic());
        let total: usize = (0..c.num_classes() as u8)
            .map(|cl| c.members(cl).count())
            .sum();
        assert_eq!(total, 256);
        assert!(c.members(c.get(b'a')).all(|b| b.is_ascii_alphabetic()));
    }

    #[test]
    fn refine_distinguishes_when_either_does() {
        let digits = ByteClasses::from_key_fn(|b| b.is_ascii_digit());
        let lower = ByteClasses::from_key_fn(|b| b.is_ascii_lowercase());
        let both = digits.refine(&lower);
        // Three populated groups: digit, lowercase, other.
        assert_eq!(both.num_classes(), 3);
        assert_ne!(both.get(b'1'), both.get(b'a'));
        assert_ne!(both.get(b'a'), both.get(b'#'));
        assert_eq!(both.get(b'#'), both.get(b'@'));
    }

    #[test]
    fn refine_with_identity_is_identity() {
        let c = ByteClasses::from_key_fn(|b| b % 2);
        let r = c.refine(&ByteClasses::identity());
        assert_eq!(r.num_classes(), 256);
    }
}
