//! Recursive-descent parser for the byte-regex dialect.

use crate::error::{Error, Result};
use crate::regex::{Ast, ByteSet};

/// Parses a pattern into an [`Ast`].
///
/// ```
/// use ridfa_automata::regex::parse;
/// let ast = parse("(a|b)*abb").unwrap();
/// assert!(!ast.is_nullable());
/// assert!(parse("(a|b").is_err());
/// ```
pub fn parse(pattern: &str) -> Result<Ast> {
    let mut p = Parser {
        bytes: pattern.as_bytes(),
        pos: 0,
    };
    let ast = p.alternation()?;
    if p.pos != p.bytes.len() {
        return Err(p.err("unexpected trailing input (unbalanced ')'?)"));
    }
    Ok(ast)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error::RegexSyntax {
            position: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn eat(&mut self, expected: u8) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// `alt := concat ('|' concat)*`
    fn alternation(&mut self) -> Result<Ast> {
        let mut branches = vec![self.concatenation()?];
        while self.eat(b'|') {
            branches.push(self.concatenation()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().unwrap_or(Ast::Empty))
        } else {
            // Do not collapse duplicate-free alternations through the smart
            // constructor: branches may legitimately include ε (`a|`).
            Ok(Ast::Alt(branches))
        }
    }

    /// `concat := repeat*` (stops at `|`, `)`, or end of input)
    fn concatenation(&mut self) -> Result<Ast> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.repetition()?);
        }
        Ok(Ast::concat(parts))
    }

    /// `repeat := atom postfix*`
    fn repetition(&mut self) -> Result<Ast> {
        let mut ast = self.atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    ast = Ast::star(ast);
                }
                Some(b'+') => {
                    self.pos += 1;
                    ast = Ast::plus(ast);
                }
                Some(b'?') => {
                    self.pos += 1;
                    ast = Ast::opt(ast);
                }
                Some(b'{') => {
                    self.pos += 1;
                    ast = self.counted(ast)?;
                }
                _ => return Ok(ast),
            }
        }
    }

    /// Parses `{m}`, `{m,}` or `{m,n}` after the opening brace.
    fn counted(&mut self, inner: Ast) -> Result<Ast> {
        let min = self.number()?;
        let max = if self.eat(b',') {
            if self.peek() == Some(b'}') {
                None
            } else {
                Some(self.number()?)
            }
        } else {
            Some(min)
        };
        if !self.eat(b'}') {
            return Err(self.err("expected '}' to close counted repetition"));
        }
        if let Some(max) = max {
            if max < min {
                return Err(self.err("counted repetition has max < min"));
            }
            if max == 0 {
                return Ok(Ast::Empty);
            }
        }
        const REPEAT_LIMIT: u32 = 4096;
        if min > REPEAT_LIMIT || max.is_some_and(|m| m > REPEAT_LIMIT) {
            return Err(Error::LimitExceeded {
                what: "counted repetition bound",
                limit: REPEAT_LIMIT as usize,
            });
        }
        Ok(Ast::Repeat {
            inner: Box::new(inner),
            min,
            max,
        })
    }

    fn number(&mut self) -> Result<u32> {
        let start = self.pos;
        let mut value: u32 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            self.pos += 1;
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add((b - b'0') as u32))
                .ok_or_else(|| self.err("repetition count overflows"))?;
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        Ok(value)
    }

    fn atom(&mut self) -> Result<Ast> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some(b'(') => {
                let inner = self.alternation()?;
                if !self.eat(b')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(inner)
            }
            Some(b'[') => self.class().map(Ast::Class),
            Some(b'.') => Ok(Ast::Class(ByteSet::dot())),
            Some(b'\\') => self.escape().map(Ast::Class),
            Some(b @ (b'*' | b'+' | b'?')) => {
                self.pos -= 1;
                Err(self.err(&format!("dangling repetition operator '{}'", b as char)))
            }
            Some(b'{') => {
                self.pos -= 1;
                Err(self.err("dangling counted repetition"))
            }
            Some(b')') => {
                self.pos -= 1;
                Err(self.err("unbalanced ')'"))
            }
            Some(b']') | Some(b'}') => Err(self.err("unescaped closing bracket")),
            Some(b) => Ok(Ast::Class(ByteSet::singleton(b))),
        }
    }

    /// Parses a character class after the opening `[`.
    fn class(&mut self) -> Result<ByteSet> {
        let negated = self.eat(b'^');
        let mut set = ByteSet::EMPTY;
        let mut first = true;
        loop {
            let b = match self.bump() {
                None => return Err(self.err("unterminated character class")),
                Some(b']') if !first => break,
                Some(b']') => {
                    // A `]` right after `[` (or `[^`) is a literal.
                    b']'
                }
                Some(b'\\') => {
                    let esc = self.escape()?;
                    if esc.len() != 1 {
                        // A multi-byte escape class (e.g. \d) inside [];
                        // ranges cannot start from it.
                        set = set.union(&esc);
                        first = false;
                        continue;
                    }
                    esc.min_byte()
                        .ok_or_else(|| self.err("empty class escape"))?
                }
                Some(b) => b,
            };
            first = false;
            // Range `x-y` unless the '-' is last-in-class.
            if self.peek() == Some(b'-') && self.bytes.get(self.pos + 1) != Some(&b']') {
                self.pos += 1; // consume '-'
                let hi = match self.bump() {
                    None => return Err(self.err("unterminated character class")),
                    Some(b'\\') => {
                        let esc = self.escape()?;
                        if esc.len() != 1 {
                            return Err(self.err("class escape cannot end a range"));
                        }
                        esc.min_byte()
                            .ok_or_else(|| self.err("empty class escape"))?
                    }
                    Some(hi) => hi,
                };
                if hi < b {
                    return Err(self.err("invalid range in character class"));
                }
                set.insert_range(b, hi);
            } else {
                set.insert(b);
            }
        }
        Ok(if negated { set.negate() } else { set })
    }

    /// Parses an escape after the backslash; returns the byte class denoted.
    fn escape(&mut self) -> Result<ByteSet> {
        match self.bump() {
            None => Err(self.err("dangling backslash")),
            Some(b'n') => Ok(ByteSet::singleton(b'\n')),
            Some(b't') => Ok(ByteSet::singleton(b'\t')),
            Some(b'r') => Ok(ByteSet::singleton(b'\r')),
            Some(b'0') => Ok(ByteSet::singleton(0)),
            Some(b'd') => Ok(ByteSet::digits()),
            Some(b'D') => Ok(ByteSet::digits().negate()),
            Some(b'w') => Ok(ByteSet::word()),
            Some(b'W') => Ok(ByteSet::word().negate()),
            Some(b's') => Ok(ByteSet::space()),
            Some(b'S') => Ok(ByteSet::space().negate()),
            Some(b'x') => {
                let hi = self.hex_digit()?;
                let lo = self.hex_digit()?;
                Ok(ByteSet::singleton(hi * 16 + lo))
            }
            // Escaped metacharacters and any other punctuation stand for
            // themselves.
            Some(b) if !b.is_ascii_alphanumeric() => Ok(ByteSet::singleton(b)),
            Some(b) => Err(self.err(&format!("unknown escape '\\{}'", b as char))),
        }
    }

    fn hex_digit(&mut self) -> Result<u8> {
        match self.bump() {
            Some(b @ b'0'..=b'9') => Ok(b - b'0'),
            Some(b @ b'a'..=b'f') => Ok(b - b'a' + 10),
            Some(b @ b'A'..=b'F') => Ok(b - b'A' + 10),
            _ => Err(self.err("expected hex digit after \\x")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_of(ast: &Ast) -> &ByteSet {
        match ast {
            Ast::Class(set) => set,
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn single_literal() {
        let ast = parse("a").unwrap();
        assert_eq!(ast, Ast::literal(b'a'));
    }

    #[test]
    fn concatenation_and_alternation() {
        let ast = parse("ab|c").unwrap();
        assert_eq!(
            ast,
            Ast::Alt(vec![
                Ast::Concat(vec![Ast::literal(b'a'), Ast::literal(b'b')]),
                Ast::literal(b'c'),
            ])
        );
    }

    #[test]
    fn empty_branches_allowed() {
        assert_eq!(parse("").unwrap(), Ast::Empty);
        let ast = parse("a|").unwrap();
        assert_eq!(ast, Ast::Alt(vec![Ast::literal(b'a'), Ast::Empty]));
        let ast = parse("|a").unwrap();
        assert_eq!(ast, Ast::Alt(vec![Ast::Empty, Ast::literal(b'a')]));
    }

    #[test]
    fn repetition_operators() {
        assert_eq!(parse("a*").unwrap(), Ast::star(Ast::literal(b'a')));
        assert_eq!(parse("a+").unwrap(), Ast::plus(Ast::literal(b'a')));
        assert_eq!(parse("a?").unwrap(), Ast::opt(Ast::literal(b'a')));
        // Stacked postfix operators apply inside-out.
        assert_eq!(
            parse("a+?").unwrap(),
            Ast::opt(Ast::plus(Ast::literal(b'a')))
        );
    }

    #[test]
    fn counted_repetition() {
        assert_eq!(
            parse("a{3}").unwrap(),
            Ast::Repeat {
                inner: Box::new(Ast::literal(b'a')),
                min: 3,
                max: Some(3)
            }
        );
        assert_eq!(
            parse("a{2,}").unwrap(),
            Ast::Repeat {
                inner: Box::new(Ast::literal(b'a')),
                min: 2,
                max: None
            }
        );
        assert_eq!(
            parse("a{2,5}").unwrap(),
            Ast::Repeat {
                inner: Box::new(Ast::literal(b'a')),
                min: 2,
                max: Some(5)
            }
        );
        assert_eq!(parse("a{0,0}").unwrap(), Ast::Empty);
        assert!(parse("a{5,2}").is_err());
        assert!(parse("a{99999}").is_err());
        assert!(parse("a{2").is_err());
    }

    #[test]
    fn grouping_changes_precedence() {
        let ab_star = parse("(ab)*").unwrap();
        assert_eq!(
            ab_star,
            Ast::star(Ast::Concat(vec![Ast::literal(b'a'), Ast::literal(b'b')]))
        );
        let a_bstar = parse("ab*").unwrap();
        assert_eq!(
            a_bstar,
            Ast::Concat(vec![Ast::literal(b'a'), Ast::star(Ast::literal(b'b'))])
        );
    }

    #[test]
    fn character_classes() {
        let set = *class_of(&parse("[a-cx]").unwrap());
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![b'a', b'b', b'c', b'x']);

        let neg = *class_of(&parse("[^a]").unwrap());
        assert!(!neg.contains(b'a'));
        assert_eq!(neg.len(), 255);

        // `]` first is literal; `-` last is literal.
        let tricky = *class_of(&parse("[]a-]").unwrap());
        assert!(tricky.contains(b']') && tricky.contains(b'a') && tricky.contains(b'-'));
        assert_eq!(tricky.len(), 3);
    }

    #[test]
    fn class_with_escapes() {
        let set = *class_of(&parse("[\\d\\-]").unwrap());
        assert!(set.contains(b'5') && set.contains(b'-'));
        assert_eq!(set.len(), 11);

        let range = *class_of(&parse("[\\x41-\\x43]").unwrap());
        assert_eq!(range.iter().collect::<Vec<_>>(), vec![b'A', b'B', b'C']);
    }

    #[test]
    fn dot_and_perl_escapes() {
        assert_eq!(parse(".").unwrap(), Ast::Class(ByteSet::dot()));
        assert_eq!(parse("\\d").unwrap(), Ast::Class(ByteSet::digits()));
        assert_eq!(parse("\\W").unwrap(), Ast::Class(ByteSet::word().negate()));
        assert_eq!(parse("\\x20").unwrap(), Ast::literal(b' '));
        assert_eq!(parse("\\.").unwrap(), Ast::literal(b'.'));
        assert_eq!(parse("\\\\").unwrap(), Ast::literal(b'\\'));
    }

    #[test]
    fn syntax_errors() {
        for bad in [
            "(a", "a)", "*a", "+", "?x", "[a", "[z-a]", "\\", "\\q", "\\x1", "a{", "]",
        ] {
            assert!(parse(bad).is_err(), "pattern {bad:?} should fail");
        }
    }

    #[test]
    fn error_position_points_at_problem() {
        match parse("ab)").unwrap_err() {
            Error::RegexSyntax { position, .. } => assert_eq!(position, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn nested_groups() {
        let ast = parse("((a|b)(c|d))*e").unwrap();
        assert!(!ast.is_nullable());
        assert_eq!(ast.num_positions(), 5);
    }
}
