//! Canonical printer for [`Ast`]; the output reparses to the same tree.

use std::fmt::{self, Write};

use crate::regex::{Ast, ByteSet};

/// Operator precedence used to decide where parentheses are needed.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
enum Prec {
    Alt = 0,
    Concat = 1,
    Repeat = 2,
}

impl fmt::Display for Ast {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_ast(f, self, Prec::Alt)
    }
}

fn write_ast(f: &mut fmt::Formatter<'_>, ast: &Ast, ctx: Prec) -> fmt::Result {
    match ast {
        Ast::Empty => Ok(()),
        Ast::Class(set) => write_class(f, set),
        Ast::Concat(parts) => {
            let needs_parens = ctx > Prec::Concat;
            if needs_parens {
                f.write_char('(')?;
            }
            for part in parts {
                write_ast(f, part, Prec::Concat)?;
            }
            if needs_parens {
                f.write_char(')')?;
            }
            Ok(())
        }
        Ast::Alt(branches) => {
            let needs_parens = ctx > Prec::Alt;
            if needs_parens {
                f.write_char('(')?;
            }
            for (i, branch) in branches.iter().enumerate() {
                if i > 0 {
                    f.write_char('|')?;
                }
                write_ast(f, branch, Prec::Alt)?;
            }
            if needs_parens {
                f.write_char(')')?;
            }
            Ok(())
        }
        Ast::Star(inner) => {
            write_repeat_target(f, inner)?;
            f.write_char('*')
        }
        Ast::Repeat { inner, min, max } => {
            write_repeat_target(f, inner)?;
            match (min, max) {
                (0, Some(1)) => f.write_char('?'),
                (1, None) => f.write_char('+'),
                (m, None) => write!(f, "{{{m},}}"),
                (m, Some(x)) if m == x => write!(f, "{{{m}}}"),
                (m, Some(x)) => write!(f, "{{{m},{x}}}"),
            }
        }
    }
}

/// Prints the operand of a postfix operator; ε needs explicit `()` so the
/// operator has something to attach to.
fn write_repeat_target(f: &mut fmt::Formatter<'_>, inner: &Ast) -> fmt::Result {
    if matches!(inner, Ast::Empty) {
        f.write_str("()")
    } else {
        write_ast(f, inner, Prec::Repeat)
    }
}

fn write_class(f: &mut fmt::Formatter<'_>, set: &ByteSet) -> fmt::Result {
    // Recognize shorthands first.
    if *set == ByteSet::dot() {
        return f.write_char('.');
    }
    if *set == ByteSet::digits() {
        return f.write_str("\\d");
    }
    if *set == ByteSet::digits().negate() {
        return f.write_str("\\D");
    }
    if *set == ByteSet::word() {
        return f.write_str("\\w");
    }
    if *set == ByteSet::word().negate() {
        return f.write_str("\\W");
    }
    if *set == ByteSet::space() {
        return f.write_str("\\s");
    }
    if *set == ByteSet::space().negate() {
        return f.write_str("\\S");
    }
    if set.len() == 1 {
        return write_literal(f, set.iter().next().unwrap());
    }
    // Print whichever of the set / its complement is smaller.
    if set.len() > 128 && !set.negate().is_empty() {
        f.write_str("[^")?;
        write_class_body(f, &set.negate())?;
    } else {
        f.write_char('[')?;
        write_class_body(f, set)?;
    }
    f.write_char(']')
}

fn write_class_body(f: &mut fmt::Formatter<'_>, set: &ByteSet) -> fmt::Result {
    // Coalesce member bytes into maximal ranges.
    let bytes: Vec<u8> = set.iter().collect();
    let mut i = 0;
    while i < bytes.len() {
        let start = bytes[i];
        let mut end = start;
        while i + 1 < bytes.len() && bytes[i + 1] == end.wrapping_add(1) {
            i += 1;
            end = bytes[i];
        }
        write_class_byte(f, start)?;
        if end > start {
            if end > start + 1 {
                f.write_char('-')?;
            }
            write_class_byte(f, end)?;
        }
        i += 1;
    }
    Ok(())
}

/// Escapes a byte for use inside `[...]`.
fn write_class_byte(f: &mut fmt::Formatter<'_>, b: u8) -> fmt::Result {
    match b {
        b']' | b'\\' | b'^' | b'-' => write!(f, "\\{}", b as char),
        b'\n' => f.write_str("\\n"),
        b'\t' => f.write_str("\\t"),
        b'\r' => f.write_str("\\r"),
        b if b.is_ascii_graphic() || b == b' ' => f.write_char(b as char),
        b => write!(f, "\\x{b:02x}"),
    }
}

/// Escapes a byte for use as a bare literal.
fn write_literal(f: &mut fmt::Formatter<'_>, b: u8) -> fmt::Result {
    match b {
        b'\\' | b'.' | b'*' | b'+' | b'?' | b'(' | b')' | b'[' | b']' | b'{' | b'}' | b'|'
        | b'^' | b'$' | b'-' => write!(f, "\\{}", b as char),
        b'\n' => f.write_str("\\n"),
        b'\t' => f.write_str("\\t"),
        b'\r' => f.write_str("\\r"),
        b if b.is_ascii_graphic() || b == b' ' => f.write_char(b as char),
        b => write!(f, "\\x{b:02x}"),
    }
}

#[cfg(test)]
mod tests {
    use crate::regex::{parse, Ast, ByteSet};

    #[track_caller]
    fn roundtrip(pattern: &str) {
        let ast = parse(pattern).unwrap();
        let printed = ast.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed {printed:?} failed to reparse: {e}"));
        assert_eq!(ast, reparsed, "pattern {pattern:?} → {printed:?}");
    }

    #[test]
    fn literal_printing() {
        assert_eq!(parse("abc").unwrap().to_string(), "abc");
        assert_eq!(parse("\\.").unwrap().to_string(), "\\.");
        assert_eq!(parse("\\n").unwrap().to_string(), "\\n");
        assert_eq!(parse("\\x01").unwrap().to_string(), "\\x01");
    }

    #[test]
    fn operator_printing() {
        assert_eq!(parse("a*").unwrap().to_string(), "a*");
        assert_eq!(parse("a+").unwrap().to_string(), "a+");
        assert_eq!(parse("a?").unwrap().to_string(), "a?");
        assert_eq!(parse("a{3}").unwrap().to_string(), "a{3}");
        assert_eq!(parse("a{2,}").unwrap().to_string(), "a{2,}");
        assert_eq!(parse("a{2,5}").unwrap().to_string(), "a{2,5}");
    }

    #[test]
    fn parens_only_where_needed() {
        assert_eq!(parse("(ab)*").unwrap().to_string(), "(ab)*");
        assert_eq!(parse("(a|b)c").unwrap().to_string(), "(a|b)c");
        assert_eq!(parse("a|bc").unwrap().to_string(), "a|bc");
        // Redundant parens disappear.
        assert_eq!(parse("(a)(b)").unwrap().to_string(), "ab");
    }

    #[test]
    fn class_printing() {
        assert_eq!(parse("[a-c]").unwrap().to_string(), "[a-c]");
        assert_eq!(parse("[ab]").unwrap().to_string(), "[ab]");
        assert_eq!(parse(".").unwrap().to_string(), ".");
        assert_eq!(parse("\\d").unwrap().to_string(), "\\d");
        assert_eq!(parse("\\S").unwrap().to_string(), "\\S");
        // Large sets print negated.
        assert_eq!(parse("[^q]").unwrap().to_string(), "[^q]");
    }

    #[test]
    fn roundtrips() {
        for p in [
            "(a|b)*abb",
            "x{0,3}(y|z)+",
            "[A-Za-z_][A-Za-z0-9_]*",
            "\\d{1,3}(\\.\\d{1,3}){3}",
            "a||b",
            "[]x-]+",
            "[^\\n\\t]",
            "(|a)(b|)",
            "\\x00\\xff",
        ] {
            roundtrip(p);
        }
    }

    #[test]
    fn empty_star_prints_parseably() {
        // Star of ε collapses in the smart constructor, but a hand-built
        // Repeat over ε must still print to something parseable.
        let ast = Ast::Repeat {
            inner: Box::new(Ast::Empty),
            min: 2,
            max: Some(3),
        };
        let printed = ast.to_string();
        assert_eq!(printed, "(){2,3}");
        parse(&printed).unwrap();
    }

    #[test]
    fn full_byteset_prints_parseably() {
        let ast = Ast::Class(ByteSet::ANY);
        let printed = ast.to_string();
        let reparsed = parse(&printed).unwrap();
        assert_eq!(ast, reparsed);
    }
}
