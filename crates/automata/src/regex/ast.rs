//! The regular-expression abstract syntax tree and byte-class sets.

/// A set of bytes (a character class), stored as a 256-bit mask.
///
/// This is the symbol type of all automata in the workspace: an NFA/DFA edge
/// is labelled by one byte, but the AST and the Glushkov construction handle
/// whole classes at once to keep benchmark automata (whose alphabets are
/// byte classes like `Σ`, `[a-z]`, `\d`) compact to describe.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteSet {
    words: [u64; 4],
}

impl ByteSet {
    /// The empty set.
    pub const EMPTY: ByteSet = ByteSet { words: [0; 4] };

    /// The full set of all 256 bytes.
    pub const ANY: ByteSet = ByteSet {
        words: [u64::MAX; 4],
    };

    /// Creates a set containing a single byte.
    pub fn singleton(b: u8) -> ByteSet {
        let mut s = ByteSet::EMPTY;
        s.insert(b);
        s
    }

    /// Creates a set from an inclusive byte range.
    pub fn range(lo: u8, hi: u8) -> ByteSet {
        let mut s = ByteSet::EMPTY;
        s.insert_range(lo, hi);
        s
    }

    /// Creates a set from an explicit list of bytes.
    pub fn from_bytes(bytes: &[u8]) -> ByteSet {
        let mut s = ByteSet::EMPTY;
        for &b in bytes {
            s.insert(b);
        }
        s
    }

    /// The `.` class: every byte except `\n`.
    pub fn dot() -> ByteSet {
        let mut s = ByteSet::ANY;
        s.remove(b'\n');
        s
    }

    /// ASCII digits `[0-9]` (`\d`).
    pub fn digits() -> ByteSet {
        ByteSet::range(b'0', b'9')
    }

    /// Word bytes `[0-9A-Za-z_]` (`\w`).
    pub fn word() -> ByteSet {
        let mut s = ByteSet::range(b'0', b'9');
        s.insert_range(b'A', b'Z');
        s.insert_range(b'a', b'z');
        s.insert(b'_');
        s
    }

    /// ASCII whitespace (`\s`): space, `\t`, `\n`, `\r`, `\x0b`, `\x0c`.
    pub fn space() -> ByteSet {
        ByteSet::from_bytes(&[b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c])
    }

    /// Adds one byte.
    #[inline]
    pub fn insert(&mut self, b: u8) {
        self.words[b as usize / 64] |= 1 << (b % 64);
    }

    /// Adds an inclusive range of bytes.
    pub fn insert_range(&mut self, lo: u8, hi: u8) {
        for b in lo..=hi {
            self.insert(b);
        }
    }

    /// Removes one byte.
    #[inline]
    pub fn remove(&mut self, b: u8) {
        self.words[b as usize / 64] &= !(1 << (b % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, b: u8) -> bool {
        self.words[b as usize / 64] & (1 << (b % 64)) != 0
    }

    /// The complement set (over all 256 bytes).
    pub fn negate(&self) -> ByteSet {
        ByteSet {
            words: [
                !self.words[0],
                !self.words[1],
                !self.words[2],
                !self.words[3],
            ],
        }
    }

    /// Set union.
    pub fn union(&self, other: &ByteSet) -> ByteSet {
        ByteSet {
            words: [
                self.words[0] | other.words[0],
                self.words[1] | other.words[1],
                self.words[2] | other.words[2],
                self.words[3] | other.words[3],
            ],
        }
    }

    /// Number of bytes in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words == [0; 4]
    }

    /// Iterates over the member bytes in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..256).map(|b| b as u8).filter(|&b| self.contains(b))
    }

    /// The smallest byte in the set, if any.
    pub fn min_byte(&self) -> Option<u8> {
        self.iter().next()
    }
}

impl std::fmt::Debug for ByteSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ByteSet{{")?;
        for (i, b) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if b.is_ascii_graphic() {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
            if i >= 8 {
                write!(f, ",…")?;
                break;
            }
        }
        write!(f, "}}")
    }
}

/// A parsed regular expression.
///
/// `Repeat` keeps bounded repetitions symbolic so patterns print back
/// faithfully; [`Ast::desugar`] lowers the tree to the core operators
/// (ε, class, concat, alt, star) that the NFA constructions consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// The empty string ε.
    Empty,
    /// One byte drawn from a class (single literals are singleton classes).
    Class(ByteSet),
    /// Concatenation of two or more factors (invariant: `len ≥ 2`).
    Concat(Vec<Ast>),
    /// Alternation of two or more branches (invariant: `len ≥ 2`).
    Alt(Vec<Ast>),
    /// Kleene star.
    Star(Box<Ast>),
    /// Bounded repetition `e{min,max}`; `max == None` means unbounded.
    Repeat {
        /// The repeated subexpression.
        inner: Box<Ast>,
        /// Minimum number of copies.
        min: u32,
        /// Maximum number of copies (`None` = unbounded).
        max: Option<u32>,
    },
}

impl Ast {
    /// A single-byte literal.
    pub fn literal(b: u8) -> Ast {
        Ast::Class(ByteSet::singleton(b))
    }

    /// A literal byte string (ε when empty).
    pub fn literal_str(s: &[u8]) -> Ast {
        Ast::concat(s.iter().map(|&b| Ast::literal(b)).collect())
    }

    /// Smart concatenation: flattens nested concats and drops ε factors.
    pub fn concat(mut parts: Vec<Ast>) -> Ast {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts.drain(..) {
            match p {
                Ast::Empty => {}
                Ast::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Ast::Empty,
            1 => flat.pop().unwrap(),
            _ => Ast::Concat(flat),
        }
    }

    /// Smart alternation: flattens nested alts.
    pub fn alt(mut branches: Vec<Ast>) -> Ast {
        let mut flat = Vec::with_capacity(branches.len());
        for b in branches.drain(..) {
            match b {
                Ast::Alt(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Ast::Empty,
            1 => flat.pop().unwrap(),
            _ => Ast::Alt(flat),
        }
    }

    /// Kleene star (collapses `(e*)*` to `e*` and `ε*` to `ε`).
    pub fn star(inner: Ast) -> Ast {
        match inner {
            Ast::Empty => Ast::Empty,
            s @ Ast::Star(_) => s,
            other => Ast::Star(Box::new(other)),
        }
    }

    /// `e?` sugar.
    pub fn opt(inner: Ast) -> Ast {
        Ast::Repeat {
            inner: Box::new(inner),
            min: 0,
            max: Some(1),
        }
    }

    /// `e+` sugar.
    pub fn plus(inner: Ast) -> Ast {
        Ast::Repeat {
            inner: Box::new(inner),
            min: 1,
            max: None,
        }
    }

    /// Lowers `Repeat` nodes into the core operators.
    ///
    /// `e{m,n}` becomes `e…e (e(e(…)?)?…)?` (m copies then n−m nested
    /// optionals, keeping the result linear in `n`), `e{m,}` becomes
    /// `e…e e*`.
    pub fn desugar(&self) -> Ast {
        match self {
            Ast::Empty | Ast::Class(_) => self.clone(),
            Ast::Concat(parts) => Ast::concat(parts.iter().map(Ast::desugar).collect()),
            Ast::Alt(branches) => Ast::alt(branches.iter().map(Ast::desugar).collect()),
            Ast::Star(inner) => Ast::star(inner.desugar()),
            Ast::Repeat { inner, min, max } => {
                let inner = inner.desugar();
                let mut parts = Vec::new();
                for _ in 0..*min {
                    parts.push(inner.clone());
                }
                match max {
                    None => parts.push(Ast::star(inner)),
                    Some(max) => {
                        // Build the nested-optional tail ( e ( e … )? )?.
                        let extra = max.saturating_sub(*min);
                        let mut tail = Ast::Empty;
                        for _ in 0..extra {
                            let body = Ast::concat(vec![inner.clone(), tail]);
                            tail = Ast::alt(vec![body, Ast::Empty]);
                        }
                        parts.push(tail);
                    }
                }
                Ast::concat(parts)
            }
        }
    }

    /// `true` if the expression can match the empty string.
    pub fn is_nullable(&self) -> bool {
        match self {
            Ast::Empty => true,
            Ast::Class(_) => false,
            Ast::Concat(parts) => parts.iter().all(Ast::is_nullable),
            Ast::Alt(branches) => branches.iter().any(Ast::is_nullable),
            Ast::Star(_) => true,
            Ast::Repeat { inner, min, .. } => *min == 0 || inner.is_nullable(),
        }
    }

    /// Number of *positions* (class/literal occurrences) after desugaring:
    /// this is the Glushkov NFA state count minus one.
    pub fn num_positions(&self) -> usize {
        match self {
            Ast::Empty => 0,
            Ast::Class(_) => 1,
            Ast::Concat(parts) => parts.iter().map(Ast::num_positions).sum(),
            Ast::Alt(branches) => branches.iter().map(Ast::num_positions).sum(),
            Ast::Star(inner) => inner.num_positions(),
            Ast::Repeat { inner, min, max } => {
                let n = inner.num_positions();
                match max {
                    None => n * (*min as usize + 1),
                    Some(max) => n * (*max).max(*min) as usize,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byteset_basics() {
        let mut s = ByteSet::EMPTY;
        assert!(s.is_empty());
        s.insert(b'a');
        s.insert_range(b'x', b'z');
        assert!(s.contains(b'a') && s.contains(b'y'));
        assert!(!s.contains(b'b'));
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![b'a', b'x', b'y', b'z']);
    }

    #[test]
    fn byteset_negate_is_involutive() {
        let s = ByteSet::range(b'0', b'9');
        assert_eq!(s.negate().negate(), s);
        assert_eq!(s.negate().len(), 256 - 10);
        assert!(!s.negate().contains(b'5'));
        assert!(s.negate().contains(b'a'));
    }

    #[test]
    fn byteset_dot_excludes_newline() {
        let dot = ByteSet::dot();
        assert!(!dot.contains(b'\n'));
        assert!(dot.contains(b'\r'));
        assert_eq!(dot.len(), 255);
    }

    #[test]
    fn byteset_perl_classes() {
        assert_eq!(ByteSet::digits().len(), 10);
        assert_eq!(ByteSet::word().len(), 10 + 26 + 26 + 1);
        assert!(ByteSet::space().contains(b'\t'));
        assert!(!ByteSet::space().contains(b'x'));
    }

    #[test]
    fn smart_constructors_flatten() {
        let a = Ast::literal(b'a');
        let b = Ast::literal(b'b');
        let c = Ast::literal(b'c');
        let nested = Ast::concat(vec![
            a.clone(),
            Ast::concat(vec![b.clone(), c.clone()]),
            Ast::Empty,
        ]);
        assert_eq!(nested, Ast::Concat(vec![a.clone(), b.clone(), c.clone()]));

        let alts = Ast::alt(vec![a.clone(), Ast::alt(vec![b.clone(), c.clone()])]);
        assert_eq!(alts, Ast::Alt(vec![a.clone(), b, c]));

        assert_eq!(Ast::star(Ast::star(a.clone())), Ast::star(a));
        assert_eq!(Ast::star(Ast::Empty), Ast::Empty);
    }

    #[test]
    fn nullability() {
        let a = Ast::literal(b'a');
        assert!(!a.is_nullable());
        assert!(Ast::star(a.clone()).is_nullable());
        assert!(Ast::opt(a.clone()).is_nullable());
        assert!(!Ast::plus(a.clone()).is_nullable());
        assert!(Ast::Empty.is_nullable());
        assert!(Ast::alt(vec![a.clone(), Ast::Empty]).is_nullable());
        assert!(!Ast::concat(vec![a.clone(), Ast::star(a)]).is_nullable());
    }

    #[test]
    fn desugar_bounded_repeat() {
        // a{2,4} must be nullable-free, match lengths 2..=4 in positions.
        let r = Ast::Repeat {
            inner: Box::new(Ast::literal(b'a')),
            min: 2,
            max: Some(4),
        };
        let d = r.desugar();
        assert!(!d.is_nullable());
        assert_eq!(d.num_positions(), 4);
        // a{0,2} is nullable.
        let r0 = Ast::Repeat {
            inner: Box::new(Ast::literal(b'a')),
            min: 0,
            max: Some(2),
        };
        assert!(r0.desugar().is_nullable());
    }

    #[test]
    fn desugar_unbounded_repeat() {
        let d = Ast::plus(Ast::literal(b'a')).desugar();
        // a+ = a a*
        assert_eq!(
            d,
            Ast::Concat(vec![Ast::literal(b'a'), Ast::star(Ast::literal(b'a'))])
        );
    }

    #[test]
    fn literal_str_builds_concat() {
        assert_eq!(Ast::literal_str(b""), Ast::Empty);
        assert_eq!(Ast::literal_str(b"x"), Ast::literal(b'x'));
        assert_eq!(
            Ast::literal_str(b"ab"),
            Ast::Concat(vec![Ast::literal(b'a'), Ast::literal(b'b')])
        );
    }

    #[test]
    fn num_positions_counts_occurrences() {
        let ast = Ast::concat(vec![
            Ast::star(Ast::Class(ByteSet::from_bytes(b"ab"))),
            Ast::literal(b'a'),
            Ast::Repeat {
                inner: Box::new(Ast::Class(ByteSet::from_bytes(b"ab"))),
                min: 3,
                max: Some(3),
            },
        ]);
        // (a|b)* a (a|b){3} → 1 + 1 + 3 = 5 positions → 6 Glushkov states.
        assert_eq!(ast.num_positions(), 5);
    }
}
