//! Regular expressions over bytes: AST, parser, and printer.
//!
//! The dialect is the classical one used by the paper's benchmarks:
//! alternation `|`, concatenation, repetition `* + ? {m} {m,} {m,n}`,
//! grouping `( )`, byte classes `[abc] [a-z] [^x]`, the any-byte-but-newline
//! dot `.`, and escapes (`\n`, `\t`, `\r`, `\0`, `\xHH`, `\d`, `\w`, `\s`
//! and their negations, plus escaped metacharacters).
//!
//! Parsing never backtracks and is linear in the pattern length; the
//! [`Ast`] printer round-trips through the parser (see the property tests).

mod ast;
mod display;
mod parser;

pub use ast::{Ast, ByteSet};
pub use parser::parse;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_print_reparse_roundtrip() {
        // Printing a parsed AST and reparsing it must give the same AST.
        for pattern in [
            "(a|b)*abb",
            "a{2,4}[x-z]+",
            "\\d+\\.\\d+",
            "[^a-c]*",
            "a||b",
            "(ab)?c{3}",
            ".*<h3>[^<]*</h3>.*",
        ] {
            let once = parse(pattern).unwrap();
            let printed = once.to_string();
            let twice =
                parse(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
            assert_eq!(once, twice, "pattern {pattern:?} printed as {printed:?}");
        }
    }
}
