//! # ridfa-automata — finite-automata substrate
//!
//! This crate provides the classical automata machinery that the RI-DFA
//! construction and the speculative data-parallel recognizer (crate
//! `ridfa-core`) build upon:
//!
//! * a regular-expression engine: [`regex::Ast`], a [parser](regex::parse),
//!   and a printer that round-trips;
//! * two RE → NFA translations: [Thompson](nfa::thompson) (via ε-transitions)
//!   and [Glushkov / McNaughton–Yamada](nfa::glushkov) (ε-free, the GMY
//!   construction cited as \[19\] by the paper);
//! * an ε-free [`Nfa`](nfa::Nfa) with set-based simulation and transition
//!   counting;
//! * a dense, byte-class-compressed [`Dfa`](dfa::Dfa) with the
//!   [powerset construction](dfa::powerset), [Hopcroft
//!   minimization](dfa::minimize), Moore partition refinement (reused by the
//!   RI-DFA interface minimization of Sect. 3.4 of the paper), and a
//!   language-equivalence test oracle;
//! * small allocation-free utilities used on hot paths: [`BitSet`],
//!   [`SparseSet`], and [`alphabet::ByteClasses`].
//!
//! All state identifiers are dense [`StateId`] integers; transition tables
//! are flat arrays indexed by `state * stride + byte_class`, so the hot loops
//! contain no hashing and no pointer chasing.
//!
//! ## Quick example
//!
//! ```
//! use ridfa_automata::{regex, nfa, dfa};
//!
//! let ast = regex::parse("(a|b)*abb").unwrap();
//! let nfa = nfa::glushkov::build(&ast).unwrap();
//! assert!(nfa.accepts(b"aabb"));
//!
//! let dfa = dfa::powerset::determinize(&nfa);
//! let min = dfa::minimize::minimize(&dfa);
//! assert!(min.accepts(b"abababb"));
//! assert!(!min.accepts(b"ba"));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod alphabet;
mod bitset;
pub mod counter;
pub mod dfa;
mod error;
pub mod nfa;
pub mod regex;
pub mod serialize;
pub mod simd;
mod sparse;

pub use bitset::BitSet;
pub use counter::{Counter, NoCount, TransitionCount};
pub use error::{ConstructionBudget, ConstructionError, Error, Result};
pub use sparse::SparseSet;

/// Dense identifier of an automaton state.
///
/// States are numbered `0..num_states`. For the [`dfa::Dfa`] representation,
/// state `0` is reserved as the *dead* state ([`DEAD`]): every missing
/// transition leads there and a speculative run that reaches it has
/// "prematurely terminated in error" in the paper's terminology.
pub type StateId = u32;

/// The dead (error) state of a [`dfa::Dfa`]: reaching it means the scanned
/// string is not a substring of the language and the run can stop early.
pub const DEAD: StateId = 0;
