//! The classic *sparse set* of Briggs & Torczon.
//!
//! NFA set-simulation needs a set of states supporting O(1) insert with
//! duplicate suppression, O(1) clear, and iteration in insertion order —
//! without touching O(capacity) memory per chunk of input. The sparse-set
//! trick gives exactly that and is the standard structure in production
//! regex engines.

use crate::StateId;

/// A set of `StateId`s with O(1) insert/membership/clear and iteration in
/// insertion order.
#[derive(Debug, Clone)]
pub struct SparseSet {
    dense: Vec<StateId>,
    sparse: Vec<u32>,
}

impl SparseSet {
    /// Creates a set able to hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        SparseSet {
            dense: Vec::with_capacity(capacity),
            sparse: vec![u32::MAX; capacity],
        }
    }

    /// Number of ids the set can hold.
    pub fn capacity(&self) -> usize {
        self.sparse.len()
    }

    /// Inserts `id`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, id: StateId) -> bool {
        if self.contains(id) {
            return false;
        }
        self.sparse[id as usize] = self.dense.len() as u32;
        self.dense.push(id);
        true
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: StateId) -> bool {
        let slot = self.sparse[id as usize];
        (slot as usize) < self.dense.len() && self.dense[slot as usize] == id
    }

    /// Removes all elements in O(1) (lazily invalidates the sparse slots).
    #[inline]
    pub fn clear(&mut self) {
        self.dense.clear();
    }

    /// Number of elements present.
    #[inline]
    pub fn len(&self) -> usize {
        self.dense.len()
    }

    /// `true` if no element is present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dense.is_empty()
    }

    /// The elements in insertion order.
    #[inline]
    pub fn as_slice(&self) -> &[StateId] {
        &self.dense
    }

    /// Iterates over elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = StateId> + '_ {
        self.dense.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedup_and_order() {
        let mut s = SparseSet::new(16);
        assert!(s.insert(3));
        assert!(s.insert(1));
        assert!(!s.insert(3));
        assert!(s.insert(15));
        assert_eq!(s.as_slice(), &[3, 1, 15]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn clear_is_lazy_but_correct() {
        let mut s = SparseSet::new(8);
        s.insert(2);
        s.insert(5);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(2));
        // Reinsertion after clear must work even though sparse[] still holds
        // stale slots.
        assert!(s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(2));
        assert_eq!(s.as_slice(), &[5]);
    }

    #[test]
    fn fresh_set_contains_nothing() {
        let s = SparseSet::new(4);
        for id in 0..4 {
            assert!(!s.contains(id));
        }
        assert_eq!(s.capacity(), 4);
    }

    #[test]
    fn iter_matches_slice() {
        let mut s = SparseSet::new(10);
        for id in [9u32, 0, 4] {
            s.insert(id);
        }
        let via_iter: Vec<_> = s.iter().collect();
        assert_eq!(via_iter, s.as_slice());
    }
}
