//! Error type shared by the automata substrate.

use std::fmt;

/// Errors produced while parsing regular expressions or building automata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The regular expression was syntactically malformed.
    RegexSyntax {
        /// Byte offset of the offending token in the pattern.
        position: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An automaton construction hit a configured resource limit
    /// (e.g. powerset state explosion beyond the allowed bound).
    LimitExceeded {
        /// Which limit was hit.
        what: &'static str,
        /// The configured bound.
        limit: usize,
    },
    /// The automaton description is structurally invalid
    /// (e.g. a transition references a state that does not exist).
    InvalidAutomaton(String),
    /// A serialized automaton could not be decoded.
    Deserialize(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::RegexSyntax { position, message } => {
                write!(f, "regex syntax error at byte {position}: {message}")
            }
            Error::LimitExceeded { what, limit } => {
                write!(f, "{what} exceeded configured limit of {limit}")
            }
            Error::InvalidAutomaton(msg) => write!(f, "invalid automaton: {msg}"),
            Error::Deserialize(msg) => write!(f, "deserialization error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Alias naming the error returned by budgeted automaton constructions
/// ([`ConstructionBudget`]): today always [`Error::LimitExceeded`].
pub type ConstructionError = Error;

/// Resource bounds for automaton construction (powerset, RI-DFA, SFA).
///
/// Untrusted patterns can explode exponentially during determinization;
/// a budget converts that blow-up into a typed [`Error::LimitExceeded`]
/// *before* the offending allocation happens, instead of running the
/// process out of memory. Both axes are enforced:
///
/// * `max_states` — discovered states (excluding the dead state);
/// * `max_table_bytes` — bytes of dense transition table. Growth is
///   performed through [`grow_table`](ConstructionBudget::grow_table),
///   which also clamps `Vec` doubling so capacity never overshoots the
///   byte cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstructionBudget {
    /// Maximum number of constructed states (excluding the dead state).
    pub max_states: usize,
    /// Maximum size of the dense transition table, in bytes.
    pub max_table_bytes: usize,
}

impl Default for ConstructionBudget {
    fn default() -> Self {
        ConstructionBudget::UNLIMITED
    }
}

impl ConstructionBudget {
    /// No bounds: every construction succeeds (or aborts the process on
    /// genuine OOM, exactly like the unbudgeted entry points).
    pub const UNLIMITED: ConstructionBudget = ConstructionBudget {
        max_states: usize::MAX,
        max_table_bytes: usize::MAX,
    };

    /// A budget bounding only the number of states.
    pub fn with_max_states(max_states: usize) -> ConstructionBudget {
        ConstructionBudget {
            max_states,
            ..ConstructionBudget::UNLIMITED
        }
    }

    /// A budget bounding only the transition-table size in bytes.
    pub fn with_max_table_bytes(max_table_bytes: usize) -> ConstructionBudget {
        ConstructionBudget {
            max_table_bytes,
            ..ConstructionBudget::UNLIMITED
        }
    }

    /// Checks the state axis: `states` is the number of states already
    /// constructed (the candidate id of the next one). Mirrors the
    /// `contents.len() > max_states` convention of the historical
    /// `*_limited` entry points.
    pub fn charge_state(&self, states: usize, what: &'static str) -> Result<()> {
        if states > self.max_states {
            return Err(Error::LimitExceeded {
                what,
                limit: self.max_states,
            });
        }
        Ok(())
    }

    /// Checks the byte axis directly: `bytes` is the total size of some
    /// retained side structure (e.g. an inverse lookup map kept alongside
    /// the dense table). Unlike [`grow_table`](ConstructionBudget::grow_table)
    /// this performs no allocation — it only verifies that `bytes` fits
    /// under `max_table_bytes`, so callers can charge *before* allocating.
    pub fn charge_bytes(&self, bytes: usize, what: &'static str) -> Result<()> {
        if bytes > self.max_table_bytes {
            return Err(Error::LimitExceeded {
                what,
                limit: self.max_table_bytes,
            });
        }
        Ok(())
    }

    /// Appends one row of `stride` entries filled with `fill` to `table`,
    /// failing with [`Error::LimitExceeded`] if the resulting table would
    /// exceed `max_table_bytes`.
    ///
    /// Under a finite byte budget the reservation schedule is clamped:
    /// capacity grows geometrically (like `Vec`'s own doubling) but never
    /// past the cap, so the *allocation* also respects the budget — not
    /// just the length.
    pub fn grow_table<T: Clone>(
        &self,
        table: &mut Vec<T>,
        stride: usize,
        fill: T,
        what: &'static str,
    ) -> Result<()> {
        let entry = std::mem::size_of::<T>().max(1);
        let over = Error::LimitExceeded {
            what,
            limit: self.max_table_bytes,
        };
        let new_len = table
            .len()
            .checked_add(stride)
            .ok_or_else(|| over.clone())?;
        let bytes = new_len.checked_mul(entry).ok_or_else(|| over.clone())?;
        if bytes > self.max_table_bytes {
            return Err(over);
        }
        if self.max_table_bytes != usize::MAX && table.capacity() < new_len {
            // Clamped geometric growth: double, but stay under the cap so
            // the backing allocation can never exceed the byte budget.
            let cap_entries = self.max_table_bytes / entry;
            let target = (table.len().saturating_mul(2)).clamp(new_len, cap_entries);
            table.reserve_exact(target - table.len());
        }
        table.resize(new_len, fill);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_regex_syntax() {
        let e = Error::RegexSyntax {
            position: 3,
            message: "unbalanced parenthesis".into(),
        };
        assert_eq!(
            e.to_string(),
            "regex syntax error at byte 3: unbalanced parenthesis"
        );
    }

    #[test]
    fn display_limit() {
        let e = Error::LimitExceeded {
            what: "powerset states",
            limit: 10,
        };
        assert_eq!(
            e.to_string(),
            "powerset states exceeded configured limit of 10"
        );
    }

    #[test]
    fn display_invalid_and_deserialize() {
        assert_eq!(
            Error::InvalidAutomaton("bad".into()).to_string(),
            "invalid automaton: bad"
        );
        assert_eq!(
            Error::Deserialize("eof".into()).to_string(),
            "deserialization error: eof"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Deserialize("x".into()));
    }

    #[test]
    fn budget_charge_state_matches_limited_convention() {
        let b = ConstructionBudget::with_max_states(4);
        assert!(b.charge_state(4, "states").is_ok());
        let err = b.charge_state(5, "states").unwrap_err();
        assert_eq!(
            err,
            Error::LimitExceeded {
                what: "states",
                limit: 4
            }
        );
    }

    #[test]
    fn budget_grow_table_enforces_byte_cap() {
        // u32 entries: 16 bytes allow exactly 4 entries.
        let b = ConstructionBudget::with_max_table_bytes(16);
        let mut table: Vec<u32> = Vec::new();
        b.grow_table(&mut table, 2, 7, "table").unwrap();
        b.grow_table(&mut table, 2, 7, "table").unwrap();
        assert_eq!(table, vec![7, 7, 7, 7]);
        // Capacity never overshot the cap.
        assert!(table.capacity() * 4 <= 16, "capacity {}", table.capacity());
        let err = b.grow_table(&mut table, 1, 7, "table").unwrap_err();
        assert!(matches!(err, Error::LimitExceeded { limit: 16, .. }));
        assert_eq!(table.len(), 4, "failed growth must not change the table");
    }

    #[test]
    fn budget_charge_bytes_enforces_byte_cap() {
        let b = ConstructionBudget::with_max_table_bytes(64);
        assert!(b.charge_bytes(64, "side bytes").is_ok());
        let err = b.charge_bytes(65, "side bytes").unwrap_err();
        assert_eq!(
            err,
            Error::LimitExceeded {
                what: "side bytes",
                limit: 64
            }
        );
    }

    #[test]
    fn unlimited_budget_grows_freely() {
        let b = ConstructionBudget::UNLIMITED;
        assert_eq!(b, ConstructionBudget::default());
        let mut table: Vec<u32> = Vec::new();
        for _ in 0..100 {
            b.grow_table(&mut table, 8, 0, "table").unwrap();
        }
        assert_eq!(table.len(), 800);
        assert!(b.charge_state(usize::MAX - 1, "states").is_ok());
    }
}
