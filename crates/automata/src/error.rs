//! Error type shared by the automata substrate.

use std::fmt;

/// Errors produced while parsing regular expressions or building automata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The regular expression was syntactically malformed.
    RegexSyntax {
        /// Byte offset of the offending token in the pattern.
        position: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An automaton construction hit a configured resource limit
    /// (e.g. powerset state explosion beyond the allowed bound).
    LimitExceeded {
        /// Which limit was hit.
        what: &'static str,
        /// The configured bound.
        limit: usize,
    },
    /// The automaton description is structurally invalid
    /// (e.g. a transition references a state that does not exist).
    InvalidAutomaton(String),
    /// A serialized automaton could not be decoded.
    Deserialize(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::RegexSyntax { position, message } => {
                write!(f, "regex syntax error at byte {position}: {message}")
            }
            Error::LimitExceeded { what, limit } => {
                write!(f, "{what} exceeded configured limit of {limit}")
            }
            Error::InvalidAutomaton(msg) => write!(f, "invalid automaton: {msg}"),
            Error::Deserialize(msg) => write!(f, "deserialization error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_regex_syntax() {
        let e = Error::RegexSyntax {
            position: 3,
            message: "unbalanced parenthesis".into(),
        };
        assert_eq!(
            e.to_string(),
            "regex syntax error at byte 3: unbalanced parenthesis"
        );
    }

    #[test]
    fn display_limit() {
        let e = Error::LimitExceeded {
            what: "powerset states",
            limit: 10,
        };
        assert_eq!(
            e.to_string(),
            "powerset states exceeded configured limit of 10"
        );
    }

    #[test]
    fn display_invalid_and_deserialize() {
        assert_eq!(
            Error::InvalidAutomaton("bad".into()).to_string(),
            "invalid automaton: bad"
        );
        assert_eq!(
            Error::Deserialize("eof".into()).to_string(),
            "deserialization error: eof"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Deserialize("x".into()));
    }
}
