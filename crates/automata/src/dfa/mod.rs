//! Deterministic finite automata with dense, byte-class-compressed tables.
//!
//! The table layout is the one production matchers use: a flat
//! `Vec<StateId>` indexed by `state * stride + byte_class`, where `stride`
//! is the number of byte equivalence classes. State [`DEAD`](crate::DEAD)
//! (always id 0) has an all-zero row, so a speculative run that leaves the
//! language's substring set parks there and can be detected with a single
//! compare — the "premature termination in error" that makes speculation
//! cheap in practice (paper Sect. 1).

pub mod equivalence;
pub mod minimize;
pub mod powerset;

mod run;

pub use run::run_chunk;

use crate::alphabet::ByteClasses;
use crate::counter::Counter;
use crate::error::{Error, Result};
use crate::{BitSet, StateId, DEAD};

/// A complete DFA over bytes (every state has a transition for every byte;
/// missing language transitions go to [`DEAD`](crate::DEAD)).
#[derive(Debug, Clone, PartialEq)]
pub struct Dfa {
    classes: ByteClasses,
    stride: usize,
    /// `table[s * stride + c]` = successor of state `s` on byte class `c`.
    table: Vec<StateId>,
    start: StateId,
    finals: BitSet,
}

impl Dfa {
    /// Assembles a DFA from raw parts, validating all invariants:
    /// row 0 is the dead state (all-zero), every target is in range, the
    /// table length matches `num_states * stride`.
    pub fn from_parts(
        classes: ByteClasses,
        table: Vec<StateId>,
        start: StateId,
        finals: BitSet,
    ) -> Result<Dfa> {
        let stride = classes.num_classes();
        if stride == 0 || !table.len().is_multiple_of(stride) {
            return Err(Error::InvalidAutomaton(format!(
                "table length {} is not a multiple of stride {stride}",
                table.len()
            )));
        }
        let num_states = table.len() / stride;
        if num_states == 0 {
            return Err(Error::InvalidAutomaton("DFA has no states".into()));
        }
        if table[..stride].iter().any(|&t| t != DEAD) {
            return Err(Error::InvalidAutomaton(
                "row 0 must be the dead state (all transitions to 0)".into(),
            ));
        }
        if let Some(&bad) = table.iter().find(|&&t| t as usize >= num_states) {
            return Err(Error::InvalidAutomaton(format!(
                "transition target {bad} out of range (num states {num_states})"
            )));
        }
        if start as usize >= num_states {
            return Err(Error::InvalidAutomaton(format!(
                "start state {start} out of range (num states {num_states})"
            )));
        }
        if finals.capacity() != num_states {
            return Err(Error::InvalidAutomaton(format!(
                "final set capacity {} != num states {num_states}",
                finals.capacity()
            )));
        }
        if finals.contains(DEAD) {
            return Err(Error::InvalidAutomaton("dead state cannot be final".into()));
        }
        Ok(Dfa {
            classes,
            stride,
            table,
            start,
            finals,
        })
    }

    /// Number of states, *including* the dead state 0.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.table.len() / self.stride
    }

    /// Number of *live* states (excluding dead): this is the `|Q|` of the
    /// paper, the speculation cost factor of the classic DFA-based CSDPA.
    #[inline]
    pub fn num_live_states(&self) -> usize {
        self.num_states() - 1
    }

    /// The byte-class mapping the table is compressed with.
    #[inline]
    pub fn classes(&self) -> &ByteClasses {
        &self.classes
    }

    /// Table stride (= number of byte classes).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Initial state.
    #[inline]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Final state set.
    #[inline]
    pub fn finals(&self) -> &BitSet {
        &self.finals
    }

    /// `true` if `state` accepts.
    #[inline]
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals.contains(state)
    }

    /// Successor of `state` on `byte`.
    #[inline(always)]
    pub fn next(&self, state: StateId, byte: u8) -> StateId {
        self.table[state as usize * self.stride + self.classes.get(byte) as usize]
    }

    /// Successor of `state` on a byte *class* (for subset constructions
    /// that iterate over class representatives).
    #[inline(always)]
    pub fn next_class(&self, state: StateId, class: u8) -> StateId {
        self.table[state as usize * self.stride + class as usize]
    }

    /// Raw transition table (row-major, `stride` entries per state).
    #[inline]
    pub fn table(&self) -> &[StateId] {
        &self.table
    }

    /// A copy of the transition table with every entry *premultiplied* by
    /// the stride: `ptable[s * stride + c] = table[s * stride + c] * stride`.
    ///
    /// Scan loops that track premultiplied row offsets instead of state
    /// ids advance with a single indexed load per byte
    /// (`row = ptable[row + class]`), with no per-transition multiply.
    /// Row `0` still denotes the dead state ([`DEAD`](crate::DEAD)` * stride = 0`).
    /// Build once at automaton-wrapping time and reuse; see
    /// `ridfa-core`'s lockstep kernel.
    pub fn premultiplied_table(&self) -> Vec<StateId> {
        premultiply(&self.table, self.stride)
    }

    /// Serial whole-string recognition from the initial state: exactly
    /// `|text|` transitions unless the run dies early. This is the paper's
    /// serial baseline.
    pub fn accepts(&self, text: &[u8]) -> bool {
        let last = run::run_chunk(self, self.start, text, &mut crate::counter::NoCount);
        last != DEAD && self.is_final(last)
    }

    /// Runs from an arbitrary state over `text`; returns [`DEAD`](crate::DEAD)
    /// if the run dies. Counts one transition per consumed byte (steps into
    /// the dead state are not counted: the run has terminated in error).
    #[inline]
    pub fn run_from(&self, state: StateId, text: &[u8], counter: &mut impl Counter) -> StateId {
        run::run_chunk(self, state, text, counter)
    }

    /// All live states, in id order (1-based; 0 is dead).
    pub fn live_states(&self) -> impl Iterator<Item = StateId> + '_ {
        1..self.num_states() as StateId
    }
}

/// Premultiplies a dense table's entries by its stride (see
/// [`Dfa::premultiplied_table`]); shared with the RI-DFA, whose table has
/// the identical layout.
///
/// # Panics
/// When `num_states * stride` overflows `StateId` — such a table could
/// not be indexed by `u32` offsets in the first place.
pub fn premultiply(table: &[StateId], stride: usize) -> Vec<StateId> {
    let limit = u32::try_from(table.len()).expect("table indexable by u32");
    table
        .iter()
        .map(|&t| {
            let row = t as u64 * stride as u64;
            debug_assert!(row < u64::from(limit.max(1)));
            row as StateId
        })
        .collect()
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::nfa::Nfa;

    /// Builds the powerset DFA of the regex for tests.
    pub(crate) fn dfa_for(pattern: &str) -> Dfa {
        let ast = crate::regex::parse(pattern).unwrap();
        let nfa = crate::nfa::glushkov::build(&ast).unwrap();
        super::powerset::determinize(&nfa)
    }

    /// Builds the NFA for tests.
    pub(crate) fn nfa_for(pattern: &str) -> Nfa {
        let ast = crate::regex::parse(pattern).unwrap();
        crate::nfa::glushkov::build(&ast).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::dfa_for;
    use super::*;
    use crate::counter::TransitionCount;

    #[test]
    fn from_parts_validates() {
        let classes = ByteClasses::from_key_fn(|b| b == b'a');
        let stride = classes.num_classes();
        assert_eq!(stride, 2);
        // Two states: dead + one accepting with a self loop on 'a'.
        let a = classes.get(b'a') as usize;
        let mut table = vec![DEAD; 2 * stride];
        table[stride + a] = 1;
        let mut finals = BitSet::new(2);
        finals.insert(1);
        let dfa = Dfa::from_parts(classes.clone(), table.clone(), 1, finals.clone()).unwrap();
        assert_eq!(dfa.num_states(), 2);
        assert!(dfa.accepts(b"aaa"));
        assert!(!dfa.accepts(b"ab"));

        // Bad: row 0 not dead.
        let mut bad = table.clone();
        bad[0] = 1;
        assert!(Dfa::from_parts(classes.clone(), bad, 1, finals.clone()).is_err());
        // Bad: target out of range.
        let mut bad = table.clone();
        bad[stride] = 9;
        assert!(Dfa::from_parts(classes.clone(), bad, 1, finals.clone()).is_err());
        // Bad: start out of range.
        assert!(Dfa::from_parts(classes.clone(), table.clone(), 5, finals.clone()).is_err());
        // Bad: finals capacity mismatch.
        assert!(Dfa::from_parts(classes.clone(), table.clone(), 1, BitSet::new(7)).is_err());
        // Bad: dead final.
        let mut dead_final = BitSet::new(2);
        dead_final.insert(0);
        assert!(Dfa::from_parts(classes, table, 1, dead_final).is_err());
    }

    #[test]
    fn accepts_matches_regex_semantics() {
        let dfa = dfa_for("(a|b)*abb");
        assert!(dfa.accepts(b"abb"));
        assert!(dfa.accepts(b"aababb"));
        assert!(!dfa.accepts(b"ab"));
        assert!(!dfa.accepts(b"abbc"));
    }

    #[test]
    fn run_from_counts_transitions() {
        let dfa = dfa_for("(a|b)*abb");
        let mut c = TransitionCount::default();
        let last = dfa.run_from(dfa.start(), b"aabb", &mut c);
        assert_ne!(last, DEAD);
        assert_eq!(c.get(), 4, "serial recognition = |text| transitions");
    }

    #[test]
    fn dying_run_stops_counting() {
        let dfa = dfa_for("ab");
        let mut c = TransitionCount::default();
        let last = dfa.run_from(dfa.start(), b"zzzz", &mut c);
        assert_eq!(last, DEAD);
        assert_eq!(c.get(), 0, "death-discovering step is not counted");
    }

    #[test]
    fn live_states_excludes_dead() {
        let dfa = dfa_for("a");
        assert_eq!(dfa.live_states().count(), dfa.num_live_states());
        assert!(dfa.live_states().all(|s| s != DEAD));
    }

    #[test]
    fn empty_text_stays_in_place() {
        let dfa = dfa_for("a*");
        assert!(dfa.accepts(b""));
        let mut c = TransitionCount::default();
        assert_eq!(dfa.run_from(dfa.start(), b"", &mut c), dfa.start());
        assert_eq!(c.get(), 0);
    }
}
