//! Hopcroft's DFA minimization and the underlying partition refinement.
//!
//! The partition-refinement core ([`partition_refine`]) is exposed on its
//! own because the paper's Sect. 3.4 reuses exactly this computation on an
//! RI-DFA: the language-equivalence (Nerode) classes are well defined for
//! any machine with deterministic *outgoing* transitions, even when it has
//! multiple initial states. `ridfa-core` calls it to find the
//! initial-state equivalence classes used for interface minimization.

use crate::{BitSet, StateId, DEAD};

use super::Dfa;

/// Computes the language-equivalence classes of a complete deterministic
/// transition structure.
///
/// * `num_states` — states are `0..num_states`;
/// * `stride` — number of byte classes;
/// * `next(s, c)` — the (total) transition function over class ids;
/// * `is_final(s)` — the acceptance predicate.
///
/// Returns `class[s]` for every state; `class[a] == class[b]` iff `a` and
/// `b` recognize the same language. Class ids are dense, and class 0 is the
/// class of state 0 (for DFAs in this crate: the dead class).
///
/// Runs Hopcroft's algorithm: `O(stride · n · log n)`.
pub fn partition_refine(
    num_states: usize,
    stride: usize,
    next: impl Fn(StateId, u8) -> StateId,
    is_final: impl Fn(StateId) -> bool,
) -> Vec<u32> {
    assert!(num_states > 0 && stride > 0 && stride <= 256);

    // Reverse transitions, CSR per class: sources of t on class c are
    // rev_items[rev_start[c][t] .. rev_start[c][t+1]].
    let mut counts = vec![0u32; stride * (num_states + 1)];
    for s in 0..num_states as StateId {
        for c in 0..stride {
            let t = next(s, c as u8) as usize;
            counts[c * (num_states + 1) + t + 1] += 1;
        }
    }
    for c in 0..stride {
        let base = c * (num_states + 1);
        for t in 0..num_states {
            counts[base + t + 1] += counts[base + t];
        }
    }
    let rev_start = counts; // now prefix sums per class
    let mut fill = rev_start.clone();
    let mut rev_items = vec![0 as StateId; stride * num_states];
    for s in 0..num_states as StateId {
        for c in 0..stride {
            let t = next(s, c as u8) as usize;
            let slot = &mut fill[c * (num_states + 1) + t];
            rev_items[c * num_states + *slot as usize] = s;
            *slot += 1;
        }
    }
    let preimage = |class: usize, t: StateId| -> &[StateId] {
        let lo = rev_start[class * (num_states + 1) + t as usize] as usize;
        let hi = rev_start[class * (num_states + 1) + t as usize + 1] as usize;
        &rev_items[class * num_states + lo..class * num_states + hi]
    };

    // Refinable partition (Hopcroft's arrays).
    let mut p = Partition::new(num_states);
    // Initial split: finals vs non-finals.
    for s in 0..num_states as StateId {
        if is_final(s) {
            p.mark(s);
        }
    }
    let mut worklist: Vec<u32> = Vec::new();
    let mut in_worklist: Vec<bool> = vec![false; 1];
    p.split_touched(|_old, new, _old_len, _new_len| {
        // Both initial blocks go on the worklist (cheap and simple).
        in_worklist.resize(new as usize + 1, false);
        if !in_worklist[new as usize] {
            in_worklist[new as usize] = true;
            worklist.push(new);
        }
    });
    if !in_worklist[0] {
        in_worklist[0] = true;
        worklist.push(0);
    }

    let mut splitter: Vec<StateId> = Vec::new();
    while let Some(a) = worklist.pop() {
        in_worklist[a as usize] = false;
        // Snapshot A: it may split while being processed.
        splitter.clear();
        splitter.extend_from_slice(p.block_elems(a));
        for class in 0..stride {
            for &t in &splitter {
                for &s in preimage(class, t) {
                    p.mark(s);
                }
            }
            p.split_touched(|old, new, old_len, new_len| {
                in_worklist.resize((new as usize + 1).max(in_worklist.len()), false);
                if in_worklist[old as usize] {
                    // Old block was pending: keep both halves pending.
                    in_worklist[new as usize] = true;
                    worklist.push(new);
                } else {
                    // Add the smaller half (Hopcroft's trick).
                    let small = if new_len <= old_len { new } else { old };
                    in_worklist[small as usize] = true;
                    worklist.push(small);
                }
            });
        }
    }

    // Renumber blocks deterministically: state 0's block becomes class 0,
    // then classes are assigned in order of first occurrence by state id.
    let mut renumber = vec![u32::MAX; p.num_blocks()];
    let mut next_class = 0u32;
    renumber[p.block_of(DEAD) as usize] = 0;
    next_class += 1;
    let mut classes = vec![0u32; num_states];
    for s in 0..num_states as StateId {
        let b = p.block_of(s) as usize;
        if renumber[b] == u32::MAX {
            renumber[b] = next_class;
            next_class += 1;
        }
        classes[s as usize] = renumber[b];
    }
    classes
}

/// Hopcroft's refinable-partition data structure: states live in a
/// permutation array sliced into blocks; marking swaps states to the front
/// of their block so a block can be split in time proportional to the
/// marked part.
struct Partition {
    elems: Vec<StateId>,
    loc: Vec<u32>,
    block: Vec<u32>,
    start: Vec<u32>,
    end: Vec<u32>,
    marked: Vec<u32>,
    touched: Vec<u32>,
}

impl Partition {
    fn new(n: usize) -> Partition {
        Partition {
            elems: (0..n as StateId).collect(),
            loc: (0..n as u32).collect(),
            block: vec![0; n],
            start: vec![0],
            end: vec![n as u32],
            marked: vec![0],
            touched: Vec::new(),
        }
    }

    fn num_blocks(&self) -> usize {
        self.start.len()
    }

    fn block_of(&self, s: StateId) -> u32 {
        self.block[s as usize]
    }

    fn block_len(&self, b: u32) -> u32 {
        self.end[b as usize] - self.start[b as usize]
    }

    fn block_elems(&self, b: u32) -> &[StateId] {
        &self.elems[self.start[b as usize] as usize..self.end[b as usize] as usize]
    }

    /// Marks `s` within its block (idempotent).
    fn mark(&mut self, s: StateId) {
        let b = self.block[s as usize] as usize;
        let i = self.loc[s as usize];
        let frontier = self.start[b] + self.marked[b];
        if i < frontier {
            return; // already marked
        }
        if self.marked[b] == 0 {
            self.touched.push(b as u32);
        }
        self.elems.swap(i as usize, frontier as usize);
        self.loc[self.elems[i as usize] as usize] = i;
        self.loc[self.elems[frontier as usize] as usize] = frontier;
        self.marked[b] += 1;
    }

    /// Splits every touched block into (marked | unmarked); the marked part
    /// becomes a *new* block, the old id keeps the unmarked part. Calls
    /// `on_split(old, new, old_len, new_len)` per actual split; blocks that
    /// were fully marked are just unmarked again.
    fn split_touched(&mut self, mut on_split: impl FnMut(u32, u32, u32, u32)) {
        while let Some(b) = self.touched.pop() {
            let bi = b as usize;
            let m = self.marked[bi];
            self.marked[bi] = 0;
            if m == 0 || m == self.block_len(b) {
                continue;
            }
            let new = self.start.len() as u32;
            let split_at = self.start[bi] + m;
            self.start.push(self.start[bi]);
            self.end.push(split_at);
            self.marked.push(0);
            self.start[bi] = split_at;
            for i in self.start[new as usize]..self.end[new as usize] {
                self.block[self.elems[i as usize] as usize] = new;
            }
            on_split(b, new, self.block_len(b), m);
        }
    }
}

/// Computes the Nerode equivalence classes of a [`Dfa`].
pub fn equivalence_classes(dfa: &Dfa) -> Vec<u32> {
    partition_refine(
        dfa.num_states(),
        dfa.stride(),
        |s, c| dfa.next_class(s, c),
        |s| dfa.is_final(s),
    )
}

/// Returns the minimal DFA equivalent to `dfa`.
///
/// Unreachable states are removed first (they would otherwise distort the
/// partition), then Nerode classes are merged. The result keeps the crate's
/// invariants: state 0 is the dead class, the start state is the class of
/// the old start.
pub fn minimize(dfa: &Dfa) -> Dfa {
    let dfa = trim_unreachable(dfa);
    let classes = equivalence_classes(&dfa);
    let num_blocks = classes.iter().copied().max().unwrap_or(0) as usize + 1;
    let stride = dfa.stride();

    let mut table = vec![DEAD; num_blocks * stride];
    let mut finals = BitSet::new(num_blocks);
    let mut seen = vec![false; num_blocks];
    for s in 0..dfa.num_states() as StateId {
        let b = classes[s as usize];
        if seen[b as usize] {
            continue;
        }
        seen[b as usize] = true;
        for c in 0..stride {
            table[b as usize * stride + c] = classes[dfa.next_class(s, c as u8) as usize];
        }
        if dfa.is_final(s) {
            finals.insert(b);
        }
    }
    let start = classes[dfa.start() as usize];
    Dfa::from_parts(dfa.classes().clone(), table, start, finals)
        .expect("minimization preserves DFA invariants")
}

/// Removes states unreachable from the start (keeping the dead state 0).
pub fn trim_unreachable(dfa: &Dfa) -> Dfa {
    let n = dfa.num_states();
    let mut reach = BitSet::new(n);
    reach.insert(DEAD);
    let mut stack = vec![dfa.start()];
    reach.insert(dfa.start());
    while let Some(s) = stack.pop() {
        for c in 0..dfa.stride() {
            let t = dfa.next_class(s, c as u8);
            if reach.insert(t) {
                stack.push(t);
            }
        }
    }
    if reach.len() == n {
        return dfa.clone();
    }
    let mut remap = vec![StateId::MAX; n];
    let mut next_id: StateId = 0;
    for s in reach.iter() {
        remap[s as usize] = next_id;
        next_id += 1;
    }
    let stride = dfa.stride();
    let mut table = vec![DEAD; next_id as usize * stride];
    let mut finals = BitSet::new(next_id as usize);
    for s in reach.iter() {
        let ns = remap[s as usize] as usize;
        for c in 0..stride {
            table[ns * stride + c] = remap[dfa.next_class(s, c as u8) as usize];
        }
        if dfa.is_final(s) {
            finals.insert(ns as StateId);
        }
    }
    Dfa::from_parts(
        dfa.classes().clone(),
        table,
        remap[dfa.start() as usize],
        finals,
    )
    .expect("trim preserves DFA invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::powerset::determinize;
    use crate::dfa::testutil::{dfa_for, nfa_for};

    #[test]
    fn minimize_preserves_language() {
        for pattern in ["(a|b)*abb", "a{2,5}", "(ab|ba)*", "x(y|z)*x"] {
            let dfa = dfa_for(pattern);
            let min = minimize(&dfa);
            assert!(min.num_states() <= dfa.num_states());
            for input in [
                &b""[..],
                b"a",
                b"abb",
                b"aabb",
                b"aa",
                b"aaaaa",
                b"abba",
                b"xx",
                b"xyzx",
                b"xyz",
            ] {
                assert_eq!(
                    dfa.accepts(input),
                    min.accepts(input),
                    "{pattern} {input:?}"
                );
            }
        }
    }

    #[test]
    fn minimal_dfa_has_no_equivalent_pair() {
        let min = minimize(&dfa_for("(a|b)*abb(a|b)?"));
        let classes = equivalence_classes(&min);
        let mut sorted = classes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), min.num_states(), "all classes singleton");
    }

    #[test]
    fn classic_minimization_example() {
        // (a|b)*abb: textbook minimal DFA has 4 live states.
        let min = minimize(&dfa_for("(a|b)*abb"));
        assert_eq!(min.num_live_states(), 4);
    }

    #[test]
    fn exponential_family_is_already_minimal() {
        // The 2^(k+1) powerset states of (a|b)*a(a|b)^k are all
        // distinguishable: minimization must not shrink them.
        let dfa = dfa_for("[ab]*a[ab]{4}");
        let min = minimize(&dfa);
        assert_eq!(min.num_live_states(), 1 << 5);
    }

    #[test]
    fn empty_language_minimizes_to_dead_only() {
        let mut b = crate::nfa::Builder::new();
        let s0 = b.add_state();
        b.set_start(s0);
        let nfa = b.build().unwrap();
        let min = minimize(&determinize(&nfa));
        assert_eq!(min.num_states(), 1, "only the dead state survives");
        assert!(!min.accepts(b""));
    }

    #[test]
    fn universal_language() {
        let min = minimize(&dfa_for("[\\x00-\\xff]*"));
        // Dead + one accepting sink.
        assert_eq!(min.num_states(), 2);
        assert!(min.accepts(b""));
        assert!(min.accepts(b"anything at all \x00\xff"));
    }

    #[test]
    fn trim_unreachable_drops_states() {
        // Build a DFA then verify trim is idempotent on reachable machines.
        let dfa = dfa_for("ab|cd");
        let trimmed = trim_unreachable(&dfa);
        assert_eq!(trimmed.num_states(), dfa.num_states());
        for input in [&b"ab"[..], b"cd", b"ad", b""] {
            assert_eq!(dfa.accepts(input), trimmed.accepts(input));
        }
    }

    #[test]
    fn equivalence_classes_separate_finals() {
        let dfa = dfa_for("a|b");
        let classes = equivalence_classes(&dfa);
        for s in dfa.live_states() {
            for t in dfa.live_states() {
                if dfa.is_final(s) != dfa.is_final(t) {
                    assert_ne!(classes[s as usize], classes[t as usize]);
                }
            }
        }
        assert_eq!(classes[DEAD as usize], 0);
    }

    #[test]
    fn nfa_dfa_minimize_pipeline_agrees_with_nfa() {
        let nfa = nfa_for("(0|1)*1(0|1){2}");
        let min = minimize(&determinize(&nfa));
        for input in [
            &b""[..],
            b"100",
            b"111",
            b"000",
            b"0100",
            b"1",
            b"10",
            b"0101100",
        ] {
            assert_eq!(nfa.accepts(input), min.accepts(input), "{input:?}");
        }
    }
}
