//! The hot DFA scanning loop.
//!
//! Shared by the serial recognizer, the DFA chunk automaton, and (via the
//! same table layout) the RI-DFA chunk automaton in `ridfa-core`. Kept in
//! one tiny function so the optimizer sees a single monomorphic loop:
//! one load per byte plus a predictable early-exit compare.

use crate::counter::Counter;
use crate::{StateId, DEAD};

use super::Dfa;

/// Runs `dfa` from `state` over `chunk`.
///
/// Returns the last active state, or [`DEAD`](crate::DEAD) if the run died
/// before consuming the whole chunk. Each executed transition (into a live
/// state) increments `counter` once; the step that discovers death is not
/// counted, matching the convention of the paper's Fig. 1 totals.
#[inline]
pub fn run_chunk(dfa: &Dfa, state: StateId, chunk: &[u8], counter: &mut impl Counter) -> StateId {
    let table = dfa.table();
    let classes = dfa.classes();
    let stride = dfa.stride();
    let mut s = state;
    for &byte in chunk {
        let next = table[s as usize * stride + classes.get(byte) as usize];
        if next == DEAD {
            return DEAD;
        }
        counter.incr();
        s = next;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{NoCount, TransitionCount};
    use crate::dfa::testutil::dfa_for;

    #[test]
    fn full_run_counts_len() {
        let dfa = dfa_for("[ab]*");
        let mut c = TransitionCount::default();
        let last = run_chunk(&dfa, dfa.start(), b"abab", &mut c);
        assert_ne!(last, DEAD);
        assert_eq!(c.get(), 4);
    }

    #[test]
    fn partial_run_counts_prefix_only() {
        let dfa = dfa_for("aaab");
        let mut c = TransitionCount::default();
        // Dies at the 3rd byte ('z'): two counted transitions.
        let last = run_chunk(&dfa, dfa.start(), b"aaz", &mut c);
        assert_eq!(last, DEAD);
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn run_from_dead_stays_dead() {
        let dfa = dfa_for("x");
        assert_eq!(run_chunk(&dfa, DEAD, b"x", &mut NoCount), DEAD);
    }
}
