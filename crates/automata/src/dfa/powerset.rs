//! The powerset (subset) construction: NFA → DFA.
//!
//! Classic worklist algorithm, iterating over byte *classes* rather than
//! all 256 bytes, so construction cost scales with the effective alphabet.
//! Exposed in two flavours: unbounded [`determinize`] and
//! [`determinize_limited`], which aborts when the paper-famous exponential
//! blow-up (e.g. the `regexp` benchmark family) exceeds a state budget.

use std::collections::HashMap;

use crate::error::{ConstructionBudget, Result};
use crate::nfa::Nfa;
use crate::{BitSet, StateId, DEAD};

use super::Dfa;

/// Determinizes `nfa` with no state bound.
pub fn determinize(nfa: &Nfa) -> Dfa {
    determinize_limited(nfa, usize::MAX).expect("unbounded determinization cannot hit the limit")
}

/// Determinizes `nfa`, failing with [`crate::Error::LimitExceeded`] if more than
/// `max_states` DFA states (excluding the dead state) would be created.
pub fn determinize_limited(nfa: &Nfa, max_states: usize) -> Result<Dfa> {
    determinize_budgeted(nfa, &ConstructionBudget::with_max_states(max_states))
}

/// Determinizes `nfa` under a full [`ConstructionBudget`] (state count
/// *and* table bytes), failing with [`crate::Error::LimitExceeded`] before any
/// allocation beyond the budget happens.
pub fn determinize_budgeted(nfa: &Nfa, budget: &ConstructionBudget) -> Result<Dfa> {
    Ok(determinize_mapped_budgeted(nfa, budget)?.0)
}

/// Like [`determinize`], but also returns, for each DFA state, the sorted
/// set of NFA states it stands for (index 0 = dead state, always empty).
pub fn determinize_mapped(nfa: &Nfa) -> (Dfa, Vec<Vec<StateId>>) {
    determinize_mapped_limited(nfa, usize::MAX)
        .expect("unbounded determinization cannot hit the limit")
}

/// Bounded determinization with state contents, state-count bound only.
pub fn determinize_mapped_limited(
    nfa: &Nfa,
    max_states: usize,
) -> Result<(Dfa, Vec<Vec<StateId>>)> {
    determinize_mapped_budgeted(nfa, &ConstructionBudget::with_max_states(max_states))
}

/// The general entry point: budgeted determinization with state contents.
pub fn determinize_mapped_budgeted(
    nfa: &Nfa,
    budget: &ConstructionBudget,
) -> Result<(Dfa, Vec<Vec<StateId>>)> {
    let classes = nfa.byte_classes();
    let stride = classes.num_classes();
    let reps = classes.representatives();

    const WHAT_STATES: &str = "powerset DFA states";
    const WHAT_BYTES: &str = "powerset DFA table bytes";

    // Dead state occupies id 0 / row 0.
    let mut table: Vec<StateId> = Vec::new();
    budget.grow_table(&mut table, stride, DEAD, WHAT_BYTES)?;
    let mut contents: Vec<Vec<StateId>> = vec![Vec::new()];
    let mut ids: HashMap<Vec<StateId>, StateId> = HashMap::new();

    let start_set = vec![nfa.start()];
    ids.insert(start_set.clone(), 1);
    contents.push(start_set);
    budget.grow_table(&mut table, stride, DEAD, WHAT_BYTES)?;
    let start: StateId = 1;

    let mut worklist: Vec<StateId> = vec![start];
    let mut target: Vec<StateId> = Vec::new();
    while let Some(s) = worklist.pop() {
        for (class, &rep) in reps.iter().enumerate() {
            target.clear();
            for &q in &contents[s as usize] {
                for &(_, t) in nfa.targets(q, rep) {
                    target.push(t);
                }
            }
            target.sort_unstable();
            target.dedup();
            if target.is_empty() {
                continue; // stays DEAD
            }
            let next_id = match ids.get(&target) {
                Some(&id) => id,
                None => {
                    let id = contents.len() as StateId;
                    budget.charge_state(contents.len(), WHAT_STATES)?;
                    budget.grow_table(&mut table, stride, DEAD, WHAT_BYTES)?;
                    ids.insert(target.clone(), id);
                    contents.push(target.clone());
                    worklist.push(id);
                    id
                }
            };
            table[s as usize * stride + class] = next_id;
        }
    }

    let mut finals = BitSet::new(contents.len());
    for (id, content) in contents.iter().enumerate().skip(1) {
        if content.iter().any(|&q| nfa.is_final(q)) {
            finals.insert(id as StateId);
        }
    }
    let dfa = Dfa::from_parts(classes, table, start, finals)?;
    Ok((dfa, contents))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::testutil::nfa_for;
    use crate::error::Error;

    #[test]
    fn dfa_agrees_with_nfa_on_samples() {
        for pattern in ["(a|b)*abb", "a+b?c{2}", "[xy]([pq]|z)*", "(aa|aab)*b"] {
            let nfa = nfa_for(pattern);
            let dfa = determinize(&nfa);
            for input in [
                &b""[..],
                b"a",
                b"abb",
                b"aabb",
                b"abc",
                b"acc",
                b"xzzp",
                b"y",
                b"aab",
                b"aabaab",
                b"aabb",
                b"b",
                b"aaab",
            ] {
                assert_eq!(
                    nfa.accepts(input),
                    dfa.accepts(input),
                    "pattern {pattern:?} input {:?}",
                    String::from_utf8_lossy(input),
                );
            }
        }
    }

    #[test]
    fn figure1_dfa_has_four_live_states() {
        // The paper's Fig. 1: the minimal DFA of the 3-state NFA has 4
        // states {0, 1, 01, 02}; the raw powerset DFA is already minimal
        // for this machine.
        let nfa = crate::nfa::tests::figure1_nfa();
        let dfa = determinize(&nfa);
        assert_eq!(dfa.num_live_states(), 4);
        assert!(dfa.accepts(b"aabcab"));
    }

    #[test]
    fn exponential_family_explodes() {
        // (a|b)*a(a|b)^k has a minimal DFA of 2^(k+1) states; the raw
        // powerset is at least that big, and Hopcroft brings it to exactly
        // 2^(k+1).
        let nfa = nfa_for("[ab]*a[ab]{6}");
        let dfa = determinize(&nfa);
        assert!(dfa.num_live_states() >= 1 << 7);
        let min = crate::dfa::minimize::minimize(&dfa);
        assert_eq!(min.num_live_states(), 1 << 7);
    }

    #[test]
    fn limit_aborts_explosion() {
        let nfa = nfa_for("[ab]*a[ab]{10}");
        let err = determinize_limited(&nfa, 100).unwrap_err();
        assert!(matches!(err, Error::LimitExceeded { .. }));
    }

    #[test]
    fn byte_budget_aborts_explosion() {
        let nfa = nfa_for("[ab]*a[ab]{10}");
        let budget = ConstructionBudget::with_max_table_bytes(4 << 10);
        let err = determinize_budgeted(&nfa, &budget).unwrap_err();
        assert!(matches!(
            err,
            Error::LimitExceeded {
                what: "powerset DFA table bytes",
                ..
            }
        ));
        // The same machine fits comfortably under a generous budget.
        let ok = determinize_budgeted(&nfa, &ConstructionBudget::with_max_table_bytes(1 << 20));
        assert!(ok.is_ok());
    }

    #[test]
    fn contents_map_dfa_states_to_nfa_sets() {
        let nfa = crate::nfa::tests::figure1_nfa();
        let (dfa, contents) = determinize_mapped(&nfa);
        assert_eq!(contents.len(), dfa.num_states());
        assert!(contents[0].is_empty(), "dead state has empty content");
        assert_eq!(contents[dfa.start() as usize], vec![nfa.start()]);
        // Every content set is sorted and within range.
        for c in &contents {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
            assert!(c.iter().all(|&q| (q as usize) < nfa.num_states()));
        }
    }

    #[test]
    fn empty_language_nfa() {
        // NFA with no finals: DFA accepts nothing but is still well-formed.
        let mut b = crate::nfa::Builder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.add_transition(s0, b'a', s1);
        b.set_start(s0);
        let nfa = b.build().unwrap();
        let dfa = determinize(&nfa);
        assert!(!dfa.accepts(b""));
        assert!(!dfa.accepts(b"a"));
    }
}
