//! Language-equivalence oracle for two DFAs.
//!
//! Breadth-first product exploration: two complete DFAs accept the same
//! language iff no reachable state pair disagrees on acceptance. Used by
//! the test suite to certify the whole construction pipeline (Glushkov ≡
//! Thompson, minimal ≡ unminimized, and — in `ridfa-core` — Theorem 3.1:
//! the RID device recognizes the same language as the source NFA).

use std::collections::{HashMap, VecDeque};

use crate::StateId;

use super::Dfa;

/// Returns a shortest string on which the two DFAs disagree, or `None` if
/// they are language-equivalent.
pub fn counterexample(a: &Dfa, b: &Dfa) -> Option<Vec<u8>> {
    // A common byte-class refinement lets the product walk one
    // representative per joint class instead of all 256 bytes.
    let classes = a.classes().refine(b.classes());
    let reps = classes.representatives();

    let start = (a.start(), b.start());
    // Maps a product state to the (predecessor, byte) edge it was first
    // discovered through; `None` for the start pair.
    type Parents = HashMap<(StateId, StateId), Option<((StateId, StateId), u8)>>;
    let mut parents: Parents = HashMap::new();
    parents.insert(start, None);
    let mut queue = VecDeque::from([start]);

    while let Some(pair @ (s, t)) = queue.pop_front() {
        if a.is_final(s) != b.is_final(t) {
            // Reconstruct the distinguishing string.
            let mut bytes = Vec::new();
            let mut cur = pair;
            while let Some(&Some((prev, byte))) = parents.get(&cur) {
                bytes.push(byte);
                cur = prev;
            }
            bytes.reverse();
            return Some(bytes);
        }
        for &rep in &reps {
            let next = (a.next(s, rep), b.next(t, rep));
            if let std::collections::hash_map::Entry::Vacant(e) = parents.entry(next) {
                e.insert(Some((pair, rep)));
                queue.push_back(next);
            }
        }
    }
    None
}

/// `true` iff the two DFAs accept exactly the same language.
pub fn equivalent(a: &Dfa, b: &Dfa) -> bool {
    counterexample(a, b).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::minimize::minimize;
    use crate::dfa::testutil::dfa_for;

    #[test]
    fn identical_patterns_are_equivalent() {
        let a = dfa_for("(a|b)*abb");
        let b = dfa_for("(a|b)*abb");
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn syntactically_different_same_language() {
        // a(ba)* and (ab)*a denote the same language.
        let a = dfa_for("a(ba)*");
        let b = dfa_for("(ab)*a");
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn minimization_is_equivalence_preserving() {
        for pattern in ["(x|y){2,6}", "a*b*c*", "(0|1)*11(0|1)*"] {
            let dfa = dfa_for(pattern);
            assert!(equivalent(&dfa, &minimize(&dfa)), "{pattern}");
        }
    }

    #[test]
    fn different_languages_yield_counterexample() {
        let a = dfa_for("ab*");
        let b = dfa_for("ab+");
        let ce = counterexample(&a, &b).expect("languages differ");
        // Shortest distinguishing string is "a".
        assert_eq!(ce, b"a");
        assert_ne!(a.accepts(&ce), b.accepts(&ce));
    }

    #[test]
    fn counterexample_is_shortest() {
        let a = dfa_for("x{3}");
        let b = dfa_for("x{4}");
        let ce = counterexample(&a, &b).unwrap();
        assert_eq!(ce.len(), 3);
    }

    #[test]
    fn empty_vs_nonempty_language() {
        let a = dfa_for("a");
        // Empty language via impossible class.
        let b = dfa_for("[a]b[c]d[^\\x00-\\xff]");
        let ce = counterexample(&a, &b).unwrap();
        assert_eq!(ce, b"a");
    }

    #[test]
    fn disagreement_on_empty_string() {
        let a = dfa_for("a*");
        let b = dfa_for("a+");
        let ce = counterexample(&a, &b).unwrap();
        assert!(ce.is_empty(), "ε distinguishes a* from a+");
    }
}
