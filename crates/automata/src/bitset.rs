//! A compact fixed-capacity bit set over dense state identifiers.
//!
//! Used for final-state sets and visited-state tracking. Implemented here
//! rather than pulled from a crate so the hot membership test stays a single
//! shift/mask with no feature baggage.

use crate::StateId;

/// A fixed-capacity set of [`StateId`]s backed by a `Vec<u64>`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Number of ids the set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `id`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, id: StateId) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !was
    }

    /// Removes `id`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, id: StateId) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: StateId) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Removes all elements, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of elements currently in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` if `self` and `other` share at least one element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// In-place union with `other` (capacities must match).
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterates over the ids present, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = StateId> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| BitIter {
                word,
                base: (wi * 64) as u32,
            })
    }
}

impl FromIterator<StateId> for BitSet {
    /// Builds a set sized to the largest id in the iterator.
    fn from_iter<I: IntoIterator<Item = StateId>>(iter: I) -> Self {
        let ids: Vec<StateId> = iter.into_iter().collect();
        let cap = ids.iter().map(|&i| i as usize + 1).max().unwrap_or(0);
        let mut set = BitSet::new(cap);
        for id in ids {
            set.insert(id);
        }
        set
    }
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = StateId;

    #[inline]
    fn next(&mut self) -> Option<StateId> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
    }

    #[test]
    fn len_and_empty() {
        let mut s = BitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        s.insert(3);
        s.insert(99);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 100);
    }

    #[test]
    fn iter_in_order() {
        let mut s = BitSet::new(200);
        for id in [5u32, 63, 64, 65, 199, 0] {
            s.insert(id);
        }
        let got: Vec<StateId> = s.iter().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 65, 199]);
    }

    #[test]
    fn intersects_and_union() {
        let mut a = BitSet::new(128);
        let mut b = BitSet::new(128);
        a.insert(10);
        b.insert(90);
        assert!(!a.intersects(&b));
        b.insert(10);
        assert!(a.intersects(&b));
        a.union_with(&b);
        assert!(a.contains(90));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [7u32, 2, 7].into_iter().collect();
        assert_eq!(s.capacity(), 8);
        assert_eq!(s.len(), 2);
        assert!(s.contains(2) && s.contains(7));
    }

    #[test]
    fn contains_out_of_capacity_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    fn zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
