//! Transition-count instrumentation.
//!
//! The paper's Sect. 4.3 experiments count state transitions executed by the
//! chunk automata, "almost directly related to the time speedup". Counting
//! must not perturb the timed experiments, so the hot scanning loops are
//! generic over a [`Counter`]: with [`NoCount`] (a zero-sized type) the
//! increment compiles away entirely and the loop is the plain uninstrumented
//! scan; with [`TransitionCount`] every executed transition is tallied.

/// A sink for transition-count events.
pub trait Counter {
    /// Records `n` executed transitions.
    fn add(&mut self, n: u64);

    /// Records a single executed transition.
    #[inline(always)]
    fn incr(&mut self) {
        self.add(1);
    }
}

/// The no-op counter: zero-sized, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoCount;

impl Counter for NoCount {
    #[inline(always)]
    fn add(&mut self, _n: u64) {}
}

/// A real transition tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransitionCount(pub u64);

impl Counter for TransitionCount {
    #[inline(always)]
    fn add(&mut self, n: u64) {
        self.0 += n;
    }
}

impl TransitionCount {
    /// The tallied number of transitions.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// `&mut C` forwards, so counters can be threaded through helper calls.
impl<C: Counter> Counter for &mut C {
    #[inline(always)]
    fn add(&mut self, n: u64) {
        (**self).add(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nocount_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NoCount>(), 0);
    }

    #[test]
    fn transition_count_tallies() {
        let mut c = TransitionCount::default();
        c.incr();
        c.add(5);
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn counter_through_reference() {
        fn bump(mut c: impl Counter) {
            c.add(3);
        }
        let mut c = TransitionCount::default();
        bump(&mut c);
        bump(&mut c);
        assert_eq!(c.get(), 6);
    }
}
