//! The binary artifact format: versioned, checksummed, typed-error.
//!
//! An artifact is a little-endian byte container:
//!
//! ```text
//! offset  size  field
//! 0       6     magic  "RIDFA\0"
//! 6       2     format version (u16)
//! 8       1     artifact kind tag (u8)
//! 9       1     reserved (must be 0)
//! 10      8     payload length (u64)
//! 18      8     word-folded FNV-64 checksum of the payload
//! 26      …     payload (kind-specific sections)
//! ```
//!
//! The payload is written through [`Encoder`] and read back through
//! [`Decoder`] — length-prefixed sections of fixed-width little-endian
//! integers. Every decode failure is a typed [`DecodeError`]; hostile
//! bytes can neither panic nor allocate more than the input itself
//! implies (length prefixes are validated against the bytes actually
//! present *before* any buffer is reserved).
//!
//! This module owns the container plus the [`ByteClasses`] and [`Dfa`]
//! codecs. The RI-DFA codec lives in the core crate (its fields are
//! private there) but is built from these same primitives, which is why
//! [`Encoder`], [`Decoder`] and the container functions are public.

use std::fmt;

use crate::alphabet::ByteClasses;
use crate::dfa::{premultiply, Dfa};
use crate::error::Error;
use crate::{BitSet, StateId};

/// Leading magic of every artifact.
pub const MAGIC: [u8; 6] = *b"RIDFA\0";

/// Current format version. Decoders reject anything newer, and still
/// accept every older version (v1 artifacts predate the per-pattern
/// engine section and decode with a synthesized `EnginePlan::Auto`).
pub const FORMAT_VERSION: u16 = 2;

/// Size of the fixed container header preceding the payload.
pub const HEADER_LEN: usize = 26;

/// What an artifact contains (the kind tag in the container header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A minimized [`Dfa`] plus its premultiplied table.
    Dfa,
    /// An RI-DFA (interface + minimized core) plus its premultiplied
    /// table; the codec lives in the core crate.
    RiDfa,
}

impl ArtifactKind {
    /// The on-wire tag byte.
    pub fn tag(self) -> u8 {
        match self {
            ArtifactKind::Dfa => 1,
            ArtifactKind::RiDfa => 2,
        }
    }

    /// Parses a tag byte.
    pub fn from_tag(tag: u8) -> Option<ArtifactKind> {
        match tag {
            1 => Some(ArtifactKind::Dfa),
            2 => Some(ArtifactKind::RiDfa),
            _ => None,
        }
    }

    /// Human-readable kind name (used by `ridfa inspect-artifact`).
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Dfa => "dfa",
            ArtifactKind::RiDfa => "ridfa",
        }
    }
}

/// Why a byte sequence failed to decode. Every variant is a property of
/// the *input*, never of the decoder state — hostile bytes cannot panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input does not start with [`MAGIC`].
    BadMagic,
    /// The input declares a format version this decoder does not know.
    UnsupportedVersion(u16),
    /// The kind tag byte is not a known [`ArtifactKind`].
    UnknownKind(u8),
    /// The artifact holds a different kind than the caller asked for.
    WrongKind {
        /// Kind the caller expected.
        expected: ArtifactKind,
        /// Kind the container header declares.
        found: ArtifactKind,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the payload actually present.
        computed: u64,
    },
    /// The input ended before a field could be read in full.
    Truncated {
        /// Byte offset (within the region being decoded) of the read.
        offset: usize,
        /// Bytes the field needed.
        needed: usize,
    },
    /// Bytes remain after the structure was fully decoded.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
    /// The bytes parsed but describe an invalid structure (failed the
    /// same validation a freshly constructed automaton must pass).
    Malformed(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a ridfa artifact (bad magic)"),
            DecodeError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported artifact version {v} (decoder knows {FORMAT_VERSION})"
                )
            }
            DecodeError::UnknownKind(tag) => write!(f, "unknown artifact kind tag {tag}"),
            DecodeError::WrongKind { expected, found } => write!(
                f,
                "artifact holds a {} but a {} was expected",
                found.name(),
                expected.name()
            ),
            DecodeError::ChecksumMismatch { stored, computed } => write!(
                f,
                "payload checksum mismatch (header {stored:#018x}, computed {computed:#018x})"
            ),
            DecodeError::Truncated { offset, needed } => {
                write!(
                    f,
                    "input truncated at offset {offset} (needed {needed} more bytes)"
                )
            }
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after the artifact")
            }
            DecodeError::Malformed(msg) => write!(f, "malformed artifact: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for Error {
    fn from(e: DecodeError) -> Error {
        Error::Deserialize(e.to_string())
    }
}

/// Word-folded FNV-64 over `bytes` — the artifact checksum. FNV-1a's
/// xor-multiply round applied to 8-byte little-endian words (with a
/// byte-wise tail and a final length fold), so sealing and verifying
/// cost one multiply per word instead of one per byte. Every round is a
/// bijection of the running hash, so any change to an equal-length
/// payload is guaranteed to change the digest. Not cryptographic; it
/// detects truncation and bit rot, not adversaries (artifacts are fully
/// re-validated structurally after the checksum gate anyway).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut words = bytes.chunks_exact(8);
    for word in &mut words {
        hash ^= u64::from_le_bytes(word.try_into().expect("8-byte chunk"));
        hash = hash.wrapping_mul(PRIME);
    }
    for &b in words.remainder() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash ^= bytes.len() as u64;
    hash.wrapping_mul(PRIME)
}

/// Wraps `payload` in the artifact container (header + checksum).
pub fn seal(kind: ArtifactKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind.tag());
    out.push(0);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The container header of an artifact, as read by [`peek`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactHeader {
    /// Declared format version.
    pub version: u16,
    /// What the payload holds.
    pub kind: ArtifactKind,
    /// Declared payload length in bytes.
    pub payload_len: u64,
    /// Declared payload checksum (word-folded FNV-64).
    pub checksum: u64,
}

/// Reads and validates the container header without touching the
/// payload checksum (used by `ridfa inspect-artifact` to describe even
/// artifacts whose payload is damaged).
pub fn peek(bytes: &[u8]) -> Result<ArtifactHeader, DecodeError> {
    if bytes.len() < HEADER_LEN {
        return Err(DecodeError::Truncated {
            offset: bytes.len(),
            needed: HEADER_LEN - bytes.len(),
        });
    }
    if bytes[..6] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[6], bytes[7]]);
    if version == 0 || version > FORMAT_VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let kind = ArtifactKind::from_tag(bytes[8]).ok_or(DecodeError::UnknownKind(bytes[8]))?;
    if bytes[9] != 0 {
        return Err(DecodeError::Malformed(format!(
            "reserved header byte is {:#04x}, must be 0",
            bytes[9]
        )));
    }
    let payload_len = u64::from_le_bytes(bytes[10..18].try_into().expect("8 bytes"));
    let checksum = u64::from_le_bytes(bytes[18..26].try_into().expect("8 bytes"));
    Ok(ArtifactHeader {
        version,
        kind,
        payload_len,
        checksum,
    })
}

/// Validates the container (magic, version, kind, length, checksum) and
/// returns the payload slice.
pub fn open(bytes: &[u8], expected: ArtifactKind) -> Result<&[u8], DecodeError> {
    let header = peek(bytes)?;
    if header.kind != expected {
        return Err(DecodeError::WrongKind {
            expected,
            found: header.kind,
        });
    }
    let available = (bytes.len() - HEADER_LEN) as u64;
    if header.payload_len > available {
        return Err(DecodeError::Truncated {
            offset: bytes.len(),
            needed: (header.payload_len - available) as usize,
        });
    }
    if header.payload_len < available {
        return Err(DecodeError::TrailingBytes {
            remaining: (available - header.payload_len) as usize,
        });
    }
    let payload = &bytes[HEADER_LEN..];
    let computed = fnv1a(payload);
    if computed != header.checksum {
        return Err(DecodeError::ChecksumMismatch {
            stored: header.checksum,
            computed,
        });
    }
    Ok(payload)
}

/// Builds an artifact payload: fixed-width little-endian writes plus
/// length-prefixed sections.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty payload encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed (`u64`) raw byte section.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed (`u64`) section of little-endian
    /// `u32`s — the workhorse for state-id tables.
    pub fn put_u32s(&mut self, values: &[u32]) {
        self.put_u64(values.len() as u64);
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a bit set as capacity plus the list of set indices.
    pub fn put_bitset(&mut self, set: &BitSet) {
        self.put_u64(set.capacity() as u64);
        let members: Vec<u32> = set.iter().collect();
        self.put_u32s(&members);
    }

    /// Appends a byte-class map: 256 raw bytes plus the class count.
    pub fn put_classes(&mut self, classes: &ByteClasses) {
        for byte in 0..=255u8 {
            self.buf.push(classes.get(byte));
        }
        self.put_u16(classes.num_classes() as u16);
    }

    /// The finished payload, ready for [`seal`].
    pub fn into_payload(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads an artifact payload produced by [`Encoder`]. All reads are
/// bounds-checked and length prefixes are validated against the bytes
/// actually remaining before any allocation.
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decodes `bytes` from the start.
    pub fn new(bytes: &'a [u8]) -> Decoder<'a> {
        Decoder { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                offset: self.pos,
                needed: n - self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length prefix that must fit in the remaining bytes when
    /// each element occupies `elem_size` bytes.
    fn take_len(&mut self, elem_size: usize) -> Result<usize, DecodeError> {
        let at = self.pos;
        let len = self.take_u64()?;
        let max = (self.remaining() / elem_size.max(1)) as u64;
        if len > max {
            return Err(DecodeError::Truncated {
                offset: at,
                needed: (len - max) as usize * elem_size,
            });
        }
        Ok(len as usize)
    }

    /// Reads a length-prefixed raw byte section.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.take_len(1)?;
        self.take(len)
    }

    /// Reads a length-prefixed section of little-endian `u32`s.
    pub fn take_u32s(&mut self) -> Result<Vec<u32>, DecodeError> {
        let len = self.take_len(4)?;
        let raw = self.take(len * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Reads a bit set written by [`Encoder::put_bitset`].
    pub fn take_bitset(&mut self) -> Result<BitSet, DecodeError> {
        let at = self.pos;
        let capacity = self.take_u64()?;
        // A bit set allocates capacity/64 words up front; bound it by
        // the bytes present (each member costs 4 payload bytes, but an
        // empty set over a forged huge capacity costs nothing — cap by
        // the artifact's own table sizes instead).
        if capacity > MAX_DECODE_STATES as u64 {
            return Err(DecodeError::Malformed(format!(
                "bit set capacity {capacity} exceeds the cap of {MAX_DECODE_STATES} (at offset {at})"
            )));
        }
        let mut set = BitSet::new(capacity as usize);
        for id in self.take_u32s()? {
            if id as u64 >= capacity {
                return Err(DecodeError::Malformed(format!(
                    "bit set member {id} out of capacity {capacity}"
                )));
            }
            set.insert(id);
        }
        Ok(set)
    }

    /// Reads a byte-class map written by [`Encoder::put_classes`].
    pub fn take_classes(&mut self) -> Result<ByteClasses, DecodeError> {
        let map = self.take(256)?.to_vec();
        let num = self.take_u16()? as usize;
        ByteClasses::from_exact_map(map, num).map_err(|e| DecodeError::Malformed(e.to_string()))
    }

    /// Errors unless every byte was consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Upper bound on state counts accepted from an artifact — the same
/// spirit as the text cap: a length field must never commit more memory
/// than the artifact's own size implies.
pub const MAX_DECODE_STATES: usize = 1 << 26;

/// A decoded DFA artifact: the validated automaton plus its
/// premultiplied table (verified against the automaton, so serving can
/// use it without recomputation).
#[derive(Debug, Clone)]
pub struct DfaArtifact {
    /// The validated automaton.
    pub dfa: Dfa,
    /// `premultiply(dfa.table(), dfa.stride())`, verified at decode.
    pub premultiplied: Vec<StateId>,
}

/// Serializes a DFA (including its premultiplied table) to a sealed
/// artifact.
pub fn dfa_to_bytes(dfa: &Dfa) -> Vec<u8> {
    let mut enc = Encoder::new();
    encode_dfa_body(&mut enc, dfa);
    seal(ArtifactKind::Dfa, &enc.into_payload())
}

/// Writes the DFA payload sections (shared with the RI-DFA codec in the
/// core crate, whose minimized core is exactly these sections).
pub fn encode_dfa_body(enc: &mut Encoder, dfa: &Dfa) {
    enc.put_classes(dfa.classes());
    enc.put_u64(dfa.num_states() as u64);
    enc.put_u32(dfa.start());
    enc.put_bitset(dfa.finals());
    enc.put_u32s(dfa.table());
    enc.put_u32s(&premultiply(dfa.table(), dfa.stride()));
}

/// Reads back the sections written by [`encode_dfa_body`], re-validating
/// everything a fresh construction would establish.
pub fn decode_dfa_body(dec: &mut Decoder<'_>) -> Result<DfaArtifact, DecodeError> {
    let classes = dec.take_classes()?;
    let num_states = dec.take_u64()?;
    if num_states == 0 || num_states > MAX_DECODE_STATES as u64 {
        return Err(DecodeError::Malformed(format!(
            "state count {num_states} outside 1..={MAX_DECODE_STATES}"
        )));
    }
    let start = dec.take_u32()?;
    let finals = dec.take_bitset()?;
    let table = dec.take_u32s()?;
    let premultiplied = dec.take_u32s()?;
    let stride = classes.num_classes();
    if table.len() != num_states as usize * stride {
        return Err(DecodeError::Malformed(format!(
            "table holds {} entries, header declares {num_states} states × stride {stride}",
            table.len()
        )));
    }
    let dfa = Dfa::from_parts(classes, table, start, finals)
        .map_err(|e| DecodeError::Malformed(e.to_string()))?;
    if premultiplied != premultiply(dfa.table(), dfa.stride()) {
        return Err(DecodeError::Malformed(
            "premultiplied table does not match the transition table".into(),
        ));
    }
    Ok(DfaArtifact { dfa, premultiplied })
}

/// Decodes a sealed DFA artifact.
pub fn dfa_from_bytes(bytes: &[u8]) -> Result<DfaArtifact, DecodeError> {
    let payload = open(bytes, ArtifactKind::Dfa)?;
    let mut dec = Decoder::new(payload);
    let artifact = decode_dfa_body(&mut dec)?;
    dec.finish()?;
    Ok(artifact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::minimize::minimize;
    use crate::dfa::powerset::determinize;
    use crate::nfa::glushkov;
    use crate::regex::parse;

    fn sample_dfa() -> Dfa {
        minimize(&determinize(
            &glushkov::build(&parse("(a|b)*abb").unwrap()).unwrap(),
        ))
    }

    #[test]
    fn dfa_binary_roundtrip() {
        let dfa = sample_dfa();
        let bytes = dfa_to_bytes(&dfa);
        let back = dfa_from_bytes(&bytes).unwrap();
        assert_eq!(back.dfa.num_states(), dfa.num_states());
        assert_eq!(back.premultiplied, premultiply(dfa.table(), dfa.stride()));
        for input in [&b"abb"[..], b"aabb", b"ba", b""] {
            assert_eq!(back.dfa.accepts(input), dfa.accepts(input));
        }
    }

    #[test]
    fn header_peek_reports_kind_and_version() {
        let bytes = dfa_to_bytes(&sample_dfa());
        let header = peek(&bytes).unwrap();
        assert_eq!(header.version, FORMAT_VERSION);
        assert_eq!(header.kind, ArtifactKind::Dfa);
        assert_eq!(header.payload_len as usize, bytes.len() - HEADER_LEN);
    }

    #[test]
    fn every_truncation_errors_typed() {
        let bytes = dfa_to_bytes(&sample_dfa());
        for len in 0..bytes.len() {
            let err = dfa_from_bytes(&bytes[..len]).expect_err("truncated must fail");
            // Any variant is fine; the point is no panic and no Ok.
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn single_byte_corruption_never_panics_and_mostly_fails_checksum() {
        let bytes = dfa_to_bytes(&sample_dfa());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            // Corrupting may hit magic, version, kind, length, checksum
            // or payload — all must come back as typed errors.
            assert!(dfa_from_bytes(&bad).is_err(), "offset {i}");
        }
    }

    #[test]
    fn wrong_kind_is_reported() {
        let dfa = sample_dfa();
        let mut enc = Encoder::new();
        encode_dfa_body(&mut enc, &dfa);
        let sealed = seal(ArtifactKind::RiDfa, &enc.into_payload());
        match dfa_from_bytes(&sealed) {
            Err(DecodeError::WrongKind { expected, found }) => {
                assert_eq!(expected, ArtifactKind::Dfa);
                assert_eq!(found, ArtifactKind::RiDfa);
            }
            other => panic!("expected WrongKind, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = dfa_to_bytes(&sample_dfa());
        bytes.push(0);
        assert!(matches!(
            dfa_from_bytes(&bytes),
            Err(DecodeError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn forged_premultiplied_table_is_rejected() {
        let dfa = sample_dfa();
        let mut enc = Encoder::new();
        enc.put_classes(dfa.classes());
        enc.put_u64(dfa.num_states() as u64);
        enc.put_u32(dfa.start());
        enc.put_bitset(dfa.finals());
        enc.put_u32s(dfa.table());
        let mut pm = premultiply(dfa.table(), dfa.stride());
        if let Some(last) = pm.last_mut() {
            *last = last.wrapping_add(dfa.stride() as u32);
        }
        enc.put_u32s(&pm);
        let sealed = seal(ArtifactKind::Dfa, &enc.into_payload());
        assert!(matches!(
            dfa_from_bytes(&sealed),
            Err(DecodeError::Malformed(_))
        ));
    }
}
