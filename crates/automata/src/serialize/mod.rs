//! Import/export of automata: a human-readable text format and a
//! versioned, checksummed binary artifact format.
//!
//! Two sub-formats with different jobs:
//!
//! * [`text`] — the line-oriented format (in the spirit of the
//!   Timbuk/Ondrik collections) for saving, inspecting and hand-editing
//!   benchmark machines. Slow, diffable, forgiving of whitespace.
//! * [`binary`] — the serving artifact format: little-endian sections
//!   behind a magic/version/checksum header, covering byte classes,
//!   dense transition tables and their premultiplied forms, so that
//!   cold start is a validated load instead of a powerset construction.
//!   All decode failures are typed [`binary::DecodeError`]s; hostile
//!   bytes can never panic or over-allocate.
//!
//! The text entry points are re-exported at this level for backward
//! compatibility (`serialize::nfa_to_text` etc.).

pub mod binary;
pub mod text;

pub use text::{dfa_from_text, dfa_to_text, nfa_from_text, nfa_to_text, roundtrip_nfa};
