//! The plain-text automaton format.
//!
//! A deliberately simple line format so benchmark machines can be saved,
//! inspected and reloaded by the CLI without pulling a serialization
//! framework into the hot crates:
//!
//! ```text
//! nfa 3            # header: kind + number of states
//! start 0
//! final 2
//! trans 0 97 1     # from byte to   (byte in decimal)
//! trans 0 99 1
//! end
//! ```
//!
//! DFAs serialize their byte-class map and dense table row by row.
//!
//! The parsers are *structurally total*: any byte sequence that is valid
//! UTF-8 either parses to a validated automaton or returns a typed
//! [`Error::Deserialize`] — never a panic, and never an allocation that
//! is not bounded by the input size plus [`MAX_TEXT_STATES`] ·
//! [`MAX_TABLE_ENTRIES`].

use std::fmt::Write as _;

use crate::alphabet::ByteClasses;
use crate::dfa::Dfa;
use crate::error::{Error, Result};
use crate::nfa::{Builder, Nfa};
use crate::{BitSet, StateId};

/// Upper bound on the declared state count of a text automaton. The
/// header count is used to pre-size builders, so it must be capped
/// *before* any allocation — a forged `nfa 99999999999999` header would
/// otherwise commit gigabytes on a ten-byte input.
pub const MAX_TEXT_STATES: usize = 1 << 20;

/// Upper bound on dense-table entries (`states × stride`) accepted from
/// a text DFA (256 MiB of `u32`s). Rows past the cap error typed.
pub const MAX_TABLE_ENTRIES: usize = 1 << 26;

/// Serializes an NFA to the text format.
pub fn nfa_to_text(nfa: &Nfa) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "nfa {}", nfa.num_states());
    let _ = writeln!(out, "start {}", nfa.start());
    for f in nfa.finals().iter() {
        let _ = writeln!(out, "final {f}");
    }
    for s in 0..nfa.num_states() as StateId {
        for &(byte, t) in nfa.transitions(s) {
            let _ = writeln!(out, "trans {s} {byte} {t}");
        }
    }
    out.push_str("end\n");
    out
}

/// Parses an NFA from the text format.
pub fn nfa_from_text(text: &str) -> Result<Nfa> {
    let mut lines = Lines::new(text);
    let n = lines.header("nfa")?;
    if n > MAX_TEXT_STATES {
        return Err(Error::Deserialize(format!(
            "declared {n} states exceeds the cap of {MAX_TEXT_STATES}"
        )));
    }
    let mut b = Builder::new();
    for _ in 0..n {
        b.add_state();
    }
    let mut saw_end = false;
    while let Some(line) = lines.next_content() {
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("start") => b.set_start(lines.field(parts.next())?),
            Some("final") => b.set_final(lines.field(parts.next())?),
            Some("trans") => {
                let from: StateId = lines.field(parts.next())?;
                let byte: u16 = lines.field(parts.next())?;
                let to: StateId = lines.field(parts.next())?;
                if byte > 255 {
                    return Err(Error::Deserialize(format!("byte {byte} out of range")));
                }
                // The builder validates `to` at `build()`, but indexes
                // the adjacency list by `from` immediately — an
                // out-of-range source must be rejected here.
                if from as usize >= n {
                    return Err(Error::Deserialize(format!(
                        "transition source {from} out of range (num states {n})"
                    )));
                }
                b.add_transition(from, byte as u8, to);
            }
            Some("end") => {
                saw_end = true;
                break;
            }
            Some(other) => return Err(Error::Deserialize(format!("unknown directive {other:?}"))),
            None => {}
        }
    }
    if !saw_end {
        return Err(Error::Deserialize("missing 'end' line".into()));
    }
    b.build()
}

/// Serializes a DFA to the text format.
pub fn dfa_to_text(dfa: &Dfa) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "dfa {} {}", dfa.num_states(), dfa.stride());
    let _ = writeln!(out, "start {}", dfa.start());
    for f in dfa.finals().iter() {
        let _ = writeln!(out, "final {f}");
    }
    out.push_str("classes");
    for byte in 0..=255u8 {
        let _ = write!(out, " {}", dfa.classes().get(byte));
    }
    out.push('\n');
    for s in 0..dfa.num_states() {
        out.push_str("row");
        for c in 0..dfa.stride() {
            let _ = write!(out, " {}", dfa.next_class(s as StateId, c as u8));
        }
        out.push('\n');
    }
    out.push_str("end\n");
    out
}

/// Parses a DFA from the text format.
pub fn dfa_from_text(text: &str) -> Result<Dfa> {
    let mut lines = Lines::new(text);
    let (n, stride) = {
        let line = lines
            .next_content()
            .ok_or_else(|| Error::Deserialize("empty input".into()))?;
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("dfa") => {
                let n: usize = lines.field(parts.next())?;
                let stride: usize = lines.field(parts.next())?;
                (n, stride)
            }
            _ => return Err(Error::Deserialize("expected 'dfa <n> <stride>'".into())),
        }
    };
    // Both header fields bound allocations below; validate before any
    // `with_capacity`. A stride outside 1..=256 can never come from a
    // byte-class map.
    if n == 0 || n > MAX_TEXT_STATES {
        return Err(Error::Deserialize(format!(
            "declared {n} states outside 1..={MAX_TEXT_STATES}"
        )));
    }
    if stride == 0 || stride > 256 {
        return Err(Error::Deserialize(format!(
            "stride {stride} outside 1..=256"
        )));
    }
    let entries = n
        .checked_mul(stride)
        .filter(|&e| e <= MAX_TABLE_ENTRIES)
        .ok_or_else(|| {
            Error::Deserialize(format!(
                "table of {n}×{stride} entries exceeds the cap of {MAX_TABLE_ENTRIES}"
            ))
        })?;
    let mut start: StateId = 0;
    let mut finals = BitSet::new(n);
    let mut class_map: Option<Vec<u8>> = None;
    let mut table: Vec<StateId> = Vec::with_capacity(entries);
    let mut saw_end = false;
    while let Some(line) = lines.next_content() {
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("start") => start = lines.field(parts.next())?,
            Some("final") => {
                let f: StateId = lines.field(parts.next())?;
                if f as usize >= n {
                    return Err(Error::Deserialize(format!("final {f} out of range")));
                }
                finals.insert(f);
            }
            Some("classes") => {
                let map: Vec<u8> = parts
                    .map(|p| {
                        p.parse::<u8>()
                            .map_err(|e| Error::Deserialize(format!("bad class: {e}")))
                    })
                    .collect::<Result<_>>()?;
                if map.len() != 256 {
                    return Err(Error::Deserialize(format!(
                        "classes line has {} entries, expected 256",
                        map.len()
                    )));
                }
                class_map = Some(map);
            }
            Some("row") => {
                if table.len() >= entries {
                    return Err(Error::Deserialize(format!(
                        "more than the declared {n} rows"
                    )));
                }
                let before = table.len();
                for p in parts {
                    table.push(
                        p.parse::<StateId>()
                            .map_err(|e| Error::Deserialize(format!("bad target: {e}")))?,
                    );
                }
                if table.len() - before != stride {
                    return Err(Error::Deserialize(format!(
                        "row has {} entries, expected {stride}",
                        table.len() - before
                    )));
                }
            }
            Some("end") => {
                saw_end = true;
                break;
            }
            Some(other) => return Err(Error::Deserialize(format!("unknown directive {other:?}"))),
            None => {}
        }
    }
    if !saw_end {
        return Err(Error::Deserialize("missing 'end' line".into()));
    }
    let map = class_map.ok_or_else(|| Error::Deserialize("missing 'classes' line".into()))?;
    // Preserve the *exact* class ids from the file (rebuilding by
    // first-appearance order would scramble table columns).
    let classes =
        ByteClasses::from_exact_map(map, stride).map_err(|e| Error::Deserialize(e.to_string()))?;
    Dfa::from_parts(classes, table, start, finals).map_err(|e| Error::Deserialize(e.to_string()))
}

/// Round-trip sanity used by tests and the CLI.
pub fn roundtrip_nfa(nfa: &Nfa) -> Result<Nfa> {
    nfa_from_text(&nfa_to_text(nfa))
}

struct Lines<'a> {
    inner: std::str::Lines<'a>,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Lines {
            inner: text.lines(),
        }
    }

    /// Next non-empty, non-comment line.
    fn next_content(&mut self) -> Option<&'a str> {
        for line in self.inner.by_ref() {
            let line = match line.find('#') {
                Some(i) => &line[..i],
                None => line,
            };
            let line = line.trim();
            if !line.is_empty() {
                return Some(line);
            }
        }
        None
    }

    fn header(&mut self, kind: &str) -> Result<usize> {
        let line = self
            .next_content()
            .ok_or_else(|| Error::Deserialize("empty input".into()))?;
        let mut parts = line.split_ascii_whitespace();
        if parts.next() != Some(kind) {
            return Err(Error::Deserialize(format!("expected '{kind} <n>' header")));
        }
        self.field(parts.next())
    }

    fn field<T: std::str::FromStr>(&self, part: Option<&str>) -> Result<T>
    where
        T::Err: std::fmt::Display,
    {
        part.ok_or_else(|| Error::Deserialize("missing field".into()))?
            .parse::<T>()
            .map_err(|e| Error::Deserialize(format!("bad field: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::powerset::determinize;
    use crate::nfa::glushkov;
    use crate::regex::parse;

    fn sample_nfa() -> Nfa {
        glushkov::build(&parse("(a|b)*abb").unwrap()).unwrap()
    }

    #[test]
    fn nfa_roundtrip() {
        let nfa = sample_nfa();
        let back = roundtrip_nfa(&nfa).unwrap();
        assert_eq!(nfa, back);
    }

    #[test]
    fn dfa_roundtrip() {
        let dfa = determinize(&sample_nfa());
        let back = dfa_from_text(&dfa_to_text(&dfa)).unwrap();
        assert_eq!(dfa.num_states(), back.num_states());
        for input in [&b"abb"[..], b"aabb", b"ba", b""] {
            assert_eq!(dfa.accepts(input), back.accepts(input));
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text =
            "\n# a comment\nnfa 2\nstart 0\nfinal 1  # trailing comment\n\ntrans 0 120 1\nend\n";
        let nfa = nfa_from_text(text).unwrap();
        assert!(nfa.accepts(b"x"));
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "",
            "dfa 1",
            "nfa x\nend",
            "nfa 1\ntrans 0 999 0\nend",
            "nfa 1\nbogus\nend",
            "nfa 1\nstart 0",
            "nfa 2\ntrans 0 97 5\nend",
        ] {
            assert!(nfa_from_text(bad).is_err(), "input {bad:?}");
        }
    }

    #[test]
    fn hostile_headers_and_sources_error_without_allocating() {
        // Forged state counts must be rejected before pre-sizing.
        assert!(nfa_from_text("nfa 99999999999999999\nend").is_err());
        assert!(dfa_from_text("dfa 99999999999 99999999\nend").is_err());
        assert!(dfa_from_text("dfa 0 1\nend").is_err());
        assert!(dfa_from_text("dfa 1 0\nend").is_err());
        assert!(dfa_from_text("dfa 1 257\nend").is_err());
        // Out-of-range transition *source* used to index the adjacency
        // list straight off the wire (panic); must be a typed error.
        assert!(nfa_from_text("nfa 1\ntrans 5 97 0\nend").is_err());
        // More rows than declared.
        assert!(dfa_from_text("dfa 1 1\nrow 0\nrow 0\nend").is_err());
    }
}
