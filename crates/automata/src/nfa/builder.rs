//! Incremental construction of ε-free NFAs.

use crate::error::{Error, Result};
use crate::regex::ByteSet;
use crate::{BitSet, StateId};

use super::Nfa;

/// Builds an [`Nfa`] state by state.
///
/// ```
/// use ridfa_automata::nfa::Builder;
///
/// let mut b = Builder::new();
/// let s0 = b.add_state();
/// let s1 = b.add_state();
/// b.add_transition(s0, b'x', s1);
/// b.set_start(s0);
/// b.set_final(s1);
/// let nfa = b.build().unwrap();
/// assert!(nfa.accepts(b"x"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Builder {
    start: StateId,
    finals: Vec<StateId>,
    adj: Vec<Vec<(u8, StateId)>>,
}

impl Builder {
    /// Creates an empty builder.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Adds a state and returns its id (ids are assigned densely from 0).
    pub fn add_state(&mut self) -> StateId {
        self.adj.push(Vec::new());
        (self.adj.len() - 1) as StateId
    }

    /// Number of states added so far.
    pub fn num_states(&self) -> usize {
        self.adj.len()
    }

    /// Declares the initial state.
    pub fn set_start(&mut self, state: StateId) {
        self.start = state;
    }

    /// Marks `state` as accepting.
    pub fn set_final(&mut self, state: StateId) {
        self.finals.push(state);
    }

    /// Adds one byte transition.
    pub fn add_transition(&mut self, from: StateId, byte: u8, to: StateId) {
        self.adj[from as usize].push((byte, to));
    }

    /// Adds a transition for every byte in `class`.
    pub fn add_class_transition(&mut self, from: StateId, class: &ByteSet, to: StateId) {
        for byte in class.iter() {
            self.add_transition(from, byte, to);
        }
    }

    /// Finalizes into the CSR representation, sorting and deduplicating the
    /// per-state transition lists and validating all referenced state ids.
    pub fn build(mut self) -> Result<Nfa> {
        let n = self.adj.len();
        if n == 0 {
            return Err(Error::InvalidAutomaton("NFA has no states".into()));
        }
        if self.start as usize >= n {
            return Err(Error::InvalidAutomaton(format!(
                "start state {} out of range (num states {n})",
                self.start
            )));
        }
        let mut finals = BitSet::new(n);
        for &f in &self.finals {
            if f as usize >= n {
                return Err(Error::InvalidAutomaton(format!(
                    "final state {f} out of range (num states {n})"
                )));
            }
            finals.insert(f);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut trans = Vec::with_capacity(self.adj.iter().map(Vec::len).sum());
        offsets.push(0u32);
        for list in &mut self.adj {
            for &(_, t) in list.iter() {
                if t as usize >= n {
                    return Err(Error::InvalidAutomaton(format!(
                        "transition target {t} out of range (num states {n})"
                    )));
                }
            }
            list.sort_unstable();
            list.dedup();
            trans.extend_from_slice(list);
            offsets.push(trans.len() as u32);
        }
        Ok(Nfa {
            start: self.start,
            finals,
            offsets,
            trans,
        })
    }

    #[cfg(test)]
    pub(crate) fn clone_for_test(&self) -> Builder {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_transitions_are_deduped() {
        let mut b = Builder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.add_transition(s0, b'a', s1);
        b.add_transition(s0, b'a', s1);
        b.set_start(s0);
        b.set_final(s1);
        let nfa = b.build().unwrap();
        assert_eq!(nfa.num_transitions(), 1);
    }

    #[test]
    fn empty_builder_is_error() {
        assert!(Builder::new().build().is_err());
    }

    #[test]
    fn out_of_range_target_is_error() {
        let mut b = Builder::new();
        let s0 = b.add_state();
        b.add_transition(s0, b'a', 7);
        assert!(b.build().is_err());
    }

    #[test]
    fn out_of_range_final_is_error() {
        let mut b = Builder::new();
        b.add_state();
        b.set_final(9);
        assert!(b.build().is_err());
    }

    #[test]
    fn out_of_range_start_is_error() {
        let mut b = Builder::new();
        b.add_state();
        b.set_start(3);
        assert!(b.build().is_err());
    }

    #[test]
    fn num_states_tracks_additions() {
        let mut b = Builder::new();
        assert_eq!(b.num_states(), 0);
        b.add_state();
        b.add_state();
        assert_eq!(b.num_states(), 2);
    }
}
