//! Nondeterministic finite automata (ε-free) and their construction.
//!
//! The in-memory layout is a CSR adjacency: per state, a slice of
//! `(byte, target)` pairs sorted by byte. This keeps construction simple,
//! supports states with wildly different fan-outs (a `Σ*` self-loop state
//! has 256·k edges), and gives `O(log deg)` lookup of the byte range during
//! set-simulation.

pub mod glushkov;
pub mod thompson;

mod builder;
mod epsilon;
mod simulate;

pub use builder::Builder;
pub use simulate::Simulator;

use crate::alphabet::ByteClasses;
use crate::{BitSet, StateId};

/// An ε-free NFA over bytes.
///
/// States are `0..num_states()`; the conventional initial state is
/// [`start`](Nfa::start) but the speculative recognizer may start runs from
/// any state (that is the whole point of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nfa {
    start: StateId,
    finals: BitSet,
    /// CSR offsets: transitions of state `s` are `trans[offsets[s]..offsets[s+1]]`.
    offsets: Vec<u32>,
    /// `(byte, target)` pairs, sorted by byte then target within a state.
    trans: Vec<(u8, StateId)>,
}

impl Nfa {
    /// Number of states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of transitions (byte-expanded).
    #[inline]
    pub fn num_transitions(&self) -> usize {
        self.trans.len()
    }

    /// The conventional initial state `q0`.
    #[inline]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The final (accepting) state set.
    #[inline]
    pub fn finals(&self) -> &BitSet {
        &self.finals
    }

    /// `true` if `state` is accepting.
    #[inline]
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals.contains(state)
    }

    /// All transitions of `state`, sorted by byte.
    #[inline]
    pub fn transitions(&self, state: StateId) -> &[(u8, StateId)] {
        let lo = self.offsets[state as usize] as usize;
        let hi = self.offsets[state as usize + 1] as usize;
        &self.trans[lo..hi]
    }

    /// The targets of `state` on `byte`, as the sub-slice of its transition
    /// list (binary search on the sorted byte column).
    #[inline]
    pub fn targets(&self, state: StateId, byte: u8) -> &[(u8, StateId)] {
        let all = self.transitions(state);
        let lo = all.partition_point(|&(b, _)| b < byte);
        let hi = lo + all[lo..].partition_point(|&(b, _)| b == byte);
        &all[lo..hi]
    }

    /// Whole-string acceptance by set-simulation from `q0`.
    pub fn accepts(&self, text: &[u8]) -> bool {
        let mut sim = Simulator::new(self);
        let last = sim.run(self, &[self.start], text, &mut crate::counter::NoCount);
        last.iter().any(|&s| self.finals.contains(s))
    }

    /// Computes the byte-equivalence classes of this NFA: two bytes are in
    /// the same class iff every state maps them to the same target set.
    pub fn byte_classes(&self) -> ByteClasses {
        // Column signature per byte: the flattened (state, target) pairs.
        ByteClasses::from_key_fn(|b| {
            let mut column: Vec<(StateId, StateId)> = Vec::new();
            for s in 0..self.num_states() as StateId {
                for &(_, t) in self.targets(s, b) {
                    column.push((s, t));
                }
            }
            column
        })
    }

    /// The set of states reachable from `start` via byte transitions.
    pub fn reachable(&self) -> BitSet {
        let mut seen = BitSet::new(self.num_states());
        let mut stack = vec![self.start];
        seen.insert(self.start);
        while let Some(s) = stack.pop() {
            for &(_, t) in self.transitions(s) {
                if seen.insert(t) {
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// Returns an equivalent NFA with unreachable states removed (states are
    /// renumbered densely; the relative order of surviving states is kept).
    pub fn trim(&self) -> Nfa {
        let reachable = self.reachable();
        let mut remap = vec![StateId::MAX; self.num_states()];
        let mut next: StateId = 0;
        for s in reachable.iter() {
            remap[s as usize] = next;
            next += 1;
        }
        let mut b = Builder::new();
        for _ in 0..next {
            b.add_state();
        }
        for s in reachable.iter() {
            let ns = remap[s as usize];
            if self.is_final(s) {
                b.set_final(ns);
            }
            for &(byte, t) in self.transitions(s) {
                b.add_transition(ns, byte, remap[t as usize]);
            }
        }
        b.set_start(remap[self.start as usize]);
        b.build().expect("trim produced valid NFA")
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::regex::ByteSet;

    /// The NFA of the paper's Fig. 1 over Σ = {a,b,c}: edges
    /// 0 -a,c→ 1 ; 1 -a→ 1 ; 1 -Σ→ 0 ; 1 -b→ 2 ; 2 -b→ 1 ; F = {2}.
    /// (Derived from the set-simulation runs printed in Fig. 4; it
    /// reproduces the published 15/14/9 transition counts, asserted in the
    /// `ridfa-core` figure-1 integration test.)
    pub(crate) fn figure1_nfa() -> Nfa {
        let mut b = Builder::new();
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.add_transition(q0, b'a', q1);
        b.add_transition(q0, b'c', q1);
        b.add_transition(q1, b'a', q0);
        b.add_transition(q1, b'a', q1);
        b.add_transition(q1, b'b', q0);
        b.add_transition(q1, b'b', q2);
        b.add_transition(q1, b'c', q0);
        b.add_transition(q2, b'b', q1);
        b.set_start(q0);
        b.set_final(q2);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_sorted_csr() {
        let nfa = figure1_nfa();
        assert_eq!(nfa.num_states(), 3);
        assert_eq!(nfa.start(), 0);
        assert!(nfa.is_final(2));
        let t1 = nfa.transitions(1);
        // Sorted by byte: a,a,b,b,c.
        let bytes: Vec<u8> = t1.iter().map(|&(b, _)| b).collect();
        assert_eq!(bytes, vec![b'a', b'a', b'b', b'b', b'c']);
    }

    #[test]
    fn targets_selects_byte_range() {
        let nfa = figure1_nfa();
        let on_a: Vec<StateId> = nfa.targets(1, b'a').iter().map(|&(_, t)| t).collect();
        assert_eq!(on_a, vec![0, 1]);
        assert!(nfa.targets(0, b'b').is_empty());
        assert!(nfa.targets(2, b'z').is_empty());
    }

    #[test]
    fn byte_classes_group_unused_bytes() {
        let nfa = figure1_nfa();
        let classes = nfa.byte_classes();
        // a, b, c behave distinctly; all other bytes share the dead class.
        assert_eq!(classes.num_classes(), 4);
        assert_eq!(classes.get(b'x'), classes.get(b'!'));
        assert_ne!(classes.get(b'a'), classes.get(b'b'));
        assert_ne!(classes.get(b'a'), classes.get(b'x'));
    }

    #[test]
    fn reachable_and_trim() {
        let mut b = Builder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let _orphan = b.add_state();
        let s3 = b.add_state();
        b.add_transition(s0, b'x', s1);
        b.add_transition(s1, b'y', s3);
        b.set_start(s0);
        b.set_final(s3);
        let nfa = b.build().unwrap();
        assert_eq!(nfa.reachable().len(), 3);
        let trimmed = nfa.trim();
        assert_eq!(trimmed.num_states(), 3);
        assert!(trimmed.accepts(b"xy"));
        assert!(!trimmed.accepts(b"x"));
    }

    #[test]
    fn class_transition_expands_bytes() {
        let mut b = Builder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.add_class_transition(s0, &ByteSet::range(b'0', b'9'), s1);
        b.set_start(s0);
        b.set_final(s1);
        let nfa = b.build().unwrap();
        assert_eq!(nfa.num_transitions(), 10);
        assert!(nfa.accepts(b"7"));
        assert!(!nfa.accepts(b"a"));
    }

    #[test]
    fn accepts_empty_string_iff_start_final() {
        let mut b = Builder::new();
        let s0 = b.add_state();
        b.set_start(s0);
        let nfa_rejecting = b.clone_for_test().build().unwrap();
        assert!(!nfa_rejecting.accepts(b""));
        b.set_final(s0);
        let nfa_accepting = b.build().unwrap();
        assert!(nfa_accepting.accepts(b""));
    }
}
