//! Thompson's construction: RE → ε-NFA → (ε-elimination) → ε-free [`Nfa`].
//!
//! Kept alongside [Glushkov](super::glushkov) for two reasons: it is the
//! textbook baseline the paper contrasts with "more sophisticated RE → NFA
//! converters", and having two independent constructions gives the test
//! suite a strong cross-check — both must define the same language for
//! every pattern (see the property tests in `tests/`).

use crate::error::Result;
use crate::regex::Ast;
use crate::StateId;

use super::epsilon::EpsNfa;
use super::Nfa;

/// Builds an ε-free NFA from `ast` via Thompson fragments + ε-elimination.
///
/// ```
/// use ridfa_automata::{regex, nfa};
/// let ast = regex::parse("(ab|c)*").unwrap();
/// let nfa = nfa::thompson::build(&ast).unwrap();
/// assert!(nfa.accepts(b"abcab"));
/// assert!(nfa.accepts(b""));
/// assert!(!nfa.accepts(b"a"));
/// ```
pub fn build(ast: &Ast) -> Result<Nfa> {
    let core = ast.desugar();
    let mut eps = EpsNfa::new();
    let frag = compile(&mut eps, &core);
    eps.set_start(frag.start);
    eps.set_final(frag.accept);
    eps.eliminate_epsilon()
}

/// A Thompson fragment: one entry, one exit.
struct Fragment {
    start: StateId,
    accept: StateId,
}

/// Compiles the (desugared) AST into fragments, wiring ε edges.
fn compile(eps: &mut EpsNfa, ast: &Ast) -> Fragment {
    match ast {
        Ast::Empty => {
            let s = eps.add_state();
            let t = eps.add_state();
            eps.add_epsilon(s, t);
            Fragment {
                start: s,
                accept: t,
            }
        }
        Ast::Class(set) => {
            let s = eps.add_state();
            let t = eps.add_state();
            eps.add_class(s, set, t);
            Fragment {
                start: s,
                accept: t,
            }
        }
        Ast::Concat(parts) => {
            let first = compile(eps, &parts[0]);
            let mut accept = first.accept;
            for part in &parts[1..] {
                let frag = compile(eps, part);
                eps.add_epsilon(accept, frag.start);
                accept = frag.accept;
            }
            Fragment {
                start: first.start,
                accept,
            }
        }
        Ast::Alt(branches) => {
            let s = eps.add_state();
            let t = eps.add_state();
            for branch in branches {
                let frag = compile(eps, branch);
                eps.add_epsilon(s, frag.start);
                eps.add_epsilon(frag.accept, t);
            }
            Fragment {
                start: s,
                accept: t,
            }
        }
        Ast::Star(inner) => {
            let s = eps.add_state();
            let t = eps.add_state();
            let frag = compile(eps, inner);
            eps.add_epsilon(s, frag.start);
            eps.add_epsilon(frag.accept, t);
            eps.add_epsilon(s, t);
            eps.add_epsilon(frag.accept, frag.start);
            Fragment {
                start: s,
                accept: t,
            }
        }
        Ast::Repeat { .. } => unreachable!("compile() requires a desugared AST"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse;

    fn nfa_for(pattern: &str) -> Nfa {
        build(&parse(pattern).unwrap()).unwrap()
    }

    #[test]
    fn matches_basic_patterns() {
        let nfa = nfa_for("(a|b)*abb");
        assert!(nfa.accepts(b"abb"));
        assert!(nfa.accepts(b"babb"));
        assert!(!nfa.accepts(b"ab"));
    }

    #[test]
    fn empty_pattern_accepts_only_empty() {
        let nfa = nfa_for("");
        assert!(nfa.accepts(b""));
        assert!(!nfa.accepts(b"a"));
    }

    #[test]
    fn star_accepts_zero_and_many() {
        let nfa = nfa_for("x*");
        assert!(nfa.accepts(b""));
        assert!(nfa.accepts(b"xxxx"));
        assert!(!nfa.accepts(b"xy"));
    }

    #[test]
    fn agrees_with_glushkov_on_samples() {
        use crate::nfa::glushkov;
        for pattern in [
            "(a|b)*abb",
            "a{2,4}b?",
            "(x|y|z)+w",
            "[0-9]{3}-[0-9]{4}",
            "a(b|)c",
            "((a*)|(b*))*",
        ] {
            let ast = parse(pattern).unwrap();
            let t = build(&ast).unwrap();
            let g = glushkov::build(&ast).unwrap();
            for input in [
                &b""[..],
                b"a",
                b"ab",
                b"abb",
                b"aabb",
                b"xyzw",
                b"123-4567",
                b"abc",
                b"ac",
                b"aaabbb",
            ] {
                assert_eq!(
                    t.accepts(input),
                    g.accepts(input),
                    "pattern {pattern:?} on {:?}",
                    String::from_utf8_lossy(input)
                );
            }
        }
    }

    #[test]
    fn epsilon_free_result() {
        // After elimination the automaton must consume one byte per step:
        // the shortest accepted string of a+ is "a", and ε is rejected.
        let nfa = nfa_for("a+");
        assert!(!nfa.accepts(b""));
        assert!(nfa.accepts(b"a"));
    }

    #[test]
    fn pathological_nested_stars() {
        let nfa = nfa_for("((a*b)*c)*");
        assert!(nfa.accepts(b""));
        assert!(nfa.accepts(b"c"));
        assert!(nfa.accepts(b"aabbc"));
        assert!(nfa.accepts(b"aabcabc"));
        assert!(!nfa.accepts(b"ab"));
    }
}
