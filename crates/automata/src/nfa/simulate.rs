//! Set-based NFA simulation with transition counting.
//!
//! This is the "NFA variant" engine of the classic speculative algorithm
//! (CSDPA): a chunk-automaton run maintains the set of alive NFA states and
//! advances it byte by byte. Every *edge traversal* is one executed
//! transition — the quantity the paper counts in Sect. 4.3, which for an
//! NFA "may exceed the input length and depends on the degree of
//! nondeterminism". The counting convention (verified against the worked
//! example of Fig. 1, which totals 14 for the NFA method) is: a traversal is
//! counted when an edge is actually followed; a run that dies on a missing
//! transition counts nothing for that byte.

use crate::counter::Counter;
use crate::sparse::SparseSet;
use crate::StateId;

use super::Nfa;

/// A reusable NFA set-simulator.
///
/// Holds two sparse sets so repeated runs (one per speculative starting
/// state, times one per chunk) allocate nothing after construction.
#[derive(Debug, Clone)]
pub struct Simulator {
    current: SparseSet,
    next: SparseSet,
}

impl Simulator {
    /// Creates a simulator sized for `nfa`.
    pub fn new(nfa: &Nfa) -> Simulator {
        Simulator {
            current: SparseSet::new(nfa.num_states()),
            next: SparseSet::new(nfa.num_states()),
        }
    }

    /// Runs `nfa` over `text` starting from the state set `starts`,
    /// returning the states alive at the end (empty slice = the run died
    /// before consuming all of `text`). Each traversed edge increments
    /// `counter` once.
    pub fn run<'a>(
        &'a mut self,
        nfa: &Nfa,
        starts: &[StateId],
        text: &[u8],
        counter: &mut impl Counter,
    ) -> &'a [StateId] {
        self.current.clear();
        for &s in starts {
            self.current.insert(s);
        }
        for &byte in text {
            if self.current.is_empty() {
                break;
            }
            self.next.clear();
            for s in self.current.iter() {
                for &(_, t) in nfa.targets(s, byte) {
                    counter.incr();
                    self.next.insert(t);
                }
            }
            std::mem::swap(&mut self.current, &mut self.next);
        }
        self.current.as_slice()
    }

    /// Like [`run`](Simulator::run) but only reports whether any state
    /// survives and whether one of them is final.
    pub fn run_accepts(
        &mut self,
        nfa: &Nfa,
        starts: &[StateId],
        text: &[u8],
        counter: &mut impl Counter,
    ) -> bool {
        let last = self.run(nfa, starts, text, counter);
        last.iter().any(|&s| nfa.is_final(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{NoCount, TransitionCount};
    use crate::nfa::tests::figure1_nfa;

    #[test]
    fn accepts_sample_string() {
        let nfa = figure1_nfa();
        // The paper's sample valid string.
        assert!(nfa.accepts(b"aabcab"));
        assert!(!nfa.accepts(b"a"));
        assert!(!nfa.accepts(b""));
    }

    #[test]
    fn run_returns_alive_set() {
        let nfa = figure1_nfa();
        let mut sim = Simulator::new(&nfa);
        let last = sim.run(&nfa, &[0], b"aab", &mut NoCount);
        // {0} -a→ {1} -a→ {0,1} -b→ {0,2}
        let mut got = last.to_vec();
        got.sort_unstable();
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn dead_run_is_empty() {
        let nfa = figure1_nfa();
        let mut sim = Simulator::new(&nfa);
        // From state 2 no 'c' transition exists.
        let last = sim.run(&nfa, &[2], b"cab", &mut NoCount);
        assert!(last.is_empty());
    }

    #[test]
    fn transition_counts_match_figure1() {
        // Chunk 1 "aab" from {0}: 1 + 2 + 2 = 5 traversals.
        let nfa = figure1_nfa();
        let mut sim = Simulator::new(&nfa);
        let mut c = TransitionCount::default();
        sim.run(&nfa, &[0], b"aab", &mut c);
        assert_eq!(c.get(), 5);

        // Chunk 2 "cab" from {0}: 5, from {1}: 4, from {2}: 0 → paper total
        // for the NFA method is 5 + (5 + 4 + 0) = 14.
        let mut per_start = Vec::new();
        for q in 0..3 {
            let mut c = TransitionCount::default();
            sim.run(&nfa, &[q], b"cab", &mut c);
            per_start.push(c.get());
        }
        assert_eq!(per_start, vec![5, 4, 0]);
    }

    #[test]
    fn run_accepts_checks_finals() {
        let nfa = figure1_nfa();
        let mut sim = Simulator::new(&nfa);
        assert!(sim.run_accepts(&nfa, &[0], b"aab", &mut NoCount));
        assert!(!sim.run_accepts(&nfa, &[0], b"aa", &mut NoCount));
    }

    #[test]
    fn simulator_is_reusable_across_runs() {
        let nfa = figure1_nfa();
        let mut sim = Simulator::new(&nfa);
        for _ in 0..3 {
            assert!(sim.run_accepts(&nfa, &[0], b"aabcab", &mut NoCount));
            assert!(!sim.run_accepts(&nfa, &[2], b"c", &mut NoCount));
        }
    }

    #[test]
    fn empty_text_returns_start_set() {
        let nfa = figure1_nfa();
        let mut sim = Simulator::new(&nfa);
        let last = sim.run(&nfa, &[1, 2], b"", &mut NoCount);
        let mut got = last.to_vec();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
