//! The Glushkov / McNaughton–Yamada construction (GMY, the paper's \[19\]).
//!
//! Produces an ε-free NFA with exactly `positions + 1` states, where a
//! *position* is one occurrence of a byte class in the (desugared) RE. This
//! is the construction the paper uses to obtain benchmark NFAs from REs:
//! the resulting machines are compact (state count independent of operator
//! nesting) and never contain ε-transitions.
//!
//! The algorithm computes the classical `nullable`, `first`, `last` and
//! `follow` sets in one post-order pass.

use crate::error::{Error, Result};
use crate::nfa::{Builder, Nfa};
use crate::regex::{Ast, ByteSet};
use crate::StateId;

/// Hard cap on positions, guarding against adversarial counted repetitions.
pub const MAX_POSITIONS: usize = 1 << 20;

/// Builds the Glushkov NFA of `ast`.
///
/// ```
/// use ridfa_automata::{regex, nfa};
/// let ast = regex::parse("[ab]*a[ab]").unwrap();
/// let nfa = nfa::glushkov::build(&ast).unwrap();
/// // 1 initial state + 3 positions.
/// assert_eq!(nfa.num_states(), 4);
/// assert!(nfa.accepts(b"ab"));
/// # assert!(nfa.accepts(b"aab"));
/// # assert!(!nfa.accepts(b"ba"));
/// ```
pub fn build(ast: &Ast) -> Result<Nfa> {
    // Check the limit on the symbolic AST *before* desugaring: counted
    // repetitions multiply positions and would otherwise materialize a huge
    // tree just to be rejected.
    if ast.num_positions() > MAX_POSITIONS {
        return Err(Error::LimitExceeded {
            what: "Glushkov positions",
            limit: MAX_POSITIONS,
        });
    }
    let core = ast.desugar();
    let mut g = Glushkov {
        symbols: Vec::new(),
        follow: Vec::new(),
    };
    let info = g.analyze(&core);

    // State 0 is the initial state; position p (1-based) is state p.
    let mut b = Builder::new();
    let initial = b.add_state();
    for _ in 0..g.symbols.len() {
        b.add_state();
    }
    b.set_start(initial);
    if info.nullable {
        b.set_final(initial);
    }
    for &p in &info.first {
        b.add_class_transition(initial, &g.symbols[p as usize - 1], p);
    }
    for (p0, follows) in g.follow.iter().enumerate() {
        let from = (p0 + 1) as StateId;
        for &q in follows {
            b.add_class_transition(from, &g.symbols[q as usize - 1], q);
        }
    }
    for &p in &info.last {
        b.set_final(p);
    }
    b.build()
}

/// Per-subexpression Glushkov attributes. Positions are 1-based state ids.
struct Info {
    nullable: bool,
    first: Vec<StateId>,
    last: Vec<StateId>,
}

struct Glushkov {
    /// Symbol (byte class) of each position, indexed by `position - 1`.
    symbols: Vec<ByteSet>,
    /// `follow[p-1]` = positions that may follow position `p`.
    follow: Vec<Vec<StateId>>,
}

impl Glushkov {
    /// Post-order traversal computing `nullable/first/last` and filling in
    /// `follow` along the way. `ast` must be desugared (no `Repeat`).
    fn analyze(&mut self, ast: &Ast) -> Info {
        match ast {
            Ast::Empty => Info {
                nullable: true,
                first: Vec::new(),
                last: Vec::new(),
            },
            Ast::Class(set) => {
                self.symbols.push(*set);
                self.follow.push(Vec::new());
                let p = self.symbols.len() as StateId;
                Info {
                    nullable: false,
                    first: vec![p],
                    last: vec![p],
                }
            }
            Ast::Concat(parts) => {
                let mut acc = self.analyze(&parts[0]);
                for part in &parts[1..] {
                    let rhs = self.analyze(part);
                    // follow(last(acc)) ∪= first(rhs)
                    for &p in &acc.last {
                        self.extend_follow(p, &rhs.first);
                    }
                    if acc.nullable {
                        merge(&mut acc.first, &rhs.first);
                    }
                    if rhs.nullable {
                        merge(&mut acc.last, &rhs.last);
                    } else {
                        acc.last = rhs.last;
                    }
                    acc.nullable &= rhs.nullable;
                }
                acc
            }
            Ast::Alt(branches) => {
                let mut acc = Info {
                    nullable: false,
                    first: Vec::new(),
                    last: Vec::new(),
                };
                for branch in branches {
                    let info = self.analyze(branch);
                    acc.nullable |= info.nullable;
                    merge(&mut acc.first, &info.first);
                    merge(&mut acc.last, &info.last);
                }
                acc
            }
            Ast::Star(inner) => {
                let info = self.analyze(inner);
                for &p in &info.last {
                    self.extend_follow(p, &info.first);
                }
                Info {
                    nullable: true,
                    first: info.first,
                    last: info.last,
                }
            }
            Ast::Repeat { .. } => unreachable!("analyze() requires a desugared AST"),
        }
    }

    fn extend_follow(&mut self, position: StateId, firsts: &[StateId]) {
        let list = &mut self.follow[position as usize - 1];
        for &f in firsts {
            if !list.contains(&f) {
                list.push(f);
            }
        }
    }
}

/// Merges `src` into `dst` keeping elements unique.
fn merge(dst: &mut Vec<StateId>, src: &[StateId]) {
    for &s in src {
        if !dst.contains(&s) {
            dst.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse;

    fn nfa_for(pattern: &str) -> Nfa {
        build(&parse(pattern).unwrap()).unwrap()
    }

    #[test]
    fn state_count_is_positions_plus_one() {
        assert_eq!(nfa_for("abc").num_states(), 4);
        // (a|b) is two positions; the class [ab] is one.
        assert_eq!(nfa_for("(a|b)*abb").num_states(), 6);
        assert_eq!(nfa_for("[ab]*abb").num_states(), 5);
        assert_eq!(nfa_for("").num_states(), 1);
        // a{3} desugars to three positions.
        assert_eq!(nfa_for("a{3}").num_states(), 4);
    }

    #[test]
    fn classic_language_tests() {
        let nfa = nfa_for("(a|b)*abb");
        assert!(nfa.accepts(b"abb"));
        assert!(nfa.accepts(b"aabb"));
        assert!(nfa.accepts(b"babababb"));
        assert!(!nfa.accepts(b"ab"));
        assert!(!nfa.accepts(b"abba"));
        assert!(!nfa.accepts(b""));
    }

    #[test]
    fn nullable_pattern_accepts_empty() {
        let nfa = nfa_for("(ab)*");
        assert!(nfa.accepts(b""));
        assert!(nfa.accepts(b"abab"));
        assert!(!nfa.accepts(b"aba"));
    }

    #[test]
    fn alternation_with_empty_branch() {
        let nfa = nfa_for("a|");
        assert!(nfa.accepts(b""));
        assert!(nfa.accepts(b"a"));
        assert!(!nfa.accepts(b"aa"));
    }

    #[test]
    fn counted_repetitions() {
        let nfa = nfa_for("a{2,4}");
        assert!(!nfa.accepts(b"a"));
        assert!(nfa.accepts(b"aa"));
        assert!(nfa.accepts(b"aaa"));
        assert!(nfa.accepts(b"aaaa"));
        assert!(!nfa.accepts(b"aaaaa"));
    }

    #[test]
    fn unbounded_repetition() {
        let nfa = nfa_for("x{3,}");
        assert!(!nfa.accepts(b"xx"));
        assert!(nfa.accepts(b"xxx"));
        assert!(nfa.accepts(b"xxxxxxxx"));
    }

    #[test]
    fn classes_and_dot() {
        let nfa = nfa_for("[a-c]+\\d");
        assert!(nfa.accepts(b"abc5"));
        assert!(!nfa.accepts(b"5"));
        assert!(!nfa.accepts(b"abcd5"));

        let any = nfa_for(".*x");
        assert!(any.accepts(b"___x"));
        assert!(!any.accepts(b"a\nx"), "dot must not cross newlines");
    }

    #[test]
    fn dot_excludes_newline() {
        let nfa = nfa_for(".x");
        assert!(nfa.accepts(b"ax"));
        assert!(!nfa.accepts(b"\nx"));
    }

    #[test]
    fn regexp_family_shape() {
        // (a|b)*a(a|b){k} with classes has k+2 positions → k+3 states.
        let nfa = nfa_for("[ab]*a[ab]{3}");
        assert_eq!(nfa.num_states(), 6);
        assert!(nfa.accepts(b"abaabb"));
        assert!(!nfa.accepts(b"abbbbb"));
    }

    #[test]
    fn position_limit_is_enforced() {
        // 3000 * 4096 > MAX_POSITIONS… keep it cheap: nested counted repeats.
        let err = build(&parse("(a{4096}){4096}").unwrap()).unwrap_err();
        assert!(matches!(err, Error::LimitExceeded { .. }));
    }

    #[test]
    fn star_of_nullable_inner() {
        let nfa = nfa_for("(a?b?)*");
        assert!(nfa.accepts(b""));
        assert!(nfa.accepts(b"abbaab"));
        // Everything over {a,b} is accepted; c is not.
        assert!(!nfa.accepts(b"c"));
    }

    #[test]
    fn no_epsilon_transitions_exist() {
        // Glushkov NFAs are ε-free by construction; every transition
        // consumes a byte, so state count bounds the shortest accepted
        // string reachable in the graph.
        let nfa = nfa_for("a(b|c)d");
        assert_eq!(nfa.num_states(), 5);
        assert_eq!(nfa.num_transitions(), 1 + 2 + 1 + 1);
    }
}
