//! ε-NFA representation and ε-elimination.
//!
//! Only the Thompson construction produces ε-transitions; they are
//! eliminated before the automaton leaves this crate, because every
//! downstream component (powerset, RI-DFA, the speculative recognizer)
//! assumes one consumed byte per transition.

use crate::error::Result;
use crate::regex::ByteSet;
use crate::{BitSet, StateId};

use super::{Builder, Nfa};

/// An NFA under construction that may contain ε-transitions.
#[derive(Debug, Default)]
pub(crate) struct EpsNfa {
    start: StateId,
    finals: Vec<StateId>,
    byte_edges: Vec<Vec<(u8, StateId)>>,
    eps_edges: Vec<Vec<StateId>>,
}

impl EpsNfa {
    pub(crate) fn new() -> EpsNfa {
        EpsNfa::default()
    }

    pub(crate) fn add_state(&mut self) -> StateId {
        self.byte_edges.push(Vec::new());
        self.eps_edges.push(Vec::new());
        (self.byte_edges.len() - 1) as StateId
    }

    pub(crate) fn set_start(&mut self, s: StateId) {
        self.start = s;
    }

    pub(crate) fn set_final(&mut self, s: StateId) {
        self.finals.push(s);
    }

    pub(crate) fn add_epsilon(&mut self, from: StateId, to: StateId) {
        self.eps_edges[from as usize].push(to);
    }

    pub(crate) fn add_class(&mut self, from: StateId, class: &ByteSet, to: StateId) {
        for byte in class.iter() {
            self.byte_edges[from as usize].push((byte, to));
        }
    }

    /// ε-closure of a single state (including itself).
    fn closure(&self, state: StateId) -> Vec<StateId> {
        let mut seen = BitSet::new(self.byte_edges.len());
        let mut stack = vec![state];
        seen.insert(state);
        while let Some(s) = stack.pop() {
            for &t in &self.eps_edges[s as usize] {
                if seen.insert(t) {
                    stack.push(t);
                }
            }
        }
        seen.iter().collect()
    }

    /// Standard ε-elimination:
    /// `s --b--> t` in the result iff `∃ u ∈ closure(s)` with `u --b--> t`;
    /// `s` is final iff `closure(s)` meets the final set. Unreachable states
    /// are trimmed afterwards, which also discards the ε-only plumbing
    /// states Thompson introduces.
    pub(crate) fn eliminate_epsilon(&self) -> Result<Nfa> {
        let n = self.byte_edges.len();
        let finals: BitSet = self.finals.iter().copied().collect();
        let mut b = Builder::new();
        for _ in 0..n {
            b.add_state();
        }
        b.set_start(self.start);
        for s in 0..n as StateId {
            let closure = self.closure(s);
            if closure
                .iter()
                .any(|&u| (u as usize) < finals.capacity() && finals.contains(u))
            {
                b.set_final(s);
            }
            for &u in &closure {
                for &(byte, t) in &self.byte_edges[u as usize] {
                    b.add_transition(s, byte, t);
                }
            }
        }
        Ok(b.build()?.trim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::NoCount;
    use crate::nfa::Simulator;

    #[test]
    fn closure_follows_chains() {
        let mut e = EpsNfa::new();
        let s0 = e.add_state();
        let s1 = e.add_state();
        let s2 = e.add_state();
        let s3 = e.add_state();
        e.add_epsilon(s0, s1);
        e.add_epsilon(s1, s2);
        e.add_epsilon(s2, s0); // cycle
        let mut c = e.closure(s0);
        c.sort_unstable();
        assert_eq!(c, vec![s0, s1, s2]);
        assert_eq!(e.closure(s3), vec![s3]);
    }

    #[test]
    fn elimination_preserves_language() {
        // ε-NFA for a*b: 0 -ε→ 0' with a-loop … hand-built:
        // 0 -ε→ 1, 1 -a→ 1, 1 -ε→ 2, 2 -b→ 3, final 3.
        let mut e = EpsNfa::new();
        let s0 = e.add_state();
        let s1 = e.add_state();
        let s2 = e.add_state();
        let s3 = e.add_state();
        e.add_epsilon(s0, s1);
        e.add_class(s1, &ByteSet::singleton(b'a'), s1);
        e.add_epsilon(s1, s2);
        e.add_class(s2, &ByteSet::singleton(b'b'), s3);
        e.set_start(s0);
        e.set_final(s3);
        let nfa = e.eliminate_epsilon().unwrap();
        assert!(nfa.accepts(b"b"));
        assert!(nfa.accepts(b"aaab"));
        assert!(!nfa.accepts(b"a"));
        assert!(!nfa.accepts(b""));
    }

    #[test]
    fn epsilon_to_final_makes_state_final() {
        let mut e = EpsNfa::new();
        let s0 = e.add_state();
        let s1 = e.add_state();
        e.add_epsilon(s0, s1);
        e.set_start(s0);
        e.set_final(s1);
        let nfa = e.eliminate_epsilon().unwrap();
        assert!(nfa.accepts(b""));
    }

    #[test]
    fn trim_drops_plumbing_states() {
        // Thompson-style chain with unreachable tail.
        let mut e = EpsNfa::new();
        let s0 = e.add_state();
        let s1 = e.add_state();
        let _unreached = e.add_state();
        e.add_class(s0, &ByteSet::singleton(b'z'), s1);
        e.set_start(s0);
        e.set_final(s1);
        let nfa = e.eliminate_epsilon().unwrap();
        assert_eq!(nfa.num_states(), 2);
        let mut sim = Simulator::new(&nfa);
        assert!(sim.run_accepts(&nfa, &[nfa.start()], b"z", &mut NoCount));
    }
}
