//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace's
//! benches link against this minimal harness instead. It implements the
//! API subset the benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], the [`criterion_group!`] /
//! [`criterion_main!`] macros and [`black_box`] — measures median
//! wall-clock time per iteration, prints a one-line summary per bench,
//! and writes a JSON record per group to `target/criterion-shim/` so
//! runs can be archived as baseline artifacts.
//!
//! Environment knobs:
//! * `CRITERION_SHIM_QUICK=1` — one warm-up + three samples per bench,
//!   for CI smoke runs.

#![deny(missing_docs)]

use std::fmt::Display;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier (shim of `std::hint::black_box` re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Hierarchical benchmark name (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after a warm-up.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: run until the warm-up budget is spent (at least once),
        // and estimate the per-iteration cost for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Batch so one sample costs about measurement_time / sample_size.
        let sample_budget = self.measurement_time.as_secs_f64() / self.sample_size.max(1) as f64;
        let batch = ((sample_budget / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1 << 24);
        self.samples.clear();
        for _ in 0..self.sample_size.max(1) {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch as u32);
        }
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        if s.is_empty() {
            return Duration::ZERO;
        }
        s.sort_unstable();
        s[s.len() / 2]
    }
}

struct Record {
    name: String,
    median: Duration,
    throughput: Option<Throughput>,
}

/// A named group of related benchmarks (shim of criterion's group).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    records: Vec<Record>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-bench measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Sets the per-bench warm-up budget.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up_time = time;
        self
    }

    /// Sets the number of samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates every following bench with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let quick = std::env::var_os("CRITERION_SHIM_QUICK").is_some();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: if quick { 3 } else { self.sample_size },
            measurement_time: if quick {
                Duration::from_millis(30)
            } else {
                self.measurement_time
            },
            warm_up_time: if quick {
                Duration::from_millis(5)
            } else {
                self.warm_up_time
            },
        };
        f(&mut bencher);
        let median = bencher.median();
        let name = id.to_string();
        let mut line = format!("{}/{name}: median {median:?}", self.name);
        if let Some(Throughput::Bytes(bytes)) = self.throughput {
            let secs = median.as_secs_f64();
            if secs > 0.0 {
                let mibs = bytes as f64 / secs / (1024.0 * 1024.0);
                let _ = write!(line, " ({mibs:.1} MiB/s)");
            }
        }
        println!("{line}");
        self.records.push(Record {
            name,
            median,
            throughput: self.throughput,
        });
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group, writing its JSON record.
    pub fn finish(self) {
        let mut json = String::from("{\n");
        let _ = write!(json, "  \"group\": {:?},\n  \"benches\": [", self.name);
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let _ = write!(
                json,
                "\n    {{ \"name\": {:?}, \"median_ns\": {}",
                r.name,
                r.median.as_nanos()
            );
            if let Some(Throughput::Bytes(bytes)) = r.throughput {
                let secs = r.median.as_secs_f64();
                if secs > 0.0 {
                    let _ = write!(
                        json,
                        ", \"bytes\": {bytes}, \"mib_per_s\": {:.2}",
                        bytes as f64 / secs / (1024.0 * 1024.0)
                    );
                }
            }
            json.push_str(" }");
        }
        json.push_str("\n  ]\n}\n");
        let dir = output_root().join("criterion-shim");
        if std::fs::create_dir_all(&dir).is_ok() {
            let file = dir.join(format!("{}.json", sanitize(&self.name)));
            let _ = std::fs::write(file, &json);
        }
        self.criterion.finished_groups += 1;
    }
}

/// The workspace `target/` directory: cargo runs bench binaries with the
/// *package* directory as cwd, so a relative path would scatter output
/// across member crates. Walk up from the executable
/// (`target/<profile>/deps/bench-…`) instead; fall back to cwd-relative
/// `target` when the layout is unrecognizable.
fn output_root() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return dir.into();
    }
    if let Ok(exe) = std::env::current_exe() {
        for ancestor in exe.ancestors() {
            if ancestor.file_name().is_some_and(|n| n == "target") {
                return ancestor.to_path_buf();
            }
        }
    }
    std::path::PathBuf::from("target")
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Benchmark driver (shim of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    finished_groups: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
            records: Vec::new(),
            criterion: self,
        }
    }
}

/// Declares a group of benchmark functions (shim of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)*) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        std::env::set_var("CRITERION_SHIM_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_self_test");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("noop", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert_eq!(c.finished_groups, 1);
    }

    #[test]
    fn benchmark_id_formats_as_path() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
