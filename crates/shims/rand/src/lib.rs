//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! this tiny shim instead of the real crate. It provides exactly what the
//! workloads and tests use: [`SeedableRng::seed_from_u64`], the
//! [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen_ratio`] sampling
//! methods, and the [`rngs::SmallRng`] / [`rngs::StdRng`] generator types.
//! Both generators are xoshiro256++ seeded via SplitMix64 — deterministic
//! in the seed, which is the only property the workspace relies on (all
//! workload generators and property tests are seed-reproducible; none
//! need cryptographic strength or bit-compatibility with upstream rand).

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator: uniformly distributed 64-bit outputs.
pub trait RngCore {
    /// Next uniform `u64`.
    fn next_u64(&mut self) -> u64;

    /// Next uniform `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods (shim of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive integer range.
    ///
    /// Panics when the range is empty, like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be non-zero");
        assert!(
            numerator <= denominator,
            "gen_ratio numerator {numerator} > denominator {denominator}"
        );
        (u64::from(self.next_u32()) * u64::from(denominator)) >> 32 < u64::from(numerator)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly (shim of `rand::distributions`).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = uniform_below(rng, span);
                (self.start as i128 + draw as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = uniform_below(rng, span);
                (start as i128 + draw as i128) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` by widening multiply (Lemire reduction,
/// without the rejection step — bias is < 2⁻⁶⁴·span, irrelevant for
/// workload generation).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    ((u128::from(rng.next_u64()) * span) >> 64) as u64
}

/// xoshiro256++ core shared by both generator types.
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the canonical xoshiro seeding procedure.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Generator types (shim of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Small fast generator (shim of `rand::rngs::SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::seed_from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Default generator (shim of `rand::rngs::StdRng`). Same core as
    /// [`SmallRng`]; the distinction only matters for crypto uses the
    /// workspace does not have.
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Domain-separate from SmallRng so the two never correlate.
            StdRng(Xoshiro256::seed_from_u64(seed ^ 0xA5A5_5A5A_F0F0_0F0F))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..17);
            assert!(v < 17);
            let w: i32 = rng.gen_range(-1..=0);
            assert!((-1..=0).contains(&w));
            let x: u64 = rng.gen_range(5..=5);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_ratio_extremes() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!((0..64).all(|_| rng.gen_ratio(10, 10)));
        assert!((0..64).all(|_| !rng.gen_ratio(0, 10)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }
}
