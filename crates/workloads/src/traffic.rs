//! The `traffic` benchmark: a syslog file of network-traffic records whose
//! line structure is described by a ~100-state NFA (paper Tab. 1; *even*
//! group).
//!
//! The language is a *whole-file* description — a sequence of conforming
//! records — so the recognizer validates structure rather than searching.
//! The record grammar is essentially deterministic (fixed fields,
//! class-disjoint alternatives), so the minimal DFA stays close to the
//! NFA in size and the DFA/RID comparison comes out even, as the paper
//! reports for this benchmark.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ridfa_automata::nfa::{glushkov, Nfa};
use ridfa_automata::regex::parse;

const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];
const DAEMONS: [&str; 4] = ["sshd", "kernel", "nginx", "systemd"];

/// One record:
/// `Mon dd HH:MM:SS hostNN daemon[pid]: src=IP dst=IP len=N message\n`.
fn record_pattern() -> String {
    let months = MONTHS.join("|");
    let daemons = DAEMONS.join("|");
    let ip = "\\d{1,3}\\.\\d{1,3}\\.\\d{1,3}\\.\\d{1,3}";
    format!(
        "({months}) [ 0-3]\\d \\d\\d:\\d\\d:\\d\\d host\\d{{1,3}} ({daemons})\\[\\d{{1,5}}\\]: \
         src={ip} dst={ip} len=\\d{{1,4}} [ -~]*\\n"
    )
}

/// The benchmark pattern: a file is a (possibly empty) sequence of records.
pub fn pattern() -> String {
    format!("({})*", record_pattern())
}

/// The benchmark NFA (Glushkov of [`pattern`]); ~120 states, matching the
/// paper's 101-state order of magnitude.
pub fn nfa() -> Nfa {
    glushkov::build(&parse(&pattern()).unwrap()).expect("traffic pattern is buildable")
}

/// Generates ≈ `len` bytes of conforming syslog records (whole lines only,
/// so the text is always accepted).
pub fn text(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len + 256);
    while out.len() < len {
        push_record(&mut out, &mut rng);
    }
    // Trim whole records so the tail stays well-formed.
    if let Some(cut) = last_newline_before(&out, len) {
        out.truncate(cut + 1);
    }
    out
}

/// A log with one malformed record in the middle: rejected by [`nfa`].
pub fn rejected_text(len: usize, seed: u64) -> Vec<u8> {
    let mut t = text(len, seed);
    let mid = t.len() / 2;
    // Corrupt the month of the record containing `mid`. When `mid` falls
    // inside the *first* record there is no upstream newline — corrupt
    // offset 0 instead of silently returning a conforming text (short
    // texts used to ship as "rejected" while every record was intact).
    let p = t[..mid]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |line_start| line_start + 1);
    for (off, &byte) in [b'X', b'x', b'x'].iter().enumerate() {
        if let Some(slot) = t.get_mut(p + off) {
            *slot = byte;
        }
    }
    t
}

/// Generates a serving-style request stream: `count` independent syslog
/// texts of ≈ `len` bytes each, with every `reject_every`-th text (1-based;
/// `0` disables) carrying one malformed record so the rejection path stays
/// exercised. This is the workload behind `ridfa serve` and the
/// short-text batch-latency bench.
pub fn request_stream(count: usize, len: usize, reject_every: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            let seed = i as u64;
            if reject_every != 0 && (i + 1) % reject_every == 0 {
                rejected_text(len, seed)
            } else {
                text(len, seed)
            }
        })
        .collect()
}

/// An unbounded conforming record pipe: an [`io::Read`](std::io::Read)
/// that *generates* ≈ `target_bytes` of syslog records lazily, one record
/// at a time, always ending on a record boundary — so arbitrarily large
/// accepted streams cost O(1) memory to produce. This is the source
/// behind `ridfa serve --stream` and the ≥ 256 MiB streaming acceptance
/// test.
///
/// [`with_corruption`](RecordSource::with_corruption) malforms the month
/// of one chosen record, making the whole stream rejected (the streaming
/// analogue of [`rejected_text`]).
#[derive(Debug)]
pub struct RecordSource {
    rng: SmallRng,
    target: u64,
    emitted: u64,
    corrupt_record: Option<u64>,
    record_index: u64,
    buf: Vec<u8>,
    pos: usize,
}

impl RecordSource {
    /// A pipe of ≈ `target_bytes` conforming records (always accepted).
    pub fn new(target_bytes: u64, seed: u64) -> RecordSource {
        RecordSource {
            rng: SmallRng::seed_from_u64(seed),
            target: target_bytes,
            emitted: 0,
            corrupt_record: None,
            record_index: 0,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Like [`new`](RecordSource::new) but record `record` (0-based) is
    /// malformed, so the stream is rejected.
    pub fn with_corruption(target_bytes: u64, seed: u64, record: u64) -> RecordSource {
        RecordSource {
            corrupt_record: Some(record),
            ..RecordSource::new(target_bytes, seed)
        }
    }
}

impl std::io::Read for RecordSource {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.buf.len() {
            if self.emitted >= self.target {
                return Ok(0);
            }
            self.buf.clear();
            self.pos = 0;
            push_record(&mut self.buf, &mut self.rng);
            if self.corrupt_record == Some(self.record_index) {
                self.buf[..3].copy_from_slice(b"Xxx");
            }
            self.record_index += 1;
            self.emitted += self.buf.len() as u64;
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn last_newline_before(text: &[u8], len: usize) -> Option<usize> {
    let bound = len.min(text.len());
    text[..bound].iter().rposition(|&b| b == b'\n')
}

fn push_record(out: &mut Vec<u8>, rng: &mut SmallRng) {
    const MESSAGES: [&str; 5] = [
        "connection accepted",
        "packet dropped by policy",
        "TCP retransmit detected",
        "session closed cleanly",
        "rate limit applied",
    ];
    let month = MONTHS[rng.gen_range(0..12usize)];
    let day = rng.gen_range(1..=28);
    let record = format!(
        "{month} {day:2} {:02}:{:02}:{:02} host{} {}[{}]: src={}.{}.{}.{} dst={}.{}.{}.{} len={} {}\n",
        rng.gen_range(0..24),
        rng.gen_range(0..60),
        rng.gen_range(0..60),
        rng.gen_range(1..200),
        DAEMONS[rng.gen_range(0..4usize)],
        rng.gen_range(1..99999),
        rng.gen_range(1..255),
        rng.gen_range(0..255),
        rng.gen_range(0..255),
        rng.gen_range(1..255),
        rng.gen_range(1..255),
        rng.gen_range(0..255),
        rng.gen_range(0..255),
        rng.gen_range(1..255),
        rng.gen_range(40..1500),
        MESSAGES[rng.gen_range(0..5usize)],
    );
    out.extend_from_slice(record.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridfa_automata::dfa::{minimize::minimize, powerset::determinize};

    #[test]
    fn nfa_is_around_a_hundred_states() {
        let n = nfa().num_states();
        assert!((80..200).contains(&n), "got {n}");
    }

    #[test]
    fn traffic_is_an_even_benchmark() {
        let n = nfa();
        let min = minimize(&determinize(&n));
        assert!(
            min.num_live_states() <= 2 * n.num_states(),
            "DFA {} vs NFA {}",
            min.num_live_states(),
            n.num_states()
        );
    }

    #[test]
    fn generated_text_is_accepted() {
        let n = nfa();
        for seed in 0..3 {
            let t = text(4096, seed);
            assert!(n.accepts(&t), "seed {seed}");
        }
    }

    #[test]
    fn rejected_text_is_rejected() {
        let n = nfa();
        let t = rejected_text(4096, 7);
        assert!(!n.accepts(&t));
    }

    #[test]
    fn rejected_text_rejects_at_every_length() {
        // Regression: when the corruption midpoint fell inside the first
        // record (any len ≲ 200) the upstream-newline lookup found
        // nothing and corruption was silently skipped — "rejected" texts
        // were accepted, turning the rejection path of every downstream
        // consumer (request_stream, serve, the batch-latency bench) into
        // a no-op at short lengths.
        let n = nfa();
        for len in [10usize, 40, 80, 200, 2048] {
            for seed in [0u64, 7, 41] {
                let t = rejected_text(len, seed);
                assert!(!t.is_empty(), "len {len} seed {seed}: empty");
                assert!(!n.accepts(&t), "len {len} seed {seed}: accepted");
            }
        }
    }

    #[test]
    fn short_request_streams_reject_on_schedule() {
        // The request_stream contract at lengths where the old
        // rejected_text bug bit.
        let n = nfa();
        for len in [10usize, 80] {
            let stream = request_stream(8, len, 4);
            for (i, t) in stream.iter().enumerate() {
                assert_eq!(n.accepts(t), (i + 1) % 4 != 0, "len {len} text {i}");
            }
        }
    }

    #[test]
    fn record_source_pipes_accepted_records() {
        use std::io::Read;
        let n = nfa();
        let mut source = RecordSource::new(8192, 3);
        let mut text = Vec::new();
        source.read_to_end(&mut text).unwrap();
        assert!(text.len() >= 8192, "short pipe: {}", text.len());
        assert_eq!(*text.last().unwrap(), b'\n', "record boundary at EOF");
        assert!(n.accepts(&text));
        // Deterministic: same seed, same bytes.
        let mut again = Vec::new();
        RecordSource::new(8192, 3).read_to_end(&mut again).unwrap();
        assert_eq!(text, again);
    }

    #[test]
    fn corrupted_record_source_is_rejected() {
        use std::io::Read;
        let n = nfa();
        for record in [0u64, 5] {
            let mut text = Vec::new();
            RecordSource::with_corruption(4096, 1, record)
                .read_to_end(&mut text)
                .unwrap();
            assert!(!n.accepts(&text), "corrupt record {record}");
        }
    }

    #[test]
    fn empty_log_is_accepted() {
        // The pattern is a starred record: zero records conform.
        assert!(nfa().accepts(b""));
    }

    #[test]
    fn request_stream_mixes_verdicts_predictably() {
        let n = nfa();
        let stream = request_stream(8, 512, 4);
        assert_eq!(stream.len(), 8);
        for (i, t) in stream.iter().enumerate() {
            assert_eq!(n.accepts(t), (i + 1) % 4 != 0, "text {i}");
        }
        // reject_every = 0: everything conforms.
        assert!(request_stream(3, 512, 0).iter().all(|t| n.accepts(t)));
    }

    #[test]
    fn lines_look_like_syslog() {
        let t = text(2048, 0);
        let first_line = t.split(|&b| b == b'\n').next().unwrap();
        let s = String::from_utf8_lossy(first_line);
        assert!(s.contains("src="), "{s}");
        assert!(s.contains("]: "), "{s}");
    }
}
