//! The `regexp` benchmark family: `(a|b)* a (a|b)^k` — the textbook case
//! of exponential DFA state explosion (paper Tab. 1, Fig. 7b, Fig. 8b/d).
//!
//! The NFA below is the classical `k+2`-state machine (state 0 loops on
//! {a,b} and guesses the final `a`; a chain of `k+1` states checks the
//! suffix), while the minimal DFA needs `2^(k+1)` states to remember the
//! last `k+1` symbols. This is the *winning* case for the RI-DFA: its
//! interface has `k+2` entries against the DFA's `2^(k+1)` starting
//! states.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ridfa_automata::nfa::{Builder, Nfa};

/// Builds the canonical `k+2`-state NFA of `(a|b)* a (a|b)^k`.
pub fn nfa(k: usize) -> Nfa {
    let mut b = Builder::new();
    let s0 = b.add_state();
    b.add_transition(s0, b'a', s0);
    b.add_transition(s0, b'b', s0);
    let mut prev = b.add_state();
    b.add_transition(s0, b'a', prev);
    for _ in 0..k {
        let next = b.add_state();
        b.add_transition(prev, b'a', next);
        b.add_transition(prev, b'b', next);
        prev = next;
    }
    b.set_start(s0);
    b.set_final(prev);
    b.build().expect("regexp family NFA is well-formed")
}

/// Generates an accepted text of exactly `len` bytes (`len ≥ k + 1`):
/// uniform random `a`/`b` with the `(k+1)`-th byte from the end forced to
/// `a`.
pub fn text(k: usize, len: usize, seed: u64) -> Vec<u8> {
    assert!(len > k, "text must be longer than the checked suffix");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out: Vec<u8> = (0..len)
        .map(|_| if rng.gen_bool(0.5) { b'a' } else { b'b' })
        .collect();
    let forced = len - k - 1;
    out[forced] = b'a';
    out
}

/// A rejected text: same distribution, the critical byte forced to `b`.
pub fn rejected_text(k: usize, len: usize, seed: u64) -> Vec<u8> {
    let mut out = text(k, len, seed);
    let forced = len - k - 1;
    for byte in &mut out[forced..] {
        *byte = b'b';
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridfa_automata::dfa::{minimize::minimize, powerset::determinize};

    #[test]
    fn nfa_size_is_k_plus_2() {
        for k in [0usize, 1, 4, 9] {
            assert_eq!(nfa(k).num_states(), k + 2);
        }
    }

    #[test]
    fn minimal_dfa_explodes_exponentially() {
        for k in [2usize, 4, 6] {
            let min = minimize(&determinize(&nfa(k)));
            assert_eq!(min.num_live_states(), 1 << (k + 1), "k = {k}");
        }
    }

    #[test]
    fn generated_text_is_accepted() {
        for k in [1usize, 3, 7] {
            let n = nfa(k);
            for seed in 0..5 {
                let t = text(k, 64, seed);
                assert!(n.accepts(&t), "k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn rejected_text_is_rejected() {
        for k in [1usize, 3] {
            let n = nfa(k);
            let t = rejected_text(k, 64, 42);
            assert!(!n.accepts(&t));
        }
    }

    #[test]
    fn language_semantics_spot_check() {
        let n = nfa(2);
        assert!(n.accepts(b"abb")); // a at position -(3)
        assert!(n.accepts(b"babaaa"));
        assert!(!n.accepts(b"bbb"));
        assert!(!n.accepts(b"ab")); // too short
    }

    #[test]
    fn text_is_deterministic_in_seed() {
        assert_eq!(text(3, 128, 7), text(3, 128, 7));
        assert_ne!(text(3, 128, 7), text(3, 128, 8));
    }
}
