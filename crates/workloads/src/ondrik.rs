//! A synthetic stand-in for the Ondrik collection of large NFAs
//! (paper Sect. 4.2, Tab. 2).
//!
//! The real collection (1084 machines, 2490 states on average, drawn from
//! system modeling and formal verification) is not vendored; this module
//! generates a seeded collection with the same *measured* characteristics.
//! Each machine combines three ingredients observed in machine-generated
//! NFAs:
//!
//! 1. a mostly-deterministic **backbone** (ring plus jump edges) over a
//!    small alphabet, so the language has structure instead of noise;
//! 2. a **suffix-window gadget** — the classic `(x|y)* x (x|y)^j` shape
//!    over a *disjoint* sub-alphabet. Model-checking automata are full of
//!    such bounded-lookback counters, and they are what makes the minimal
//!    DFA a *controlled* multiple of the NFA: the gadget costs `j + 2` NFA
//!    states but `2^(j+1)` DFA states. Drawing `j ≈ log₂(n) − 1 ± 1`
//!    places the NFA/DFA ratio in the paper's dominant 0.5–0.7 buckets
//!    without ever exploding the determinization;
//! 3. **redundant duplicate states** (clones with identical behaviour),
//!    which machine generators routinely emit: they inflate the NFA above
//!    its minimal DFA (the paper's small >1 tail) and are exactly what the
//!    RI-DFA interface minimization (Sect. 3.4) delegates away — shifting
//!    the RI-DFA distribution left of the NFA one, as in Tab. 2.
//!
//! State counts are scaled down by default so the full Tab. 2 / Sect. 4.5
//! experiments run on a laptop; grow [`OndrikConfig::state_range`] to
//! approach paper scale.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ridfa_automata::nfa::{Builder, Nfa};
use ridfa_automata::StateId;

/// Parameters of the synthetic collection.
#[derive(Debug, Clone)]
pub struct OndrikConfig {
    /// Number of machines (paper: 1084).
    pub num_machines: usize,
    /// Inclusive range of *backbone* state counts per machine (the gadget
    /// and duplicates come on top).
    pub state_range: (usize, usize),
    /// Number of distinct backbone alphabet symbols (mapped to `a`, `b`, …).
    pub alphabet_range: (usize, usize),
    /// Percent of (state, symbol) pairs with a defined backbone edge.
    pub density_percent: u32,
    /// Percent of backbone edges that jump to a random state instead of
    /// the next ring state.
    pub jump_percent: u32,
    /// Percent of machines carrying the suffix-window gadget (the rest
    /// are duplicate-heavy machines populating the >1 ratio tail).
    pub gadget_percent: u32,
    /// Maximum percent of states duplicated as redundant clones (each
    /// machine draws its own rate from `0..=max`).
    pub duplicate_percent_max: u32,
    /// Percent of states that are final.
    pub final_percent: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for OndrikConfig {
    /// Laptop-scale default: 1084 machines of 24–96 backbone states.
    fn default() -> Self {
        OndrikConfig {
            num_machines: 1084,
            state_range: (24, 96),
            alphabet_range: (2, 4),
            density_percent: 85,
            jump_percent: 10,
            gadget_percent: 96,
            duplicate_percent_max: 8,
            final_percent: 6,
            seed: 0xD1CE,
        }
    }
}

/// Generates the whole collection.
pub fn collection(config: &OndrikConfig) -> Vec<Nfa> {
    (0..config.num_machines)
        .map(|i| machine(config, config.seed.wrapping_add(i as u64 * 0x9E37_79B9)))
        .collect()
}

/// Generates one machine of the collection.
pub fn machine(config: &OndrikConfig, seed: u64) -> Nfa {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(config.state_range.0..=config.state_range.1.max(config.state_range.0));
    let a = rng
        .gen_range(config.alphabet_range.0..=config.alphabet_range.1.max(config.alphabet_range.0));

    // 1. Deterministic backbone over 'a', 'b', …
    let mut edges: Vec<(StateId, u8, StateId)> = Vec::new();
    for s in 0..n as StateId {
        for sym in 0..a {
            if !rng.gen_ratio(config.density_percent.clamp(1, 100), 100) {
                continue;
            }
            let byte = b'a' + sym as u8;
            let target = if rng.gen_ratio(config.jump_percent.min(100), 100) {
                rng.gen_range(0..n) as StateId
            } else {
                ((s as usize + 1) % n) as StateId
            };
            edges.push((s, byte, target));
        }
    }

    // 2. The suffix-window gadget (x|y)* x (x|y)^j over the disjoint
    //    sub-alphabet {'x','y'}, sharing state 0 as its loop state. The
    //    exponent tracks the backbone size so the machine's NFA/DFA ratio
    //    lands in the paper's dominant buckets.
    let mut num_states = n;
    let mut gadget_final: Option<StateId> = None;
    if rng.gen_ratio(config.gadget_percent.min(100), 100) {
        // 2^(j+1) between n/2 and 2n: the DFA gains about one backbone's
        // worth of window states, the NFA only j+2.
        let j_base = (usize::BITS - n.leading_zeros()) as i64 - 1; // ⌈log2(n)⌉
        let j = (j_base + rng.gen_range(-1i64..=0)).clamp(2, 12) as usize;
        edges.push((0, b'x', 0));
        edges.push((0, b'y', 0));
        let mut prev = num_states as StateId;
        num_states += 1;
        edges.push((0, b'x', prev)); // the nondeterministic guess
        for _ in 0..j {
            let next = num_states as StateId;
            num_states += 1;
            edges.push((prev, b'x', next));
            edges.push((prev, b'y', next));
            prev = next;
        }
        gadget_final = Some(prev);
    }

    // 3. Finals, drawn among reachable states.
    let reachable = reachable_of(num_states, &edges);
    let mut finals: Vec<StateId> = reachable
        .iter()
        .copied()
        .filter(|_| rng.gen_ratio(config.final_percent.clamp(1, 100), 100))
        .collect();
    finals.extend(gadget_final);
    if finals.is_empty() {
        finals.push(*reachable.last().expect("start is always reachable"));
    }

    // 4. Redundant clones: duplicate behaviour without changing the
    //    language (same outgoing edges; every incoming edge also targets
    //    the clone).
    let dup_rate = rng.gen_range(0..=config.duplicate_percent_max);
    let dup_count = n * dup_rate as usize / 100;
    for _ in 0..dup_count {
        let original = *reachable
            .get(rng.gen_range(0..reachable.len()))
            .expect("reachable set is nonempty");
        let clone = num_states as StateId;
        num_states += 1;
        let mut cloned_edges = Vec::new();
        for &(s, byte, t) in &edges {
            if s == original {
                cloned_edges.push((clone, byte, t));
            }
            if t == original {
                cloned_edges.push((s, byte, clone));
            }
        }
        edges.extend(cloned_edges);
        if finals.contains(&original) {
            finals.push(clone);
        }
    }

    let mut b = Builder::new();
    for _ in 0..num_states {
        b.add_state();
    }
    for (s, byte, t) in edges {
        b.add_transition(s, byte, t);
    }
    for &f in &finals {
        b.set_final(f);
    }
    b.set_start(0);
    b.build().expect("generated NFA is well-formed").trim()
}

/// Reachable states from state 0, ascending.
fn reachable_of(n: usize, edges: &[(StateId, u8, StateId)]) -> Vec<StateId> {
    let mut adj: Vec<Vec<StateId>> = vec![Vec::new(); n];
    for &(s, _, t) in edges {
        adj[s as usize].push(t);
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0 as StateId];
    seen[0] = true;
    while let Some(s) = stack.pop() {
        for &t in &adj[s as usize] {
            if !seen[t as usize] {
                seen[t as usize] = true;
                stack.push(t);
            }
        }
    }
    (0..n as StateId).filter(|&s| seen[s as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridfa_automata::dfa::minimize::minimize;
    use ridfa_automata::dfa::powerset::determinize_limited;

    fn small_config() -> OndrikConfig {
        OndrikConfig {
            num_machines: 24,
            state_range: (10, 30),
            seed: 7,
            ..OndrikConfig::default()
        }
    }

    #[test]
    fn collection_is_reproducible() {
        let c = small_config();
        let one = collection(&c);
        let two = collection(&c);
        assert_eq!(one.len(), 24);
        assert_eq!(one, two);
    }

    #[test]
    fn machines_are_trim_and_nonempty() {
        for nfa in collection(&small_config()) {
            assert!(nfa.num_states() >= 1);
            assert_eq!(nfa.reachable().len(), nfa.num_states(), "trimmed");
            assert!(!nfa.finals().is_empty());
        }
    }

    #[test]
    fn determinization_never_explodes() {
        // The gadget growth is engineered: 2^(j+1) with j ≈ log2(n), so
        // every machine determinizes within a small budget.
        for nfa in collection(&small_config()) {
            assert!(determinize_limited(&nfa, 50_000).is_ok());
        }
    }

    #[test]
    fn ratio_distribution_has_the_paper_shape() {
        let config = OndrikConfig {
            num_machines: 60,
            state_range: (16, 48),
            seed: 11,
            ..OndrikConfig::default()
        };
        let mut below = 0;
        let mut total = 0;
        for nfa in collection(&config) {
            let Ok(dfa) = determinize_limited(&nfa, 50_000) else {
                continue;
            };
            let min = minimize(&dfa);
            if min.num_live_states() == 0 {
                continue;
            }
            total += 1;
            if nfa.num_states() < min.num_live_states() {
                below += 1;
            }
        }
        assert_eq!(total, 60, "all machines determinize within budget");
        assert!(
            below * 3 > total * 2,
            "clear majority below ratio 1 ({below}/{total})"
        );
        assert!(below < total, "a redundant tail above 1 must exist");
    }

    #[test]
    fn duplicates_give_interface_minimization_work() {
        // At least one machine's RI-DFA interface must shrink, since
        // cloned states are language-equivalent by construction.
        use ridfa_core::ridfa::RiDfa;
        let shrunk = collection(&small_config()).iter().any(|nfa| {
            let rid = RiDfa::from_nfa(nfa);
            rid.minimized().interface().len() < rid.interface().len()
        });
        assert!(shrunk);
    }

    #[test]
    fn machines_have_nondeterminism() {
        let has_nondet = collection(&small_config()).iter().any(|nfa| {
            (0..nfa.num_states() as StateId).any(|s| {
                let t = nfa.transitions(s);
                t.windows(2).any(|w| w[0].0 == w[1].0)
            })
        });
        assert!(has_nondet);
    }
}
