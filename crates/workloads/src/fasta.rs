//! The `fasta` benchmark: DNA sequences in FASTA format searched for a few
//! short motifs (paper Tab. 1; *even* group).
//!
//! The motifs are classic restriction-enzyme recognition sites. Literal
//! motif search compiles to an Aho-Corasick-shaped automaton whose minimal
//! DFA is about as large as the Glushkov NFA — so the DFA and RI-DFA chunk
//! automata have similar interfaces and the benchmark lands in the *even*
//! group, as in the paper.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ridfa_automata::nfa::{glushkov, Nfa};
use ridfa_automata::regex::parse;

/// The planted motifs (EcoRI, BamHI, HindIII, PstI sites).
pub const MOTIFS: [&str; 4] = ["GAATTC", "GGATCC", "AAGCTT", "CTGCAG"];

/// The benchmark pattern: `[\s\S]*(GAATTC|GGATCC|AAGCTT|CTGCAG)[\s\S]*`.
pub fn pattern() -> String {
    format!("[\\s\\S]*({})[\\s\\S]*", MOTIFS.join("|"))
}

/// The benchmark NFA (Glushkov of [`pattern`]): 1 + 4·6 + 1 positions + 1
/// initial = 27 states, close to the paper's 29.
pub fn nfa() -> Nfa {
    glushkov::build(&parse(&pattern()).unwrap()).expect("fasta pattern is buildable")
}

/// Generates ≈ `len` bytes of FASTA-formatted DNA with one motif planted
/// per ~1 KiB; always accepted by [`nfa`].
pub fn text(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len + 128);
    let mut sequence = 0usize;
    // Guarantee one motif immediately after the first header.
    push_header(&mut out, &mut sequence);
    out.extend_from_slice(MOTIFS[0].as_bytes());
    out.push(b'\n');
    while out.len() < len {
        if rng.gen_ratio(1, 40) {
            push_header(&mut out, &mut sequence);
        }
        push_dna_line(&mut out, &mut rng);
        if rng.gen_ratio(1, 14) {
            let motif = MOTIFS[rng.gen_range(0..MOTIFS.len())];
            out.extend_from_slice(motif.as_bytes());
            out.push(b'\n');
        }
    }
    out.truncate(len.max(32));
    out
}

/// DNA with no planted motif and motif-free random lines: rejected unless
/// a motif arises by chance — which the generator prevents by filtering.
pub fn rejected_text(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len + 128);
    let mut sequence = 0usize;
    push_header(&mut out, &mut sequence);
    while out.len() < len {
        let start = out.len();
        push_dna_line(&mut out, &mut rng);
        if contains_motif(&out[start.saturating_sub(8)..]) {
            out.truncate(start);
        }
    }
    out.truncate(len.max(32));
    // Truncation cannot create a motif, but the boundary between kept
    // lines could — scrub any residue.
    scrub_motifs(&mut out);
    out
}

fn contains_motif(window: &[u8]) -> bool {
    MOTIFS
        .iter()
        .any(|m| window.windows(m.len()).any(|w| w == m.as_bytes()))
}

fn scrub_motifs(text: &mut [u8]) {
    for m in MOTIFS {
        let m = m.as_bytes();
        let mut i = 0;
        while i + m.len() <= text.len() {
            if &text[i..i + m.len()] == m {
                text[i] = b'N';
            }
            i += 1;
        }
    }
}

fn push_header(out: &mut Vec<u8>, sequence: &mut usize) {
    *sequence += 1;
    out.extend_from_slice(format!(">seq{sequence} synthetic chromosome\n").as_bytes());
}

fn push_dna_line(out: &mut Vec<u8>, rng: &mut SmallRng) {
    const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];
    for _ in 0..70 {
        out.push(BASES[rng.gen_range(0..4usize)]);
    }
    out.push(b'\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridfa_automata::dfa::{minimize::minimize, powerset::determinize};

    #[test]
    fn nfa_size_matches_design() {
        assert_eq!(nfa().num_states(), 1 + 4 * 6 + 1 + 1);
    }

    #[test]
    fn fasta_is_an_even_benchmark() {
        // Minimal DFA within ~2× of the NFA: no meaningful blow-up.
        let n = nfa();
        let min = minimize(&determinize(&n));
        assert!(
            min.num_live_states() <= 2 * n.num_states(),
            "DFA {} vs NFA {}",
            min.num_live_states(),
            n.num_states()
        );
    }

    #[test]
    fn generated_text_is_accepted() {
        let n = nfa();
        for seed in 0..3 {
            assert!(n.accepts(&text(8192, seed)), "seed {seed}");
        }
    }

    #[test]
    fn rejected_text_is_rejected() {
        let n = nfa();
        for seed in 0..3 {
            assert!(!n.accepts(&rejected_text(8192, seed)), "seed {seed}");
        }
    }

    #[test]
    fn looks_like_fasta() {
        let t = text(4096, 0);
        assert!(t.starts_with(b">seq1"));
        assert!(t.iter().filter(|&&b| b == b'\n').count() > 10);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(text(1024, 5), text(1024, 5));
    }
}
