//! A random regular-expression generator and string sampler, modeled on
//! the REgen tool the paper cites as \[3\] for producing the `bigdata`
//! benchmark.
//!
//! Two halves:
//! * [`random_ast`] — draws a random RE over a configurable literal
//!   alphabet with bounded depth/positions;
//! * [`sample_into`] — draws a random string *from the language* of an RE
//!   (alternations pick a branch, stars pick a geometric repetition
//!   count), which is how matching benchmark texts are produced.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ridfa_automata::regex::{Ast, ByteSet};

/// Tuning knobs for [`random_ast`].
#[derive(Debug, Clone)]
pub struct RegenConfig {
    /// Bytes literals are drawn from.
    pub alphabet: Vec<u8>,
    /// Maximum operator nesting depth.
    pub max_depth: usize,
    /// Maximum branches of one alternation / factors of one concatenation.
    pub max_width: usize,
    /// Probability (percent) that a subexpression is starred.
    pub star_percent: u32,
}

impl Default for RegenConfig {
    fn default() -> Self {
        RegenConfig {
            alphabet: b"abcd".to_vec(),
            max_depth: 3,
            max_width: 3,
            star_percent: 30,
        }
    }
}

/// Draws a random RE.
pub fn random_ast(config: &RegenConfig, seed: u64) -> Ast {
    let mut rng = SmallRng::seed_from_u64(seed);
    gen_node(config, &mut rng, config.max_depth)
}

fn gen_node(config: &RegenConfig, rng: &mut SmallRng, depth: usize) -> Ast {
    if depth == 0 {
        return gen_leaf(config, rng);
    }
    let node = match rng.gen_range(0..10) {
        0..=3 => {
            let width = rng.gen_range(2..=config.max_width.max(2));
            Ast::concat(
                (0..width)
                    .map(|_| gen_node(config, rng, depth - 1))
                    .collect(),
            )
        }
        4..=6 => {
            let width = rng.gen_range(2..=config.max_width.max(2));
            Ast::alt(
                (0..width)
                    .map(|_| gen_node(config, rng, depth - 1))
                    .collect(),
            )
        }
        7..=8 => gen_leaf(config, rng),
        _ => Ast::opt(gen_node(config, rng, depth - 1)),
    };
    if rng.gen_ratio(config.star_percent, 100) {
        Ast::star(node)
    } else {
        node
    }
}

fn gen_leaf(config: &RegenConfig, rng: &mut SmallRng) -> Ast {
    if rng.gen_ratio(1, 5) && config.alphabet.len() >= 2 {
        // A small class of 2 alphabet bytes.
        let a = config.alphabet[rng.gen_range(0..config.alphabet.len())];
        let b = config.alphabet[rng.gen_range(0..config.alphabet.len())];
        Ast::Class(ByteSet::from_bytes(&[a, b]))
    } else {
        let b = config.alphabet[rng.gen_range(0..config.alphabet.len())];
        Ast::literal(b)
    }
}

/// Appends one random member of `ast`'s language to `out`.
///
/// Stars and `{m,}` draw geometric repetition counts (expected 2 extra
/// iterations); alternations pick uniformly. The sampled string is *always*
/// accepted by any correct automaton for `ast` — the property the tests
/// lean on.
pub fn sample_into(ast: &Ast, rng: &mut SmallRng, out: &mut Vec<u8>) {
    match ast {
        Ast::Empty => {}
        Ast::Class(set) => {
            let n = set.len();
            debug_assert!(n > 0, "cannot sample from an empty class");
            let k = rng.gen_range(0..n);
            out.push(set.iter().nth(k).expect("class has k-th member"));
        }
        Ast::Concat(parts) => {
            for p in parts {
                sample_into(p, rng, out);
            }
        }
        Ast::Alt(branches) => {
            let b = rng.gen_range(0..branches.len());
            sample_into(&branches[b], rng, out);
        }
        Ast::Star(inner) => {
            while rng.gen_ratio(2, 3) {
                sample_into(inner, rng, out);
            }
        }
        Ast::Repeat { inner, min, max } => {
            let count = match max {
                Some(max) => rng.gen_range(*min..=*max),
                None => {
                    let mut c = *min;
                    while rng.gen_ratio(2, 3) {
                        c += 1;
                    }
                    c
                }
            };
            for _ in 0..count {
                sample_into(inner, rng, out);
            }
        }
    }
}

/// Convenience: one sampled string.
pub fn sample(ast: &Ast, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    sample_into(ast, &mut rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridfa_automata::nfa::glushkov;

    #[test]
    fn random_ast_is_buildable_and_printable() {
        let config = RegenConfig::default();
        for seed in 0..50 {
            let ast = random_ast(&config, seed);
            let printed = ast.to_string();
            let reparsed = ridfa_automata::regex::parse(&printed)
                .unwrap_or_else(|e| panic!("seed {seed}: {printed:?}: {e}"));
            // Round-trip through the printer preserves the language; check
            // structural equality of the canonicalized forms.
            assert_eq!(ast, reparsed, "seed {seed}");
            glushkov::build(&ast).unwrap();
        }
    }

    #[test]
    fn samples_are_accepted_by_the_nfa() {
        let config = RegenConfig::default();
        for seed in 0..30 {
            let ast = random_ast(&config, seed);
            let nfa = glushkov::build(&ast).unwrap();
            for s in 0..5 {
                let text = sample(&ast, seed * 100 + s);
                assert!(
                    nfa.accepts(&text),
                    "seed {seed} sample {s}: {:?} not in L({})",
                    String::from_utf8_lossy(&text),
                    ast
                );
            }
        }
    }

    #[test]
    fn sampler_respects_counted_bounds() {
        let ast = ridfa_automata::regex::parse("a{2,4}").unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            let mut out = Vec::new();
            sample_into(&ast, &mut rng, &mut out);
            assert!((2..=4).contains(&out.len()));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let config = RegenConfig::default();
        assert_eq!(random_ast(&config, 3), random_ast(&config, 3));
    }
}
