//! The benchmark registry: one entry per text benchmark of Tab. 1.

use ridfa_automata::nfa::Nfa;

/// The paper's partition of benchmarks by outcome (Sect. 4.3/4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Group {
    /// DFA and RI-DFA variants perform within ±10% of each other.
    Even,
    /// The RI-DFA variant wins by a large factor.
    Winning,
}

/// `k` of the `regexp` family instance used in the standard registry:
/// NFA = k + 2 = 8 states, minimal DFA = 2^(k+1) = 128 states. `k = 6`
/// back-solves the paper's Tab. 3 transition ratio: with all 128 DFA runs
/// surviving every chunk and ~1 RID run doing so, the DFA/RID ratio at 58
/// chunks is 128·57/58 ≈ 126 — the paper reports 126.99.
pub const REGEXP_K: usize = 6;

/// One text benchmark: an NFA plus deterministic text generators.
pub struct Benchmark {
    /// Benchmark name as in Tab. 1.
    pub name: &'static str,
    /// Expected outcome group.
    pub group: Group,
    /// The language's NFA.
    pub nfa: Nfa,
    /// Generates an *accepted* text of ≈ the requested byte length.
    pub accepted: fn(usize, u64) -> Vec<u8>,
    /// Generates a *rejected* text of ≈ the requested byte length.
    pub rejected: fn(usize, u64) -> Vec<u8>,
    /// Default (laptop-scale) text length in bytes.
    pub default_len: usize,
    /// The paper's maximum text length in bytes (Tab. 1).
    pub paper_len: usize,
}

fn regexp_accepted(len: usize, seed: u64) -> Vec<u8> {
    crate::regexp::text(REGEXP_K, len, seed)
}

fn regexp_rejected(len: usize, seed: u64) -> Vec<u8> {
    crate::regexp::rejected_text(REGEXP_K, len, seed)
}

/// The five benchmarks of Tab. 1 with laptop-scale default sizes.
pub fn standard_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "bigdata",
            group: Group::Even,
            nfa: crate::bigdata::nfa(),
            accepted: crate::bigdata::text,
            rejected: crate::bigdata::rejected_text,
            default_len: 3 << 20,
            paper_len: 13 * (1 << 20) / 10 * 10, // 13 MB
        },
        Benchmark {
            name: "regexp",
            group: Group::Winning,
            nfa: crate::regexp::nfa(REGEXP_K),
            accepted: regexp_accepted,
            rejected: regexp_rejected,
            default_len: 2 << 20,
            paper_len: 6 << 20,
        },
        Benchmark {
            name: "bible",
            group: Group::Winning,
            nfa: crate::bible::nfa(),
            accepted: crate::bible::text,
            rejected: crate::bible::rejected_text,
            default_len: 1 << 20,
            paper_len: 4 << 20,
        },
        Benchmark {
            name: "fasta",
            group: Group::Even,
            nfa: crate::fasta::nfa(),
            accepted: crate::fasta::text,
            rejected: crate::fasta::rejected_text,
            default_len: 765 << 10,
            paper_len: 765 << 10,
        },
        Benchmark {
            name: "traffic",
            group: Group::Even,
            nfa: crate::traffic::nfa(),
            accepted: crate::traffic::text,
            rejected: crate::traffic::rejected_text,
            default_len: 3 << 20,
            paper_len: 11 << 20,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_five_benchmarks() {
        let benches = standard_benchmarks();
        assert_eq!(benches.len(), 5);
        let names: Vec<_> = benches.iter().map(|b| b.name).collect();
        assert_eq!(names, ["bigdata", "regexp", "bible", "fasta", "traffic"]);
    }

    #[test]
    fn every_generator_agrees_with_its_nfa() {
        for b in standard_benchmarks() {
            let accepted = (b.accepted)(4096, 11);
            assert!(
                b.nfa.accepts(&accepted),
                "{}: accepted text rejected",
                b.name
            );
            let rejected = (b.rejected)(4096, 11);
            assert!(
                !b.nfa.accepts(&rejected),
                "{}: rejected text accepted",
                b.name
            );
        }
    }

    #[test]
    fn default_sizes_are_laptop_scale() {
        for b in standard_benchmarks() {
            assert!(b.default_len <= b.paper_len);
            assert!(b.default_len >= 64 << 10);
        }
    }
}
