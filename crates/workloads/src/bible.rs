//! The `bible` benchmark: a long HTML-like manuscript whose `<h3>` section
//! titles are described by an RE (paper Tab. 1, Fig. 7a, Fig. 8a/c).
//!
//! The paper's RE "describes the titles of the HTML h3 subsections …
//! modeling the file as a long text where some instances of the RE occur",
//! and lands in the *winning* group: its minimal DFA is several times
//! larger than the 16-state NFA. We reproduce that structure with a
//! contains-a-titled-section pattern whose bounded any-byte title window
//! creates overlapping speculative matches — the classic source of subset
//! blow-up — while the generator plants conforming `<h3>` titles inside
//! filler prose.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ridfa_automata::nfa::{glushkov, Nfa};
use ridfa_automata::regex::parse;

/// Length bound of the any-byte title window (tunes the DFA blow-up:
/// the minimal DFA has ≈ `7·W` live states against the NFA's `W + 12`,
/// so `W = 16` gives the ≈4× state blow-up that puts `bible` in the
/// winning group; the paper's instance measured ≈8.7×).
pub const TITLE_WINDOW: usize = 16;

/// The benchmark pattern: `[\s\S]*<h3>.{0,16}</h3>[\s\S]*`.
pub fn pattern() -> String {
    format!("[\\s\\S]*<h3>.{{0,{TITLE_WINDOW}}}</h3>[\\s\\S]*")
}

/// The benchmark NFA (Glushkov of [`pattern`]).
pub fn nfa() -> Nfa {
    glushkov::build(&parse(&pattern()).unwrap()).expect("bible pattern is buildable")
}

/// Generates an HTML-ish document of ≈ `len` bytes containing one `<h3>`
/// section title per ~2 KiB of prose; always accepted by [`nfa`].
pub fn text(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len + 128);
    out.extend_from_slice(b"<html><body>\n");
    // Guarantee at least one match even for tiny requested lengths.
    push_title(&mut out, &mut rng);
    while out.len() < len {
        push_paragraph(&mut out, &mut rng);
        if rng.gen_ratio(1, 4) {
            push_title(&mut out, &mut rng);
        }
    }
    out.extend_from_slice(b"</body></html>\n");
    out.truncate_to_valid(len);
    out
}

/// A document with all `<h3>` markers broken (`<hx>`): rejected by [`nfa`].
pub fn rejected_text(len: usize, seed: u64) -> Vec<u8> {
    let mut t = text(len, seed);
    let mut i = 0;
    while i + 3 < t.len() {
        if &t[i..i + 3] == b"<h3" {
            t[i + 2] = b'x';
        }
        i += 1;
    }
    t
}

fn push_title(out: &mut Vec<u8>, rng: &mut SmallRng) {
    const TITLES: &[&[u8]] = &[
        b"Genesis", b"Exodus", b"Psalms", b"Kings", b"Acts", b"John", b"Ruth", b"Ezra",
    ];
    out.extend_from_slice(b"<h3>");
    let title = TITLES[rng.gen_range(0..TITLES.len())];
    out.extend_from_slice(&title[..title.len().min(TITLE_WINDOW)]);
    out.extend_from_slice(b"</h3>\n");
}

fn push_paragraph(out: &mut Vec<u8>, rng: &mut SmallRng) {
    const WORDS: &[&[u8]] = &[
        b"and",
        b"the",
        b"in",
        b"of",
        b"beginning",
        b"earth",
        b"light",
        b"waters",
        b"day",
        b"night",
        b"he",
        b"said",
        b"unto",
        b"them",
        b"created",
        b"good",
        b"was",
        b"it",
    ];
    out.extend_from_slice(b"<p>");
    let words = rng.gen_range(40..120);
    for i in 0..words {
        if i > 0 {
            out.push(b' ');
        }
        out.extend_from_slice(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    out.extend_from_slice(b"</p>\n");
}

/// Truncation that keeps the document accepted: cut only in trailing prose,
/// never inside the first guaranteed title.
trait TruncateValid {
    fn truncate_to_valid(&mut self, len: usize);
}

impl TruncateValid for Vec<u8> {
    fn truncate_to_valid(&mut self, len: usize) {
        // The first title ends within the first ~40 bytes; never cut before
        // that, so the guaranteed match survives.
        let min_keep = 13 + 4 + TITLE_WINDOW + 6; // header + <h3>title</h3>
        if len > min_keep && self.len() > len {
            self.truncate(len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridfa_automata::dfa::{minimize::minimize, powerset::determinize};

    #[test]
    fn nfa_is_compact() {
        let n = nfa();
        // 1 (leading Σ*) + 4 (<h3>) + window (.{0,w}) + 5 (</h3>) +
        // 1 (trailing Σ*) positions, plus the Glushkov initial state.
        assert_eq!(n.num_states(), 1 + 4 + TITLE_WINDOW + 5 + 1 + 1);
    }

    #[test]
    fn bible_is_a_winning_benchmark() {
        // The point of the benchmark: minimal-DFA states ≫ NFA states.
        let n = nfa();
        let min = minimize(&determinize(&n));
        assert!(
            min.num_live_states() >= 3 * n.num_states(),
            "DFA {} vs NFA {} — need a clear blow-up for the winning group",
            min.num_live_states(),
            n.num_states()
        );
    }

    #[test]
    fn generated_text_is_accepted() {
        let n = nfa();
        for seed in 0..3 {
            let t = text(4096, seed);
            assert!(n.accepts(&t), "seed {seed}");
            assert!(t.len() >= 4096);
        }
    }

    #[test]
    fn rejected_text_is_rejected() {
        let n = nfa();
        let t = rejected_text(4096, 1);
        assert!(!n.accepts(&t));
    }

    #[test]
    fn text_size_tracks_request() {
        let t = text(100_000, 3);
        assert!((100_000..101_000).contains(&t.len()));
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(text(2048, 9), text(2048, 9));
        assert_ne!(text(2048, 9), text(2048, 10));
    }
}
