//! # ridfa-workloads — benchmark generators for the paper's evaluation
//!
//! The paper evaluates on five text benchmarks (Tab. 1) plus the Ondrik
//! automata collection (Tab. 2). The public data sets are not vendored
//! into this repository; instead each module generates a synthetic
//! workload that preserves the properties the experiments measure — NFA
//! size, DFA-vs-NFA state ratio, and the survival statistics of
//! speculative chunk runs (see `DESIGN.md`, "Substitutions"):
//!
//! | module | paper benchmark | group | NFA states (paper) |
//! |--------|-----------------|-------|--------------------|
//! | [`bigdata`] | random REgen texts | even | 5 |
//! | [`regexp`]  | `(a\|b)*a(a\|b)^k` family | winning | k+2 |
//! | [`bible`]   | HTML manuscript, `<h3>` titles | winning | 16 |
//! | [`fasta`]   | DNA motif search | even | 29 |
//! | [`traffic`] | syslog of network records | even | 101 |
//! | [`ondrik`]  | 1084 big NFAs | — | 2490 avg |
//!
//! Every generator is deterministic in its seed, so experiments are
//! reproducible bit for bit.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod bible;
pub mod bigdata;
pub mod fasta;
pub mod ondrik;
pub mod regen;
pub mod regexp;
pub mod spec;
pub mod traffic;

pub use spec::{standard_benchmarks, Benchmark, Group};
