//! Criterion bench behind Fig. 7: instrumented recognition (transition
//! counting) for the winning benchmarks at 32 chunks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ridfa_bench::build_artifacts;
use ridfa_core::csdpa::{recognize_counted, DfaCa, Executor, NfaCa, RidCa};
use ridfa_workloads::{standard_benchmarks, Group};

const TEXT_LEN: usize = 256 << 10;
const CHUNKS: usize = 32;

fn bench_counted(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let executor = Executor::Team(threads);
    let mut group = c.benchmark_group("fig7_transitions");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for b in standard_benchmarks() {
        if b.group != Group::Winning {
            continue;
        }
        let a = build_artifacts(&b);
        let text = (a.accepted)(TEXT_LEN, 42);
        group.throughput(Throughput::Bytes(text.len() as u64));
        let dfa_ca = DfaCa::new(&a.dfa);
        let nfa_ca = NfaCa::new(&a.nfa);
        let rid_ca = RidCa::new(&a.rid);
        group.bench_with_input(BenchmarkId::new("dfa", a.name), &text, |bench, text| {
            bench.iter(|| recognize_counted(&dfa_ca, text, CHUNKS, executor).transitions);
        });
        group.bench_with_input(BenchmarkId::new("nfa", a.name), &text, |bench, text| {
            bench.iter(|| recognize_counted(&nfa_ca, text, CHUNKS, executor).transitions);
        });
        group.bench_with_input(BenchmarkId::new("rid", a.name), &text, |bench, text| {
            bench.iter(|| recognize_counted(&rid_ca, text, CHUNKS, executor).transitions);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_counted);
criterion_main!(benches);
