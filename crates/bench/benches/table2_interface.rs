//! Criterion bench behind Table 2: cost of measuring one Ondrik machine —
//! determinize + minimize vs RI-DFA construction + interface minimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ridfa_automata::dfa::{minimize, powerset};
use ridfa_core::ridfa::RiDfa;
use ridfa_workloads::ondrik::{machine, OndrikConfig};

fn bench_interface(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_interface");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(20);
    for states in [24usize, 48, 96] {
        let config = OndrikConfig {
            state_range: (states, states),
            ..OndrikConfig::default()
        };
        let nfa = machine(&config, 1234);
        group.bench_with_input(BenchmarkId::new("min_dfa", states), &nfa, |b, nfa| {
            b.iter(|| minimize::minimize(&powerset::determinize(nfa)));
        });
        group.bench_with_input(
            BenchmarkId::new("ridfa_minimized", states),
            &nfa,
            |b, nfa| {
                b.iter(|| RiDfa::from_nfa(nfa).minimized());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_interface);
criterion_main!(benches);
