//! Criterion bench behind Sect. 4.5: NFA → DFA vs NFA → RI-DFA
//! construction cost on representative benchmark NFAs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ridfa_automata::dfa::{minimize, powerset};
use ridfa_core::ridfa::RiDfa;
use ridfa_workloads::standard_benchmarks;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(20);
    for b in standard_benchmarks() {
        group.bench_with_input(
            BenchmarkId::new("determinize", b.name),
            &b.nfa,
            |bench, nfa| {
                bench.iter(|| powerset::determinize(nfa));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("determinize_minimize", b.name),
            &b.nfa,
            |bench, nfa| {
                bench.iter(|| minimize::minimize(&powerset::determinize(nfa)));
            },
        );
        group.bench_with_input(BenchmarkId::new("ridfa", b.name), &b.nfa, |bench, nfa| {
            bench.iter(|| RiDfa::from_nfa(nfa));
        });
        group.bench_with_input(
            BenchmarkId::new("ridfa_minimized", b.name),
            &b.nfa,
            |bench, nfa| {
                bench.iter(|| RiDfa::from_nfa(nfa).minimized());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
