//! Stream-throughput bench: what does bounded-memory streaming cost
//! against the load-everything one-shot recognizer?
//!
//! An 8 MiB `traffic` syslog text is recognized five ways:
//!
//! * `oneshot_team` — the whole text resident, free `recognize` with a
//!   bounded team (the pre-streaming fast path);
//! * `stream_256k` / `stream_1m` — a warm [`StreamSession`] reading the
//!   same bytes from memory in 256 KiB / 1 MiB blocks: read + scan +
//!   eager composition, live memory O(workers · block_size);
//! * `stream_pipe_1m` — the same session fed by the *lazy*
//!   `RecordSource` generator (includes record-generation cost: the
//!   serving shape of `ridfa serve --stream`);
//! * `serial` — single-threaded whole-text reference.
//!
//! The harness writes results to
//! `target/criterion-shim/stream_throughput.json`; the checked-in
//! baseline lives at `crates/bench/baselines/stream_throughput.json`.
//! The acceptance bar is streaming throughput within a small constant
//! factor of one-shot on the same block budget — the memory bound should
//! cost overlap bookkeeping, not a scan regression.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use ridfa_core::csdpa::{recognize, ConvergentRidCa, Executor, StreamSession};
use ridfa_core::ridfa::RiDfa;
use ridfa_workloads::traffic;

const TEXT_LEN: usize = 8 << 20;

fn bench_stream_throughput(c: &mut Criterion) {
    let rid = RiDfa::from_nfa(&traffic::nfa()).minimized();
    let ca = ConvergentRidCa::new(&rid);
    let text = traffic::text(TEXT_LEN, 1);
    let threads = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(8);
    let chunks = threads.max(2);

    let mut group = c.benchmark_group("stream_throughput");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(text.len() as u64));

    group.bench_function("oneshot_team", |b| {
        b.iter(|| recognize(&ca, &text, chunks, Executor::Team(threads)).accepted);
    });
    for (name, block) in [("stream_256k", 256 << 10), ("stream_1m", 1 << 20)] {
        let mut session = StreamSession::new(threads.saturating_sub(1).max(1), block);
        session.warm(&ca, &text[..64 << 10]);
        group.bench_function(name, |b| {
            b.iter(|| session.recognize_stream(&ca, &text[..]).unwrap().accepted);
        });
    }
    {
        let mut session = StreamSession::new(threads.saturating_sub(1).max(1), 1 << 20);
        session.warm(&ca, &text[..64 << 10]);
        group.bench_function("stream_pipe_1m", |b| {
            b.iter(|| {
                session
                    .recognize_stream(&ca, traffic::RecordSource::new(TEXT_LEN as u64, 1))
                    .unwrap()
                    .accepted
            });
        });
    }
    group.bench_function("serial", |b| {
        b.iter(|| recognize(&ca, &text, 1, Executor::Serial).accepted);
    });
    group.finish();
}

criterion_group!(benches, bench_stream_throughput);
criterion_main!(benches);
