//! Short-text / batch latency bench: the serving regime the session
//! layer exists for.
//!
//! A stream of ~2 KiB `traffic` syslog texts is recognized four ways:
//!
//! * `spawn_per_call` — the pre-session hot path: the free `recognize`
//!   spawns OS threads for every text (`Executor::PerChunk`);
//! * `spawn_team` — same, with the bounded dynamic team;
//! * `pooled_per_text` — one warm [`Session`], one `recognize` call per
//!   text (no spawn, warm per-worker scratches, zero allocations);
//! * `pooled_batch` — `Session::recognize_many`, the whole stream as one
//!   pipelined task wave over the pool;
//! * `serial` — single-threaded reference.
//!
//! The per-iteration unit is the **whole stream**, so per-text overhead
//! differences multiply by the batch size. The harness writes the
//! group's results to `target/criterion-shim/batch_latency.json`; the
//! checked-in baseline lives at
//! `crates/bench/baselines/batch_latency.json` — the acceptance bar is
//! pooled per-text cost measurably below the spawn-per-call path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use ridfa_core::csdpa::{recognize, ConvergentRidCa, Executor, Session};
use ridfa_core::ridfa::RiDfa;
use ridfa_workloads::traffic;

const TEXT_LEN: usize = 2048;
const BATCH: usize = 64;
const CHUNKS: usize = 4;

fn bench_batch_latency(c: &mut Criterion) {
    let rid = RiDfa::from_nfa(&traffic::nfa()).minimized();
    let ca = ConvergentRidCa::new(&rid);
    let texts = traffic::request_stream(BATCH, TEXT_LEN, 0);
    let total_bytes: u64 = texts.iter().map(|t| t.len() as u64).sum();
    let threads = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(8);

    let mut group = c.benchmark_group("batch_latency");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(total_bytes));

    group.bench_function("spawn_per_call", |b| {
        b.iter(|| {
            texts
                .iter()
                .filter(|t| recognize(&ca, t, CHUNKS, Executor::PerChunk).accepted)
                .count()
        });
    });
    group.bench_function("spawn_team", |b| {
        b.iter(|| {
            texts
                .iter()
                .filter(|t| recognize(&ca, t, CHUNKS, Executor::Team(threads)).accepted)
                .count()
        });
    });
    {
        let mut session = Session::new(threads.saturating_sub(1).max(1));
        session.warm(&ca, &texts[0]);
        group.bench_function("pooled_per_text", |b| {
            b.iter(|| {
                texts
                    .iter()
                    .filter(|t| session.recognize(&ca, t, CHUNKS).accepted)
                    .count()
            });
        });
        group.bench_function("pooled_batch", |b| {
            b.iter(|| {
                session
                    .recognize_many(&ca, &texts, CHUNKS)
                    .iter()
                    .filter(|&&v| v)
                    .count()
            });
        });
    }
    group.bench_function("serial", |b| {
        b.iter(|| {
            texts
                .iter()
                .filter(|t| recognize(&ca, t, CHUNKS, Executor::Serial).accepted)
                .count()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_batch_latency);
criterion_main!(benches);
